//! Acceptance test for the fault-injection & graceful-degradation layer:
//! a campaign across every workload kernel with injected bit-flips,
//! transient sense failures *and* wear-exhausted rows must
//!
//! * never pass a fault silently under the hardened policy (every fault
//!   is corrected in place or surfaced as a typed error / verification
//!   failure),
//! * reproduce bit-for-bit from the same seed, and
//! * actually inject and detect faults (the campaign is not vacuous).

use felim::arch::{DegradationPolicy, FaultSpec};
use felim::workloads::driver::{campaign_silent_corruptions, run_fault_campaign};

/// Bit-flips on both ports, sense faults, and a wear budget small enough
/// that scratch-heavy kernels exhaust rows mid-run.
fn stress_spec(seed: u64) -> FaultSpec {
    FaultSpec {
        seed,
        write_bitflip_rate: 5e-5,
        read_bitflip_rate: 5e-5,
        sense_fault_rate: 2e-4,
        wear_budget: 2_000,
    }
}

#[test]
fn hardened_campaign_has_zero_silent_corruptions() {
    let outcomes = run_fault_campaign(8, 7, &stress_spec(42), &DegradationPolicy::hardened());
    assert!(outcomes.len() >= 3, "campaign must span ≥3 kernels");

    let injected: u64 = outcomes.iter().map(|o| o.injected_faults).sum();
    assert!(injected > 0, "stress spec must actually inject faults");

    // Degradation must be doing real work, not just absorbing luck.
    let corrected: u64 = outcomes.iter().map(|o| o.corrected_faults).sum();
    let wear_events: u64 = outcomes
        .iter()
        .map(|o| o.reliability.scratch_rotations + o.reliability.retired_rows)
        .sum();
    assert!(corrected > 0, "hardened policy corrected nothing");
    assert!(wear_events > 0, "wear budget never triggered rotation/retirement");

    // The acceptance bar: no fault may escape silently. A kernel either
    // completes with every injected fault corrected, or reports an error.
    assert_eq!(
        campaign_silent_corruptions(&outcomes),
        0,
        "silent corruption escaped the hardened policy: {outcomes:#?}"
    );
    for o in &outcomes {
        if o.completed {
            assert_eq!(o.reliability.escaped_faults, 0, "{}: {:?}", o.workload, o);
        } else {
            assert!(o.error.is_some(), "{}: failed without a message", o.workload);
        }
    }
}

#[test]
fn unmitigated_campaign_detects_but_cannot_correct() {
    let outcomes = run_fault_campaign(8, 7, &stress_spec(42), &DegradationPolicy::none());
    let corrected: u64 = outcomes.iter().map(|o| o.corrected_faults).sum();
    assert_eq!(corrected, 0, "policy none has no correction machinery");
    // With no verify/vote machinery the only safety net is workload
    // verification — every fault shows up as detected or (honestly
    // accounted) silent, never vanishes from the books.
    for o in &outcomes {
        let booked = o.detected_faults + o.silent_corruptions + o.corrected_faults;
        assert_eq!(
            booked, o.reliability.escaped_faults,
            "{}: fault accounting leak",
            o.workload
        );
    }
    let detected: u64 = outcomes.iter().map(|o| o.detected_faults).sum();
    assert!(detected > 0, "at this rate some kernel must fail verification");
}

#[test]
fn same_seed_reproduces_bit_for_bit() {
    let spec = stress_spec(1234);
    let policy = DegradationPolicy::hardened();
    let a = run_fault_campaign(8, 9, &spec, &policy);
    let b = run_fault_campaign(8, 9, &spec, &policy);
    assert_eq!(a, b, "same (rows, seed, spec, policy) must reproduce exactly");

    // And a different injector seed must actually change the fault stream.
    let c = run_fault_campaign(8, 9, &stress_spec(1235), &policy);
    assert_ne!(a, c, "different fault seed produced an identical campaign");
}
