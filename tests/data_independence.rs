//! Data-independence of the cost model — the property the whole Fig 6
//! extrapolation methodology rests on: bulk-bitwise primitive counts
//! depend only on data *size and layout*, never on the data values.

use felim::arch::{BulkBackend, DramBackend, FeramBackend, MemoryGeometry};
use felim::workloads::{all_workloads, Workload};

/// Every workload must produce *identical* cycle and energy totals for
/// different random datasets of the same size, on both backends.
#[test]
fn costs_are_identical_across_seeds() {
    for w in all_workloads() {
        if w.name() == "BNN Inference" {
            // BNN is the documented exception: its *weights* (not its
            // activations) decide whether a feature needs a NOT, so the
            // cost varies with the weight draw — see the dedicated test
            // below.
            continue;
        }
        let run_feram = |seed: u64| {
            let mut m = FeramBackend::new(MemoryGeometry::tiny());
            w.execute(&mut m, 16, seed).unwrap();
            (m.stats().total_cycles(), m.stats().total_energy_nj())
        };
        let run_dram = |seed: u64| {
            let mut m = DramBackend::new(MemoryGeometry::tiny());
            w.execute(&mut m, 16, seed).unwrap();
            (m.stats().total_cycles(), m.stats().total_energy_nj())
        };
        let f1 = run_feram(1);
        let f2 = run_feram(9999);
        assert_eq!(
            f1.0,
            f2.0,
            "{}: FeRAM cycles must be data-independent",
            w.name()
        );
        assert!((f1.1 - f2.1).abs() < 1e-9, "{}: FeRAM energy", w.name());
        let d1 = run_dram(1);
        let d2 = run_dram(9999);
        assert_eq!(
            d1.0,
            d2.0,
            "{}: DRAM cycles must be data-independent",
            w.name()
        );
        assert!((d1.1 - d2.1).abs() < 1e-9, "{}: DRAM energy", w.name());
    }
}

/// Caveat check: BNN weights are drawn per batch, and a weight of 1 skips
/// the NOT — so BNN costs *can* vary with the weight draw, but never with
/// the input activations. Pin that distinction explicitly.
#[test]
fn bnn_costs_depend_on_weights_not_activations() {
    use felim::workloads::bnn::BnnInference;
    // Same seed → same weights and activations → identical cost (above).
    // The general data-independence test already covers the equal-seed
    // case; here we document that the *scaling driver* always uses one
    // fixed seed so extrapolation stays exact.
    let mut a = FeramBackend::new(MemoryGeometry::tiny());
    BnnInference.execute(&mut a, 32, 42).unwrap();
    let mut b = FeramBackend::new(MemoryGeometry::tiny());
    BnnInference.execute(&mut b, 32, 42).unwrap();
    assert_eq!(a.stats(), b.stats());
}

/// Doubling the data rows must exactly double the marginal cost — the
/// linearity the analytic extrapolation assumes, for every workload.
#[test]
fn marginal_cost_is_linear_in_rows() {
    for w in all_workloads() {
        if w.name() == "BNN Inference" {
            // BNN consumes whole 32-row batches; check batch linearity.
            let cycles = |rows| {
                let mut m = FeramBackend::new(MemoryGeometry::tiny());
                w.execute(&mut m, rows, 7).unwrap();
                m.stats().total_cycles() as i64
            };
            let c1 = cycles(32);
            let c2 = cycles(64);
            let c3 = cycles(96);
            assert_eq!(c3 - c2, c2 - c1, "BNN batch cost must be constant");
            continue;
        }
        let cycles = |rows| {
            let mut m = FeramBackend::new(MemoryGeometry::tiny());
            w.execute(&mut m, rows, 7).unwrap();
            m.stats().total_cycles() as i64
        };
        let c8 = cycles(8);
        let c16 = cycles(16);
        let c24 = cycles(24);
        assert_eq!(
            c24 - c16,
            c16 - c8,
            "{}: per-row marginal cost must be constant",
            w.name()
        );
    }
}
