//! Bit-identity pin for the transient solver's default path.
//!
//! Stamp splitting is always on, but `adaptive: off` / `newton: full`
//! defaults must reproduce the seed engine's outputs **byte for byte**:
//! every Fig 3/4/6 golden in the repo is derived from these traces. The
//! hashes below were captured from the seed engine before the PR 4 solver
//! rework; any default-path drift (step schedule, Newton trajectory,
//! stamping order) flips them.

use felim::cell::netlists::{self, NetlistConfig};
use felim::ferro::Polarity;

/// FNV-1a over the raw little-endian bit patterns of every recorded
/// sample: times, node voltages, source currents, element currents.
fn trace_fingerprint(trace: &felim::spice::Trace) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |x: f64| {
        for b in x.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for &t in trace.times() {
        eat(t);
    }
    for name in trace.node_names() {
        for &v in trace.voltage(name).unwrap() {
            eat(v);
        }
    }
    for name in trace.source_names() {
        for &i in trace.source_current(name).unwrap() {
            eat(i);
        }
    }
    for name in trace.element_names() {
        for &i in trace.element_current(name).unwrap() {
            eat(i);
        }
    }
    h
}

fn golden(cfg: &NetlistConfig, which: &str) -> (u64, u64) {
    let mut tb = match which {
        "read" => netlists::read_testbench(
            cfg,
            &[Polarity::Up, Polarity::Down, Polarity::Up],
            &[0, 2],
        ),
        "not" => netlists::not_testbench(cfg, felim::cell::Bit::One),
        "tba" => netlists::tba_testbench(cfg, 0b101),
        other => panic!("unknown testbench {other}"),
    };
    let trace = netlists::run(&mut tb, cfg).unwrap();
    let sensed = netlists::sensed_current(&trace, &tb.schedule).unwrap();
    (trace_fingerprint(&trace), sensed.to_bits())
}

#[test]
fn default_transient_reproduces_seed_goldens_bit_for_bit() {
    let cfg = NetlistConfig::fast();
    for (which, want_fp, want_sensed) in [
        ("read", GOLD_READ.0, GOLD_READ.1),
        ("not", GOLD_NOT.0, GOLD_NOT.1),
        ("tba", GOLD_TBA.0, GOLD_TBA.1),
    ] {
        let (fp, sensed) = golden(&cfg, which);
        assert_eq!(
            (fp, sensed),
            (want_fp, want_sensed),
            "default-path transient drifted from the seed engine for {which}: \
             got fp {fp:#018x} sensed {sensed:#018x}"
        );
    }
}

// Captured from the seed engine (commit ef10260) with
// `NetlistConfig::fast()` and the default `TransientSpec`.
const GOLD_READ: (u64, u64) = (0x868f_d0d2_c901_96f9, 0x3dc6_12d0_dca7_5e81);
const GOLD_NOT: (u64, u64) = (0x72fc_5b12_c391_0073, 0x3daa_4464_ac41_f2c3);
const GOLD_TBA: (u64, u64) = (0x49d0_f26c_201a_8dfd, 0x3e09_24c1_177e_f148);
