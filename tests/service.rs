//! Integration suite for the `felim-serve` request service.
//!
//! Two contracts matter above all others:
//!
//! 1. **Worker-count determinism** — the serialised response log of a
//!    trace replay is byte-identical under 1 and 4 workers. The service
//!    reduces shard outcomes in shard order and settles responses in
//!    request order, so `FELIM_THREADS` must only affect scheduling.
//! 2. **No silent drops** — a saturating trace produces typed
//!    `Overloaded` rejections, never panics, deadlocks, or requests
//!    that vanish: every submission has exactly one response.

use felim::exec::THREADS_ENV;
use felim::serve::{
    generate_trace, BulkService, LogicalOp, ServeError, ServiceConfig, ServiceTier,
    TenantId, TraceSpec,
};
use felim::arch::DriftSpec;
use std::sync::Mutex;

static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    let _guard = ENV_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    std::env::set_var(THREADS_ENV, n.to_string());
    let out = f();
    std::env::remove_var(THREADS_ENV);
    out
}

/// Replays one trace and returns the serialised response log plus the
/// serialised end-of-run report.
fn replay(config: ServiceConfig, trace: &TraceSpec) -> (String, String) {
    let (vectors, events) = generate_trace(trace);
    let mut service = BulkService::new(config).expect("valid config");
    for (name, rows) in &vectors {
        service.create_vector(name, *rows).expect("vectors fit");
    }
    service.run_trace(&events);
    let report = serde_json::to_string(&service.report()).expect("report serializes");
    let log = serde_json::to_string(&service.take_responses()).expect("log serializes");
    (log, report)
}

#[test]
fn response_log_bytes_identical_1_vs_4_workers() {
    let trace = TraceSpec::small(42);
    let run = |threads| with_threads(threads, || replay(ServiceConfig::small(4), &trace));
    let (log1, report1) = run(1);
    let (log4, report4) = run(4);
    assert_eq!(log1, log4, "response log must not depend on worker count");
    assert_eq!(report1, report4, "report must not depend on worker count");
    assert!(log1.contains("\"Ok\""));
}

#[test]
fn protected_tier_is_worker_count_deterministic_too() {
    let mut trace = TraceSpec::small(7);
    trace.requests = 32;
    let config = || {
        let mut c = ServiceConfig::small(2);
        c.tier = ServiceTier::Protected {
            drift: DriftSpec::quiet(13),
            scrub_period_s: 0.25,
        };
        c
    };
    let run = |threads| with_threads(threads, || replay(config(), &trace).0);
    assert_eq!(run(1), run(4));
}

#[test]
fn saturating_trace_sheds_with_typed_overloads_and_no_silent_drops() {
    // A single narrow shard, queue depth 4, one request per tick against
    // 32 arrivals per tick: heavily oversubscribed.
    let mut config = ServiceConfig::small(1);
    config.queue_depth = 4;
    config.batch_window = 1;
    config.tenant_quota = Some(4);
    let mut trace = TraceSpec::small(21);
    trace.requests = 120;
    trace.per_tick = 32;

    let (vectors, events) = generate_trace(&trace);
    let mut service = BulkService::new(config).expect("valid config");
    for (name, rows) in &vectors {
        service.create_vector(name, *rows).expect("vectors fit");
    }
    service.run_trace(&events);

    let stats = *service.stats();
    let responses = service.take_responses();

    // Exactly one response per submission — nothing dropped silently.
    assert_eq!(responses.len() as u64, stats.submitted);
    assert_eq!(responses.len(), events.len());
    let overloaded = responses
        .iter()
        .filter(|r| matches!(r.outcome, Err(ServeError::Overloaded { .. })))
        .count() as u64;
    assert!(
        overloaded > 0,
        "a 32×-oversubscribed shard must reject with Overloaded: {stats:?}"
    );
    assert_eq!(overloaded, stats.rejected_overloaded);
    // The counter block sums back to the offered load.
    assert_eq!(
        stats.completed
            + stats.rejected_overloaded
            + stats.rejected_quota
            + stats.rejected_invalid
            + stats.shed_deadline
            + stats.failed,
        stats.submitted
    );
    // The queue itself kept serving: the accepted prefix completed.
    assert!(stats.completed > 0);
}

#[test]
fn sharding_preserves_results_and_shrinks_simulated_time() {
    let trace = TraceSpec::small(9);
    let digest_of = |shards: u32| {
        let (vectors, events) = generate_trace(&trace);
        let mut service = BulkService::new(ServiceConfig::small(shards)).expect("valid");
        for (name, rows) in &vectors {
            service.create_vector(name, *rows).expect("fit");
        }
        service.run_trace(&events);
        let cycles = service.sim_cycles();
        // Vector contents must be shard-count independent.
        let mut contents = Vec::new();
        for t in 0..trace.tenants {
            for name in TraceSpec::tenant_vectors(t) {
                contents.push(service.read_vector(&name).expect("readable"));
            }
        }
        (contents, cycles)
    };
    let (one, cycles_one) = digest_of(1);
    let (four, cycles_four) = digest_of(4);
    assert_eq!(one, four, "sharding must not change any vector's bits");
    assert!(
        cycles_four < cycles_one,
        "4 shards must finish the same work in less simulated time \
         ({cycles_four} vs {cycles_one} cycles)"
    );
}

#[test]
fn deadlines_shed_and_quotas_bind_under_pressure() {
    let mut config = ServiceConfig::small(1);
    config.batch_window = 1;
    config.queue_depth = 16;
    config.tenant_quota = Some(2);
    let mut service = BulkService::new(config).expect("valid config");
    service.create_vector("v", 4).expect("fits");
    let t = TenantId(0);
    let read = || LogicalOp::Read { src: "v".into() };

    // Quota binds at 2 queued.
    service.submit(t, read(), Some(0)).expect("first accepted");
    service.submit(t, read(), Some(0)).expect("second accepted");
    assert!(matches!(
        service.submit(t, read(), Some(0)),
        Err(ServeError::QuotaExceeded { .. })
    ));
    // One-per-tick service with 0-tick deadlines: the second expires.
    service.drain();
    let responses = service.take_responses();
    assert_eq!(responses.len(), 3);
    assert!(responses
        .iter()
        .any(|r| matches!(r.outcome, Err(ServeError::DeadlineExceeded { .. }))));
    // Accounting drained: the tenant can submit again.
    service.submit(t, read(), None).expect("quota released");
    service.drain();
    assert!(service.take_responses().pop().expect("response").is_ok());
}

/// Builds a service with `shards` shards, runs a fixed mixed sequence of
/// writes, fused kernels, and repeated reads, and returns the serialised
/// response log, final vector contents, and simulated cycle count.
fn kernel_campaign(mut config: ServiceConfig) -> (String, Vec<Vec<Vec<u64>>>, u64) {
    // Window 1: repeated reads land in *later* batches than their first
    // read, so the digest cache (which fills at settle) can serve them.
    config.batch_window = 1;
    config.tenant_quota = Some(32);
    let mut service = BulkService::new(config).expect("valid config");
    for name in ["a", "b", "c", "d"] {
        service.create_vector(name, 8).expect("fits");
    }
    let t = TenantId(0);
    let kernel = |program: &str| LogicalOp::Kernel {
        program: program.into(),
        bindings: ["a", "b", "c", "d"]
            .iter()
            .map(|n| (n.to_string(), n.to_string()))
            .collect(),
    };
    let ops: Vec<LogicalOp> = vec![
        LogicalOp::Write { dst: "a".into(), words: vec![0xDEAD_BEEF_0123_4567] },
        LogicalOp::Write { dst: "b".into(), words: vec![0x0F0F_F0F0_AAAA_5555] },
        LogicalOp::Write { dst: "c".into(), words: vec![0x8844_2211_CCCC_3333] },
        kernel("t = a & b\nd = (t ^ ~c) | (a & b)\nc = c ^ t"),
        LogicalOp::Read { src: "d".into() },
        LogicalOp::Read { src: "d".into() }, // repeat: cache hit
        LogicalOp::Read { src: "c".into() },
        kernel("u = d | c\nd = u ^ a"), // invalidates d's cached digest
        LogicalOp::Read { src: "d".into() },
        LogicalOp::Read { src: "d".into() }, // repeat: cache hit again
    ];
    for op in ops {
        service.submit(t, op, None).expect("admitted");
    }
    service.drain();
    let log = serde_json::to_string(&service.take_responses()).expect("log serializes");
    let contents = ["a", "b", "c", "d"]
        .iter()
        .map(|n| service.read_vector(n).expect("readable"))
        .collect();
    (log, contents, service.sim_cycles())
}

/// The per-response `outcome` fields of a serialised log — what a
/// client observes, independent of how fast the service got there.
fn outcomes(log: &str) -> Vec<serde_json::Value> {
    let v: serde_json::Value = serde_json::from_str(log).expect("log parses");
    v.as_array()
        .expect("array")
        .iter()
        .map(|r| r.get("outcome").expect("outcome field").clone())
        .collect()
}

#[test]
fn kernel_responses_byte_identical_1_vs_4_workers() {
    let run = |threads| with_threads(threads, || kernel_campaign(ServiceConfig::small(4)).0);
    let (log1, log4) = (run(1), run(4));
    assert_eq!(log1, log4, "kernel response log must not depend on worker count");
    assert!(log1.contains("\"Kernel\""), "campaign must exercise the kernel path");
}

#[test]
fn kernel_results_shard_count_independent() {
    let (log1, contents1, cycles1) = kernel_campaign(ServiceConfig::small(1));
    let (log2, contents2, _) = kernel_campaign(ServiceConfig::small(2));
    let (log4, contents4, cycles4) = kernel_campaign(ServiceConfig::small(4));
    assert_eq!(contents1, contents2, "sharding must not change kernel results");
    assert_eq!(contents2, contents4, "sharding must not change kernel results");
    // Latencies shrink with shard count, but every outcome — including
    // the read digests riding in the responses — must be identical.
    assert_eq!(outcomes(&log1), outcomes(&log2));
    assert_eq!(outcomes(&log2), outcomes(&log4));
    assert!(
        cycles4 < cycles1,
        "4 shards must finish the fused kernels in less simulated time \
         ({cycles4} vs {cycles1} cycles)"
    );
}

#[test]
fn read_cache_is_transparent_and_saves_simulated_time() {
    let cache_off = || {
        let mut c = ServiceConfig::small(2);
        c.read_cache = false;
        c
    };
    let (log_on, contents_on, cycles_on) = kernel_campaign(ServiceConfig::small(2));
    let (log_off, contents_off, cycles_off) = kernel_campaign(cache_off());
    // The cache must be invisible in every observable outcome (the
    // cached digests equal the recomputed ones)...
    assert_eq!(outcomes(&log_on), outcomes(&log_off));
    assert_eq!(contents_on, contents_off);
    // ...except the simulated clock: cached repeats cost no row ops.
    assert!(
        cycles_on < cycles_off,
        "cache hits must shrink simulated time ({cycles_on} vs {cycles_off})"
    );
}

#[test]
fn rejected_submissions_still_get_responses() {
    let mut service = BulkService::new(ServiceConfig::small(2)).expect("valid config");
    service.create_vector("a", 8).expect("fits");
    service.create_vector("short", 2).expect("fits");
    let t = TenantId(0);
    let submissions: Vec<Result<_, _>> = vec![
        service.submit(t, LogicalOp::Read { src: "ghost".into() }, None),
        service.submit(
            t,
            LogicalOp::And {
                a: "a".into(),
                b: "short".into(),
                dst: "a".into(),
            },
            None,
        ),
        service.submit(
            TenantId(99),
            LogicalOp::Read { src: "a".into() },
            None,
        ),
        service.submit(
            t,
            LogicalOp::Write {
                dst: "a".into(),
                words: vec![],
            },
            None,
        ),
    ];
    assert!(submissions.iter().all(Result::is_err));
    let responses = service.take_responses();
    assert_eq!(responses.len(), 4, "every rejection responds");
    assert!(responses.iter().all(|r| !r.is_ok()));
    assert_eq!(service.stats().rejected_invalid, 4);
    assert_eq!(service.stats().submitted, 4);
}
