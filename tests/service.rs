//! Integration suite for the `felim-serve` request service.
//!
//! Two contracts matter above all others:
//!
//! 1. **Worker-count determinism** — the serialised response log of a
//!    trace replay is byte-identical under 1 and 4 workers. The service
//!    reduces shard outcomes in shard order and settles responses in
//!    request order, so `FELIM_THREADS` must only affect scheduling.
//! 2. **No silent drops** — a saturating trace produces typed
//!    `Overloaded` rejections, never panics, deadlocks, or requests
//!    that vanish: every submission has exactly one response.
//!
//! **Remote mode**: setting `FELIM_REMOTE_POOL=1` (with
//! `FELIM_SHARDD_BIN` pointing at a built `felim-shardd`) reruns every
//! test in this suite against shards hosted behind real loopback-TCP
//! `felim-shardd` daemons instead of in-process `Mutex<Shard>`s. The
//! assertions are unchanged — that is the point: the transport must be
//! observationally invisible. CI runs the suite both ways.

use felim::exec::THREADS_ENV;
use felim::serve::{
    generate_trace, BulkService, LogicalOp, Program, ServeError, ServiceConfig,
    ServiceTier, ShardHostChild, TenantId, TraceSpec,
};
use felim::arch::DriftSpec;
use std::collections::BTreeMap;
use std::sync::Mutex;

static ENV_LOCK: Mutex<()> = Mutex::new(());

/// A service plus (in remote mode) the daemon hosting its shards: the
/// child must outlive the sessions and is killed when the test drops
/// this guard. Derefs to [`BulkService`] so tests read identically in
/// both modes.
struct TestService {
    service: BulkService,
    _daemon: Option<ShardHostChild>,
}

impl std::ops::Deref for TestService {
    type Target = BulkService;
    fn deref(&self) -> &BulkService {
        &self.service
    }
}

impl std::ops::DerefMut for TestService {
    fn deref_mut(&mut self) -> &mut BulkService {
        &mut self.service
    }
}

/// Builds a service; under `FELIM_REMOTE_POOL=1` every shard is placed
/// behind a freshly spawned `felim-shardd` daemon first.
fn build(mut config: ServiceConfig) -> TestService {
    let daemon = if std::env::var("FELIM_REMOTE_POOL").as_deref() == Ok("1") {
        let bin = std::env::var("FELIM_SHARDD_BIN")
            .expect("FELIM_REMOTE_POOL=1 needs FELIM_SHARDD_BIN=<path to felim-shardd>");
        let daemon = ShardHostChild::spawn(&bin).expect("felim-shardd spawns");
        config.remote_shards = (0..config.shards)
            .map(|s| (s, daemon.addr().to_owned()))
            .collect();
        Some(daemon)
    } else {
        None
    };
    TestService {
        service: BulkService::new(config).expect("valid config"),
        _daemon: daemon,
    }
}

fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    let _guard = ENV_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    std::env::set_var(THREADS_ENV, n.to_string());
    let out = f();
    std::env::remove_var(THREADS_ENV);
    out
}

/// Replays one trace and returns the serialised response log plus the
/// serialised end-of-run report.
fn replay(config: ServiceConfig, trace: &TraceSpec) -> (String, String) {
    let (vectors, events) = generate_trace(trace);
    let mut service = build(config);
    for (name, rows) in &vectors {
        service.create_vector(name, *rows).expect("vectors fit");
    }
    service.run_trace(&events);
    let report = serde_json::to_string(&service.report()).expect("report serializes");
    let log = serde_json::to_string(&service.take_responses()).expect("log serializes");
    (log, report)
}

#[test]
fn response_log_bytes_identical_1_vs_4_workers() {
    let trace = TraceSpec::small(42);
    let run = |threads| with_threads(threads, || replay(ServiceConfig::small(4), &trace));
    let (log1, report1) = run(1);
    let (log4, report4) = run(4);
    assert_eq!(log1, log4, "response log must not depend on worker count");
    assert_eq!(report1, report4, "report must not depend on worker count");
    assert!(log1.contains("\"Ok\""));
}

#[test]
fn protected_tier_is_worker_count_deterministic_too() {
    let mut trace = TraceSpec::small(7);
    trace.requests = 32;
    let config = || {
        let mut c = ServiceConfig::small(2);
        c.tier = ServiceTier::Protected {
            drift: DriftSpec::quiet(13),
            scrub_period_s: 0.25,
        };
        c
    };
    let run = |threads| with_threads(threads, || replay(config(), &trace).0);
    assert_eq!(run(1), run(4));
}

#[test]
fn saturating_trace_sheds_with_typed_overloads_and_no_silent_drops() {
    // A single narrow shard, queue depth 4, one request per tick against
    // 32 arrivals per tick: heavily oversubscribed.
    let mut config = ServiceConfig::small(1);
    config.queue_depth = 4;
    config.batch_window = 1;
    config.tenant_quota = Some(4);
    let mut trace = TraceSpec::small(21);
    trace.requests = 120;
    trace.per_tick = 32;

    let (vectors, events) = generate_trace(&trace);
    let mut service = build(config);
    for (name, rows) in &vectors {
        service.create_vector(name, *rows).expect("vectors fit");
    }
    service.run_trace(&events);

    let stats = *service.stats();
    let responses = service.take_responses();

    // Exactly one response per submission — nothing dropped silently.
    assert_eq!(responses.len() as u64, stats.submitted);
    assert_eq!(responses.len(), events.len());
    let overloaded = responses
        .iter()
        .filter(|r| matches!(r.outcome, Err(ServeError::Overloaded { .. })))
        .count() as u64;
    assert!(
        overloaded > 0,
        "a 32×-oversubscribed shard must reject with Overloaded: {stats:?}"
    );
    assert_eq!(overloaded, stats.rejected_overloaded);
    // The counter block sums back to the offered load.
    assert_eq!(
        stats.completed
            + stats.rejected_overloaded
            + stats.rejected_quota
            + stats.rejected_invalid
            + stats.shed_deadline
            + stats.failed,
        stats.submitted
    );
    // The queue itself kept serving: the accepted prefix completed.
    assert!(stats.completed > 0);
}

#[test]
fn sharding_preserves_results_and_shrinks_simulated_time() {
    let trace = TraceSpec::small(9);
    let digest_of = |shards: u32| {
        let (vectors, events) = generate_trace(&trace);
        let mut service = build(ServiceConfig::small(shards));
        for (name, rows) in &vectors {
            service.create_vector(name, *rows).expect("fit");
        }
        service.run_trace(&events);
        let cycles = service.sim_cycles();
        // Vector contents must be shard-count independent.
        let mut contents = Vec::new();
        for t in 0..trace.tenants {
            for name in TraceSpec::tenant_vectors(t) {
                contents.push(service.read_vector(&name).expect("readable"));
            }
        }
        (contents, cycles)
    };
    let (one, cycles_one) = digest_of(1);
    let (four, cycles_four) = digest_of(4);
    assert_eq!(one, four, "sharding must not change any vector's bits");
    assert!(
        cycles_four < cycles_one,
        "4 shards must finish the same work in less simulated time \
         ({cycles_four} vs {cycles_one} cycles)"
    );
}

#[test]
fn deadlines_shed_and_quotas_bind_under_pressure() {
    let mut config = ServiceConfig::small(1);
    config.batch_window = 1;
    config.queue_depth = 16;
    config.tenant_quota = Some(2);
    let mut service = build(config);
    service.create_vector("v", 4).expect("fits");
    let t = TenantId(0);
    let read = || LogicalOp::Read { src: "v".into() };

    // Quota binds at 2 queued.
    service.submit(t, read(), Some(0)).expect("first accepted");
    service.submit(t, read(), Some(0)).expect("second accepted");
    assert!(matches!(
        service.submit(t, read(), Some(0)),
        Err(ServeError::QuotaExceeded { .. })
    ));
    // One-per-tick service with 0-tick deadlines: the second expires.
    service.drain();
    let responses = service.take_responses();
    assert_eq!(responses.len(), 3);
    assert!(responses
        .iter()
        .any(|r| matches!(r.outcome, Err(ServeError::DeadlineExceeded { .. }))));
    // Accounting drained: the tenant can submit again.
    service.submit(t, read(), None).expect("quota released");
    service.drain();
    assert!(service.take_responses().pop().expect("response").is_ok());
}

/// Builds a service with `shards` shards, runs a fixed mixed sequence of
/// writes, fused kernels, and repeated reads, and returns the serialised
/// response log, final vector contents, and simulated cycle count.
fn kernel_campaign(mut config: ServiceConfig) -> (String, Vec<Vec<Vec<u64>>>, u64) {
    // Window 1: repeated reads land in *later* batches than their first
    // read, so the digest cache (which fills at settle) can serve them.
    config.batch_window = 1;
    config.tenant_quota = Some(32);
    let mut service = build(config);
    for name in ["a", "b", "c", "d"] {
        service.create_vector(name, 8).expect("fits");
    }
    let t = TenantId(0);
    let kernel = |program: &str| LogicalOp::Kernel {
        program: program.into(),
        bindings: ["a", "b", "c", "d"]
            .iter()
            .map(|n| (n.to_string(), n.to_string()))
            .collect(),
    };
    let ops: Vec<LogicalOp> = vec![
        LogicalOp::Write { dst: "a".into(), words: vec![0xDEAD_BEEF_0123_4567] },
        LogicalOp::Write { dst: "b".into(), words: vec![0x0F0F_F0F0_AAAA_5555] },
        LogicalOp::Write { dst: "c".into(), words: vec![0x8844_2211_CCCC_3333] },
        kernel("t = a & b\nd = (t ^ ~c) | (a & b)\nc = c ^ t"),
        LogicalOp::Read { src: "d".into() },
        LogicalOp::Read { src: "d".into() }, // repeat: cache hit
        LogicalOp::Read { src: "c".into() },
        kernel("u = d | c\nd = u ^ a"), // invalidates d's cached digest
        LogicalOp::Read { src: "d".into() },
        LogicalOp::Read { src: "d".into() }, // repeat: cache hit again
    ];
    for op in ops {
        service.submit(t, op, None).expect("admitted");
    }
    service.drain();
    let log = serde_json::to_string(&service.take_responses()).expect("log serializes");
    let contents = ["a", "b", "c", "d"]
        .iter()
        .map(|n| service.read_vector(n).expect("readable"))
        .collect();
    (log, contents, service.sim_cycles())
}

/// The per-response `outcome` fields of a serialised log — what a
/// client observes, independent of how fast the service got there.
fn outcomes(log: &str) -> Vec<serde_json::Value> {
    let v: serde_json::Value = serde_json::from_str(log).expect("log parses");
    v.as_array()
        .expect("array")
        .iter()
        .map(|r| r.get("outcome").expect("outcome field").clone())
        .collect()
}

#[test]
fn kernel_responses_byte_identical_1_vs_4_workers() {
    let run = |threads| with_threads(threads, || kernel_campaign(ServiceConfig::small(4)).0);
    let (log1, log4) = (run(1), run(4));
    assert_eq!(log1, log4, "kernel response log must not depend on worker count");
    assert!(log1.contains("\"Kernel\""), "campaign must exercise the kernel path");
}

#[test]
fn kernel_results_shard_count_independent() {
    let (log1, contents1, cycles1) = kernel_campaign(ServiceConfig::small(1));
    let (log2, contents2, _) = kernel_campaign(ServiceConfig::small(2));
    let (log4, contents4, cycles4) = kernel_campaign(ServiceConfig::small(4));
    assert_eq!(contents1, contents2, "sharding must not change kernel results");
    assert_eq!(contents2, contents4, "sharding must not change kernel results");
    // Latencies shrink with shard count, but every outcome — including
    // the read digests riding in the responses — must be identical.
    assert_eq!(outcomes(&log1), outcomes(&log2));
    assert_eq!(outcomes(&log2), outcomes(&log4));
    assert!(
        cycles4 < cycles1,
        "4 shards must finish the fused kernels in less simulated time \
         ({cycles4} vs {cycles1} cycles)"
    );
}

#[test]
fn read_cache_is_transparent_and_saves_simulated_time() {
    let cache_off = || {
        let mut c = ServiceConfig::small(2);
        c.read_cache = false;
        c
    };
    let (log_on, contents_on, cycles_on) = kernel_campaign(ServiceConfig::small(2));
    let (log_off, contents_off, cycles_off) = kernel_campaign(cache_off());
    // The cache must be invisible in every observable outcome (the
    // cached digests equal the recomputed ones)...
    assert_eq!(outcomes(&log_on), outcomes(&log_off));
    assert_eq!(contents_on, contents_off);
    // ...except the simulated clock: cached repeats cost no row ops.
    assert!(
        cycles_on < cycles_off,
        "cache hits must shrink simulated time ({cycles_on} vs {cycles_off})"
    );
}

#[test]
fn rejected_submissions_still_get_responses() {
    let mut service = build(ServiceConfig::small(2));
    service.create_vector("a", 8).expect("fits");
    service.create_vector("short", 2).expect("fits");
    let t = TenantId(0);
    let submissions: Vec<Result<_, _>> = vec![
        service.submit(t, LogicalOp::Read { src: "ghost".into() }, None),
        service.submit(
            t,
            LogicalOp::And {
                a: "a".into(),
                b: "short".into(),
                dst: "a".into(),
            },
            None,
        ),
        service.submit(
            TenantId(99),
            LogicalOp::Read { src: "a".into() },
            None,
        ),
        service.submit(
            t,
            LogicalOp::Write {
                dst: "a".into(),
                words: vec![],
            },
            None,
        ),
    ];
    assert!(submissions.iter().all(Result::is_err));
    let responses = service.take_responses();
    assert_eq!(responses.len(), 4, "every rejection responds");
    assert!(responses.iter().all(|r| !r.is_ok()));
    assert_eq!(service.stats().rejected_invalid, 4);
    assert_eq!(service.stats().submitted, 4);
}

#[test]
fn kernel_write_back_preserves_read_before_write_order() {
    // `d = t` must see the OLD value of `a` captured into `t` before
    // `a = x` overwrites it — the plan's write-back copies must respect
    // statement order, not last-writer-wins.
    let program = "t = a\na = x\nd = t";
    let parsed = Program::parse(program).expect("parses");
    let mut env = BTreeMap::new();
    env.insert("a".to_owned(), 0xAAAAu64);
    env.insert("x".to_owned(), 0x5555u64);
    let expected = parsed.eval_words(&env);
    assert_eq!(expected["d"], 0xAAAA);

    let mut svc = build(ServiceConfig::small(1));
    for n in ["a", "x", "d"] {
        svc.create_vector(n, 4).expect("fits");
    }
    let t = TenantId(0);
    svc.submit(t, LogicalOp::Write { dst: "a".into(), words: vec![0xAAAA] }, None)
        .expect("admitted");
    svc.submit(t, LogicalOp::Write { dst: "x".into(), words: vec![0x5555] }, None)
        .expect("admitted");
    svc.submit(
        t,
        LogicalOp::Kernel {
            program: program.into(),
            bindings: vec![
                ("a".into(), "a".into()),
                ("x".into(), "x".into()),
                ("d".into(), "d".into()),
            ],
        },
        None,
    )
    .expect("admitted");
    svc.drain();
    assert!(svc.take_responses().iter().all(|r| r.is_ok()));
    let d = svc.read_vector("d").expect("readable");
    assert_eq!(d[0][0], 0xAAAA, "d must hold OLD a; got {:#x}", d[0][0]);
}
