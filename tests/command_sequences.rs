//! Command-sequence verification: the backends must issue *exactly* the
//! primitive chains the paper describes — AAP for DRAM, ACP for FeRAM.

use felim::arch::{BulkBackend, Command, DramBackend, FeramBackend, MemoryGeometry, RowId};

fn fill(words: usize, w: u64) -> Vec<u64> {
    vec![w; words]
}

#[test]
fn dram_and_is_exactly_four_aaps() {
    let mut m = DramBackend::new(MemoryGeometry::tiny()).with_command_log();
    let words = m.geometry().row_words();
    m.install_row(RowId(0), &fill(words, 1)).unwrap();
    m.install_row(RowId(1), &fill(words, 2)).unwrap();
    m.and(RowId(0), RowId(1), RowId(2)).unwrap();

    let log = m.command_log();
    assert_eq!(log.len(), 12, "4 AAPs = 12 commands");
    // Three staging AAPs: ACTIVATE + RowClone + PRECHARGE each.
    for aap in 0..3 {
        assert!(matches!(log[3 * aap], Command::Activate(_)), "AAP {aap}");
        assert!(matches!(log[3 * aap + 1], Command::RowClone { .. }));
        assert!(matches!(log[3 * aap + 2], Command::Precharge));
    }
    // The compute AAP opens with the triple-row activation.
    assert!(matches!(log[9], Command::TripleRowActivate(..)));
    assert!(matches!(log[10], Command::RowClone { dst: RowId(2) }));
    assert!(matches!(log[11], Command::Precharge));
}

#[test]
fn dram_not_uses_the_dcc_chain() {
    let mut m = DramBackend::new(MemoryGeometry::tiny()).with_command_log();
    let words = m.geometry().row_words();
    m.install_row(RowId(0), &fill(words, 0xFF)).unwrap();
    m.not(RowId(0), RowId(1)).unwrap();
    let log = m.command_log();
    assert_eq!(log.len(), 6, "2 AAPs");
    assert!(matches!(log[0], Command::Activate(RowId(0))));
    assert!(matches!(log[3], Command::Activate(_)), "DCC activation");
    assert!(matches!(log[4], Command::RowClone { dst: RowId(1) }));
}

#[test]
fn feram_nand_is_exactly_two_acps() {
    let mut m = FeramBackend::new(MemoryGeometry::tiny()).with_command_log();
    let words = m.geometry().row_words();
    m.install_row(RowId(0), &fill(words, 1)).unwrap();
    m.install_row(RowId(1), &fill(words, 2)).unwrap();
    m.nand(RowId(0), RowId(1), RowId(2)).unwrap();

    let log = m.command_log();
    assert_eq!(log.len(), 6, "colocation ACP + logic ACP");
    // Colocation: read B, copy (complemented to undo QNRO inversion).
    assert!(matches!(log[0], Command::Activate(RowId(1))));
    assert!(matches!(
        log[1],
        Command::Copy {
            complement: true,
            ..
        }
    ));
    assert!(matches!(log[2], Command::Precharge));
    // Logic: TBA on group A, copy result out uncomplemented.
    assert!(matches!(log[3], Command::TripleBitActivate(RowId(0))));
    assert!(matches!(
        log[4],
        Command::Copy {
            complement: false,
            ..
        }
    ));
    assert!(matches!(log[5], Command::Precharge));
}

#[test]
fn feram_and_differs_from_nand_only_in_copy_polarity() {
    let words = MemoryGeometry::tiny().row_words();
    let run = |op: fn(&mut FeramBackend, RowId, RowId, RowId)| {
        let mut m = FeramBackend::new(MemoryGeometry::tiny()).with_command_log();
        m.install_row(RowId(0), &fill(words, 1)).unwrap();
        m.install_row(RowId(1), &fill(words, 2)).unwrap();
        op(&mut m, RowId(0), RowId(1), RowId(2));
        m.command_log().to_vec()
    };
    let nand = run(|m, a, b, d| m.nand(a, b, d).unwrap());
    let and = run(|m, a, b, d| m.and(a, b, d).unwrap());
    assert_eq!(nand.len(), and.len());
    for (i, (x, y)) in nand.iter().zip(&and).enumerate() {
        if i == 4 {
            assert!(matches!(
                x,
                Command::Copy {
                    complement: false,
                    ..
                }
            ));
            assert!(matches!(
                y,
                Command::Copy {
                    complement: true,
                    ..
                }
            ));
        } else {
            assert_eq!(x, y, "command {i} must be identical");
        }
    }
}

#[test]
fn feram_not_is_one_acp_with_inverting_read_passthrough() {
    let mut m = FeramBackend::new(MemoryGeometry::tiny()).with_command_log();
    let words = m.geometry().row_words();
    m.install_row(RowId(0), &fill(words, 0xAA)).unwrap();
    m.not(RowId(0), RowId(1)).unwrap();
    let log = m.command_log();
    assert_eq!(log.len(), 3, "a single ACP — no DCC anywhere");
    assert!(matches!(log[0], Command::Activate(RowId(0))));
    // The QNRO read already inverted; the copy passes it through.
    assert!(matches!(
        log[1],
        Command::Copy {
            complement: false,
            ..
        }
    ));
    assert!(matches!(log[2], Command::Precharge));
}

#[test]
fn logging_off_means_empty_log() {
    let mut m = FeramBackend::new(MemoryGeometry::tiny());
    let words = m.geometry().row_words();
    m.install_row(RowId(0), &fill(words, 1)).unwrap();
    let _ = m.read_row(RowId(0));
    assert!(m.command_log().is_empty());
}
