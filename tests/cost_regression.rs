//! Golden cost regression: the calibrated energy/cycle model behind the
//! Fig 6 reproduction, pinned exactly. Any change to primitive costs,
//! workload compilation or refresh accounting that moves these numbers
//! must be deliberate (and EXPERIMENTS.md updated with it).

use felim::evaluation::run_fig6;
use felim::workloads::driver::geomean;

const GB: u64 = 1 << 30;

#[test]
fn fig6_golden_numbers() {
    let (rows, e_geo, c_geo) = run_fig6(64, GB, 42);

    // Exact cycle counts (integers — must not drift at all).
    let expect_cycles: &[(&str, u64, u64)] = &[
        ("CRC8", 21_266_432, 9_863_168),
        ("XOR Cipher", 7_077_888, 3_276_800),
        ("Set Union", 851_968, 458_752),
        ("Set Intersection", 851_968, 458_752),
        ("Set Difference", 1_245_184, 655_360),
        ("Masked Initialization", 3_575_808, 1_726_464),
        ("Bitmap Index Query", 1_540_096, 720_896),
        // BNN cycle counts are weight-dependent (a 0-weight costs one
        // extra row-NOT per feature), so they track the exact RNG stream.
        // Re-pinned for the vendored deterministic RNG (vendor/rand, the
        // offline stand-in); regenerate with `cargo run --release -p
        // felim --example dump_fig6` after any deliberate change.
        ("BNN Inference", 226_263_040, 108_240_896),
    ];
    for (row, (name, dram, feram)) in rows.iter().zip(expect_cycles) {
        assert_eq!(&row.workload, name);
        assert_eq!(row.dram_cycles, *dram, "{name} DRAM cycles drifted");
        assert_eq!(row.feram_cycles, *feram, "{name} FeRAM cycles drifted");
    }

    // Energy within numerical noise of the recorded values (mJ).
    let expect_energy: &[(f64, f64)] = &[
        (383.23, 130.15),
        (128.51, 43.66),
        (13.43, 6.29),
        (13.43, 6.29),
        (19.40, 8.88),
        (63.31, 23.27),
        (27.64, 9.62),
        // Weight-dependent, re-pinned with the BNN cycle counts above.
        (4077.69, 1427.50),
    ];
    for (row, (dram, feram)) in rows.iter().zip(expect_energy) {
        assert!(
            (row.dram_energy_mj - dram).abs() < 0.01,
            "{}: DRAM {} vs golden {dram}",
            row.workload,
            row.dram_energy_mj
        );
        assert!(
            (row.feram_energy_mj - feram).abs() < 0.01,
            "{}: FeRAM {} vs golden {feram}",
            row.workload,
            row.feram_energy_mj
        );
    }

    // The headline geomeans.
    assert!((e_geo - 2.57).abs() < 0.01, "energy geomean {e_geo}");
    assert!((c_geo - 2.02).abs() < 0.01, "cycle geomean {c_geo}");

    // Cross-check geomean helper against the rows themselves.
    let e2 = geomean(rows.iter().map(|r| r.energy_ratio));
    assert!((e2 - e_geo).abs() < 1e-12);
}

#[test]
fn primitive_cost_constants_are_pinned() {
    use felim::arch::{BulkBackend, DramBackend, FeramBackend, RowId};
    type RowOp = fn(&mut dyn BulkBackend, RowId, RowId, RowId);
    // One op of each class on each backend — exact costs.
    let table: &[(&str, RowOp, u64, u64, f64, f64)] = &[
        ("and", |m, a, b, d| m.and(a, b, d).unwrap(), 12, 6, 182.08, 79.04),
        ("or", |m, a, b, d| m.or(a, b, d).unwrap(), 12, 6, 182.08, 79.04),
        ("nand", |m, a, b, d| m.nand(a, b, d).unwrap(), 18, 6, 273.12, 79.04),
        ("nor", |m, a, b, d| m.nor(a, b, d).unwrap(), 18, 6, 273.12, 79.04),
        ("xor", |m, a, b, d| m.xor(a, b, d).unwrap(), 48, 24, 728.32, 316.16),
    ];
    for (name, op, d_cyc, f_cyc, d_nj, f_nj) in table {
        let mut d = DramBackend::tiny();
        let mut f = FeramBackend::tiny();
        for m in [
            &mut d as &mut dyn BulkBackend,
            &mut f as &mut dyn BulkBackend,
        ] {
            let words = m.geometry().row_words();
            m.install_row(RowId(0), &vec![0xAAu64; words]).unwrap();
            m.install_row(RowId(1), &vec![0x55u64; words]).unwrap();
            op(m, RowId(0), RowId(1), RowId(2));
        }
        assert_eq!(d.stats().total_cycles(), *d_cyc, "DRAM {name} cycles");
        assert_eq!(f.stats().total_cycles(), *f_cyc, "FeRAM {name} cycles");
        assert!(
            (d.stats().total_energy_nj() - d_nj).abs() < 1e-9,
            "DRAM {name} energy"
        );
        assert!(
            (f.stats().total_energy_nj() - f_nj).abs() < 1e-9,
            "FeRAM {name} energy"
        );
    }
    // NOT and COPY.
    let mut d = DramBackend::tiny();
    let mut f = FeramBackend::tiny();
    for m in [
        &mut d as &mut dyn BulkBackend,
        &mut f as &mut dyn BulkBackend,
    ] {
        let words = m.geometry().row_words();
        m.install_row(RowId(0), &vec![1u64; words]).unwrap();
        m.not(RowId(0), RowId(1)).unwrap();
        m.copy(RowId(0), RowId(2)).unwrap();
    }
    assert_eq!(d.stats().total_cycles(), 6 + 3);
    assert_eq!(f.stats().total_cycles(), 3 + 3);
}
