//! The telemetry layer's zero-overhead contract: in a default build
//! (feature `telemetry` off) the instrumented hot paths must produce the
//! exact same Fig 6 golden numbers as an uninstrumented tree, and the
//! registry must stay completely empty.
//!
//! This test runs in the default tier-1 suite. When the whole workspace
//! is built with `--features felim/telemetry` the bit-identity half
//! still holds (telemetry only observes, never perturbs), and the
//! emptiness half flips to asserting the counters actually populated.

use felim::telemetry;
use felim::workloads::driver::{run_workload, Tech};
use felim::workloads::xor_cipher::XorCipher;

#[test]
fn instrumented_paths_keep_fig6_golden_bit_identical() {
    let r_feram = run_workload(&XorCipher, Tech::Feram, 64, 1 << 30, 42).unwrap();
    let r_dram = run_workload(&XorCipher, Tech::Dram, 64, 1 << 30, 42).unwrap();

    // The XOR Cipher row of the Fig 6 golden table (tests/cost_regression.rs).
    assert_eq!(r_feram.scaled.total_cycles(), 3_276_800);
    assert_eq!(r_dram.scaled.total_cycles(), 7_077_888);
    assert!((r_feram.energy_mj - 43.66).abs() < 0.01, "{}", r_feram.energy_mj);
    assert!((r_dram.energy_mj - 128.51).abs() < 0.01, "{}", r_dram.energy_mj);
}

#[test]
fn noop_build_keeps_the_registry_empty() {
    let _span = telemetry::span("noop_test");
    telemetry::counter("noop.counter").add(5);
    telemetry::gauge("noop.gauge").set(1.0);
    telemetry::histogram("noop.hist").record(7);
    _span.end();
    let _ = run_workload(&XorCipher, Tech::Feram, 16, 1 << 20, 1).unwrap();

    let report = telemetry::snapshot();
    if telemetry::enabled() {
        // Feature-on run of the same test target: the instruments must
        // be live instead.
        assert_eq!(report.counter("noop.counter"), Some(5));
        assert!(report.counter("workloads.runs").unwrap_or(0) >= 1);
    } else {
        assert!(report.is_empty(), "no-op build must record nothing");
        assert_eq!(report.counter("noop.counter"), None);
        assert_eq!(
            report.to_json(),
            "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {}\n}\n"
        );
    }
}

#[test]
fn reliability_controller_counters_follow_the_feature_gate() {
    use felim::arch::{
        BulkBackend, ControllerConfig, DriftSpec, FeramBackend, MemoryGeometry,
        ReliabilityController, RowId,
    };

    // Exercise all five PR 6 counters: one correction, one double-bit
    // escalation, one drift tick carrying one patrol pass that rewrites
    // the corrupted row.
    let mut c = ReliabilityController::new(
        FeramBackend::new(MemoryGeometry::tiny()),
        ControllerConfig::protected(DriftSpec::quiet(9), 1.0),
    );
    let words = c.geometry().row_words();
    c.write_row(RowId(0), &vec![0xABu64; words]).unwrap();
    c.write_row(RowId(1), &vec![0xCDu64; words]).unwrap();
    let mut mask = vec![0u64; words];
    mask[0] = 1;
    c.decay_row(RowId(0), &mask).unwrap();
    let _ = c.read_row(RowId(0)).unwrap(); // corrected on the fly
    mask[0] = 0b11 << 20;
    c.decay_row(RowId(1), &mask).unwrap();
    assert!(c.read_row(RowId(1)).is_err()); // escalated
    c.tick(1.0).unwrap(); // drift tick + patrol pass + repair rewrite

    let report = telemetry::snapshot();
    let counters = [
        "arch.ecc.corrected",
        "arch.ecc.uncorrectable",
        "arch.scrub.passes",
        "arch.scrub.rewrites",
        "arch.drift.ticks",
    ];
    if telemetry::enabled() {
        for name in counters {
            assert!(
                report.counter(name).unwrap_or(0) >= 1,
                "{name} must fire in this scenario"
            );
        }
    } else {
        for name in counters {
            assert_eq!(report.counter(name), None, "{name} in a no-op build");
        }
        assert!(report.is_empty(), "no-op build must record nothing");
    }
}

#[test]
fn kernel_and_cache_counters_follow_the_feature_gate() {
    use felim::serve::{BulkService, LogicalOp, ServiceConfig, TenantId};

    // Exercise all six PR 8 counters: one fused kernel (with a CSE hit),
    // a read that misses, a repeat that hits, and a write-invalidation.
    let mut config = ServiceConfig::small(2);
    config.batch_window = 1;
    let mut svc = BulkService::new(config).unwrap();
    for name in ["a", "b", "d"] {
        svc.create_vector(name, 4).unwrap();
    }
    let t = TenantId(0);
    let step = |svc: &mut BulkService, op| {
        svc.submit(t, op, None).unwrap();
        svc.drain();
    };
    step(&mut svc, LogicalOp::Write { dst: "a".into(), words: vec![3] });
    step(&mut svc, LogicalOp::Write { dst: "b".into(), words: vec![5] });
    step(
        &mut svc,
        LogicalOp::Kernel {
            program: "t = a & b\nd = t ^ (a & b)".into(),
            bindings: vec![
                ("a".into(), "a".into()),
                ("b".into(), "b".into()),
                ("d".into(), "d".into()),
            ],
        },
    );
    step(&mut svc, LogicalOp::Read { src: "d".into() }); // miss + fill
    step(&mut svc, LogicalOp::Read { src: "d".into() }); // hit
    step(&mut svc, LogicalOp::Write { dst: "d".into(), words: vec![9] }); // invalidate
    assert!(svc.take_responses().iter().all(|r| r.is_ok()));

    let report = telemetry::snapshot();
    let counters = [
        "serve.kernel.requests",
        "serve.kernel.fused_ops",
        "serve.kernel.cse_hits",
        "serve.cache.hits",
        "serve.cache.misses",
        "serve.cache.invalidations",
    ];
    if telemetry::enabled() {
        for name in counters {
            assert!(
                report.counter(name).unwrap_or(0) >= 1,
                "{name} must fire in this scenario"
            );
        }
    } else {
        for name in counters {
            assert_eq!(report.counter(name), None, "{name} in a no-op build");
        }
        assert!(report.is_empty(), "no-op build must record nothing");
    }
}

#[test]
fn transport_and_plan_cache_counters_follow_the_feature_gate() {
    use felim::serve::{BulkService, LogicalOp, ServiceConfig, ShardHost, TenantId};

    // One shard behind an in-process wire session plus a kernel
    // submitted twice: exercises the PR 9 counters — plan-cache hits on
    // the recompilation-skip path and the remote session/batch counters
    // on the transport path.
    let host = ShardHost::bind("127.0.0.1:0").unwrap();
    let addr = host.local_addr().to_string();
    let server = std::thread::spawn(move || {
        let _ = host.serve_once();
    });

    let mut config = ServiceConfig::small(1);
    config.batch_window = 1;
    config.remote_shards = vec![(0, addr)];
    let mut svc = BulkService::new(config).unwrap();
    for name in ["a", "d"] {
        svc.create_vector(name, 4).unwrap();
    }
    let t = TenantId(0);
    let kernel = || LogicalOp::Kernel {
        program: "d = a & a".into(),
        bindings: vec![("a".into(), "a".into()), ("d".into(), "d".into())],
    };
    svc.submit(t, LogicalOp::Write { dst: "a".into(), words: vec![3] }, None)
        .unwrap();
    svc.drain();
    svc.submit(t, kernel(), None).unwrap(); // compiles + caches
    svc.drain();
    svc.submit(t, kernel(), None).unwrap(); // plan-cache hit
    svc.drain();
    assert!(svc.take_responses().iter().all(|r| r.is_ok()));
    assert_eq!(svc.stats().plan_cache_hits, 1);
    drop(svc); // Shutdown frame ends the hosted session.
    server.join().unwrap();

    let report = telemetry::snapshot();
    let counters = [
        "serve.kernel.plan_cache_hits",
        "serve.remote.sessions",
        "serve.remote.batches_sent",
    ];
    if telemetry::enabled() {
        for name in counters {
            assert!(
                report.counter(name).unwrap_or(0) >= 1,
                "{name} must fire in this scenario"
            );
        }
    } else {
        for name in counters {
            assert_eq!(report.counter(name), None, "{name} in a no-op build");
        }
        assert!(report.is_empty(), "no-op build must record nothing");
    }
}

#[test]
fn transient_solver_counters_follow_the_feature_gate() {
    use felim::cell::netlists::{run_with_solver, tba_testbench, NetlistConfig, SolverOptions};

    // Exercise every PR4 fast path: static-stamp replay is always on;
    // the optimized knobs add LU reuse and LTE-controlled stepping.
    let cfg = NetlistConfig::fast();
    let mut tb = tba_testbench(&cfg, 5);
    run_with_solver(&mut tb, &cfg, &SolverOptions::optimized()).unwrap();

    let report = telemetry::snapshot();
    let counters = [
        "spice.stamp_static_hits",
        "spice.lu_reuse_hits",
        "spice.lu_refactorizations",
        "spice.lte_rejected_steps",
    ];
    if telemetry::enabled() {
        // Replay and LU reuse fire on every solve; refactorizations and
        // LTE rejections depend on the circuit, so only existence (not a
        // positive count) is guaranteed for them.
        assert!(report.counter("spice.stamp_static_hits").unwrap_or(0) > 0);
        assert!(report.counter("spice.lu_reuse_hits").unwrap_or(0) > 0);
        assert!(report.counter("spice.lu_factorizations").unwrap_or(0) > 0);
    } else {
        for name in counters {
            assert_eq!(report.counter(name), None, "{name} in a no-op build");
        }
        assert!(report.is_empty(), "no-op build must record nothing");
    }
}
