//! End-to-end integration: device physics through workload execution.

use felim::arch::{BulkBackend, DramBackend, FeramBackend, MemoryGeometry, RowId};
use felim::cell::cell2tnc::{pattern_bits, Cell2TnC, Cell2TnCParams};
use felim::cell::ops::{logic_in_cell, LogicOp};
use felim::cell::Bit;
use felim::evaluation::{run_fig6, run_fig7};
use felim::workloads::all_workloads;
use felim::workloads::bitmap_index::BitmapIndex;

/// The architectural TBA primitive and the device-backed cell must agree
/// on every one of the eight input states — the chain that justifies
/// using fast word-level MINORITY in the architecture simulator.
#[test]
fn device_cell_and_architecture_agree_on_minority() {
    let params = Cell2TnCParams::default();
    let mut arch = FeramBackend::new(MemoryGeometry::tiny());
    let words = arch.geometry().row_words();
    for v in 0..8u8 {
        // Device-backed cell.
        let mut cell = Cell2TnC::new(&params);
        cell.write_bits(&pattern_bits(v));
        let cell_out = cell.tba().sensed;

        // Architecture-level: one NAND/NOR with the same operands.
        let bits = pattern_bits(v);
        let fill = |b: Bit| vec![if b.to_bool() { !0u64 } else { 0 }; words];
        arch.install_row(RowId(0), &fill(bits[0])).unwrap();
        arch.install_row(RowId(1), &fill(bits[1])).unwrap();
        if bits[2] == Bit::Zero {
            arch.nand(RowId(0), RowId(1), RowId(2)).unwrap();
        } else {
            arch.nor(RowId(0), RowId(1), RowId(2)).unwrap();
        }
        let word = arch.read_row(RowId(2)).unwrap()[0];
        let arch_out = Bit::from_bool(word == !0u64);
        assert!(word == 0 || word == !0u64, "row must be uniform");
        assert_eq!(cell_out, arch_out, "pattern {v:03b}");
    }
}

/// Every workload produces identical row contents on both backends —
/// the technologies differ in cost, never in results.
#[test]
fn backends_compute_identical_results_for_all_workloads() {
    for w in all_workloads() {
        let mut f = FeramBackend::new(MemoryGeometry::tiny());
        let consumed_f = w.execute(&mut f, 16, 99).unwrap();
        let mut d = DramBackend::new(MemoryGeometry::tiny());
        let consumed_d = w.execute(&mut d, 16, 99).unwrap();
        // Same data consumed; execute() verifies outputs internally
        // against the software reference on each backend.
        assert_eq!(consumed_f, consumed_d, "{}", w.name());
    }
}

/// The full Fig 6 pipeline reproduces the headline claim end to end.
#[test]
fn full_stack_headline_claim() {
    let (rows, energy_geomean, cycle_geomean) = run_fig6(16, 1 << 28, 3);
    assert_eq!(rows.len(), 8);
    assert!(energy_geomean > 2.0, "energy geomean {energy_geomean}");
    assert!(cycle_geomean > 1.6, "cycle geomean {cycle_geomean}");
}

/// The thermal loop closes: workload activity → power map → steady-state
/// field → ferroelectric stability at the computed temperature.
#[test]
fn thermal_loop_closes_with_device_stability() {
    let r = run_fig7(&BitmapIndex, 16);
    assert!(r.peak_k < 360.0);
    assert!(r.ferroelectric_stable);
    // Compute die is the hottest layer; spreader coolest.
    assert!(r.layer_means_k[0] >= *r.layer_means_k.last().unwrap());
}

/// Cell-level logic composed through the trait is self-consistent with
/// the architectural composition of the same function.
#[test]
fn xor_composition_matches_across_levels() {
    let mut cell = Cell2TnC::new(&Cell2TnCParams::default());
    let mut arch = FeramBackend::new(MemoryGeometry::tiny());
    let words = arch.geometry().row_words();
    for (a, b) in [
        (Bit::Zero, Bit::Zero),
        (Bit::Zero, Bit::One),
        (Bit::One, Bit::Zero),
        (Bit::One, Bit::One),
    ] {
        let via_cell = felim::cell::ops::xor_in_cell(&mut cell, a, b);
        let fill = |bit: Bit| vec![if bit.to_bool() { !0u64 } else { 0 }; words];
        arch.install_row(RowId(0), &fill(a)).unwrap();
        arch.install_row(RowId(1), &fill(b)).unwrap();
        arch.xor(RowId(0), RowId(1), RowId(2)).unwrap();
        let via_arch = Bit::from_bool(arch.read_row(RowId(2)).unwrap()[0] == !0u64);
        assert_eq!(via_cell, via_arch, "XOR({a},{b})");
        assert_eq!(via_cell, Bit::from_bool(a.to_bool() ^ b.to_bool()));
    }
}

/// NAND/NOR at the cell level both derive from the same MINORITY read —
/// swapping only the control bit, exactly as the architecture does.
#[test]
fn control_bit_is_the_only_difference_between_nand_and_nor() {
    let mut cell = Cell2TnC::new(&Cell2TnCParams::default());
    for (a, b) in [(Bit::Zero, Bit::One), (Bit::One, Bit::One)] {
        let nand = logic_in_cell(&mut cell, LogicOp::Nand, a, b);
        let nor = logic_in_cell(&mut cell, LogicOp::Nor, a, b);
        assert_eq!(nand, LogicOp::Nand.eval(a, b));
        assert_eq!(nor, LogicOp::Nor.eval(a, b));
    }
}
