//! Property-based tests on cross-crate invariants.

use felim::arch::{BulkBackend, DramBackend, FeramBackend, MemoryGeometry, RowId};
use felim::cell::{majority, minority, Bit};
use felim::ferro::{MfmCapacitor, MfmParams, Polarity};
use felim::thermal::{solve_steady_state, PowerMap, Stack};
use proptest::prelude::*;

fn tiny_rows(seed: u64, n: usize) -> Vec<Vec<u64>> {
    use felim::workloads::data::DataGen;
    let mut g = DataGen::new(seed, MemoryGeometry::tiny().row_words());
    g.rows(n as u64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// De Morgan duality holds bit-for-bit on full rows for both backends.
    #[test]
    fn de_morgan_on_rows(seed in 0u64..1000) {
        let rows = tiny_rows(seed, 2);
        for backend in [
            &mut FeramBackend::new(MemoryGeometry::tiny()) as &mut dyn BulkBackend,
            &mut DramBackend::new(MemoryGeometry::tiny()) as &mut dyn BulkBackend,
        ] {
            let (a, b) = (RowId(0), RowId(1));
            backend.install_row(a, &rows[0]).unwrap();
            backend.install_row(b, &rows[1]).unwrap();
            // NOT(a AND b) == NOT a OR NOT b
            backend.nand(a, b, RowId(2)).unwrap();
            backend.not(a, RowId(3)).unwrap();
            backend.not(b, RowId(4)).unwrap();
            backend.or(RowId(3), RowId(4), RowId(5)).unwrap();
            prop_assert_eq!(
                backend.read_row(RowId(2)).unwrap(),
                backend.read_row(RowId(5)).unwrap()
            );
        }
    }

    /// XOR is an involution: x ^ k ^ k == x, on any data, both backends.
    #[test]
    fn xor_involution(seed in 0u64..1000) {
        let rows = tiny_rows(seed, 2);
        for backend in [
            &mut FeramBackend::new(MemoryGeometry::tiny()) as &mut dyn BulkBackend,
            &mut DramBackend::new(MemoryGeometry::tiny()) as &mut dyn BulkBackend,
        ] {
            let (x, k) = (RowId(0), RowId(1));
            backend.install_row(x, &rows[0]).unwrap();
            backend.install_row(k, &rows[1]).unwrap();
            backend.xor(x, k, RowId(2)).unwrap();
            backend.xor(RowId(2), k, RowId(3)).unwrap();
            prop_assert_eq!(backend.read_row(RowId(3)).unwrap(), rows[0].clone());
        }
    }

    /// MINORITY/MAJORITY duality and symmetry for all bit triples.
    #[test]
    fn minority_symmetric_and_dual(a in any::<bool>(), b in any::<bool>(), c in any::<bool>()) {
        let (ba, bb, bc) = (Bit::from_bool(a), Bit::from_bool(b), Bit::from_bool(c));
        prop_assert_eq!(minority(ba, bb, bc), minority(bc, ba, bb));
        prop_assert_eq!(minority(ba, bb, bc), minority(bb, ba, bc));
        prop_assert_eq!(minority(ba, bb, bc), !majority(ba, bb, bc));
    }

    /// Ferroelectric polarization stays in [-1, 1] under arbitrary pulse
    /// trains, and opposite writes always restore a readable state.
    #[test]
    fn polarization_bounded_under_pulse_trains(
        pulses in prop::collection::vec((-3.5f64..3.5, 1e-9f64..1e-5), 1..20)
    ) {
        let mut params = MfmParams::fabricated();
        params.n_domains = 40;
        let mut cap = MfmCapacitor::new(&params);
        for (v, w) in pulses {
            cap.apply_pulse(v, w);
            let p = cap.polarization();
            prop_assert!((-1.0..=1.0).contains(&p));
        }
        cap.write(Polarity::Up);
        prop_assert!(cap.polarization() > 0.9);
        cap.write(Polarity::Down);
        prop_assert!(cap.polarization() < -0.9);
    }

    /// Sense contrast survives any prior state: after a write, the QNRO
    /// read of 0 always out-drives the read of 1.
    #[test]
    fn qnro_contrast_after_arbitrary_history(
        history in prop::collection::vec(any::<bool>(), 0..6)
    ) {
        let mut params = MfmParams::fabricated();
        params.n_domains = 40;
        let mut c0 = MfmCapacitor::new(&params);
        let mut c1 = MfmCapacitor::new(&params);
        for bit in history {
            c0.write(Polarity::from_bit(bit));
            c1.write(Polarity::from_bit(bit));
        }
        c0.write(Polarity::Down);
        c1.write(Polarity::Up);
        let dq0 = c0.read_pulse_charge(params.read_voltage(), 100e-9);
        let dq1 = c1.read_pulse_charge(params.read_voltage(), 100e-9);
        prop_assert!(dq0 > 1.5 * dq1, "dq0 {} vs dq1 {}", dq0, dq1);
    }

    /// Thermal solution scales linearly with power (pure conduction) and
    /// never dips below ambient.
    #[test]
    fn thermal_linearity_and_positivity(watts in 1.0f64..50.0) {
        let stack = Stack::feram_on_compute_die(3);
        let mut p1 = PowerMap::zeros(&stack, 8, 8);
        p1.add_uniform_layer(stack.compute_layer(), watts);
        let f1 = solve_steady_state(&stack, &p1, 300.0);
        prop_assert!(f1.min_kelvin() >= 300.0 - 1e-6);

        let mut p2 = PowerMap::zeros(&stack, 8, 8);
        p2.add_uniform_layer(stack.compute_layer(), 2.0 * watts);
        let f2 = solve_steady_state(&stack, &p2, 300.0);
        let rise1 = f1.peak_kelvin() - 300.0;
        let rise2 = f2.peak_kelvin() - 300.0;
        prop_assert!((rise2 / rise1 - 2.0).abs() < 1e-6);
    }

    /// Backend logic ops on arbitrary words match the word-level oracle.
    #[test]
    fn backend_ops_match_word_oracle(wa in any::<u64>(), wb in any::<u64>()) {
        let mut m = FeramBackend::new(MemoryGeometry::tiny());
        let words = m.geometry().row_words();
        m.install_row(RowId(0), &vec![wa; words]).unwrap();
        m.install_row(RowId(1), &vec![wb; words]).unwrap();
        m.and(RowId(0), RowId(1), RowId(2)).unwrap();
        prop_assert_eq!(m.read_row(RowId(2)).unwrap()[0], wa & wb);
        m.or(RowId(0), RowId(1), RowId(3)).unwrap();
        prop_assert_eq!(m.read_row(RowId(3)).unwrap()[0], wa | wb);
        m.nand(RowId(0), RowId(1), RowId(4)).unwrap();
        prop_assert_eq!(m.read_row(RowId(4)).unwrap()[0], !(wa & wb));
        m.nor(RowId(0), RowId(1), RowId(5)).unwrap();
        prop_assert_eq!(m.read_row(RowId(5)).unwrap()[0], !(wa | wb));
        m.xor(RowId(0), RowId(1), RowId(6)).unwrap();
        prop_assert_eq!(m.read_row(RowId(6)).unwrap()[0], wa ^ wb);
        m.not(RowId(0), RowId(7)).unwrap();
        prop_assert_eq!(m.read_row(RowId(7)).unwrap()[0], !wa);
        // Operands untouched through it all.
        prop_assert_eq!(m.read_row(RowId(0)).unwrap()[0], wa);
        prop_assert_eq!(m.read_row(RowId(1)).unwrap()[0], wb);
    }

    /// The byte-level LimArray API matches the byte oracle on arbitrary
    /// buffers (sizes crossing row boundaries included).
    #[test]
    fn lim_array_matches_byte_oracle(
        len in 1usize..3000,
        seed in any::<u64>(),
    ) {
        use felim::lim::LimArray;
        let mut lim = LimArray::feram_tiny();
        let a = lim.alloc(len as u64).unwrap();
        let b = lim.alloc(len as u64).unwrap();
        let d = lim.alloc(len as u64).unwrap();
        let av: Vec<u8> = (0..len).map(|i| (seed >> (i % 56)) as u8 ^ i as u8).collect();
        let bv: Vec<u8> = (0..len).map(|i| (seed >> ((i + 13) % 56)) as u8).collect();
        lim.install(a, &av).unwrap();
        lim.install(b, &bv).unwrap();
        lim.xor(a, b, d).unwrap();
        let got = lim.read(d).unwrap();
        prop_assert_eq!(got.len(), len);
        for i in 0..len {
            prop_assert_eq!(got[i], av[i] ^ bv[i], "byte {}", i);
        }
        // Operands intact.
        prop_assert_eq!(lim.read(a).unwrap(), av);
        prop_assert_eq!(lim.read(b).unwrap(), bv);
    }

    /// Under the hardened degradation policy, sparse injected bit-flips
    /// are either corrected in place or reported through an error /
    /// verification failure — a run that claims success must have zero
    /// escaped faults, on every kernel, for every injector seed.
    #[test]
    fn injected_faults_are_never_silent_under_hardened_policy(
        kernel in 0usize..8,
        fault_seed in any::<u64>(),
    ) {
        use felim::arch::{DegradationPolicy, FaultSpec};
        let workloads = felim::workloads::all_workloads();
        let workload = &workloads[kernel];
        // Rates low enough that faults arrive as isolated single-bit
        // flips, which the policy must always correct or surface.
        let spec = FaultSpec {
            seed: fault_seed,
            write_bitflip_rate: 2e-6,
            read_bitflip_rate: 2e-6,
            sense_fault_rate: 2e-5,
            wear_budget: 0,
        };
        let mut backend = FeramBackend::new(MemoryGeometry::tiny())
            .with_faults(spec)
            .with_policy(DegradationPolicy::hardened());
        let result = workload.execute(&mut backend, 8, 42);
        let reliability = backend.reliability_stats();
        if result.is_ok() {
            prop_assert_eq!(
                reliability.escaped_faults, 0,
                "{} reported success with {} silent corruptions",
                workload.name(), reliability.escaped_faults
            );
        }
    }

    /// The CRC8 software reference is linear: crc(a ^ b) == crc(a) ^ crc(b)
    /// (CRC is a linear code over GF(2)).
    #[test]
    fn crc8_reference_is_linear(
        a in prop::collection::vec(any::<bool>(), 1..64),
        seed in any::<u64>(),
    ) {
        use felim::workloads::crc8::crc8_bits;
        // Derive b deterministically with the same length as a.
        let b: Vec<bool> = a
            .iter()
            .enumerate()
            .map(|(i, _)| (seed >> (i % 64)) & 1 == 1)
            .collect();
        let xored: Vec<bool> = a.iter().zip(&b).map(|(&x, &y)| x ^ y).collect();
        prop_assert_eq!(
            crc8_bits(&xored),
            crc8_bits(&a) ^ crc8_bits(&b)
        );
    }
}
