//! Integration tests for the reliability controller: the SECDED code's
//! exhaustive correction/detection guarantees (property-based), the
//! controller's end-to-end repair path over a real FeRAM backend, and
//! the campaign-level acceptance claim — at an operating point where
//! the hardened degradation policy provably leaks silent storage
//! corruption, the ECC + scrub controller leaks none.

use felim::arch::ecc::{decode_word, encode_word};
use felim::arch::{
    ArchError, BulkBackend, ControllerConfig, DegradationPolicy, DriftSpec, FeramBackend,
    MemoryGeometry, ReliabilityController, RowId, WordDecode,
};
use felim::workloads::driver::{
    campaign_silent_rows, run_reliability_campaign, ReliabilityCampaignSpec, ReliabilityTier,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// SECDED corrects every possible single-bit flip — any data word,
    /// any of the 72 codeword positions (64 data + 8 check bits).
    #[test]
    fn every_single_bit_flip_is_corrected(data in any::<u64>(), bit in 0usize..72) {
        let check = encode_word(data);
        if bit < 64 {
            prop_assert_eq!(
                decode_word(data ^ (1u64 << bit), check),
                WordDecode::CorrectedData(data)
            );
        } else {
            prop_assert_eq!(
                decode_word(data, check ^ (1u8 << (bit - 64))),
                WordDecode::CorrectedCheck
            );
        }
    }

    /// Every double-bit flip is detected as uncorrectable — never
    /// silently "corrected" into the wrong word.
    #[test]
    fn every_double_bit_flip_is_detected(
        data in any::<u64>(),
        a in 0usize..72,
        b in 0usize..71,
    ) {
        // Map the second draw past the first so the two positions are
        // always distinct without rejection sampling.
        let b = if b >= a { b + 1 } else { b };
        let check = encode_word(data);
        let (mut d, mut c) = (data, check);
        for bit in [a, b] {
            if bit < 64 {
                d ^= 1u64 << bit;
            } else {
                c ^= 1u8 << (bit - 64);
            }
        }
        prop_assert_eq!(decode_word(d, c), WordDecode::Uncorrectable);
    }

    /// End-to-end through the controller and a real FeRAM backend: a
    /// single storage upset anywhere in a row is repaired on read, and
    /// the repair is invisible to the caller.
    #[test]
    fn controller_repairs_any_single_upset(
        fill in any::<u64>(),
        word in 0usize..8,
        bit in 0u32..64,
    ) {
        let mut c = ReliabilityController::new(
            FeramBackend::new(MemoryGeometry::tiny()),
            ControllerConfig::ecc_only(DriftSpec::quiet(1)),
        );
        let words = c.geometry().row_words();
        let data = vec![fill; words];
        c.write_row(RowId(0), &data).unwrap();
        let mut mask = vec![0u64; words];
        mask[word % words] = 1u64 << bit;
        prop_assert!(c.decay_row(RowId(0), &mask).unwrap());
        prop_assert_eq!(c.read_row(RowId(0)).unwrap(), data);
        prop_assert_eq!(c.controller_stats().corrected_bits, 1);
    }
}

#[test]
fn double_upsets_escalate_with_row_and_word_attribution() {
    let mut c = ReliabilityController::new(
        FeramBackend::new(MemoryGeometry::tiny()),
        ControllerConfig::ecc_only(DriftSpec::quiet(5)),
    );
    let words = c.geometry().row_words();
    c.write_row(RowId(3), &vec![0x5555u64; words]).unwrap();
    let mut mask = vec![0u64; words];
    mask[4] = (1 << 1) | (1 << 62);
    c.decay_row(RowId(3), &mask).unwrap();
    match c.read_row(RowId(3)) {
        Err(ArchError::Uncorrectable { row: 3, words }) => assert_eq!(words, vec![4]),
        other => panic!("expected typed escalation, got {other:?}"),
    }
}

#[test]
fn campaign_controller_eliminates_silent_corruption_where_hardened_leaks() {
    // The PR acceptance point, end to end through the public facade:
    // the hardened degradation policy defends the compute path, but at
    // the bake-oven drift operating point its storage still rots — and
    // rots *silently*, because triple-read voting faithfully confirms
    // whatever the decayed cells now hold. The controller tier reports
    // zero silent corruptions and zero unreported escapes at the exact
    // same operating point.
    let policy = DegradationPolicy::hardened();

    let leaky = ReliabilityCampaignSpec::bake_oven(42, ReliabilityTier::Unprotected);
    let hardened = run_reliability_campaign(8, 7, &leaky, &policy);
    let leaked = campaign_silent_rows(&hardened);
    assert!(leaked >= 1, "hardened must provably leak here, got {leaked}");

    let guarded = ReliabilityCampaignSpec::bake_oven(42, ReliabilityTier::Protected);
    let protected = run_reliability_campaign(8, 7, &guarded, &policy);
    assert_eq!(campaign_silent_rows(&protected), 0, "silent corruption");
    for o in &protected {
        assert!(o.completed, "{} must complete", o.workload);
        assert_eq!(o.silent_rows, 0, "{}: unreported escape", o.workload);
    }
    // The run was not vacuous: physics fired and the controller worked.
    assert!(protected.iter().map(|o| o.drift_flips).sum::<u64>() > 0);
    assert!(protected.iter().map(|o| o.corrected_bits).sum::<u64>() > 0);
    assert!(protected.iter().map(|o| o.scrub_passes).sum::<u64>() > 0);
}

#[test]
fn disabled_controller_is_cost_transparent() {
    // The default path (no controller) is covered bit-for-bit by
    // tests/cost_regression.rs; here: wrapping a backend with every
    // protection feature off must not change results or charges either.
    let mut bare = FeramBackend::new(MemoryGeometry::tiny());
    let mut wrapped = ReliabilityController::new(
        FeramBackend::new(MemoryGeometry::tiny()),
        ControllerConfig::unprotected(DriftSpec::quiet(2)),
    );
    let words = bare.geometry().row_words();
    for mem in [&mut bare as &mut dyn BulkBackend, &mut wrapped] {
        mem.write_row(RowId(0), &vec![0xF0F0u64; words]).unwrap();
        mem.write_row(RowId(1), &vec![0x3CC3u64; words]).unwrap();
        mem.xnor(RowId(0), RowId(1), RowId(2)).unwrap();
        mem.and(RowId(0), RowId(2), RowId(3)).unwrap();
    }
    assert_eq!(
        bare.read_row(RowId(3)).unwrap(),
        wrapped.read_row(RowId(3)).unwrap()
    );
    assert_eq!(bare.stats().total_cycles(), wrapped.stats().total_cycles());
    assert_eq!(
        bare.stats().total_energy_nj(),
        wrapped.stats().total_energy_nj()
    );
}
