//! Worker-count determinism of the parallel engine.
//!
//! Every parallel fan-out site in the workspace derives its per-item
//! random streams from the *item index* (`felim_exec::derive_seed`) and
//! reduces results in index order, so the thread count must only affect
//! scheduling — never values. These tests serialize each report to JSON
//! under 1 worker and under 4 workers and compare the bytes.
//!
//! The worker count is driven through the `FELIM_THREADS` environment
//! knob; a process-wide lock serializes the override. Other tests that
//! happen to run a parallel region while the override is active are
//! unaffected — by the very property established here.

use felim::arch::{DegradationPolicy, FaultSpec};
use felim::cell::{monte_carlo_margin, Cell2TnCParams};
use felim::evaluation::run_fig6;
use felim::exec::THREADS_ENV;
use felim::ferro::{variation::sample_population, MfmParams, VariationSpec};
use felim::workloads::driver::run_fault_campaign;
use std::sync::Mutex;

static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    let _guard = ENV_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    std::env::set_var(THREADS_ENV, n.to_string());
    let out = f();
    std::env::remove_var(THREADS_ENV);
    out
}

#[test]
fn margin_report_bytes_identical_1_vs_4_threads() {
    let run = |threads| {
        with_threads(threads, || {
            let report = monte_carlo_margin(
                &Cell2TnCParams::default(),
                VariationSpec::pessimistic(),
                0.04,
                64,
                42,
            );
            serde_json::to_string(&report).expect("margin report serializes")
        })
    };
    assert_eq!(run(1), run(4));
}

#[test]
fn fault_campaign_bytes_identical_1_vs_4_threads() {
    let spec = FaultSpec::from_failure_rate(2e-4, 42);
    let policy = DegradationPolicy::hardened();
    let run = |threads| {
        with_threads(threads, || {
            serde_json::to_string(&run_fault_campaign(8, 7, &spec, &policy))
                .expect("campaign outcomes serialize")
        })
    };
    assert_eq!(run(1), run(4));
}

#[test]
fn fig6_bytes_identical_1_vs_4_threads() {
    let run = |threads| {
        with_threads(threads, || {
            let (rows, ge, gc) = run_fig6(16, 1 << 30, 42);
            format!(
                "{}|{:016x}|{:016x}",
                serde_json::to_string(&rows).expect("fig6 rows serialize"),
                ge.to_bits(),
                gc.to_bits()
            )
        })
    };
    assert_eq!(run(1), run(4));
}

#[test]
fn variation_population_bytes_identical_1_vs_4_threads() {
    let nominal = MfmParams::fabricated();
    let run = |threads| {
        with_threads(threads, || {
            serde_json::to_string(&sample_population(
                &nominal,
                VariationSpec::typical(),
                11,
                48,
            ))
            .expect("population serializes")
        })
    };
    assert_eq!(run(1), run(4));
}
