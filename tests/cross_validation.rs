//! Cross-validation between abstraction levels: the behavioural models
//! used for speed must agree with the slower, more physical ones.

use felim::cell::cell2tnc::{Cell2TnC, Cell2TnCParams};
use felim::cell::netlists::NetlistConfig;
use felim::cell::transients::{simulate, CellOp};
use felim::cell::Bit;
use felim::ferro::{MfmCapacitor, MfmParams, Polarity};
use felim::spice::{Circuit, Element, TransientSpec, Waveform};

/// The transistor-level NOT testbench and the behavioural cell must agree
/// on both the sensed bit and the preservation of the stored state.
#[test]
fn circuit_and_behavioural_not_agree() {
    let cfg = NetlistConfig::fast();
    let params = Cell2TnCParams {
        mfm: cfg.mfm.clone(),
        ..Default::default()
    };

    for bit in [Bit::Zero, Bit::One] {
        // Behavioural.
        let mut cell = Cell2TnC::new(&params);
        cell.write(0, bit);
        let behavioural = cell.qnro_read(0).sensed;
        // Transistor level: currents for both states give the reference
        // (the second loop iteration replays both from the memo cache).
        let i = simulate(&cfg, &CellOp::Not { bit }).unwrap().sensed_current_a;
        let i_o = simulate(&cfg, &CellOp::Not { bit: !bit })
            .unwrap()
            .sensed_current_a;
        let circuit_bit = Bit::from_bool(i > (i * i_o).sqrt());
        assert_eq!(behavioural, circuit_bit, "NOT({bit})");
        assert_eq!(behavioural, !bit);
    }
}

/// TBA current ordering must match between the netlist and the
/// behavioural model for every popcount class.
#[test]
fn circuit_and_behavioural_tba_orderings_agree() {
    let cfg = NetlistConfig::fast();
    let params = Cell2TnCParams {
        mfm: cfg.mfm.clone(),
        ..Default::default()
    };

    let mut behavioural = Vec::new();
    let mut circuit = Vec::new();
    for v in 0..8u8 {
        let mut cell = Cell2TnC::new(&params);
        cell.write_bits(&felim::cell::cell2tnc::pattern_bits(v));
        behavioural.push(cell.sense_levels(&[0, 1, 2]).rsl_current_a);

        circuit.push(simulate(&cfg, &CellOp::Tba { pattern: v }).unwrap().sensed_current_a);
    }
    for a in 0..8 {
        for b in 0..8 {
            let (pa, pb) = ((a as u8).count_ones(), (b as u8).count_ones());
            if pa < pb {
                assert!(
                    behavioural[a] > behavioural[b],
                    "behavioural {a:03b} vs {b:03b}"
                );
                assert!(circuit[a] > circuit[b], "circuit {a:03b} vs {b:03b}");
            }
        }
    }
}

/// The spice-level FeCap element must preserve the standalone device
/// model's state evolution: the same pulse gives the same polarization.
#[test]
fn fecap_element_matches_standalone_device() {
    let params = MfmParams::scaled_45nm();
    // Standalone device.
    let mut standalone = MfmCapacitor::new(&params);
    standalone.write_ideal(Polarity::Down);

    // Same device inside a circuit, driven by an ideal source.
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let mut dut = MfmCapacitor::new(&params);
    dut.write_ideal(Polarity::Down);
    ckt.add("CF", Element::fe_capacitor_with_state(a, Circuit::GND, dut));
    let width = 2e-6;
    ckt.add_vsource(
        "V1",
        a,
        Circuit::GND,
        Waveform::single_pulse(params.write_voltage_v, 10e-9, width),
    );
    let mut spec = TransientSpec::new(width + 200e-9, 5e-9);
    spec.ic_conductance_s = 1e3;
    let _ = ckt.transient(&spec).unwrap();
    let in_circuit = ckt.fe_capacitor("CF").unwrap().polarization();

    // Standalone: apply the same plateau for the same duration.
    standalone.apply_voltage(params.write_voltage_v, width);
    let direct = standalone.polarization();
    assert!(
        (in_circuit - direct).abs() < 0.05,
        "circuit {in_circuit} vs direct {direct}"
    );
}

/// Energy-model constants used by the architecture simulator are exactly
/// the paper's numbers.
#[test]
fn section_vi_energy_constants() {
    use felim::arch::{Command, EnergyModel, RowId};
    let dram = EnergyModel::dram();
    let feram = EnergyModel::feram_2tnc();
    let r = RowId(0);
    assert_eq!(dram.energy_nj(&Command::Activate(r)), 22.6);
    assert_eq!(feram.energy_nj(&Command::TripleBitActivate(r)), 16.6);
    assert_eq!(dram.energy_nj(&Command::Precharge), 0.32);
    assert_eq!(feram.energy_nj(&Command::Precharge), 0.32);
}

/// QNRO read margin at the transistor level survives the disturb budget
/// used by the architecture simulator (64 reads between write-backs).
#[test]
fn disturb_budget_is_conservative_at_device_level() {
    let params = Cell2TnCParams::default();
    let mut cell = Cell2TnC::new(&params);
    cell.write_bits(&[Bit::Zero, Bit::One, Bit::Zero]);
    let fresh_margin = {
        let lv = cell.sense_levels(&[0, 1, 2]);
        lv.rsl_current_a
    };
    for _ in 0..64 {
        let r = cell.tba();
        assert_eq!(r.sensed, Bit::One, "MIN(0,1,0) must stay correct");
    }
    let worn_margin = cell.sense_levels(&[0, 1, 2]).rsl_current_a;
    // Margin drifts but stays within a factor of two of fresh — the
    // 64-read budget is conservative.
    assert!(worn_margin > 0.5 * fresh_margin);
    assert!(worn_margin <= fresh_margin * 1.05);
}
