//! Property test: LTE-adaptive stepping is an *accuracy-preserving*
//! optimization.
//!
//! Over randomized cell-op pulse specs (TBA input pattern, read pulse
//! width, nominal step, device granularity), the adaptive +
//! modified-Newton path must reproduce the dense fixed-step reference's
//! sensed RSL current within a small relative tolerance. The sensed
//! current is the quantity every figure and margin study keys off, so
//! agreement here is agreement where it matters.

use felim::cell::netlists::{
    run_with_solver, sensed_current, tba_testbench, NetlistConfig, SolverOptions,
};
use proptest::prelude::*;

/// Dense-reference vs adaptive sensed current for one spec.
fn sense_pair(cfg: &NetlistConfig, pattern: u8) -> (f64, usize, f64, usize) {
    let mut tb = tba_testbench(cfg, pattern);
    let trace = run_with_solver(&mut tb, cfg, &SolverOptions::default()).unwrap();
    let dense = sensed_current(&trace, &tb.schedule).unwrap();
    let dense_pts = trace.times().len();

    let mut tb = tba_testbench(cfg, pattern);
    let trace = run_with_solver(&mut tb, cfg, &SolverOptions::optimized()).unwrap();
    let fast = sensed_current(&trace, &tb.schedule).unwrap();
    let fast_pts = trace.times().len();
    (dense, dense_pts, fast, fast_pts)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    fn adaptive_matches_dense_sensed_current(
        pattern in 0u8..8,
        width_scale in 0.5f64..2.0,
        dt_scale in 0.5f64..1.5,
        n_domains in 16usize..64,
    ) {
        let mut cfg = NetlistConfig::fast();
        cfg.read_width_s *= width_scale;
        cfg.dt_s *= dt_scale;
        cfg.mfm.n_domains = n_domains;

        let (dense, dense_pts, fast, fast_pts) = sense_pair(&cfg, pattern);

        // Sensed currents span decades across patterns (subthreshold
        // reads sit near 1 fA); compare relatively with an absolute
        // floor well below any sense margin in the repo.
        let tol = 0.05 * dense.abs() + 1e-15;
        prop_assert!(
            (fast - dense).abs() <= tol,
            "pattern {} dense {:e} vs adaptive {:e}",
            pattern, dense, fast,
        );
        // The controller may locally refine below the nominal step where
        // LTE demands it, but it must never blow the schedule up.
        prop_assert!(
            fast_pts <= 2 * dense_pts,
            "adaptive recorded {} points, dense {}",
            fast_pts, dense_pts,
        );
    }
}
