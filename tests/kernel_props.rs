//! Property suite for the server-side kernel compiler.
//!
//! Random multi-statement DSL programs — random expression trees,
//! temporary rebinding, in-place input updates — are executed through
//! the full service stack (parse → plan → fused per-shard `RowOp`
//! schedule → backend) and compared word-for-word against the host-side
//! `u64` oracle [`Program::eval_words`]. The equivalence must hold on
//! the raw Baseline tier and under the Protected tier's ECC-wrapped
//! shards, at several shard counts, so striping arithmetic, scratch-row
//! placement, and write-back copies are all exercised.

use felim::arch::DriftSpec;
use felim::exec::derive_seed;
use felim::serve::{
    BulkService, LogicalOp, Program, ServiceConfig, ServiceTier, TenantId,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Tiny deterministic generator over a splitmix64 stream: the vendored
/// proptest hands each case a `u64` seed; everything else derives from
/// it so failures replay exactly.
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Gen { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = derive_seed(self.state, 1);
        self.state
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn pick<'a>(&mut self, pool: &'a [String]) -> &'a str {
        &pool[self.below(pool.len() as u64) as usize]
    }
}

/// A random expression over the currently readable names. Depth-bounded;
/// leans on leaves so generated programs stay shallow enough to read in
/// a failure message.
fn gen_expr(g: &mut Gen, avail: &[String], depth: u32) -> String {
    if depth == 0 || g.below(3) == 0 {
        return g.pick(avail).to_owned();
    }
    match g.below(4) {
        0 => format!("({} & {})", gen_expr(g, avail, depth - 1), gen_expr(g, avail, depth - 1)),
        1 => format!("({} | {})", gen_expr(g, avail, depth - 1), gen_expr(g, avail, depth - 1)),
        2 => format!("({} ^ {})", gen_expr(g, avail, depth - 1), gen_expr(g, avail, depth - 1)),
        _ => format!("~{}", gen_expr(g, avail, depth - 1)),
    }
}

/// A random program: 2–5 statements assigning temporaries (with
/// rebinding — `t0` may be assigned twice), closed by a statement whose
/// target is a bound vector so the plan always has an output. Leaves
/// only ever reference names already readable, so the program's inputs
/// are exactly a subset of {a, b, c}.
fn gen_program(g: &mut Gen) -> String {
    let mut avail: Vec<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
    let n = 2 + g.below(4);
    let mut lines = Vec::new();
    for i in 0..n {
        let target = if i == n - 1 {
            ["a", "b", "c", "out"][g.below(4) as usize].to_string()
        } else {
            format!("t{}", g.below(3))
        };
        let expr = gen_expr(g, &avail, 3);
        lines.push(format!("{target} = {expr}"));
        if !avail.contains(&target) {
            avail.push(target);
        }
    }
    lines.join("\n")
}

/// Runs `program` through one service and checks every bound vector
/// against the host oracle's final environment.
fn check_tier(
    tier: ServiceTier,
    shards: u32,
    rows: u64,
    program: &str,
    inputs: &BTreeMap<String, u64>,
) {
    let parsed = Program::parse(program).expect("generated programs parse");
    let expected = parsed.eval_words(inputs);

    let mut cfg = ServiceConfig::small(shards);
    cfg.tier = tier;
    let mut svc = BulkService::new(cfg).expect("valid config");
    let mut bindings = Vec::new();
    for name in ["a", "b", "c", "out"] {
        let referenced = parsed.inputs().iter().any(|i| i == name)
            || parsed.targets().iter().any(|t| t == name);
        if !referenced {
            continue;
        }
        svc.create_vector(name, rows).expect("vector fits");
        bindings.push((name.to_owned(), name.to_owned()));
    }
    let t = TenantId(0);
    for (name, &value) in inputs {
        if bindings.iter().any(|(d, _)| d == name) {
            svc.submit(
                t,
                LogicalOp::Write {
                    dst: name.clone(),
                    words: vec![value],
                },
                None,
            )
            .expect("write admitted");
        }
    }
    svc.submit(
        t,
        LogicalOp::Kernel {
            program: program.to_owned(),
            bindings: bindings.clone(),
        },
        None,
    )
    .expect("kernel admitted");
    svc.drain();
    let responses = svc.take_responses();
    prop_assert!(
        responses.iter().all(|r| r.is_ok()),
        "all requests succeed: {responses:?}\nprogram:\n{program}"
    );

    for (name, _) in &bindings {
        let want = expected.get(name).copied().unwrap_or(0);
        let got = svc.read_vector(name).expect("vector readable");
        for (r, row) in got.iter().enumerate() {
            for (w, &word) in row.iter().enumerate() {
                prop_assert_eq!(
                    word,
                    want,
                    "vector {} row {} word {} under {} shards\nprogram:\n{}",
                    name,
                    r,
                    w,
                    shards,
                    program
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The fused schedule computes exactly what the host-side `u64`
    /// evaluation of the same program computes, on both tiers.
    fn random_kernels_match_host_eval(seed in 0u64..u64::MAX) {
        let mut g = Gen::new(seed);
        let program = gen_program(&mut g);
        let shards = 1 + (g.below(3) as u32);
        let rows = 3 + g.below(6);
        let inputs: BTreeMap<String, u64> = [
            ("a".to_owned(), g.next()),
            ("b".to_owned(), g.next()),
            ("c".to_owned(), g.next()),
        ]
        .into_iter()
        .collect();
        check_tier(ServiceTier::Baseline, shards, rows, &program, &inputs);
        check_tier(
            ServiceTier::Protected {
                drift: DriftSpec::quiet(derive_seed(seed, 7)),
                scrub_period_s: 0.5,
            },
            shards,
            rows,
            &program,
            &inputs,
        );
    }
}
