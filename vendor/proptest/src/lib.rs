//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest 1.x API this workspace uses as a
//! deterministic random-case runner: [`strategy::Strategy`] with
//! `prop_map`, tuple/range/`any`/`Just`/`prop_oneof!`/`collection::vec`
//! strategies, the [`proptest!`] macro, and panic-based `prop_assert*`
//! macros. Shrinking is intentionally not implemented — failures report
//! the un-shrunk case. Each generated test seeds its RNG from an FNV-1a
//! hash of its module path and name, so runs are reproducible and stable
//! across processes (no `PROPTEST_*` environment coupling).

#![forbid(unsafe_code)]

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Seeds the per-test RNG from the test's identity (FNV-1a, stable
/// across runs and platforms).
pub fn __seed_rng(test_name: &str) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    rand::rngs::StdRng::seed_from_u64(h)
}

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// Generates random values of `Self::Value`. Object-safe so strategy
    /// unions can box heterogeneous strategies with a common value type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn pick(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f` (proptest's `prop_map`).
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn pick(&self, rng: &mut StdRng) -> T {
            (**self).pick(rng)
        }
    }

    /// Boxes a strategy for use in a [`Union`] (used by `prop_oneof!`).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn pick(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.pick(rng))
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn pick(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn pick(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].pick(rng)
        }
    }

    /// `any::<T>()` — uniform draw over the whole domain of `T`.
    pub struct Any<T>(PhantomData<T>);

    /// Creates the [`Any`] strategy for `T`.
    pub fn any<T: rand::Standard>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: rand::Standard> Strategy for Any<T> {
        type Value = T;
        fn pick(&self, rng: &mut StdRng) -> T {
            rng.gen()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.start..self.end)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(*self.start()..=*self.end())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn pick(&self, rng: &mut StdRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.pick(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `prop::collection::vec(elem, len_range)`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn pick(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.start..self.size.end);
            (0..len).map(|_| self.elem.pick(rng)).collect()
        }
    }
}

/// Namespace alias mirroring `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    //! Everything a property test file needs.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
    };
}

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` random
/// cases drawn from a deterministic per-test RNG.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal: expands one test fn at a time (recursion over the block).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            #[allow(unused_imports)]
            use $crate::strategy::Strategy as _;
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::__seed_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let ($($pat,)+) = (
                    $($crate::strategy::Strategy::pick(&($strat), &mut __rng),)+
                );
                // The case index is part of panic context via this var.
                let _ = __case;
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed($strat)),+
        ])
    };
}

/// Property assertion (panics on failure — no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tok {
        N(u64),
        B(bool),
        Fixed,
    }

    fn tok() -> impl Strategy<Value = Tok> {
        prop_oneof![
            (0u64..10).prop_map(Tok::N),
            any::<bool>().prop_map(Tok::B),
            Just(Tok::Fixed),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        fn ranges_hold(x in 3u64..9, f in 0.25f64..0.75) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
        }

        fn vec_lengths_hold(xs in prop::collection::vec(tok(), 2..7)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 7);
        }

        fn tuples_and_maps_compose(
            (a, b) in (0u64..5, 0u64..5),
            c in (0usize..3).prop_map(|i| i * 2),
        ) {
            prop_assert!(a < 5 && b < 5);
            prop_assert!(c % 2 == 0 && c <= 4);
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        use crate::strategy::Strategy as _;
        let s = tok();
        let one: Vec<Tok> = {
            let mut r = crate::__seed_rng("x");
            (0..16).map(|_| s.pick(&mut r)).collect()
        };
        let two: Vec<Tok> = {
            let mut r = crate::__seed_rng("x");
            (0..16).map(|_| s.pick(&mut r)).collect()
        };
        assert_eq!(one, two);
    }
}
