//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored minimal `serde` crate (whose `Serialize` trait writes
//! JSON directly). The input item is parsed structurally from the
//! `proc_macro::TokenTree` stream — no `syn`/`quote` dependency, which
//! matters because this build environment cannot reach crates.io.
//!
//! Supported shapes (everything this workspace derives):
//! * structs with named fields → JSON objects in declaration order,
//! * tuple structs → single-element newtype transparency, else arrays,
//! * unit structs → `null`,
//! * enums → externally tagged (`"Variant"`, `{"Variant": …}`), matching
//!   serde's default representation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field: `name` for named fields, index for tuple fields.
struct Field {
    name: String,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

struct Item {
    name: String,
    /// Generic parameter list verbatim (without the angle brackets).
    generics: String,
    /// Generic argument list for the impl target (bounds stripped).
    generic_args: String,
    /// Type parameter idents (for added trait bounds).
    type_params: Vec<String>,
    /// `where` clause verbatim (without the `where` keyword), if any.
    where_clause: String,
    kind: ItemKind,
}

enum ItemKind {
    Struct(Shape),
    Enum(Vec<Variant>),
}

/// Derives the vendored `serde::Serialize` (JSON writer).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.kind {
        ItemKind::Struct(shape) => serialize_shape_body(shape, "self.", None),
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(serialize_variant_arm).collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    let bounds = item.serialize_bounds();
    let code = format!(
        "impl{} ::serde::Serialize for {}{} {} {{\n\
             fn json_write(&self, out: &mut ::std::string::String) {{\n{}\n}}\n\
         }}",
        item.generics_decl(),
        item.name,
        item.generics_args(),
        bounds,
        body
    );
    code.parse().expect("derive(Serialize) generated invalid Rust")
}

/// Derives the vendored `serde::Deserialize` marker trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = format!(
        "impl{} ::serde::Deserialize for {}{} {} {{}}",
        item.generics_decl(),
        item.name,
        item.generics_args(),
        item.plain_where()
    );
    code.parse()
        .expect("derive(Deserialize) generated invalid Rust")
}

impl Item {
    fn generics_decl(&self) -> String {
        if self.generics.is_empty() {
            String::new()
        } else {
            format!("<{}>", self.generics)
        }
    }

    fn generics_args(&self) -> String {
        if self.generic_args.is_empty() {
            String::new()
        } else {
            format!("<{}>", self.generic_args)
        }
    }

    /// `where` clause for the Serialize impl: the item's own clause plus
    /// a `Serialize` bound on every type parameter.
    fn serialize_bounds(&self) -> String {
        let mut clauses: Vec<String> = Vec::new();
        if !self.where_clause.is_empty() {
            clauses.push(self.where_clause.clone());
        }
        for p in &self.type_params {
            clauses.push(format!("{p}: ::serde::Serialize"));
        }
        if clauses.is_empty() {
            String::new()
        } else {
            format!("where {}", clauses.join(", "))
        }
    }

    fn plain_where(&self) -> String {
        if self.where_clause.is_empty() {
            String::new()
        } else {
            format!("where {}", self.where_clause)
        }
    }
}

/// Emits the statements serializing one shape. `access` prefixes field
/// access (`self.` for structs, `` for bound match variables); for enum
/// variants `tag` wraps the payload in `{"Variant": …}`.
fn serialize_shape_body(shape: &Shape, access: &str, tag: Option<&str>) -> String {
    let mut out = String::new();
    if let Some(tag) = tag {
        out.push_str(&format!(
            "out.push_str(\"{{\\\"{tag}\\\":\");\n"
        ));
    }
    match shape {
        Shape::Unit => {
            if let Some(tag) = tag {
                // Unit enum variants: bare string tag (replace the wrapper).
                return format!("out.push_str(\"\\\"{tag}\\\"\");");
            }
            out.push_str("out.push_str(\"null\");\n");
        }
        Shape::Tuple(1) => {
            out.push_str(&format!(
                "::serde::Serialize::json_write(&{access}0, out);\n"
            ));
        }
        Shape::Tuple(n) => {
            out.push_str("out.push('[');\n");
            for i in 0..*n {
                if i > 0 {
                    out.push_str("out.push(',');\n");
                }
                out.push_str(&format!(
                    "::serde::Serialize::json_write(&{access}{i}, out);\n"
                ));
            }
            out.push_str("out.push(']');\n");
        }
        Shape::Named(fields) => {
            out.push_str("out.push('{');\n");
            for (i, f) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str("out.push(',');\n");
                }
                out.push_str(&format!(
                    "out.push_str(\"\\\"{}\\\":\");\n\
                     ::serde::Serialize::json_write(&{access}{}, out);\n",
                    f.name, f.name
                ));
            }
            out.push_str("out.push('}');\n");
        }
    }
    if tag.is_some() {
        out.push_str("out.push('}');\n");
    }
    out
}

fn serialize_variant_arm(v: &Variant) -> String {
    match &v.shape {
        Shape::Unit => format!(
            "Self::{} => {{ {} }}",
            v.name,
            serialize_shape_body(&Shape::Unit, "", Some(&v.name))
        ),
        Shape::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            // Tuple payloads bind as __f0… and are accessed bare.
            let mut body = serialize_shape_body(&v.shape, "__f_", Some(&v.name));
            for (i, b) in binds.iter().enumerate() {
                body = body.replace(&format!("&__f_{i}"), b);
            }
            format!("Self::{}({}) => {{ {} }}", v.name, binds.join(", "), body)
        }
        Shape::Named(fields) => {
            let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
            let mut body = serialize_shape_body(&v.shape, "__bound_", Some(&v.name));
            for f in fields {
                body = body.replace(&format!("&__bound_{}", f.name), &f.name);
            }
            format!(
                "Self::{} {{ {} }} => {{ {} }}",
                v.name,
                binds.join(", "),
                body
            )
        }
    }
}

// ---------------------------------------------------------------------
// Structural parsing over proc_macro::TokenTree (no syn).
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;

    // Skip outer attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // '#' + [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind_word = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected struct/enum, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, found {other:?}"),
    };
    i += 1;

    // Generics.
    let mut generics_tokens: Vec<TokenTree> = Vec::new();
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        i += 1;
        let mut depth = 1usize;
        while depth > 0 {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    depth += 1;
                    generics_tokens.push(tokens[i].clone());
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    depth -= 1;
                    if depth > 0 {
                        generics_tokens.push(tokens[i].clone());
                    }
                }
                Some(t) => generics_tokens.push(t.clone()),
                None => panic!("unterminated generics on {name}"),
            }
            i += 1;
        }
    }

    // Optional where clause: everything up to the body group / semicolon.
    let mut where_tokens: Vec<TokenTree> = Vec::new();
    let mut body_group: Option<proc_macro::Group> = None;
    let mut tuple_group: Option<proc_macro::Group> = None;
    while let Some(t) = tokens.get(i) {
        match t {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                body_group = Some(g.clone());
                break;
            }
            TokenTree::Group(g)
                if g.delimiter() == Delimiter::Parenthesis && where_tokens.is_empty() =>
            {
                tuple_group = Some(g.clone());
                i += 1;
            }
            TokenTree::Punct(p) if p.as_char() == ';' => break,
            TokenTree::Ident(id) if id.to_string() == "where" => {
                i += 1;
            }
            other => {
                where_tokens.push(other.clone());
                i += 1;
            }
        }
    }

    let (generics, generic_args, type_params) = split_generics(&generics_tokens);
    let where_clause = tokens_to_string(&where_tokens);

    let kind = match kind_word.as_str() {
        "struct" => {
            let shape = if let Some(g) = body_group {
                Shape::Named(parse_named_fields(g.stream()))
            } else if let Some(g) = tuple_group {
                Shape::Tuple(count_tuple_fields(g.stream()))
            } else {
                Shape::Unit
            };
            ItemKind::Struct(shape)
        }
        "enum" => {
            let g = body_group.expect("enum without a body");
            ItemKind::Enum(parse_variants(g.stream()))
        }
        other => panic!("derive targets must be struct or enum, found `{other}`"),
    };

    Item {
        name,
        generics,
        generic_args,
        type_params,
        where_clause,
        kind,
    }
}

/// Splits generics tokens into (decl with bounds, args without bounds,
/// type parameter names).
fn split_generics(tokens: &[TokenTree]) -> (String, String, Vec<String>) {
    if tokens.is_empty() {
        return (String::new(), String::new(), Vec::new());
    }
    let decl = tokens_to_string(tokens);
    let mut args: Vec<String> = Vec::new();
    let mut type_params: Vec<String> = Vec::new();
    let mut depth = 0usize;
    let mut param_start = true;
    let mut j = 0usize;
    while j < tokens.len() {
        match &tokens[j] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                param_start = true;
                j += 1;
                continue;
            }
            TokenTree::Punct(p) if p.as_char() == '\'' && depth == 0 && param_start => {
                // Lifetime parameter: '<tick> <ident>'.
                if let Some(TokenTree::Ident(id)) = tokens.get(j + 1) {
                    args.push(format!("'{id}"));
                }
                param_start = false;
                j += 2;
                continue;
            }
            TokenTree::Ident(id) if depth == 0 && param_start => {
                let n = id.to_string();
                if n == "const" {
                    // const N: usize — the arg is the following ident.
                    if let Some(TokenTree::Ident(cn)) = tokens.get(j + 1) {
                        args.push(cn.to_string());
                    }
                    param_start = false;
                    j += 2;
                    continue;
                }
                args.push(n.clone());
                type_params.push(n);
                param_start = false;
            }
            _ => {}
        }
        j += 1;
    }
    (decl, args.join(", "), type_params)
}

fn tokens_to_string(tokens: &[TokenTree]) -> String {
    let mut s = String::new();
    for t in tokens {
        let piece = t.to_string();
        // No space after a lifetime tick (`' a` would not re-lex), nor
        // before separators.
        if !s.is_empty() && !s.ends_with('\'') && !matches!(piece.as_str(), "," | ">" | ";") {
            s.push(' ');
        }
        s.push_str(&piece);
    }
    s.trim().to_string()
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        // Skip attributes & visibility before the field name.
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
                continue;
            }
            TokenTree::Ident(id) => {
                // Field name; must be followed by ':'.
                if matches!(tokens.get(i + 1), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
                    fields.push(Field {
                        name: id.to_string(),
                    });
                    i += 2;
                    // Skip the type up to the next top-level comma.
                    let mut depth = 0usize;
                    while i < tokens.len() {
                        match &tokens[i] {
                            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                            TokenTree::Punct(p) if p.as_char() == '>' && depth > 0 => depth -= 1,
                            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                                i += 1;
                                break;
                            }
                            _ => {}
                        }
                        i += 1;
                    }
                    continue;
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1usize;
    let mut depth = 0usize;
    for (idx, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' && depth > 0 => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 && idx + 1 < tokens.len() => {
                count += 1;
            }
            _ => {}
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
            }
            TokenTree::Ident(id) => {
                let name = id.to_string();
                i += 1;
                let shape = match tokens.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        i += 1;
                        Shape::Named(parse_named_fields(g.stream()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        i += 1;
                        Shape::Tuple(count_tuple_fields(g.stream()))
                    }
                    _ => Shape::Unit,
                };
                // Skip an optional discriminant `= expr` and the comma.
                while i < tokens.len() {
                    if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                        i += 1;
                        break;
                    }
                    i += 1;
                }
                variants.push(Variant { name, shape });
            }
            _ => i += 1,
        }
    }
    variants
}
