//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the subset of serde this workspace uses. Rather than the full
//! `Serializer`-visitor architecture, [`Serialize`] writes JSON directly
//! into a `String`; `serde_json::to_string` simply invokes it. That is
//! observationally equivalent for every type the workspace serializes
//! (numbers, strings, bools, options, sequences, maps, derived structs
//! and externally-tagged enums).

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// Trait namespace mirroring real serde so `use serde::Serialize` picks up
/// both the trait and the derive macro (Rust resolves them in separate
/// namespaces, as with real serde).
pub trait Serialize {
    /// Appends the JSON encoding of `self` to `out`.
    fn json_write(&self, out: &mut String);
}

/// Marker trait implemented by `#[derive(Deserialize)]`. The workspace
/// only ever deserializes `serde_json::Value`, which has its own parser,
/// so no methods are needed here.
pub trait Deserialize {}

/// Escapes and appends a JSON string literal.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn json_write(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}
impl_serialize_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn json_write(&self, out: &mut String) {
                if self.is_finite() {
                    // `{:?}` is the shortest round-trip representation.
                    out.push_str(&format!("{self:?}"));
                } else {
                    // JSON has no NaN/Inf; serde_json emits null.
                    out.push_str("null");
                }
            }
        }
    )*};
}
impl_serialize_float!(f32, f64);

impl Serialize for bool {
    fn json_write(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for str {
    fn json_write(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for String {
    fn json_write(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for char {
    fn json_write(&self, out: &mut String) {
        write_json_string(&self.to_string(), out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn json_write(&self, out: &mut String) {
        (**self).json_write(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn json_write(&self, out: &mut String) {
        (**self).json_write(out);
    }
}

impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {
    fn json_write(&self, out: &mut String) {
        // Real serde encodes Result externally tagged: {"Ok":…}/{"Err":…}.
        match self {
            Ok(v) => {
                out.push_str("{\"Ok\":");
                v.json_write(out);
                out.push('}');
            }
            Err(e) => {
                out.push_str("{\"Err\":");
                e.json_write(out);
                out.push('}');
            }
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn json_write(&self, out: &mut String) {
        match self {
            Some(v) => v.json_write(out),
            None => out.push_str("null"),
        }
    }
}

fn write_seq<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>, out: &mut String) {
    out.push('[');
    for (i, v) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        v.json_write(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for Vec<T> {
    fn json_write(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn json_write(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn json_write(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn json_write(&self, out: &mut String) {
        out.push('[');
        self.0.json_write(out);
        out.push(',');
        self.1.json_write(out);
        out.push(']');
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn json_write(&self, out: &mut String) {
        out.push('[');
        self.0.json_write(out);
        out.push(',');
        self.1.json_write(out);
        out.push(',');
        self.2.json_write(out);
        out.push(']');
    }
}

/// JSON object keys must be strings; mirror serde_json's behaviour of
/// stringifying integer keys.
pub trait JsonKey {
    /// Appends this key as a JSON string.
    fn write_key(&self, out: &mut String);
}

macro_rules! impl_json_key_int {
    ($($t:ty),*) => {$(
        impl JsonKey for $t {
            fn write_key(&self, out: &mut String) {
                write_json_string(&self.to_string(), out);
            }
        }
    )*};
}
impl_json_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl JsonKey for String {
    fn write_key(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl JsonKey for &str {
    fn write_key(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl<K: JsonKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn json_write(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            k.write_key(out);
            out.push(':');
            v.json_write(out);
        }
        out.push('}');
    }
}

impl<K: JsonKey + Ord, V: Serialize> Serialize for HashMap<K, V> {
    fn json_write(&self, out: &mut String) {
        // Sort keys for deterministic output (real serde_json preserves
        // HashMap iteration order, which is nondeterministic — sorted
        // output is strictly friendlier for diffing reports).
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        out.push('{');
        for (i, (k, v)) in entries.into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            k.write_key(out);
            out.push(':');
            v.json_write(out);
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_containers() {
        let mut out = String::new();
        (1u64, -2i32).json_write(&mut out);
        assert_eq!(out, "[1,-2]");

        let mut out = String::new();
        vec![Some(1.5f64), None].json_write(&mut out);
        assert_eq!(out, "[1.5,null]");

        let mut out = String::new();
        "a\"b\n".json_write(&mut out);
        assert_eq!(out, "\"a\\\"b\\n\"");
    }

    #[test]
    fn maps_are_sorted_and_string_keyed() {
        let mut m = HashMap::new();
        m.insert(10u64, 1u64);
        m.insert(2u64, 2u64);
        let mut out = String::new();
        m.json_write(&mut out);
        assert_eq!(out, "{\"2\":2,\"10\":1}");
    }
}
