//! Offline stand-in for `crossbeam`.
//!
//! The workspace only uses `crossbeam::thread::scope` / `Scope::spawn` /
//! `ScopedJoinHandle::join`. Since Rust 1.63 the standard library has
//! scoped threads, so this crate is a thin adapter reproducing the
//! crossbeam signatures (closures receive the scope as an argument,
//! `scope` returns a `Result`) on top of `std::thread::scope`.

#![forbid(unsafe_code)]

pub mod thread {
    //! Scoped threads (crossbeam-utils compatible subset).

    /// Result of joining a thread: `Err` carries the panic payload.
    pub type Result<T> = std::thread::Result<T>;

    /// A scope handle; spawned closures receive `&Scope` so they can
    /// spawn further scoped threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` on panic).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the
        /// scope (crossbeam convention; often ignored as `|_|`).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope; all threads spawned in it are joined before it
    /// returns. Returns `Ok` unless the closure itself fails — panics in
    /// spawned threads surface either through explicit `join()` results
    /// or by propagating out of the scope (std semantics), which matches
    /// how this workspace consumes the API (`.expect` at the call site).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_borrow() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::thread::scope(|scope| {
            let handles: Vec<_> = data
                .iter()
                .map(|&x| scope.spawn(move |_| x * 2))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 20);
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let n = super::thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 7u32).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 7);
    }
}
