//! Offline stand-in for `serde_json`.
//!
//! Provides the subset this workspace uses: [`to_string`] /
//! [`to_string_pretty`] over the vendored `serde::Serialize` (which writes
//! JSON directly), a [`Value`] tree with `get` / `as_str` / `as_f64`
//! accessors, and [`from_str`] backed by a small recursive-descent parser.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

pub use serde::Serialize;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64, like serde_json's arbitrary
    /// precision disabled default for the ranges this workspace needs).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. BTreeMap keeps key order deterministic.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects (None for other variants).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The contained string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The contained number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The contained number as u64 when integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The contained bool, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The contained array, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

impl Serialize for Value {
    fn json_write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => b.json_write(out),
            Value::Number(n) => n.json_write(out),
            Value::String(s) => s.json_write(out),
            Value::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.json_write(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    k.json_write(out);
                    out.push(':');
                    v.json_write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Error raised by [`from_str`] / [`to_string`].
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
    offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for Error {}

/// Serializes any `Serialize` type to compact JSON.
///
/// Infallible for the types this workspace uses; returns `Result` to
/// keep call sites source-compatible with real serde_json.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.json_write(&mut out);
    Ok(out)
}

/// Serializes to pretty-printed JSON (two-space indent, like serde_json).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let compact = to_string(value)?;
    let value: Value = from_str(&compact)?;
    let mut out = String::new();
    write_pretty(&value, 0, &mut out);
    Ok(out)
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                k.json_write(out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => other.json_write(out),
    }
}

/// Types [`from_str`] can produce. The workspace only parses into
/// [`Value`]; the trait keeps the call-site turbofish working.
pub trait FromJson: Sized {
    /// Converts a parsed [`Value`] into `Self`.
    fn from_json(value: Value) -> Result<Self, Error>;
}

impl FromJson for Value {
    fn from_json(value: Value) -> Result<Self, Error> {
        Ok(value)
    }
}

/// Parses a JSON document.
pub fn from_str<T: FromJson>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    T::from_json(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> Error {
        Error {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                    .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not produced by this
                            // workspace's writers; map lone surrogates to
                            // the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_documents() {
        let text = r#"{"id":"fig6","n":-1.5e3,"ok":true,"xs":[1,2,null],"s":"a\"b"}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v.get("id").and_then(Value::as_str), Some("fig6"));
        assert_eq!(v.get("n").and_then(Value::as_f64), Some(-1500.0));
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        let back = to_string(&v).unwrap();
        let v2: Value = from_str(&back).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{oops}").is_err());
        assert!(from_str::<Value>("[1,").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }

    #[test]
    fn pretty_print_is_reparseable() {
        let v: Value = from_str(r#"{"a":[1,2],"b":{"c":"d"}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n"));
        let v2: Value = from_str(&pretty).unwrap();
        assert_eq!(v, v2);
    }
}
