//! Offline stand-in for `criterion`.
//!
//! Provides the measurement API surface this workspace's `benches/` use
//! (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `criterion_group!`/`criterion_main!`).
//! Instead of criterion's full statistical pipeline it runs each closure
//! a small warm-up plus a fixed measured batch and prints the mean wall
//! time — enough for coarse comparisons and for keeping `cargo bench`
//! working without crates.io access.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 3;
const MEASURE_ITERS: u64 = 15;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: MEASURE_ITERS,
        }
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Logical elements per iteration.
    Elements(u64),
}

/// Two-part benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Joins a function name and a parameter display value.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
    sample_size: u64,
}

impl BenchmarkGroup {
    /// Sets the measured iteration count (criterion's sample count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).max(1);
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut f);
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn run(&self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            iters: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let mean = b.elapsed.as_secs_f64() / b.iters.max(1) as f64;
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if mean > 0.0 => {
                format!("  {:>10.1} MiB/s", n as f64 / mean / (1024.0 * 1024.0))
            }
            Some(Throughput::Elements(n)) if mean > 0.0 => {
                format!("  {:>10.1} elem/s", n as f64 / mean)
            }
            _ => String::new(),
        };
        println!(
            "{}/{id}: {:>12.3} µs/iter{rate}",
            self.name,
            mean * 1e6
        );
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Timer handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over warm-up plus the measured batch.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("unit");
        g.sample_size(5);
        g.throughput(Throughput::Bytes(8));
        let mut ran = 0u64;
        g.bench_function("noop", |b| b.iter(|| ran += 1));
        g.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, x| {
            b.iter(|| black_box(*x * 2))
        });
        g.finish();
        assert!(ran >= 5);
    }
}
