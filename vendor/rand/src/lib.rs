//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal, deterministic implementation of the subset of the
//! rand 0.8 API it actually uses: [`rngs::StdRng`], [`SeedableRng`], and
//! the [`Rng`] extension methods `gen`, `gen_bool` and `gen_range`.
//!
//! The generator is xoshiro256** seeded through splitmix64 — high-quality,
//! fast, and fully reproducible from a `u64` seed (which is all the felim
//! crates require: every stochastic model in the workspace is explicitly
//! seeded).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// A seedable RNG (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from an RNG (the `Standard`
/// distribution of real rand).
pub trait Standard: Sized {
    /// Draws one uniformly-distributed value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128 - lo as u128 + 1) as u64;
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::draw(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::draw(rng) * (hi - lo)
    }
}

/// Convenience extension methods, blanket-implemented for every
/// [`RngCore`] (mirroring `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`] type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p = {p} is not a probability");
        f64::draw(self) < p
    }

    /// Uniform draw from a range.
    #[inline]
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator seeded via splitmix64.
    ///
    /// Not the same stream as the real `rand::rngs::StdRng` (ChaCha12) —
    /// irrelevant here, since nothing in the workspace depends on a
    /// particular stream, only on per-seed determinism.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// The full generator state. Together with [`StdRng::from_state`]
        /// this supports exact checkpoint/replay: the state before a draw
        /// sequence uniquely determines both the outputs and the state
        /// after, which is what content-addressed result caches key on.
        #[inline]
        #[must_use]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Restores a generator from a previously captured state.
        #[inline]
        #[must_use]
        pub fn from_state(s: [u64; 4]) -> Self {
            Self { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_bool_respects_extremes_and_rates() {
        let mut r = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x));
            let n: u64 = r.gen_range(10u64..20);
            assert!((10..20).contains(&n));
            let i = r.gen_range(0..=3usize);
            assert!(i <= 3);
        }
    }

    #[test]
    fn f64_draws_are_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
