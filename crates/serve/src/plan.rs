//! The kernel compiler: DSL programs → fused per-shard row-op schedules.
//!
//! [`KernelPlan::compile`] lowers a parsed [`Program`] into a DAG of
//! bulk-bitwise ops and schedules it once, at admission time; dispatch
//! then merely stamps the plan out per shard with
//! [`KernelPlan::emit_for_shard`]. The compiler performs the fusion work
//! that makes a kernel cheaper than submitting its statements as
//! individual [`LogicalOp`](crate::LogicalOp)s:
//!
//! * **Common-subexpression elimination** — nodes are hash-consed, so
//!   `(a & b)` computed twice is one node (commutative operands are
//!   canonicalised first, so `a & b` and `b & a` unify).
//! * **NOT fusion** — `~(a & b)` becomes one `Nand` row-op (likewise
//!   `Nor`, and `~~x` cancels), exploiting the array's native
//!   inverting gates instead of spending a scratch row on an
//!   intermediate.
//! * **XOR lowering** — `a ^ b` compiles to the four-gate NAND network
//!   `nand(nand(a,nab), nand(b,nab))` over the *plan's* scratch slots
//!   instead of the backend's default composition. The backend routes
//!   every XOR's intermediates through the same handful of reserved
//!   rows — one subarray, a global serialisation point under the
//!   makespan pricing — whereas plan scratch stripes across subarrays,
//!   and the NAND sub-terms join the hash-cons table (`~(a ^ b)`
//!   complements the final gate into an `And` for free).
//! * **Operand reuse** — temporaries live in reserved scratch rows
//!   allocated by linear scan over the schedule: a slot frees at its
//!   value's last use and is immediately reusable, even by the very op
//!   consuming it (the engine latches operand rows before committing
//!   the result, so in-place destinations are safe). Rebinding a name
//!   (`x = x & y`) therefore costs no extra rows, and renames (`d = t`)
//!   cost no ops at all unless `d` is a bound output.
//! * **Direct output writes** — an output's final op targets the bound
//!   catalog vector directly when no later op still reads that vector's
//!   old value, eliminating the end-of-kernel copy.
//! * **Level interleaving** — ops are ordered by DAG level, so
//!   independent subexpressions sit adjacent in the batch and spread
//!   across subarrays under the
//!   [`schedule`](felim_arch::schedule::schedule) replay that prices
//!   each tick.
//!
//! Dead statements (temporaries never reaching a bound output) are
//! dropped entirely. The plan is shape-agnostic: row counts bind at
//! admission, and emission stripes scratch slots with the same
//! row-`i`-on-shard-`i mod S` phase as catalog vectors, so every op
//! stays shard-local.

use crate::dsl::{Expr, Program};
use felim_arch::batch::RowOp;
use felim_arch::geometry::RowId;
use serde::Serialize;
use std::collections::HashMap;
use std::fmt;

/// A binary/unary bulk-logic op kind the array executes natively.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
enum OpKind {
    Not,
    And,
    Or,
    Nand,
    Nor,
}

impl OpKind {
    /// The kind computing the complement of this kind's result, if the
    /// array has a native gate for it.
    fn complement(self) -> Option<OpKind> {
        match self {
            OpKind::And => Some(OpKind::Nand),
            OpKind::Nand => Some(OpKind::And),
            OpKind::Or => Some(OpKind::Nor),
            OpKind::Nor => Some(OpKind::Or),
            OpKind::Not => None,
        }
    }
}

/// A DAG node: a bound input vector or a fused op over earlier nodes.
#[derive(Debug, Clone, PartialEq)]
enum Node {
    /// Reads the catalog vector at this index of the plan's vector table.
    Input(usize),
    /// An op over one or two earlier nodes.
    Op {
        kind: OpKind,
        a: usize,
        b: Option<usize>,
    },
}

/// Where a value lives during execution.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Loc {
    /// Rows of the catalog vector at this index of the vector table.
    Vector(usize),
    /// Scratch slot `s`: local rows `scratch_base + k·slots + s`
    /// (slot-interleaved, so one step's scratch rows land in different
    /// subarrays and price in parallel under the makespan replay).
    Scratch(u32),
}

/// One vector-level step of the fused schedule.
#[derive(Debug, Clone, PartialEq)]
struct Step {
    kind: OpKind,
    a: Loc,
    b: Option<Loc>,
    dst: Loc,
    /// End-of-kernel write-back copy (`kind` is ignored when set).
    copy: bool,
}

/// Why a parsed program could not be planned against its bindings.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum KernelPlanError {
    /// The program reads a name that is neither bound nor assigned
    /// earlier.
    UnknownName {
        /// The unresolved name.
        name: String,
    },
    /// A DSL name or catalog vector appears twice in the bindings
    /// (aliasing two names onto one vector would make write-back order
    /// ambiguous).
    DuplicateBinding {
        /// The repeated DSL name or vector name.
        name: String,
    },
    /// No bound name is assigned by the program — the kernel would have
    /// no observable effect.
    NoOutputs,
}

impl fmt::Display for KernelPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelPlanError::UnknownName { name } => {
                write!(f, "kernel reads unbound name `{name}`")
            }
            KernelPlanError::DuplicateBinding { name } => {
                write!(f, "kernel binds `{name}` more than once")
            }
            KernelPlanError::NoOutputs => {
                write!(f, "kernel assigns no bound name — it has no outputs")
            }
        }
    }
}

impl std::error::Error for KernelPlanError {}

/// A compiled, shape-agnostic kernel: the fused schedule plus the
/// fusion counters the response reports.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelPlan {
    /// Catalog vector names the plan touches (inputs and outputs), in
    /// first-use order; `Loc::Vector` indexes into this table.
    vectors: Vec<String>,
    steps: Vec<Step>,
    /// Indices into `vectors` of the vectors the kernel writes.
    output_vectors: Vec<usize>,
    /// DAG nodes eliminated by hash-consing.
    pub cse_hits: u64,
    /// Distinct scratch slots the schedule needs (peak liveness).
    pub scratch_slots: u32,
    /// Depth of the scheduled DAG (independent level count).
    pub levels: u32,
}

impl KernelPlan {
    /// Compiles `program` against `(dsl_name, vector_name)` bindings.
    ///
    /// # Errors
    ///
    /// [`KernelPlanError`] — unresolved names, duplicate bindings, or a
    /// program that writes no bound name.
    pub fn compile(
        program: &Program,
        bindings: &[(String, String)],
    ) -> Result<KernelPlan, KernelPlanError> {
        // Bindings must be injective in both directions.
        let mut bound: HashMap<&str, &str> = HashMap::new();
        let mut seen_vectors: Vec<&str> = Vec::new();
        for (dsl, vector) in bindings {
            if bound.insert(dsl.as_str(), vector.as_str()).is_some() {
                return Err(KernelPlanError::DuplicateBinding { name: dsl.clone() });
            }
            if seen_vectors.contains(&vector.as_str()) {
                return Err(KernelPlanError::DuplicateBinding {
                    name: vector.clone(),
                });
            }
            seen_vectors.push(vector.as_str());
        }

        let mut b = Builder {
            nodes: Vec::new(),
            cons: HashMap::new(),
            input_of: HashMap::new(),
            vectors: Vec::new(),
            vector_idx: HashMap::new(),
            env: HashMap::new(),
            cse_hits: 0,
        };

        // Lower every statement; `env` tracks each name's current node.
        for stmt in &program.statements {
            let id = b.lower(&stmt.expr, &bound)?;
            b.env.insert(stmt.target.clone(), id);
        }

        // Outputs: bound names the program assigned, in first-assignment
        // order (the write-back order).
        let mut outputs: Vec<(usize, usize)> = Vec::new(); // (vector idx, node)
        for target in program.targets() {
            if let Some(&vector) = bound.get(target.as_str()) {
                let node = b.env[&target];
                outputs.push((b.vector_id(vector), node));
            }
        }
        if outputs.is_empty() {
            return Err(KernelPlanError::NoOutputs);
        }

        Ok(Self::schedule(b, outputs))
    }

    /// Levelises, allocates scratch, and emits the step list.
    fn schedule(b: Builder, outputs: Vec<(usize, usize)>) -> KernelPlan {
        let nodes = &b.nodes;
        // Liveness from the outputs: unneeded nodes are dead code.
        let mut needed = vec![false; nodes.len()];
        let mut stack: Vec<usize> = outputs.iter().map(|&(_, n)| n).collect();
        while let Some(n) = stack.pop() {
            if std::mem::replace(&mut needed[n], true) {
                continue;
            }
            if let Node::Op { a, b, .. } = &nodes[n] {
                stack.push(*a);
                if let Some(b) = b {
                    stack.push(*b);
                }
            }
        }

        // DAG levels (inputs at 0); node ids are already topological.
        let mut level = vec![0u32; nodes.len()];
        for (n, node) in nodes.iter().enumerate() {
            if let Node::Op { a, b, .. } = node {
                level[n] = 1 + level[*a].max(b.map_or(0, |b| level[b]));
            }
        }

        // Schedule: needed ops ordered by (level, id) so independent
        // same-level subexpressions sit adjacent in the emitted batch.
        let mut order: Vec<usize> = (0..nodes.len())
            .filter(|&n| needed[n] && matches!(nodes[n], Node::Op { .. }))
            .collect();
        order.sort_by_key(|&n| (level[n], n));
        let mut pos = vec![usize::MAX; nodes.len()];
        for (p, &n) in order.iter().enumerate() {
            pos[n] = p;
        }

        // Last use of every node: the latest schedule position reading
        // it; output nodes are also read by the end-of-kernel write-back
        // (one past the schedule).
        let end = order.len();
        let mut last_use = vec![0usize; nodes.len()];
        for &n in &order {
            if let Node::Op { a, b, .. } = &nodes[n] {
                last_use[*a] = last_use[*a].max(pos[n]);
                if let Some(b) = b {
                    last_use[*b] = last_use[*b].max(pos[n]);
                }
            }
        }
        for &(_, n) in &outputs {
            last_use[n] = end;
        }

        // Direct output writes: output (v, n) writes vector v straight
        // from op n when nothing scheduled after n still reads v's old
        // contents (the op itself may — operands latch before commit).
        let mut direct: HashMap<usize, usize> = HashMap::new(); // node → vector
        let mut claimed: Vec<usize> = Vec::new();
        for &(v, n) in &outputs {
            if !matches!(nodes[n], Node::Op { .. }) || direct.contains_key(&n) {
                continue;
            }
            let old_live = b
                .input_of
                .get(&v)
                .map(|&inp| needed[inp] && last_use[inp] > pos[n])
                .unwrap_or(false);
            if !old_live && !claimed.contains(&v) {
                direct.insert(n, v);
                claimed.push(v);
            }
        }

        // Linear-scan scratch allocation over the schedule. Freeing an
        // operand's slot *before* placing the result lets the result
        // overwrite a dying operand in place.
        let mut loc = vec![None::<Loc>; nodes.len()];
        for (n, node) in nodes.iter().enumerate() {
            if let Node::Input(v) = node {
                loc[n] = Some(Loc::Vector(*v));
            }
        }
        let mut free: Vec<u32> = Vec::new();
        let mut next_slot: u32 = 0;
        let mut steps: Vec<Step> = Vec::with_capacity(order.len() + outputs.len());
        for (p, &n) in order.iter().enumerate() {
            let Node::Op { kind, a, b: b2 } = &nodes[n] else {
                unreachable!("schedule holds ops only")
            };
            // An op may read one node twice (`nand(x, x)` from the XOR
            // network); its slot must free exactly once or the free
            // list grows a stale duplicate that later clobbers a live
            // value.
            let b_arg = if *b2 == Some(*a) { None } else { *b2 };
            for arg in [Some(*a), b_arg].into_iter().flatten() {
                if last_use[arg] == p {
                    if let Some(Loc::Scratch(s)) = loc[arg] {
                        // Keep the free list sorted so reuse is
                        // deterministic and low slots stay hot.
                        let at = free.partition_point(|&f| f < s);
                        free.insert(at, s);
                    }
                }
            }
            let dst = if let Some(&v) = direct.get(&n) {
                Loc::Vector(v)
            } else if free.is_empty() {
                let s = next_slot;
                next_slot += 1;
                Loc::Scratch(s)
            } else {
                Loc::Scratch(free.remove(0))
            };
            loc[n] = Some(dst);
            steps.push(Step {
                kind: *kind,
                a: loc[*a].expect("operand scheduled before use"),
                b: b2.map(|b| loc[b].expect("operand scheduled before use")),
                dst,
                copy: false,
            });
        }

        // Write-back hazards: a copy whose source is an *input vector*
        // that this kernel also overwrites (`t = a; a = x; d = t`, or a
        // swap `t = a; a = b; b = t`) must not read it after the
        // overwrite lands. Stage every such source into a scratch slot
        // while its old value is intact — all staging copies precede all
        // write-backs, so write-back order then never matters.
        let out_vectors: Vec<usize> = outputs.iter().map(|&(v, _)| v).collect();
        let mut staged: HashMap<usize, Loc> = HashMap::new();
        for &(v, n) in &outputs {
            if !matches!(nodes[n], Node::Input(_)) || staged.contains_key(&n) {
                continue;
            }
            let Some(Loc::Vector(u)) = loc[n] else { continue };
            if u != v && out_vectors.contains(&u) {
                let s = if free.is_empty() {
                    let s = next_slot;
                    next_slot += 1;
                    s
                } else {
                    free.remove(0)
                };
                steps.push(Step {
                    kind: OpKind::Not, // ignored for copies
                    a: Loc::Vector(u),
                    b: None,
                    dst: Loc::Scratch(s),
                    copy: true,
                });
                staged.insert(n, Loc::Scratch(s));
            }
        }

        // Write-back copies for outputs not already written in place.
        for &(v, n) in &outputs {
            let src = staged
                .get(&n)
                .copied()
                .unwrap_or_else(|| loc[n].expect("output node has a location"));
            if src != Loc::Vector(v) {
                steps.push(Step {
                    kind: OpKind::Not, // ignored for copies
                    a: src,
                    b: None,
                    dst: Loc::Vector(v),
                    copy: true,
                });
            }
        }

        let levels = order.iter().map(|&n| level[n]).max().unwrap_or(0);
        KernelPlan {
            vectors: b.vectors,
            steps,
            output_vectors: outputs.iter().map(|&(v, _)| v).collect(),
            cse_hits: b.cse_hits,
            scratch_slots: next_slot,
            levels,
        }
    }

    /// Vector-level ops in the fused schedule (logic steps plus
    /// write-back copies). Each becomes `rows` row-ops across the pool.
    pub fn vector_ops(&self) -> u64 {
        self.steps.len() as u64
    }

    /// Catalog vector names the plan reads or writes, in table order.
    pub fn vector_names(&self) -> impl Iterator<Item = &str> {
        self.vectors.iter().map(String::as_str)
    }

    /// Names of the catalog vectors the kernel writes.
    pub fn output_names(&self) -> impl Iterator<Item = &str> {
        self.output_vectors.iter().map(|&v| self.vectors[v].as_str())
    }

    /// Scratch rows the plan needs per shard for `rows`-row vectors
    /// striped over `shards` shards (slots × the widest stripe).
    pub fn scratch_rows_needed(&self, rows: u64, shards: u32) -> u64 {
        u64::from(self.scratch_slots) * rows.div_ceil(u64::from(shards.max(1)))
    }

    /// Appends shard `s`'s slice of the fused schedule to `out`.
    ///
    /// `vector_bases[i]` is shard `s`'s first local row of the plan's
    /// `i`-th vector (same order as [`vector_names`](Self::vector_names));
    /// `rows` is the common vector length and `scratch_base` the first
    /// reserved scratch row. Scratch slots stripe exactly like vectors,
    /// so every op's operands and destination are co-resident on `s`.
    pub fn emit_for_shard(
        &self,
        s: u32,
        shards: u32,
        rows: u64,
        vector_bases: &[u64],
        scratch_base: u64,
        out: &mut Vec<RowOp>,
    ) {
        let stride = u64::from(shards.max(1));
        let n = if u64::from(s) >= rows {
            0
        } else {
            (rows - u64::from(s)).div_ceil(stride)
        };
        // Scratch rows interleave by slot (row `k·slots + s`), not by
        // block (`s·stripe + k`): consecutive k of one slot then span
        // subarrays instead of piling into one, which matters because
        // the makespan pricing serialises per subarray. The region is
        // the same `slots × stripe` rows either way.
        let slots = u64::from(self.scratch_slots.max(1));
        let resolve = |loc: Loc, k: u64| match loc {
            Loc::Vector(v) => RowId(vector_bases[v] + k),
            Loc::Scratch(slot) => RowId(scratch_base + k * slots + u64::from(slot)),
        };
        for step in &self.steps {
            for k in 0..n {
                let a = resolve(step.a, k);
                let dst = resolve(step.dst, k);
                out.push(if step.copy {
                    RowOp::Copy { src: a, dst }
                } else {
                    match (step.kind, step.b.map(|b| resolve(b, k))) {
                        (OpKind::Not, None) => RowOp::Not { src: a, dst },
                        (OpKind::And, Some(b)) => RowOp::And { a, b, dst },
                        (OpKind::Or, Some(b)) => RowOp::Or { a, b, dst },
                        (OpKind::Nand, Some(b)) => RowOp::Nand { a, b, dst },
                        (OpKind::Nor, Some(b)) => RowOp::Nor { a, b, dst },
                        (kind, b) => unreachable!("malformed step {kind:?}/{b:?}"),
                    }
                });
            }
        }
    }
}

/// DAG construction state during lowering.
struct Builder {
    nodes: Vec<Node>,
    /// Hash-cons table over op nodes.
    cons: HashMap<(OpKind, usize, usize), usize>,
    /// Vector-table index → its input node, if one exists.
    input_of: HashMap<usize, usize>,
    vectors: Vec<String>,
    vector_idx: HashMap<String, usize>,
    env: HashMap<String, usize>,
    cse_hits: u64,
}

impl Builder {
    fn vector_id(&mut self, name: &str) -> usize {
        if let Some(&v) = self.vector_idx.get(name) {
            return v;
        }
        let v = self.vectors.len();
        self.vectors.push(name.to_owned());
        self.vector_idx.insert(name.to_owned(), v);
        v
    }

    fn input(&mut self, vector: usize) -> usize {
        if let Some(&n) = self.input_of.get(&vector) {
            return n;
        }
        let n = self.nodes.len();
        self.nodes.push(Node::Input(vector));
        self.input_of.insert(vector, n);
        n
    }

    fn mk(&mut self, kind: OpKind, a: usize, b: Option<usize>) -> usize {
        let key = (kind, a, b.unwrap_or(usize::MAX));
        if let Some(&n) = self.cons.get(&key) {
            self.cse_hits += 1;
            return n;
        }
        let n = self.nodes.len();
        self.nodes.push(Node::Op { kind, a, b });
        self.cons.insert(key, n);
        n
    }

    /// `mk` for commutative gates: operands are canonicalised so `a∘b`
    /// unifies with `b∘a` in the cons table.
    fn mk_sym(&mut self, kind: OpKind, mut a: usize, mut b: usize) -> usize {
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        self.mk(kind, a, Some(b))
    }

    /// Lowers `a ^ b` to the four-gate NAND network
    /// `nand(nand(a, nab), nand(b, nab))` where `nab = nand(a, b)`.
    /// Every gate is native (6-cycle) and hash-consed — repeated XORs of
    /// the same operands dedup gate-by-gate, and a `~` over the result
    /// complements the final NAND into an AND via [`OpKind::complement`].
    fn mk_xor(&mut self, a: usize, b: usize) -> usize {
        let nab = self.mk_sym(OpKind::Nand, a, b);
        let x = self.mk_sym(OpKind::Nand, a, nab);
        let y = self.mk_sym(OpKind::Nand, b, nab);
        self.mk_sym(OpKind::Nand, x, y)
    }

    fn lower(
        &mut self,
        expr: &Expr,
        bound: &HashMap<&str, &str>,
    ) -> Result<usize, KernelPlanError> {
        match expr {
            Expr::Name(name) => {
                if let Some(&n) = self.env.get(name) {
                    return Ok(n);
                }
                match bound.get(name.as_str()) {
                    Some(&vector) => {
                        let v = self.vector_id(vector);
                        Ok(self.input(v))
                    }
                    None => Err(KernelPlanError::UnknownName { name: name.clone() }),
                }
            }
            Expr::Not(x) => {
                let inner = self.lower(x, bound)?;
                Ok(match self.nodes[inner].clone() {
                    // ~~x cancels; ~(a∘b) fuses into the inverting gate.
                    Node::Op {
                        kind: OpKind::Not,
                        a,
                        ..
                    } => a,
                    Node::Op { kind, a, b } if kind.complement().is_some() => {
                        self.mk(kind.complement().expect("checked"), a, b)
                    }
                    _ => self.mk(OpKind::Not, inner, None),
                })
            }
            Expr::And(x, y) | Expr::Or(x, y) | Expr::Xor(x, y) => {
                let a = self.lower(x, bound)?;
                let b = self.lower(y, bound)?;
                Ok(match expr {
                    Expr::And(..) => self.mk_sym(OpKind::And, a, b),
                    Expr::Or(..) => self.mk_sym(OpKind::Or, a, b),
                    _ => self.mk_xor(a, b),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use felim_arch::batch::execute_batch;
    use felim_arch::geometry::MemoryGeometry;
    use felim_arch::{BulkBackend, FeramBackend};

    fn bind(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|&(d, v)| (d.to_owned(), v.to_owned()))
            .collect()
    }

    fn plan(src: &str, pairs: &[(&str, &str)]) -> KernelPlan {
        KernelPlan::compile(&Program::parse(src).unwrap(), &bind(pairs)).unwrap()
    }

    #[test]
    fn cse_unifies_repeated_and_commuted_subexpressions() {
        let p = plan(
            "d = (a & b) ^ (b & a)\ne = a & b",
            &[("a", "va"), ("b", "vb"), ("d", "vd"), ("e", "ve")],
        );
        // (a&b) built once; (b&a), the second (a&b), and one NAND of the
        // XOR network (its two middle gates coincide when both operands
        // are the same node) are all hits.
        assert_eq!(p.cse_hits, 3);
        // One AND + three distinct XOR-network NANDs, all direct-written.
        assert!(p.vector_ops() <= 4, "steps: {}", p.vector_ops());
    }

    #[test]
    fn not_fuses_into_inverting_gates() {
        let p = plan(
            "d = ~(a & b)\ne = ~(a ^ b)\nf = ~~a",
            &[("a", "va"), ("b", "vb"), ("d", "vd"), ("e", "ve"), ("f", "vf")],
        );
        // d is one direct-written NAND (shared with e's XOR network via
        // CSE); ~(a ^ b) complements the network's final NAND into an
        // AND (3 more gates); f = a is one copy (the double negation
        // cancelled to the input itself).
        assert_eq!(p.vector_ops(), 5);
        assert_eq!(p.cse_hits, 1, "d's NAND is the network's first gate");
        assert_eq!(p.scratch_slots, 2, "two middle gates of the network");
    }

    #[test]
    fn scratch_slots_reuse_dead_temporaries() {
        // A long dependent chain: every temporary dies at its single
        // use, so two slots suffice no matter the chain length (and the
        // final op direct-writes the output).
        let p = plan(
            "t1 = a ^ b\nt2 = t1 & a\nt3 = t2 | b\nt4 = t3 ^ a\nd = t4 & b",
            &[("a", "va"), ("b", "vb"), ("d", "vd")],
        );
        assert!(
            p.scratch_slots <= 2,
            "chain reuses dying slots, got {}",
            p.scratch_slots
        );
        // Two XORs lower to four NANDs each; AND, OR, and the final
        // direct-written AND are one op apiece.
        assert_eq!(p.vector_ops(), 11, "no write-back copy when direct");
    }

    #[test]
    fn dead_statements_are_eliminated() {
        let p = plan(
            "unused = a | b\nd = a & b",
            &[("a", "va"), ("b", "vb"), ("d", "vd")],
        );
        assert_eq!(p.vector_ops(), 1, "dead OR must not be scheduled");
    }

    #[test]
    fn in_place_update_of_an_input_is_scheduled_safely() {
        // `s = s ^ fb` writes the vector it reads: legal, four gates
        // with the final NAND landing on `vs` in place.
        let p = plan("s = s ^ fb", &[("s", "vs"), ("fb", "vfb")]);
        assert_eq!(p.vector_ops(), 4);
        assert_eq!(p.scratch_slots, 2);
        assert_eq!(p.output_names().collect::<Vec<_>>(), vec!["vs"]);
    }

    #[test]
    fn direct_write_blocked_while_old_value_live() {
        // `t` reads d's *old* value and is scheduled after d's new node
        // (`a & b`, level 1), so d cannot be written in place — it takes
        // a scratch slot and a write-back copy.
        let p = plan(
            "t = (a & b) ^ d\nd = a & b\ne = t ^ d",
            &[("a", "va"), ("b", "vb"), ("d", "vd"), ("e", "ve")],
        );
        // and + 4 gates per XOR (e's direct to ve) + one copy slot→vd.
        assert_eq!(p.vector_ops(), 10);
        assert_eq!(p.cse_hits, 1, "d's RHS unifies with t's subterm");
        assert!(p.scratch_slots >= 1);
    }

    #[test]
    fn plan_errors_are_typed() {
        let prog = Program::parse("d = a & ghost").unwrap();
        assert_eq!(
            KernelPlan::compile(&prog, &bind(&[("a", "va"), ("d", "vd")])).unwrap_err(),
            KernelPlanError::UnknownName {
                name: "ghost".into()
            }
        );
        let prog = Program::parse("t = a & a").unwrap();
        assert_eq!(
            KernelPlan::compile(&prog, &bind(&[("a", "va")])).unwrap_err(),
            KernelPlanError::NoOutputs
        );
        let prog = Program::parse("d = a").unwrap();
        assert_eq!(
            KernelPlan::compile(&prog, &bind(&[("a", "va"), ("a", "vb"), ("d", "vd")]))
                .unwrap_err(),
            KernelPlanError::DuplicateBinding { name: "a".into() }
        );
        assert_eq!(
            KernelPlan::compile(&prog, &bind(&[("a", "v"), ("d", "v")])).unwrap_err(),
            KernelPlanError::DuplicateBinding { name: "v".into() }
        );
        for e in [
            KernelPlanError::UnknownName { name: "x".into() },
            KernelPlanError::DuplicateBinding { name: "x".into() },
            KernelPlanError::NoOutputs,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    /// Write-backs must respect statement-order reads: a rename of an
    /// input that the kernel also rebinds, and a full swap, both need
    /// the old value staged before the overwrite lands.
    #[test]
    fn write_back_order_preserves_old_values() {
        let check = |src: &str, pairs: &[(&str, &str)], inputs: &[(&str, u64)]| {
            let program = Program::parse(src).unwrap();
            let p = KernelPlan::compile(&program, &bind(pairs)).unwrap();
            let rows = 2u64;
            let mut backend = FeramBackend::new(MemoryGeometry::tiny());
            let words = backend.geometry().row_words();
            let bases: Vec<u64> = p
                .vector_names()
                .enumerate()
                .map(|(i, _)| i as u64 * rows)
                .collect();
            let name_base: HashMap<String, u64> = p
                .vector_names()
                .map(String::from)
                .zip(bases.iter().copied())
                .collect();
            let mut env = std::collections::BTreeMap::new();
            for &(dsl, value) in inputs {
                env.insert(dsl.to_owned(), value);
                let vector = pairs.iter().find(|&&(d, _)| d == dsl).unwrap().1;
                for k in 0..rows {
                    let data = vec![value; words];
                    backend
                        .install_row(RowId(name_base[vector] + k), &data)
                        .unwrap();
                }
            }
            let mut ops = Vec::new();
            p.emit_for_shard(0, 1, rows, &bases, 600, &mut ops);
            let report = execute_batch(&mut backend, &ops);
            assert!(report.outputs.iter().all(Result::is_ok));
            let expect = program.eval_words(&env);
            for &(dsl, vector) in pairs {
                let Some(want) = expect.get(dsl) else { continue };
                let got = backend.read_row(RowId(name_base[vector])).unwrap()[0];
                assert_eq!(got, *want, "vector {vector} of `{src}`");
            }
        };
        // Rename + rebind: d must hold the OLD a.
        check(
            "t = a\na = x\nd = t",
            &[("a", "va"), ("x", "vx"), ("d", "vd")],
            &[("a", 0xAAAA), ("x", 0x5555)],
        );
        // Full swap: a cyclic write-back dependency.
        check(
            "t = a\na = b\nb = t",
            &[("a", "va"), ("b", "vb")],
            &[("a", 0x1111), ("b", 0x2222)],
        );
        // Op-valued output feeding a rename stays direct-written.
        check(
            "d = a & b\ne = d\na = a | b",
            &[("a", "va"), ("b", "vb"), ("d", "vd"), ("e", "ve")],
            &[("a", 0xF0F0), ("b", 0x3C3C)],
        );
    }

    /// Single-shard end-to-end: emit the plan onto a raw backend and
    /// compare every output word against the DSL's host-side oracle.
    #[test]
    fn emission_matches_host_eval_single_shard() {
        let src = "t = a & b\n\
                   u = t ^ ~c\n\
                   d = u | (a & b)\n\
                   e = ~(u ^ c)\n\
                   c = c ^ t"; // in-place update of an input
        let program = Program::parse(src).unwrap();
        let pairs = [
            ("a", "va"),
            ("b", "vb"),
            ("c", "vc"),
            ("d", "vd"),
            ("e", "ve"),
        ];
        let p = KernelPlan::compile(&program, &bind(&pairs)).unwrap();

        let rows = 4u64;
        let mut backend = FeramBackend::new(MemoryGeometry::tiny());
        let words = backend.geometry().row_words();
        // Lay vectors out contiguously: vector i at rows [i·rows, ...).
        let bases: Vec<u64> = p
            .vector_names()
            .enumerate()
            .map(|(i, _)| i as u64 * rows)
            .collect();
        let name_base: HashMap<String, u64> = p
            .vector_names()
            .map(String::from)
            .zip(bases.iter().copied())
            .collect();
        let seed_word = |name: &str, k: u64, j: usize| {
            felim_exec::derive_seed(0xC0FFEE, felim_exec::derive_seed(k, j as u64))
                ^ felim_exec::hash::fnv1a_str(name)
        };
        for (dsl, vector) in &pairs[..3] {
            let base = name_base[*vector];
            for k in 0..rows {
                let data: Vec<u64> = (0..words).map(|j| seed_word(dsl, k, j)).collect();
                backend.install_row(RowId(base + k), &data).unwrap();
            }
        }

        let scratch_base = 600; // clear of the laid-out vectors
        let mut ops = Vec::new();
        p.emit_for_shard(0, 1, rows, &bases, scratch_base, &mut ops);
        let report = execute_batch(&mut backend, &ops);
        assert!(report.outputs.iter().all(Result::is_ok));

        for k in 0..rows {
            for j in 0..words {
                let mut env = std::collections::BTreeMap::new();
                for (dsl, _) in &pairs[..3] {
                    env.insert((*dsl).to_owned(), seed_word(dsl, k, j));
                }
                let expect = program.eval_words(&env);
                for (dsl, vector) in &pairs {
                    if !["c", "d", "e"].contains(dsl) {
                        continue;
                    }
                    let got = backend.read_row(RowId(name_base[*vector] + k)).unwrap()[j];
                    assert_eq!(
                        got, expect[*dsl],
                        "vector {vector} row {k} word {j} of `{src}`"
                    );
                }
            }
        }
    }
}
