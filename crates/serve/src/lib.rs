//! # felim-serve — the bulk-bitwise request service
//!
//! Everything below this crate computes; this crate *serves*. It is the
//! front door the workspace previously lacked: a multi-tenant request
//! service over a pool of sharded [`BulkBackend`](felim_arch::BulkBackend)
//! instances (2T-nC FeRAM or the Ambit DRAM baseline, optionally wrapped
//! in a [`ReliabilityController`](felim_arch::ReliabilityController)),
//! with the controls a production memory service needs:
//!
//! * **Sharding & routing** ([`catalog`]) — clients address *named
//!   bit-vectors*; vector rows stripe across shards
//!   ([`ShardMap`](felim_arch::shard::ShardMap) row-range ownership), so
//!   every logical op splits into same-shard batches of equal size.
//! * **Batching** ([`shard`]) — same-shard commands coalesce into
//!   [`RowOp`](felim_arch::batch::RowOp) batches dispatched through
//!   [`execute_batch`](felim_arch::batch::execute_batch), amortising
//!   per-op dispatch and letting the subarray-parallel
//!   [`schedule`](felim_arch::schedule::schedule) replay price each
//!   batch as a makespan rather than a serial sum.
//! * **Kernel fusion** ([`dsl`], [`plan`]) — a [`LogicalOp::Kernel`]
//!   request carries a multi-statement expression program
//!   (`d = (a & b) ^ ~c`) compiled server-side into one fused per-shard
//!   schedule: common subexpressions deduplicate, `~` fuses into the
//!   array's inverting gates, and temporaries live in reserved scratch
//!   rows instead of round-tripping through the catalog. A
//!   content-addressed read cache keyed on [`fnv1a_words`] digests
//!   skips backend row reads for vectors unchanged since their last
//!   read (`serve.cache.*` telemetry).
//! * **Concurrency with determinism** ([`service`]) — shards execute on
//!   a persistent [`ExecPool`](felim_exec::ExecPool); results reduce in
//!   shard-index order and responses in request order, so identical
//!   request logs produce **byte-identical response logs at any worker
//!   count** (pinned by `tests/service.rs`).
//! * **Admission control & graceful degradation** — bounded per-shard
//!   queues with typed [`ServeError::Overloaded`] backpressure,
//!   per-tenant fair-share quotas, deadline-based shedding, and
//!   retry-with-deterministic-jitter for
//!   [`ArchError::Uncorrectable`] escalations. Every submission gets exactly one typed response —
//!   the service never drops a request silently.
//!
//! ## Quickstart
//!
//! ```
//! use felim_serve::{BulkService, LogicalOp, ServiceConfig, TenantId};
//!
//! # fn main() -> Result<(), felim_serve::ServeError> {
//! let mut service = BulkService::new(ServiceConfig::small(2))?;
//! service.create_vector("a", 8)?;
//! service.create_vector("b", 8)?;
//! service.create_vector("d", 8)?;
//!
//! let t = TenantId(0);
//! service.submit(t, LogicalOp::Write { dst: "a".into(), words: vec![0b1100] }, None)?;
//! service.submit(t, LogicalOp::Write { dst: "b".into(), words: vec![0b1010] }, None)?;
//! service.submit(t, LogicalOp::Nand { a: "a".into(), b: "b".into(), dst: "d".into() }, None)?;
//! service.drain();
//!
//! let responses = service.take_responses();
//! assert_eq!(responses.len(), 3);
//! assert!(responses.iter().all(|r| r.is_ok()));
//! assert_eq!(service.read_vector("d")?[0][0], !0b1000u64);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod catalog;
pub mod chaos;
pub mod dsl;
pub mod plan;
pub mod remote;
pub mod replica;
pub mod request;
pub mod service;
pub mod shard;
pub mod trace;
pub mod wire;

pub use catalog::{Catalog, VectorPlacement};
pub use chaos::{ChaosAction, ChaosProxy, ChaosSpec};
pub use dsl::{KernelParseError, Program};
pub use plan::{KernelPlan, KernelPlanError};
pub use remote::{
    ConnectRetry, PoolMember, RemoteShard, ShardHost, ShardHostChild, ShardPool, SlotRegistry,
    SNAPSHOT_CHUNK_LEN,
};
pub use replica::{ReplicaStats, ReplicationConfig};
pub use request::{fnv1a_words, LogicalOp, RequestId, ResponsePayload, ServeResponse, TenantId};
pub use service::{BulkService, LatencySummary, ServiceConfig, ServiceReport, ServiceTier};
pub use shard::Technology;
pub use trace::{generate_trace, TraceEvent, TraceSpec};
pub use wire::{Frame, TransportErrorKind, WireError, MAX_FRAME, WIRE_VERSION};

use felim_arch::shard::ShardId;
use felim_arch::ArchError;
use serde::Serialize;

/// Typed failure of a service submission or request.
///
/// Every rejected or failed request carries exactly one of these in its
/// [`ServeResponse`]; admission-time rejections also surface as the
/// `Err` of [`BulkService::submit`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum ServeError {
    /// A bounded shard queue is full — backpressure; retry later.
    Overloaded {
        /// The saturated shard.
        shard: ShardId,
        /// Its queue depth at rejection (== the configured bound).
        depth: usize,
    },
    /// The tenant has reached its fair-share quota of queued requests.
    QuotaExceeded {
        /// The over-quota tenant.
        tenant: TenantId,
        /// Requests it already has queued.
        queued: usize,
        /// Its quota.
        quota: usize,
    },
    /// The request's deadline passed before it reached a batch; it was
    /// shed rather than executed late.
    DeadlineExceeded {
        /// The absolute deadline tick.
        deadline_tick: u64,
        /// The tick at which it was shed.
        now_tick: u64,
    },
    /// No vector of this name is registered.
    UnknownVector {
        /// The unknown name.
        vector: String,
    },
    /// A vector of this name already exists.
    VectorExists {
        /// The duplicate name.
        vector: String,
    },
    /// Vectors in one op must have identical row counts.
    ShapeMismatch {
        /// First vector.
        left: String,
        /// Its rows.
        left_rows: u64,
        /// Second vector.
        right: String,
        /// Its rows.
        right_rows: u64,
    },
    /// Zero-row vectors cannot be created.
    EmptyVector {
        /// The offending name.
        vector: String,
    },
    /// A `Write` needs a non-empty word pattern.
    EmptyPattern,
    /// A shard's data region cannot hold the requested stripe.
    CapacityExhausted {
        /// The full shard.
        shard: ShardId,
        /// Rows the stripe needed there.
        requested_rows: u64,
        /// Rows still free there.
        free_rows: u64,
    },
    /// The tenant id is outside the configured tenant set.
    UnknownTenant {
        /// The offending tenant.
        tenant: TenantId,
        /// Tenants configured.
        tenants: u32,
    },
    /// A kernel request's program text failed to parse.
    KernelParse {
        /// Byte offset of the failure in the program text.
        position: usize,
        /// What the parser expected.
        message: String,
    },
    /// A kernel parsed but could not be planned against its bindings
    /// (unbound name, duplicate binding, or no outputs).
    KernelPlan {
        /// The planner's diagnosis.
        message: String,
    },
    /// A kernel's temporaries need more reserved scratch rows per shard
    /// than the service reserves.
    ScratchExhausted {
        /// Scratch rows the plan needs on the widest stripe.
        needed_rows: u64,
        /// Rows the configuration reserves per shard.
        budget_rows: u64,
    },
    /// The service configuration is self-inconsistent and the service
    /// was not built.
    InvalidConfig {
        /// What is wrong with it.
        message: String,
    },
    /// An [`ArchError::Uncorrectable`] escalation survived every
    /// jittered retry.
    RetriesExhausted {
        /// Attempts made (initial try + retries).
        attempts: u32,
        /// The final escalation.
        source: ArchError,
    },
    /// The backend failed with a non-retryable fault.
    Backend {
        /// The underlying fault.
        source: ArchError,
    },
    /// A remote shard's transport failed: torn frame, short read,
    /// corrupt payload, version mismatch, or peer loss. The request is
    /// failed honestly — never silently dropped or retried against a
    /// shard whose state is unknown.
    Transport {
        /// The peer address (`host:port`) of the failing shard host.
        peer: String,
        /// The transport failure class.
        kind: wire::TransportErrorKind,
        /// Human-readable diagnosis from the wire layer.
        detail: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { shard, depth } => {
                write!(f, "{shard} queue full at depth {depth} — back off and retry")
            }
            ServeError::QuotaExceeded {
                tenant,
                queued,
                quota,
            } => write!(f, "{tenant} at fair-share quota ({queued}/{quota} queued)"),
            ServeError::DeadlineExceeded {
                deadline_tick,
                now_tick,
            } => write!(f, "deadline tick {deadline_tick} passed (now {now_tick}); shed"),
            ServeError::UnknownVector { vector } => write!(f, "unknown vector {vector:?}"),
            ServeError::VectorExists { vector } => write!(f, "vector {vector:?} already exists"),
            ServeError::ShapeMismatch {
                left,
                left_rows,
                right,
                right_rows,
            } => write!(
                f,
                "vectors {left:?} ({left_rows} rows) and {right:?} ({right_rows} rows) differ"
            ),
            ServeError::EmptyVector { vector } => {
                write!(f, "vector {vector:?} must have at least one row")
            }
            ServeError::EmptyPattern => write!(f, "write pattern must be non-empty"),
            ServeError::CapacityExhausted {
                shard,
                requested_rows,
                free_rows,
            } => write!(
                f,
                "{shard} cannot hold {requested_rows} more rows ({free_rows} free)"
            ),
            ServeError::UnknownTenant { tenant, tenants } => {
                write!(f, "{tenant} outside the configured {tenants} tenants")
            }
            ServeError::KernelParse { position, message } => {
                write!(f, "kernel parse error at byte {position}: {message}")
            }
            ServeError::KernelPlan { message } => write!(f, "kernel plan error: {message}"),
            ServeError::ScratchExhausted {
                needed_rows,
                budget_rows,
            } => write!(
                f,
                "kernel needs {needed_rows} scratch rows per shard, budget is {budget_rows}"
            ),
            ServeError::InvalidConfig { message } => {
                write!(f, "invalid service configuration: {message}")
            }
            ServeError::RetriesExhausted { attempts, source } => {
                write!(f, "uncorrectable after {attempts} attempts: {source}")
            }
            ServeError::Backend { source } => write!(f, "backend fault: {source}"),
            ServeError::Transport { peer, kind, detail } => {
                write!(f, "transport failure ({kind}) on shard host {peer}: {detail}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::RetriesExhausted { source, .. } | ServeError::Backend { source } => {
                Some(source)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        let cases: Vec<ServeError> = vec![
            ServeError::Overloaded {
                shard: ShardId(1),
                depth: 32,
            },
            ServeError::QuotaExceeded {
                tenant: TenantId(0),
                queued: 8,
                quota: 8,
            },
            ServeError::DeadlineExceeded {
                deadline_tick: 5,
                now_tick: 9,
            },
            ServeError::UnknownVector { vector: "v".into() },
            ServeError::VectorExists { vector: "v".into() },
            ServeError::ShapeMismatch {
                left: "a".into(),
                left_rows: 4,
                right: "b".into(),
                right_rows: 5,
            },
            ServeError::EmptyVector { vector: "v".into() },
            ServeError::EmptyPattern,
            ServeError::CapacityExhausted {
                shard: ShardId(0),
                requested_rows: 10,
                free_rows: 2,
            },
            ServeError::UnknownTenant {
                tenant: TenantId(9),
                tenants: 4,
            },
            ServeError::KernelParse {
                position: 7,
                message: "expected `)`".into(),
            },
            ServeError::KernelPlan {
                message: "kernel reads unbound name `x`".into(),
            },
            ServeError::ScratchExhausted {
                needed_rows: 96,
                budget_rows: 64,
            },
            ServeError::InvalidConfig {
                message: "need at least one shard".into(),
            },
            ServeError::RetriesExhausted {
                attempts: 4,
                source: ArchError::Uncorrectable {
                    row: 3,
                    words: vec![1],
                },
            },
            ServeError::Backend {
                source: ArchError::RowOutOfRange { row: 99, rows: 10 },
            },
            ServeError::Transport {
                peer: "127.0.0.1:4801".into(),
                kind: wire::TransportErrorKind::ShortRead,
                detail: "torn frame: eof after 3/8 bytes of payload".into(),
            },
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
            let _ = serde_json::to_string(&e).unwrap();
        }
    }

    #[test]
    fn error_source_chains_to_arch() {
        use std::error::Error as _;
        let e = ServeError::Backend {
            source: ArchError::RowOutOfRange { row: 1, rows: 1 },
        };
        assert!(e.source().is_some());
        assert!(ServeError::EmptyPattern.source().is_none());
    }
}
