//! The shard transport wire format: length-prefixed, CRC-32-guarded
//! binary frames over any [`Read`]/[`Write`] byte stream.
//!
//! PR 7/8 stop at one process: every shard is a `Mutex<Shard>` in the
//! service's own address space. This module is the first half of the
//! multi-node story (the other half is [`remote`](crate::remote)): a
//! vendored-only frame codec that carries the existing
//! [`RowOp`] batch schedules and their [`ShardBatchOutcome`]s across a
//! `std::net::TcpStream` — no async runtime, no serde-derived wire
//! structs, every integer little-endian and every `f64` moved as its
//! IEEE-754 bit pattern so outcomes are **bit-identical** on both ends.
//!
//! # Frame layout
//!
//! ```text
//! ┌────────────┬──────────────────────────────┬─────────────┐
//! │ len: u32LE │ payload = tag: u8 ++ body    │ crc32: u32LE│
//! └────────────┴──────────────────────────────┴─────────────┘
//! ```
//!
//! * `len` counts the payload only (tag + body), capped at
//!   [`MAX_FRAME`]; a larger prefix is rejected **before** any
//!   allocation ([`TransportErrorKind::Oversize`]).
//! * `crc32` is the IEEE CRC-32 of the payload. A mismatch — one
//!   flipped bit anywhere in flight — is
//!   [`TransportErrorKind::Corrupt`], never a mis-decoded frame.
//! * EOF cleanly **between** frames is [`TransportErrorKind::PeerLost`]
//!   (the peer went away); EOF **inside** a frame is
//!   [`TransportErrorKind::ShortRead`] (a torn frame). The distinction
//!   matters operationally: the first is a dead shardd, the second a
//!   cut mid-sentence.
//!
//! Sessions open with a [`Frame::Hello`] / [`Frame::HelloAck`]
//! handshake pinning [`WIRE_VERSION`] and the shard's construction
//! parameters (technology, geometry, reliability tier **with the
//! already-derived per-shard drift seed**), so a remote shard is built
//! from exactly the same inputs as a local one — the root of the
//! byte-identical settlement guarantee.

use crate::shard::{ShardBatchOutcome, Technology};
use felim_arch::batch::{RowOp, RowOpOutput};
use felim_arch::drift::DriftSpec;
use felim_arch::geometry::MemoryGeometry;
use felim_arch::ArchError;
use serde::Serialize;
use std::io::{Read, Write};

/// Protocol revision carried in every [`Frame::Hello`]. Bump on any
/// frame-layout change; mismatched peers refuse each other with
/// [`TransportErrorKind::VersionMismatch`] instead of mis-decoding.
///
/// Version history: v1 was the PR 9 batch/read transport; v2 adds the
/// replication frames (slot-addressed sessions, snapshot transfer,
/// health polling) for stripe failover.
pub const WIRE_VERSION: u32 = 2;

/// Upper bound on one frame's payload, bytes. A batch of row-writes
/// against the paper's 8 KB rows stays far below this; anything larger
/// on the wire is a corrupt or hostile length prefix.
pub const MAX_FRAME: usize = 64 << 20;

/// IEEE CRC-32 lookup table (reflected polynomial `0xEDB8_8320`).
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC-32 of `bytes` (the zlib/ethernet polynomial).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// How a transport interaction failed — the typed taxonomy behind
/// [`ServeError::Transport`](crate::ServeError::Transport).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TransportErrorKind {
    /// The stream ended inside a frame: a torn frame or short read.
    ShortRead,
    /// The frame arrived whole but failed its CRC or decoded to
    /// nonsense (unknown tag, trailing bytes, malformed body).
    Corrupt,
    /// The length prefix exceeds [`MAX_FRAME`] — rejected before
    /// allocation.
    Oversize,
    /// The peer speaks a different [`WIRE_VERSION`].
    VersionMismatch,
    /// The peer is gone: connection refused, reset, or closed at a
    /// frame boundary.
    PeerLost,
    /// Framing was intact but the conversation was not: an unexpected
    /// frame type or an out-of-order sequence number.
    Protocol,
}

impl TransportErrorKind {
    /// Stable lower-snake label for telemetry and reports.
    pub fn label(self) -> &'static str {
        match self {
            TransportErrorKind::ShortRead => "short_read",
            TransportErrorKind::Corrupt => "corrupt",
            TransportErrorKind::Oversize => "oversize",
            TransportErrorKind::VersionMismatch => "version_mismatch",
            TransportErrorKind::PeerLost => "peer_lost",
            TransportErrorKind::Protocol => "protocol",
        }
    }
}

impl std::fmt::Display for TransportErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A typed transport failure: what went wrong plus a human diagnosis.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WireError {
    /// The failure class.
    pub kind: TransportErrorKind,
    /// Human-readable diagnosis (offsets, expected/got values…).
    pub detail: String,
}

impl WireError {
    /// Builds an error of `kind` with a formatted diagnosis.
    pub fn new(kind: TransportErrorKind, detail: impl Into<String>) -> Self {
        Self {
            kind,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

impl std::error::Error for WireError {}

/// One protocol message. The session grammar:
///
/// ```text
/// client: Hello ─────────▶            (version + shard construction)
///            ◀───────── HelloAck      (version + data_rows)
/// client: Batch{seq}* / ReadRow{seq}* ─▶   (pipelined, seq-tagged)
///            ◀─ BatchReply{seq} / ReadRowReply{seq}  (in seq order)
/// client: Shutdown ──────▶            (then both sides close)
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → daemon: open a session and construct the hosted shard.
    Hello {
        /// The client's [`WIRE_VERSION`].
        version: u32,
        /// Memory technology of the hosted shard.
        technology: Technology,
        /// Geometry of the hosted shard's array.
        geometry: MemoryGeometry,
        /// `None` hosts a baseline shard; `Some((drift, scrub_s))` a
        /// protected one. The drift seed must arrive **already derived
        /// for this shard index** — the daemon applies it verbatim.
        tier: Option<(DriftSpec, f64)>,
        /// Daemon-local slot this session addresses. One daemon hosts
        /// many shards of one service (connection multiplexing); each
        /// session names its slot at handshake. Distinct sessions with
        /// distinct slots coexist on one daemon.
        slot: u64,
        /// `false` (fresh) constructs a new shard at `slot`, replacing
        /// any prior occupant; `true` (resume) attaches to the shard
        /// already at `slot` — used by failover rebuild to reconnect and
        /// restore state without losing the slot's identity.
        resume: bool,
    },
    /// Daemon → client: session accepted.
    HelloAck {
        /// The daemon's [`WIRE_VERSION`].
        version: u32,
        /// Data rows of the constructed shard (client sanity-checks
        /// this against its local shards).
        data_rows: u64,
    },
    /// Client → daemon: execute one coalesced batch.
    Batch {
        /// Client-chosen sequence number; replies echo it.
        seq: u64,
        /// Virtual seconds to advance the reliability clock.
        tick_s: f64,
        /// The batch schedule, in execution order.
        ops: Vec<RowOp>,
    },
    /// Daemon → client: one batch's outcome.
    BatchReply {
        /// Echo of the request's sequence number.
        seq: u64,
        /// The full outcome — outputs, cycles, energy, maintenance.
        outcome: ShardBatchOutcome,
    },
    /// Client → daemon: maintenance read of one local row.
    ReadRow {
        /// Client-chosen sequence number; the reply echoes it.
        seq: u64,
        /// The shard-local row to read.
        row: u64,
    },
    /// Daemon → client: a maintenance read's result.
    ReadRowReply {
        /// Echo of the request's sequence number.
        seq: u64,
        /// The row's words, or the backend's typed fault.
        result: Result<Vec<u64>, ArchError>,
    },
    /// Client → daemon: end the session; the daemon drops the shard.
    Shutdown,
    /// Client → daemon: request one chunk of the hosted shard's state
    /// snapshot, starting at `offset`. Offset-addressed, so an
    /// interrupted transfer resumes where it left off instead of
    /// restarting.
    SnapshotPull {
        /// Client-chosen sequence number; the reply echoes it.
        seq: u64,
        /// Byte offset into the snapshot to start from.
        offset: u64,
        /// Upper bound on the chunk size the client will accept.
        max_len: u64,
    },
    /// Daemon → client: one chunk of the snapshot. `total_len == 0`
    /// means the shard cannot snapshot (e.g. a fault injector is
    /// attached) and `data` is empty.
    SnapshotChunk {
        /// Echo of the request's sequence number.
        seq: u64,
        /// Byte offset of this chunk within the snapshot.
        offset: u64,
        /// Total snapshot length — the client knows when it has it all.
        total_len: u64,
        /// The chunk bytes (CRC-guarded by the frame envelope).
        data: Vec<u8>,
    },
    /// Client → daemon: deliver one chunk of a snapshot to restore into
    /// the hosted shard. When `offset + data.len() == total_len` the
    /// daemon reassembles and restores atomically.
    SnapshotPush {
        /// Client-chosen sequence number; the ack echoes it.
        seq: u64,
        /// Byte offset of this chunk within the snapshot.
        offset: u64,
        /// Total snapshot length being transferred.
        total_len: u64,
        /// The chunk bytes.
        data: Vec<u8>,
    },
    /// Daemon → client: push-chunk acknowledgement. On the final chunk
    /// `ok` reports whether the reassembled snapshot restored cleanly;
    /// on intermediate chunks it reports the chunk was accepted.
    SnapshotPushAck {
        /// Echo of the request's sequence number.
        seq: u64,
        /// Whether the chunk (and, on the last chunk, the restore)
        /// succeeded.
        ok: bool,
    },
    /// Client → daemon: poll the hosted shard's reliability health.
    Health {
        /// Client-chosen sequence number; the reply echoes it.
        seq: u64,
    },
    /// Daemon → client: the shard's [`ControllerHealth`] counters.
    ///
    /// [`ControllerHealth`]: felim_arch::ControllerHealth
    HealthReply {
        /// Echo of the request's sequence number.
        seq: u64,
        /// Words no code could repair (data corruption reached a read).
        uncorrectable_words: u64,
        /// Single-bit data corrections (transparent repairs).
        corrected_bits: u64,
        /// Rows rewritten by patrol scrub after drift decay.
        scrub_rewrites: u64,
        /// Stored bits flipped by the drift fault processes.
        drift_flips: u64,
        /// Worst per-row wear fraction across drift-tracked rows.
        max_wear_fraction: f64,
    },
}

// ---- body primitives (all little-endian; f64 as IEEE-754 bits) ----

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn take_u32(buf: &[u8], pos: &mut usize) -> Option<u32> {
    let bytes = buf.get(*pos..*pos + 4)?;
    *pos += 4;
    Some(u32::from_le_bytes(bytes.try_into().ok()?))
}

fn take_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let bytes = buf.get(*pos..*pos + 8)?;
    *pos += 8;
    Some(u64::from_le_bytes(bytes.try_into().ok()?))
}

fn take_f64(buf: &[u8], pos: &mut usize) -> Option<f64> {
    take_u64(buf, pos).map(f64::from_bits)
}

fn put_words(out: &mut Vec<u8>, words: &[u64]) {
    put_u64(out, words.len() as u64);
    for &w in words {
        put_u64(out, w);
    }
}

fn take_words(buf: &[u8], pos: &mut usize) -> Option<Vec<u64>> {
    let count = take_u64(buf, pos)?;
    // A corrupt count must not drive allocation: every word needs 8
    // bytes that must actually be present.
    if count > ((buf.len() - *pos) / 8) as u64 {
        return None;
    }
    let mut words = Vec::with_capacity(count as usize);
    for _ in 0..count {
        words.push(take_u64(buf, pos)?);
    }
    Some(words)
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u64(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

fn take_bytes(buf: &[u8], pos: &mut usize) -> Option<Vec<u8>> {
    let count = take_u64(buf, pos)?;
    // Same allocation guard as take_words: the bytes must be present.
    if count > (buf.len() - *pos) as u64 {
        return None;
    }
    let bytes = buf[*pos..*pos + count as usize].to_vec();
    *pos += count as usize;
    Some(bytes)
}

fn put_technology(out: &mut Vec<u8>, t: Technology) {
    out.push(match t {
        Technology::Feram => 0,
        Technology::Dram => 1,
    });
}

fn take_technology(buf: &[u8], pos: &mut usize) -> Option<Technology> {
    let tag = *buf.get(*pos)?;
    *pos += 1;
    match tag {
        0 => Some(Technology::Feram),
        1 => Some(Technology::Dram),
        _ => None,
    }
}

fn put_geometry(out: &mut Vec<u8>, g: &MemoryGeometry) {
    put_u64(out, g.capacity_bytes);
    put_u64(out, g.row_bytes);
    put_u64(out, g.rows_per_subarray);
}

fn take_geometry(buf: &[u8], pos: &mut usize) -> Option<MemoryGeometry> {
    Some(MemoryGeometry {
        capacity_bytes: take_u64(buf, pos)?,
        row_bytes: take_u64(buf, pos)?,
        rows_per_subarray: take_u64(buf, pos)?,
    })
}

fn put_drift(out: &mut Vec<u8>, d: &DriftSpec) {
    put_u64(out, d.seed);
    put_f64(out, d.temperature_k);
    put_f64(out, d.retention.tau_300k_s);
    put_f64(out, d.retention.beta);
    put_f64(out, d.retention.activation_ev);
    put_f64(out, d.sense_floor);
    put_f64(out, d.imprint.shift_per_decade_v);
    put_f64(out, d.imprint.onset_s);
    put_f64(out, d.imprint.activation_ev);
    put_f64(out, d.imprint.max_shift_v);
    put_f64(out, d.sense_margin_v);
    put_f64(out, d.disturb_per_read);
    put_f64(out, d.wear_acceleration);
}

fn take_drift(buf: &[u8], pos: &mut usize) -> Option<DriftSpec> {
    // Start from a stock spec and overwrite every field — serve does
    // not depend on felim-ferro, so the nested model structs are
    // reached through DriftSpec's public fields rather than by name.
    let mut d = DriftSpec::quiet(take_u64(buf, pos)?);
    d.temperature_k = take_f64(buf, pos)?;
    d.retention.tau_300k_s = take_f64(buf, pos)?;
    d.retention.beta = take_f64(buf, pos)?;
    d.retention.activation_ev = take_f64(buf, pos)?;
    d.sense_floor = take_f64(buf, pos)?;
    d.imprint.shift_per_decade_v = take_f64(buf, pos)?;
    d.imprint.onset_s = take_f64(buf, pos)?;
    d.imprint.activation_ev = take_f64(buf, pos)?;
    d.imprint.max_shift_v = take_f64(buf, pos)?;
    d.sense_margin_v = take_f64(buf, pos)?;
    d.disturb_per_read = take_f64(buf, pos)?;
    d.wear_acceleration = take_f64(buf, pos)?;
    Some(d)
}

fn put_row_result(out: &mut Vec<u8>, r: &Result<RowOpOutput, ArchError>) {
    match r {
        Ok(output) => {
            out.push(0);
            output.encode(out);
        }
        Err(e) => {
            out.push(1);
            e.encode(out);
        }
    }
}

fn take_row_result(buf: &[u8], pos: &mut usize) -> Option<Result<RowOpOutput, ArchError>> {
    let tag = *buf.get(*pos)?;
    *pos += 1;
    match tag {
        0 => Some(Ok(RowOpOutput::decode(buf, pos)?)),
        1 => Some(Err(ArchError::decode(buf, pos)?)),
        _ => None,
    }
}

fn put_outcome(out: &mut Vec<u8>, o: &ShardBatchOutcome) {
    put_u64(out, o.outputs.len() as u64);
    for r in &o.outputs {
        put_row_result(out, r);
    }
    put_u64(out, o.serial_cycles);
    put_u64(out, o.makespan_cycles);
    put_f64(out, o.energy_nj);
    match &o.maintenance_error {
        None => out.push(0),
        Some(e) => {
            out.push(1);
            e.encode(out);
        }
    }
}

fn take_outcome(buf: &[u8], pos: &mut usize) -> Option<ShardBatchOutcome> {
    let count = take_u64(buf, pos)?;
    // Each output is at least 2 bytes (result tag + body tag).
    if count > ((buf.len() - *pos) / 2) as u64 {
        return None;
    }
    let mut outputs = Vec::with_capacity(count as usize);
    for _ in 0..count {
        outputs.push(take_row_result(buf, pos)?);
    }
    let serial_cycles = take_u64(buf, pos)?;
    let makespan_cycles = take_u64(buf, pos)?;
    let energy_nj = take_f64(buf, pos)?;
    let maintenance_error = match *buf.get(*pos)? {
        0 => {
            *pos += 1;
            None
        }
        1 => {
            *pos += 1;
            Some(ArchError::decode(buf, pos)?)
        }
        _ => return None,
    };
    Some(ShardBatchOutcome {
        outputs,
        serial_cycles,
        makespan_cycles,
        energy_nj,
        maintenance_error,
    })
}

// ---- frame tags ----

const TAG_HELLO: u8 = 1;
const TAG_HELLO_ACK: u8 = 2;
const TAG_BATCH: u8 = 3;
const TAG_BATCH_REPLY: u8 = 4;
const TAG_READ_ROW: u8 = 5;
const TAG_READ_ROW_REPLY: u8 = 6;
const TAG_SHUTDOWN: u8 = 7;
const TAG_SNAPSHOT_PULL: u8 = 8;
const TAG_SNAPSHOT_CHUNK: u8 = 9;
const TAG_SNAPSHOT_PUSH: u8 = 10;
const TAG_SNAPSHOT_PUSH_ACK: u8 = 11;
const TAG_HEALTH: u8 = 12;
const TAG_HEALTH_REPLY: u8 = 13;

/// Serialises a [`ShardBatchOutcome`] into `out` with the wire codec —
/// the canonical byte form the replica layer digests to compare a
/// standby's outcome against its primary's.
pub(crate) fn encode_outcome(out: &mut Vec<u8>, o: &ShardBatchOutcome) {
    put_outcome(out, o);
}

impl Frame {
    /// Short name of the frame type (diagnostics, `Protocol` errors).
    pub fn name(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "hello",
            Frame::HelloAck { .. } => "hello_ack",
            Frame::Batch { .. } => "batch",
            Frame::BatchReply { .. } => "batch_reply",
            Frame::ReadRow { .. } => "read_row",
            Frame::ReadRowReply { .. } => "read_row_reply",
            Frame::Shutdown => "shutdown",
            Frame::SnapshotPull { .. } => "snapshot_pull",
            Frame::SnapshotChunk { .. } => "snapshot_chunk",
            Frame::SnapshotPush { .. } => "snapshot_push",
            Frame::SnapshotPushAck { .. } => "snapshot_push_ack",
            Frame::Health { .. } => "health",
            Frame::HealthReply { .. } => "health_reply",
        }
    }

    /// Serialises the payload (tag + body) without framing — what the
    /// CRC covers.
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            Frame::Hello {
                version,
                technology,
                geometry,
                tier,
                slot,
                resume,
            } => {
                out.push(TAG_HELLO);
                put_u32(&mut out, *version);
                put_technology(&mut out, *technology);
                put_geometry(&mut out, geometry);
                match tier {
                    None => out.push(0),
                    Some((drift, scrub_period_s)) => {
                        out.push(1);
                        put_drift(&mut out, drift);
                        put_f64(&mut out, *scrub_period_s);
                    }
                }
                put_u64(&mut out, *slot);
                out.push(u8::from(*resume));
            }
            Frame::HelloAck { version, data_rows } => {
                out.push(TAG_HELLO_ACK);
                put_u32(&mut out, *version);
                put_u64(&mut out, *data_rows);
            }
            Frame::Batch { seq, tick_s, ops } => {
                out.push(TAG_BATCH);
                put_u64(&mut out, *seq);
                put_f64(&mut out, *tick_s);
                put_u64(&mut out, ops.len() as u64);
                for op in ops {
                    op.encode(&mut out);
                }
            }
            Frame::BatchReply { seq, outcome } => {
                out.push(TAG_BATCH_REPLY);
                put_u64(&mut out, *seq);
                put_outcome(&mut out, outcome);
            }
            Frame::ReadRow { seq, row } => {
                out.push(TAG_READ_ROW);
                put_u64(&mut out, *seq);
                put_u64(&mut out, *row);
            }
            Frame::ReadRowReply { seq, result } => {
                out.push(TAG_READ_ROW_REPLY);
                put_u64(&mut out, *seq);
                match result {
                    Ok(words) => {
                        out.push(0);
                        put_words(&mut out, words);
                    }
                    Err(e) => {
                        out.push(1);
                        e.encode(&mut out);
                    }
                }
            }
            Frame::Shutdown => out.push(TAG_SHUTDOWN),
            Frame::SnapshotPull { seq, offset, max_len } => {
                out.push(TAG_SNAPSHOT_PULL);
                put_u64(&mut out, *seq);
                put_u64(&mut out, *offset);
                put_u64(&mut out, *max_len);
            }
            Frame::SnapshotChunk {
                seq,
                offset,
                total_len,
                data,
            } => {
                out.push(TAG_SNAPSHOT_CHUNK);
                put_u64(&mut out, *seq);
                put_u64(&mut out, *offset);
                put_u64(&mut out, *total_len);
                put_bytes(&mut out, data);
            }
            Frame::SnapshotPush {
                seq,
                offset,
                total_len,
                data,
            } => {
                out.push(TAG_SNAPSHOT_PUSH);
                put_u64(&mut out, *seq);
                put_u64(&mut out, *offset);
                put_u64(&mut out, *total_len);
                put_bytes(&mut out, data);
            }
            Frame::SnapshotPushAck { seq, ok } => {
                out.push(TAG_SNAPSHOT_PUSH_ACK);
                put_u64(&mut out, *seq);
                out.push(u8::from(*ok));
            }
            Frame::Health { seq } => {
                out.push(TAG_HEALTH);
                put_u64(&mut out, *seq);
            }
            Frame::HealthReply {
                seq,
                uncorrectable_words,
                corrected_bits,
                scrub_rewrites,
                drift_flips,
                max_wear_fraction,
            } => {
                out.push(TAG_HEALTH_REPLY);
                put_u64(&mut out, *seq);
                put_u64(&mut out, *uncorrectable_words);
                put_u64(&mut out, *corrected_bits);
                put_u64(&mut out, *scrub_rewrites);
                put_u64(&mut out, *drift_flips);
                put_f64(&mut out, *max_wear_fraction);
            }
        }
        out
    }

    /// Decodes a payload (tag + body) produced by
    /// [`encode_payload`](Frame::encode_payload). The whole payload
    /// must be consumed — trailing bytes are [`TransportErrorKind::Corrupt`].
    ///
    /// # Errors
    ///
    /// [`WireError`] of kind `Corrupt` on any malformed payload.
    pub fn decode_payload(payload: &[u8]) -> Result<Frame, WireError> {
        let corrupt = |what: &str| WireError::new(TransportErrorKind::Corrupt, what);
        let (&tag, body) = payload
            .split_first()
            .ok_or_else(|| corrupt("empty payload"))?;
        let mut pos = 0usize;
        let frame = match tag {
            TAG_HELLO => {
                let version =
                    take_u32(body, &mut pos).ok_or_else(|| corrupt("hello: truncated version"))?;
                let technology = take_technology(body, &mut pos)
                    .ok_or_else(|| corrupt("hello: bad technology"))?;
                let geometry = take_geometry(body, &mut pos)
                    .ok_or_else(|| corrupt("hello: truncated geometry"))?;
                let tier = match body.get(pos).copied() {
                    Some(0) => {
                        pos += 1;
                        None
                    }
                    Some(1) => {
                        pos += 1;
                        let drift = take_drift(body, &mut pos)
                            .ok_or_else(|| corrupt("hello: truncated drift spec"))?;
                        let scrub = take_f64(body, &mut pos)
                            .ok_or_else(|| corrupt("hello: truncated scrub period"))?;
                        Some((drift, scrub))
                    }
                    _ => return Err(corrupt("hello: bad tier tag")),
                };
                let slot =
                    take_u64(body, &mut pos).ok_or_else(|| corrupt("hello: truncated slot"))?;
                let resume = match body.get(pos).copied() {
                    Some(0) => false,
                    Some(1) => true,
                    _ => return Err(corrupt("hello: bad resume flag")),
                };
                pos += 1;
                Frame::Hello {
                    version,
                    technology,
                    geometry,
                    tier,
                    slot,
                    resume,
                }
            }
            TAG_HELLO_ACK => Frame::HelloAck {
                version: take_u32(body, &mut pos)
                    .ok_or_else(|| corrupt("hello_ack: truncated version"))?,
                data_rows: take_u64(body, &mut pos)
                    .ok_or_else(|| corrupt("hello_ack: truncated data_rows"))?,
            },
            TAG_BATCH => {
                let seq =
                    take_u64(body, &mut pos).ok_or_else(|| corrupt("batch: truncated seq"))?;
                let tick_s =
                    take_f64(body, &mut pos).ok_or_else(|| corrupt("batch: truncated tick"))?;
                let count =
                    take_u64(body, &mut pos).ok_or_else(|| corrupt("batch: truncated count"))?;
                // Every op is at least 1 tag byte.
                if count > (body.len() - pos) as u64 {
                    return Err(corrupt("batch: op count exceeds payload"));
                }
                let mut ops = Vec::with_capacity(count as usize);
                for i in 0..count {
                    ops.push(
                        RowOp::decode(body, &mut pos)
                            .ok_or_else(|| corrupt(&format!("batch: malformed op {i}")))?,
                    );
                }
                Frame::Batch { seq, tick_s, ops }
            }
            TAG_BATCH_REPLY => Frame::BatchReply {
                seq: take_u64(body, &mut pos)
                    .ok_or_else(|| corrupt("batch_reply: truncated seq"))?,
                outcome: take_outcome(body, &mut pos)
                    .ok_or_else(|| corrupt("batch_reply: malformed outcome"))?,
            },
            TAG_READ_ROW => Frame::ReadRow {
                seq: take_u64(body, &mut pos)
                    .ok_or_else(|| corrupt("read_row: truncated seq"))?,
                row: take_u64(body, &mut pos)
                    .ok_or_else(|| corrupt("read_row: truncated row"))?,
            },
            TAG_READ_ROW_REPLY => {
                let seq = take_u64(body, &mut pos)
                    .ok_or_else(|| corrupt("read_row_reply: truncated seq"))?;
                let result = match body.get(pos).copied() {
                    Some(0) => {
                        pos += 1;
                        Ok(take_words(body, &mut pos)
                            .ok_or_else(|| corrupt("read_row_reply: truncated words"))?)
                    }
                    Some(1) => {
                        pos += 1;
                        Err(ArchError::decode(body, &mut pos)
                            .ok_or_else(|| corrupt("read_row_reply: malformed error"))?)
                    }
                    _ => return Err(corrupt("read_row_reply: bad result tag")),
                };
                Frame::ReadRowReply { seq, result }
            }
            TAG_SHUTDOWN => Frame::Shutdown,
            TAG_SNAPSHOT_PULL => Frame::SnapshotPull {
                seq: take_u64(body, &mut pos)
                    .ok_or_else(|| corrupt("snapshot_pull: truncated seq"))?,
                offset: take_u64(body, &mut pos)
                    .ok_or_else(|| corrupt("snapshot_pull: truncated offset"))?,
                max_len: take_u64(body, &mut pos)
                    .ok_or_else(|| corrupt("snapshot_pull: truncated max_len"))?,
            },
            TAG_SNAPSHOT_CHUNK => Frame::SnapshotChunk {
                seq: take_u64(body, &mut pos)
                    .ok_or_else(|| corrupt("snapshot_chunk: truncated seq"))?,
                offset: take_u64(body, &mut pos)
                    .ok_or_else(|| corrupt("snapshot_chunk: truncated offset"))?,
                total_len: take_u64(body, &mut pos)
                    .ok_or_else(|| corrupt("snapshot_chunk: truncated total_len"))?,
                data: take_bytes(body, &mut pos)
                    .ok_or_else(|| corrupt("snapshot_chunk: truncated data"))?,
            },
            TAG_SNAPSHOT_PUSH => Frame::SnapshotPush {
                seq: take_u64(body, &mut pos)
                    .ok_or_else(|| corrupt("snapshot_push: truncated seq"))?,
                offset: take_u64(body, &mut pos)
                    .ok_or_else(|| corrupt("snapshot_push: truncated offset"))?,
                total_len: take_u64(body, &mut pos)
                    .ok_or_else(|| corrupt("snapshot_push: truncated total_len"))?,
                data: take_bytes(body, &mut pos)
                    .ok_or_else(|| corrupt("snapshot_push: truncated data"))?,
            },
            TAG_SNAPSHOT_PUSH_ACK => {
                let seq = take_u64(body, &mut pos)
                    .ok_or_else(|| corrupt("snapshot_push_ack: truncated seq"))?;
                let ok = match body.get(pos).copied() {
                    Some(0) => false,
                    Some(1) => true,
                    _ => return Err(corrupt("snapshot_push_ack: bad ok flag")),
                };
                pos += 1;
                Frame::SnapshotPushAck { seq, ok }
            }
            TAG_HEALTH => Frame::Health {
                seq: take_u64(body, &mut pos)
                    .ok_or_else(|| corrupt("health: truncated seq"))?,
            },
            TAG_HEALTH_REPLY => Frame::HealthReply {
                seq: take_u64(body, &mut pos)
                    .ok_or_else(|| corrupt("health_reply: truncated seq"))?,
                uncorrectable_words: take_u64(body, &mut pos)
                    .ok_or_else(|| corrupt("health_reply: truncated uncorrectable"))?,
                corrected_bits: take_u64(body, &mut pos)
                    .ok_or_else(|| corrupt("health_reply: truncated corrected"))?,
                scrub_rewrites: take_u64(body, &mut pos)
                    .ok_or_else(|| corrupt("health_reply: truncated rewrites"))?,
                drift_flips: take_u64(body, &mut pos)
                    .ok_or_else(|| corrupt("health_reply: truncated flips"))?,
                max_wear_fraction: take_f64(body, &mut pos)
                    .ok_or_else(|| corrupt("health_reply: truncated wear"))?,
            },
            other => return Err(corrupt(&format!("unknown frame tag {other}"))),
        };
        if pos != payload.len() - 1 {
            return Err(corrupt(&format!(
                "{} bytes of trailing garbage after {} frame",
                payload.len() - 1 - pos,
                frame.name()
            )));
        }
        Ok(frame)
    }

    /// Writes one framed message: `[len][payload][crc32]`, then flushes.
    ///
    /// # Errors
    ///
    /// [`TransportErrorKind::PeerLost`] when the underlying stream
    /// fails, [`TransportErrorKind::Oversize`] when the payload exceeds
    /// [`MAX_FRAME`].
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), WireError> {
        let payload = self.encode_payload();
        if payload.len() > MAX_FRAME {
            return Err(WireError::new(
                TransportErrorKind::Oversize,
                format!("{}-byte {} frame exceeds {MAX_FRAME}", payload.len(), self.name()),
            ));
        }
        let mut framed = Vec::with_capacity(payload.len() + 8);
        put_u32(&mut framed, payload.len() as u32);
        framed.extend_from_slice(&payload);
        put_u32(&mut framed, crc32(&payload));
        w.write_all(&framed)
            .and_then(|()| w.flush())
            .map_err(|e| {
                WireError::new(
                    TransportErrorKind::PeerLost,
                    format!("writing {} frame: {e}", self.name()),
                )
            })
    }

    /// Reads one framed message, verifying length bound and CRC.
    ///
    /// # Errors
    ///
    /// * [`TransportErrorKind::PeerLost`] — EOF at a frame boundary, or
    ///   a stream error.
    /// * [`TransportErrorKind::ShortRead`] — EOF inside a frame.
    /// * [`TransportErrorKind::Oversize`] — length prefix over
    ///   [`MAX_FRAME`].
    /// * [`TransportErrorKind::Corrupt`] — CRC mismatch or malformed
    ///   payload.
    pub fn read_from(r: &mut impl Read) -> Result<Frame, WireError> {
        let mut len_bytes = [0u8; 4];
        read_exact_at(r, &mut len_bytes, "length prefix", true)?;
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len > MAX_FRAME {
            return Err(WireError::new(
                TransportErrorKind::Oversize,
                format!("{len}-byte length prefix exceeds {MAX_FRAME}"),
            ));
        }
        let mut payload = vec![0u8; len];
        read_exact_at(r, &mut payload, "payload", false)?;
        let mut crc_bytes = [0u8; 4];
        read_exact_at(r, &mut crc_bytes, "crc", false)?;
        let want = u32::from_le_bytes(crc_bytes);
        let got = crc32(&payload);
        if want != got {
            return Err(WireError::new(
                TransportErrorKind::Corrupt,
                format!("crc mismatch: frame says {want:#010x}, payload hashes to {got:#010x}"),
            ));
        }
        Frame::decode_payload(&payload)
    }
}

/// `read_exact` with the boundary/mid-frame EOF distinction: EOF before
/// the first byte of the *length prefix* is a closed peer
/// ([`TransportErrorKind::PeerLost`]); EOF anywhere else is a torn
/// frame ([`TransportErrorKind::ShortRead`]).
fn read_exact_at(
    r: &mut impl Read,
    buf: &mut [u8],
    what: &str,
    at_boundary: bool,
) -> Result<(), WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if at_boundary && filled == 0 {
                    Err(WireError::new(
                        TransportErrorKind::PeerLost,
                        "peer closed the connection at a frame boundary",
                    ))
                } else {
                    Err(WireError::new(
                        TransportErrorKind::ShortRead,
                        format!(
                            "torn frame: eof after {filled}/{} bytes of {what}",
                            buf.len()
                        ),
                    ))
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => {
                return Err(WireError::new(
                    TransportErrorKind::PeerLost,
                    format!("stream error reading {what}: {e}"),
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use felim_arch::geometry::RowId;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello {
                version: WIRE_VERSION,
                technology: Technology::Feram,
                geometry: MemoryGeometry::tiny(),
                tier: None,
                slot: 0,
                resume: false,
            },
            Frame::Hello {
                version: WIRE_VERSION,
                technology: Technology::Dram,
                geometry: MemoryGeometry::paper_8gb(),
                tier: Some((DriftSpec::accelerated(77, 390.0, 1e-9), 3600.0)),
                slot: 11,
                resume: true,
            },
            Frame::HelloAck {
                version: WIRE_VERSION,
                data_rows: 1008,
            },
            Frame::Batch {
                seq: 42,
                tick_s: 1e-3,
                ops: vec![
                    RowOp::Write {
                        row: RowId(3),
                        data: vec![0xAB; 128],
                    },
                    RowOp::Nand {
                        a: RowId(0),
                        b: RowId(1),
                        dst: RowId(2),
                    },
                    RowOp::Read { row: RowId(2) },
                ],
            },
            Frame::BatchReply {
                seq: 42,
                outcome: ShardBatchOutcome {
                    outputs: vec![
                        Ok(RowOpOutput::Done),
                        Ok(RowOpOutput::Data(vec![1, 2, 3])),
                        Err(ArchError::Uncorrectable {
                            row: 7,
                            words: vec![0, 5],
                        }),
                    ],
                    serial_cycles: 900,
                    makespan_cycles: 300,
                    energy_nj: 1.5,
                    maintenance_error: Some(ArchError::SparesExhausted { row: 9 }),
                },
            },
            Frame::ReadRow { seq: 7, row: 11 },
            Frame::ReadRowReply {
                seq: 7,
                result: Ok(vec![u64::MAX, 0]),
            },
            Frame::ReadRowReply {
                seq: 8,
                result: Err(ArchError::RowOutOfRange { row: 99, rows: 10 }),
            },
            Frame::Shutdown,
            Frame::SnapshotPull {
                seq: 9,
                offset: 4096,
                max_len: 1 << 20,
            },
            Frame::SnapshotChunk {
                seq: 9,
                offset: 4096,
                total_len: 9000,
                data: vec![0xA5; 256],
            },
            Frame::SnapshotChunk {
                seq: 10,
                offset: 0,
                total_len: 0,
                data: Vec::new(),
            },
            Frame::SnapshotPush {
                seq: 11,
                offset: 128,
                total_len: 384,
                data: vec![0x5A; 128],
            },
            Frame::SnapshotPushAck { seq: 11, ok: true },
            Frame::SnapshotPushAck { seq: 12, ok: false },
            Frame::Health { seq: 13 },
            Frame::HealthReply {
                seq: 13,
                uncorrectable_words: 2,
                corrected_bits: 40,
                scrub_rewrites: 7,
                drift_flips: 55,
                max_wear_fraction: 0.125,
            },
        ]
    }

    #[test]
    fn every_frame_round_trips_through_a_byte_stream() {
        let mut stream = Vec::new();
        let frames = sample_frames();
        for f in &frames {
            f.write_to(&mut stream).unwrap();
        }
        let mut cursor = &stream[..];
        for f in &frames {
            assert_eq!(&Frame::read_from(&mut cursor).unwrap(), f);
        }
        // Stream exhausted: the next read is a clean PeerLost.
        let err = Frame::read_from(&mut cursor).unwrap_err();
        assert_eq!(err.kind, TransportErrorKind::PeerLost);
    }

    #[test]
    fn crc_guards_every_payload_byte() {
        for frame in sample_frames() {
            let mut bytes = Vec::new();
            frame.write_to(&mut bytes).unwrap();
            // Flip one bit of the payload (skip the 4-byte length so
            // the reader still finds the frame envelope).
            let mid = 4 + (bytes.len() - 8) / 2;
            bytes[mid] ^= 0x10;
            let err = Frame::read_from(&mut &bytes[..]).unwrap_err();
            assert_eq!(err.kind, TransportErrorKind::Corrupt, "{frame:?}");
        }
    }

    #[test]
    fn truncation_anywhere_is_a_short_read() {
        let mut bytes = Vec::new();
        Frame::ReadRow { seq: 1, row: 2 }.write_to(&mut bytes).unwrap();
        for cut in 1..bytes.len() {
            let err = Frame::read_from(&mut &bytes[..cut]).unwrap_err();
            assert_eq!(
                err.kind,
                TransportErrorKind::ShortRead,
                "cut at {cut}/{}",
                bytes.len()
            );
        }
    }

    #[test]
    fn oversize_prefix_is_rejected_before_allocation() {
        let mut bytes = Vec::new();
        put_u32(&mut bytes, u32::MAX);
        bytes.extend_from_slice(&[0; 16]);
        let err = Frame::read_from(&mut &bytes[..]).unwrap_err();
        assert_eq!(err.kind, TransportErrorKind::Oversize);
    }

    #[test]
    fn trailing_garbage_and_unknown_tags_are_corrupt() {
        let mut payload = Frame::Shutdown.encode_payload();
        payload.push(0xEE);
        assert_eq!(
            Frame::decode_payload(&payload).unwrap_err().kind,
            TransportErrorKind::Corrupt
        );
        assert_eq!(
            Frame::decode_payload(&[0x7F]).unwrap_err().kind,
            TransportErrorKind::Corrupt
        );
        assert_eq!(
            Frame::decode_payload(&[]).unwrap_err().kind,
            TransportErrorKind::Corrupt
        );
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn drift_spec_survives_the_wire_bit_for_bit() {
        let spec = DriftSpec::accelerated(0xDEAD_BEEF, 390.0, 2.5e-7);
        let mut buf = Vec::new();
        put_drift(&mut buf, &spec);
        let mut pos = 0;
        assert_eq!(take_drift(&buf, &mut pos), Some(spec));
        assert_eq!(pos, buf.len());
    }
}
