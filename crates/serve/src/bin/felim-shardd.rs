//! `felim-shardd` — a shard host daemon.
//!
//! Hosts [`Shard`](felim_serve::shard::Shard) instances behind the
//! length-prefixed wire protocol ([`felim_serve::wire`]): one daemon
//! multiplexes many shards, keyed by the `Hello` frame's *slot*. A
//! fresh session constructs its slot's shard from the `Hello`
//! parameters (technology, geometry, reliability tier with the
//! client-derived drift seed); a `resume` session re-attaches to a
//! shard that outlived its previous session — the path a failover
//! rebuild uses to push a snapshot back onto a revived member. Each
//! session serves pipelined batch, snapshot, and health frames until
//! `Shutdown` or peer loss; shards stay registered across sessions.
//!
//! ```text
//! felim-shardd --listen 127.0.0.1:4801
//! felim-shardd --listen 127.0.0.1:0      # ephemeral port
//! ```
//!
//! The daemon prints exactly one line to stdout before serving:
//!
//! ```text
//! LISTENING 127.0.0.1:4801
//! ```
//!
//! which is what [`ShardHostChild`](felim_serve::ShardHostChild) (and
//! the CI remote suite) parses to discover an ephemeral port. Sessions
//! run one thread each; the process serves until killed.

use felim_serve::ShardHost;
use std::io::Write;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut listen = String::from("127.0.0.1:0");
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => match args.next() {
                Some(addr) => listen = addr,
                None => die("--listen needs an address (host:port)"),
            },
            "--help" | "-h" => {
                println!("usage: felim-shardd [--listen HOST:PORT]");
                println!("hosts felim-serve shards behind the wire protocol;");
                println!("prints `LISTENING <addr>` once bound, then serves until killed");
                return;
            }
            other => die(&format!("unknown argument {other:?} (try --help)")),
        }
    }
    let host = match ShardHost::bind(&listen) {
        Ok(host) => host,
        Err(e) => die(&format!("cannot bind {listen}: {e}")),
    };
    // The address line is the spawn handshake: flush it before serving
    // so a parent process polling stdout never deadlocks.
    println!("LISTENING {}", host.local_addr());
    let _ = std::io::stdout().flush();
    if let Err(e) = host.serve_forever() {
        die(&format!("accept loop failed: {e}"));
    }
}

fn die(message: &str) -> ! {
    eprintln!("felim-shardd: {message}");
    std::process::exit(2);
}
