//! Stripe replication and deterministic failover.
//!
//! Every stripe of the vector catalog can be backed by a **primary plus
//! N hot standbys** — any mix of local and remote
//! [`ShardPool`](crate::ShardPool) members. The service dual-dispatches
//! every settled [`RowOp`] batch schedule to the primary *and* its
//! standbys; schedules are deterministic (same ops, same tick clock,
//! same derived drift seed), so replicas stay **byte-identical by
//! construction**. That claim is verified cheaply, not assumed: each
//! replica's batch outcomes fold into a rolling FNV-1a digest, and the
//! digests are compared at epoch boundaries — a divergent standby is
//! retired and rebuilt rather than trusted.
//!
//! # The failover state machine
//!
//! Each stripe is in one of three states, tracked per replica:
//!
//! ```text
//!            ┌──────────┐ transport fault / health breach
//!            │  ACTIVE  │──────────────────────────────┐
//!            └──────────┘                              ▼
//!                 ▲ promote (first live standby)  ┌─────────┐
//!            ┌──────────┐                         │ FAILED  │
//!            │ STANDBY  │◀── rebuild completes ───└─────────┘
//!            └──────────┘    (snapshot + schedule replay)
//! ```
//!
//! Failover triggers:
//!
//! * **Transport poison** — the active member's dispatch returned
//!   [`ServeError::Transport`](crate::ServeError::Transport). Because
//!   standbys executed the *same* batch in the same tick, the first
//!   healthy standby's already-computed outcome settles the tick's
//!   requests: promotion happens **mid-tick** with exactly one response
//!   per request and zero silent drops.
//! * **Repeated uncorrectables** — the active outcome carried
//!   uncorrectable rows for [`max_uncorrectable_ticks`] consecutive
//!   ticks ([`ReplicationConfig::max_uncorrectable_ticks`]).
//! * **Health threshold** — the reliability controller's exported
//!   [`ControllerHealth`] crossed the configured wear/uncorrectable
//!   thresholds at an epoch boundary.
//!
//! After promotion the failed member is rebuilt in the background: the
//! new active's state snapshot transfers at a paced
//! [`rebuild_chunk_bytes`](ReplicationConfig::rebuild_chunk_bytes) per
//! tick (chunked and CRC-guarded over the wire for remote members),
//! batches the rebuilding member missed accumulate in a per-stripe
//! schedule log, and on completion the snapshot restores, the log
//! replays, and the member rejoins as a standby. Everything is paced in
//! virtual ticks, so recovery time is **bounded and deterministic**.
//!
//! [`max_uncorrectable_ticks`]: ReplicationConfig::max_uncorrectable_ticks

use crate::shard::ShardBatchOutcome;
use crate::wire;
use felim_arch::batch::RowOp;
use felim_arch::ControllerHealth;
use serde::Serialize;

/// Replication knobs, carried in
/// [`ServiceConfig::replication`](crate::ServiceConfig::replication).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ReplicationConfig {
    /// Hot standbys per stripe (at least 1 — a stripe with nothing to
    /// promote to is not replicated).
    pub standbys: u32,
    /// Epoch length in ticks: how often replica digests are compared
    /// and the active member's health is polled.
    pub epoch_ticks: u64,
    /// Consecutive active-member ticks carrying uncorrectable rows
    /// before a planned failover fires.
    pub max_uncorrectable_ticks: u32,
    /// Planned failover fires when the active member's worst per-row
    /// wear fraction exceeds this.
    pub max_wear_fraction: f64,
    /// Snapshot bytes transferred per tick during a background rebuild
    /// — the pacing that bounds both rebuild bandwidth and recovery
    /// time (`ceil(snapshot / chunk) + 1` ticks).
    pub rebuild_chunk_bytes: u64,
    /// Standbys hosted remotely, as `(stripe, standby, "host:port")`
    /// triples (`standby` counts from 1; unlisted standbys are local).
    /// The session's slot is the member's pool index, so one daemon can
    /// host many standbys.
    pub remote_standbys: Vec<(u32, u32, String)>,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        Self {
            standbys: 1,
            epoch_ticks: 8,
            max_uncorrectable_ticks: 3,
            max_wear_fraction: 0.5,
            rebuild_chunk_bytes: 1 << 16,
            remote_standbys: Vec::new(),
        }
    }
}

/// Counter block of the replication layer (mirrors the
/// `serve.replica.*` telemetry).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct ReplicaStats {
    /// Mid-tick promotions after a transport fault on the active member.
    pub failovers: u64,
    /// Planned promotions (health threshold or repeated uncorrectables).
    pub planned_failovers: u64,
    /// Standbys retired for digest divergence at an epoch boundary.
    pub divergences: u64,
    /// Background rebuilds started.
    pub rebuilds_started: u64,
    /// Background rebuilds completed (snapshot restored, log replayed).
    pub rebuilds_completed: u64,
    /// Batches replayed from the schedule log during rebuilds.
    pub replayed_batches: u64,
    /// Snapshot bytes entered into paced transfer by rebuilds — with
    /// [`ReplicationConfig::rebuild_chunk_bytes`] this bounds recovery:
    /// a rebuild completes within `ceil(bytes / chunk) + O(1)` ticks.
    pub rebuild_snapshot_bytes: u64,
    /// Energy spent by standby dispatches, nanojoules (accounted here,
    /// never in the service's settled energy — replication on or off
    /// must not change the reported simulation).
    pub standby_energy_nj: f64,
}

/// A background rebuild in flight for one stripe.
struct Rebuild {
    /// Replica index being rebuilt.
    replica: usize,
    /// The new active's snapshot, transferred at a paced rate.
    snapshot: Vec<u8>,
    /// Bytes transferred so far (virtual pacing).
    sent: u64,
    /// Batch schedules the rebuilding member missed, replayed on
    /// completion with their original tick clocks.
    pending: Vec<(f64, Vec<RowOp>)>,
}

/// Per-stripe replication bookkeeping: active/standby roles, rolling
/// outcome digests, failure flags, and rebuild progress. The service
/// owns one of these when replication is configured and drives it each
/// tick; all pool I/O (dispatch, snapshot, restore) stays in the
/// service — this type is pure state machine.
pub struct ReplicaManager {
    config: ReplicationConfig,
    stripes: usize,
    stats: ReplicaStats,
    /// Per stripe: the replica index currently active.
    active: Vec<usize>,
    /// Per stripe, per replica: retired (failed or divergent)?
    failed: Vec<Vec<bool>>,
    /// Per stripe, per replica: rolling outcome digest since the last
    /// epoch boundary (or rebuild completion).
    digests: Vec<Vec<u64>>,
    /// Per stripe, per replica: ticks folded into the digest — only
    /// replicas with the active's tick count are comparable.
    digest_ticks: Vec<Vec<u64>>,
    /// Per stripe: consecutive active ticks carrying uncorrectables.
    uncorrectable_streak: Vec<u32>,
    /// Per stripe: the rebuild in flight, if any.
    rebuilds: Vec<Option<Rebuild>>,
}

impl std::fmt::Debug for ReplicaManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaManager")
            .field("stripes", &self.stripes)
            .field("replicas", &self.replicas())
            .field("active", &self.active)
            .finish()
    }
}

impl ReplicaManager {
    /// Fresh bookkeeping for `stripes` stripes under `config`: replica 0
    /// active everywhere, nothing failed, no rebuilds.
    pub fn new(config: ReplicationConfig, stripes: usize) -> Self {
        let replicas = 1 + config.standbys as usize;
        Self {
            config,
            stripes,
            stats: ReplicaStats::default(),
            active: vec![0; stripes],
            failed: vec![vec![false; replicas]; stripes],
            digests: vec![vec![0; replicas]; stripes],
            digest_ticks: vec![vec![0; replicas]; stripes],
            uncorrectable_streak: vec![0; stripes],
            rebuilds: (0..stripes).map(|_| None).collect(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ReplicationConfig {
        &self.config
    }

    /// Replicas per stripe (primary + standbys).
    pub fn replicas(&self) -> usize {
        1 + self.config.standbys as usize
    }

    /// The counter block so far.
    pub fn stats(&self) -> &ReplicaStats {
        &self.stats
    }

    /// Adds standby dispatch energy to the replica-side account.
    pub fn add_standby_energy(&mut self, nj: f64) {
        self.stats.standby_energy_nj += nj;
    }

    /// Pool member index of `stripe`'s replica `replica` (replica-major
    /// layout: member `replica · stripes + stripe`, so replica 0 members
    /// coincide with the unreplicated pool's indices).
    pub fn member(&self, stripe: usize, replica: usize) -> usize {
        replica * self.stripes + stripe
    }

    /// The replica index currently active for `stripe`.
    pub fn active_replica(&self, stripe: usize) -> usize {
        self.active[stripe]
    }

    /// Pool member index of `stripe`'s active replica.
    pub fn active_member(&self, stripe: usize) -> usize {
        self.member(stripe, self.active[stripe])
    }

    /// Replica indices that dispatch `stripe`'s current batch: every
    /// live replica except one mid-rebuild (it is behind; its missed
    /// batches land in the schedule log instead).
    pub fn dispatch_replicas(&self, stripe: usize) -> Vec<usize> {
        let rebuilding = self.rebuilds[stripe].as_ref().map(|r| r.replica);
        (0..self.replicas())
            .filter(|&r| !self.failed[stripe][r] && Some(r) != rebuilding)
            .collect()
    }

    /// Folds one replica's batch outcome into its rolling digest.
    pub fn note_outcome(&mut self, stripe: usize, replica: usize, outcome: &ShardBatchOutcome) {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&self.digests[stripe][replica].to_le_bytes());
        wire::encode_outcome(&mut buf, outcome);
        self.digests[stripe][replica] = fnv1a_bytes(&buf);
        self.digest_ticks[stripe][replica] += 1;
    }

    /// Records whether the active outcome carried uncorrectable rows
    /// this tick; `true` when the consecutive-tick threshold was crossed
    /// (the service then runs a planned failover).
    pub fn note_active_uncorrectable(&mut self, stripe: usize, any: bool) -> bool {
        if any {
            self.uncorrectable_streak[stripe] += 1;
        } else {
            self.uncorrectable_streak[stripe] = 0;
        }
        self.uncorrectable_streak[stripe] >= self.config.max_uncorrectable_ticks
    }

    /// Does `health` breach the planned-failover thresholds?
    pub fn health_exceeded(&self, health: &ControllerHealth) -> bool {
        health.max_wear_fraction > self.config.max_wear_fraction
            || health.uncorrectable_words > 0
    }

    /// Is `now` an epoch boundary (digest compare + health poll)?
    pub fn epoch_due(&self, now: u64) -> bool {
        now > 0 && now.is_multiple_of(self.config.epoch_ticks)
    }

    /// Promotes a replacement active for `stripe` after the current
    /// active faulted mid-tick. `healthy` lists the standbys whose
    /// dual-dispatch outcome arrived intact this tick; the first (lowest
    /// index) is promoted and the old active retired. `None` when no
    /// standby can take over — the stripe fails honestly.
    pub fn promote_after_fault(&mut self, stripe: usize, healthy: &[usize]) -> Option<usize> {
        let new = *healthy
            .iter()
            .find(|&&r| !self.failed[stripe][r] && r != self.active[stripe])?;
        self.retire_and_promote(stripe, new);
        self.stats.failovers += 1;
        Some(new)
    }

    /// Planned promotion (health breach or uncorrectable streak): the
    /// first live standby not mid-rebuild takes over between ticks; the
    /// old active is retired for rebuild. `None` when no standby is
    /// available.
    pub fn promote_planned(&mut self, stripe: usize) -> Option<usize> {
        let rebuilding = self.rebuilds[stripe].as_ref().map(|r| r.replica);
        let new = (0..self.replicas()).find(|&r| {
            !self.failed[stripe][r] && r != self.active[stripe] && Some(r) != rebuilding
        })?;
        self.retire_and_promote(stripe, new);
        self.stats.planned_failovers += 1;
        Some(new)
    }

    fn retire_and_promote(&mut self, stripe: usize, new: usize) {
        let old = self.active[stripe];
        self.failed[stripe][old] = true;
        self.active[stripe] = new;
        self.uncorrectable_streak[stripe] = 0;
    }

    /// Epoch digest audit for `stripe`: standbys whose rolling digest
    /// (over the same tick count) disagrees with the active's are
    /// retired and returned. All digests then reset for the next epoch.
    pub fn audit_epoch(&mut self, stripe: usize) -> Vec<usize> {
        let active = self.active[stripe];
        let want = self.digests[stripe][active];
        let want_ticks = self.digest_ticks[stripe][active];
        let mut divergent = Vec::new();
        for r in 0..self.replicas() {
            if r == active || self.failed[stripe][r] {
                continue;
            }
            if self.digest_ticks[stripe][r] == want_ticks && self.digests[stripe][r] != want {
                self.failed[stripe][r] = true;
                self.stats.divergences += 1;
                divergent.push(r);
            }
        }
        for r in 0..self.replicas() {
            self.digests[stripe][r] = 0;
            self.digest_ticks[stripe][r] = 0;
        }
        divergent
    }

    /// The retired replica next in line for a rebuild on `stripe`, when
    /// no rebuild is already in flight and at least one live replica
    /// remains to snapshot from.
    pub fn needs_rebuild(&self, stripe: usize) -> Option<usize> {
        if self.rebuilds[stripe].is_some() {
            return None;
        }
        (0..self.replicas()).find(|&r| self.failed[stripe][r])
    }

    /// The replica mid-rebuild on `stripe`, if any.
    pub fn rebuild_in_progress(&self, stripe: usize) -> Option<usize> {
        self.rebuilds[stripe].as_ref().map(|r| r.replica)
    }

    /// Starts a background rebuild of `replica` from the active's
    /// `snapshot`. The snapshot was taken *after* the current tick, so
    /// the schedule log starts empty.
    pub fn begin_rebuild(&mut self, stripe: usize, replica: usize, snapshot: Vec<u8>) {
        debug_assert!(self.failed[stripe][replica], "only retired replicas rebuild");
        self.stats.rebuilds_started += 1;
        self.stats.rebuild_snapshot_bytes += snapshot.len() as u64;
        self.rebuilds[stripe] = Some(Rebuild {
            replica,
            snapshot,
            sent: 0,
            pending: Vec::new(),
        });
    }

    /// Logs a batch schedule the rebuilding member missed (no-op when
    /// `stripe` has no rebuild in flight or the batch is empty).
    pub fn log_schedule(&mut self, stripe: usize, tick_s: f64, ops: &[RowOp]) {
        if let Some(rebuild) = &mut self.rebuilds[stripe] {
            rebuild.pending.push((tick_s, ops.to_vec()));
        }
    }

    /// Advances `stripe`'s rebuild by one tick's
    /// [`rebuild_chunk_bytes`](ReplicationConfig::rebuild_chunk_bytes).
    /// When the transfer completes, returns
    /// `(replica, snapshot, missed schedules)` for the service to
    /// restore and replay; otherwise `None`.
    #[allow(clippy::type_complexity)]
    pub fn rebuild_step(&mut self, stripe: usize) -> Option<(usize, Vec<u8>, Vec<(f64, Vec<RowOp>)>)> {
        let rebuild = self.rebuilds[stripe].as_mut()?;
        rebuild.sent = rebuild
            .sent
            .saturating_add(self.config.rebuild_chunk_bytes.max(1));
        if rebuild.sent < rebuild.snapshot.len() as u64 {
            return None;
        }
        let done = self.rebuilds[stripe].take().expect("checked above");
        Some((done.replica, done.snapshot, done.pending))
    }

    /// Finishes a rebuild: on success the replica rejoins as a live
    /// standby with fresh digests for the whole stripe (its replayed
    /// history differs from the epoch digests of the others); on failure
    /// it stays retired and [`needs_rebuild`](Self::needs_rebuild) will
    /// offer it again.
    pub fn complete_rebuild(&mut self, stripe: usize, replica: usize, ok: bool, replayed: u64) {
        if ok {
            self.failed[stripe][replica] = false;
            self.stats.rebuilds_completed += 1;
            self.stats.replayed_batches += replayed;
            for r in 0..self.replicas() {
                self.digests[stripe][r] = 0;
                self.digest_ticks[stripe][r] = 0;
            }
        }
    }
}

/// FNV-1a over raw bytes (the word-wise variant lives in
/// [`request::fnv1a_words`](crate::fnv1a_words); outcomes digest as
/// their canonical wire encoding, which is bytes).
fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(energy: f64) -> ShardBatchOutcome {
        ShardBatchOutcome {
            outputs: Vec::new(),
            serial_cycles: 10,
            makespan_cycles: 5,
            energy_nj: energy,
            maintenance_error: None,
        }
    }

    #[test]
    fn promotion_prefers_lowest_live_standby_and_retires_the_active() {
        let mut mgr = ReplicaManager::new(
            ReplicationConfig {
                standbys: 2,
                ..ReplicationConfig::default()
            },
            2,
        );
        assert_eq!(mgr.active_replica(0), 0);
        assert_eq!(mgr.dispatch_replicas(0), vec![0, 1, 2]);
        let new = mgr.promote_after_fault(0, &[1, 2]).unwrap();
        assert_eq!(new, 1);
        assert_eq!(mgr.active_replica(0), 1);
        // The old active is retired and queued for rebuild.
        assert_eq!(mgr.needs_rebuild(0), Some(0));
        assert_eq!(mgr.dispatch_replicas(0), vec![1, 2]);
        // Stripe 1 is untouched.
        assert_eq!(mgr.active_replica(1), 0);
        // No healthy standby left after retiring 1 and 2.
        mgr.promote_after_fault(0, &[2]).unwrap();
        assert!(mgr.promote_after_fault(0, &[]).is_none());
        assert_eq!(mgr.stats().failovers, 2);
    }

    #[test]
    fn digest_audit_retires_divergent_standbys_only() {
        let mut mgr = ReplicaManager::new(ReplicationConfig::default(), 1);
        // Same outcomes: digests agree.
        mgr.note_outcome(0, 0, &outcome(1.0));
        mgr.note_outcome(0, 1, &outcome(1.0));
        assert!(mgr.audit_epoch(0).is_empty());
        // Diverging energy (a physical observable) trips the audit.
        mgr.note_outcome(0, 0, &outcome(1.0));
        mgr.note_outcome(0, 1, &outcome(2.0));
        assert_eq!(mgr.audit_epoch(0), vec![1]);
        assert_eq!(mgr.stats().divergences, 1);
        assert_eq!(mgr.needs_rebuild(0), Some(1));
    }

    #[test]
    fn audit_skips_replicas_with_fewer_digested_ticks() {
        let mut mgr = ReplicaManager::new(ReplicationConfig::default(), 1);
        mgr.note_outcome(0, 0, &outcome(1.0));
        mgr.note_outcome(0, 0, &outcome(1.0));
        // Replica 1 only saw one tick (it was rebuilding): different
        // digest, but not comparable — no divergence.
        mgr.note_outcome(0, 1, &outcome(1.0));
        assert!(mgr.audit_epoch(0).is_empty());
    }

    #[test]
    fn rebuild_is_paced_and_replays_the_missed_log() {
        let mut mgr = ReplicaManager::new(
            ReplicationConfig {
                rebuild_chunk_bytes: 4,
                ..ReplicationConfig::default()
            },
            1,
        );
        mgr.promote_after_fault(0, &[1]).unwrap();
        mgr.begin_rebuild(0, 0, vec![0xAB; 10]);
        assert_eq!(mgr.rebuild_in_progress(0), Some(0));
        // Missed batches accumulate while the transfer paces.
        mgr.log_schedule(0, 1e-3, &[]);
        assert!(mgr.rebuild_step(0).is_none(), "4/10 bytes");
        mgr.log_schedule(0, 1e-3, &[]);
        assert!(mgr.rebuild_step(0).is_none(), "8/10 bytes");
        let (replica, snapshot, pending) = mgr.rebuild_step(0).expect("12/10 bytes: complete");
        assert_eq!(replica, 0);
        assert_eq!(snapshot, vec![0xAB; 10]);
        assert_eq!(pending.len(), 2);
        mgr.complete_rebuild(0, replica, true, pending.len() as u64);
        assert!(mgr.needs_rebuild(0).is_none());
        assert_eq!(mgr.dispatch_replicas(0), vec![0, 1]);
        assert_eq!(mgr.stats().rebuilds_completed, 1);
        assert_eq!(mgr.stats().replayed_batches, 2);
    }

    #[test]
    fn uncorrectable_streak_crosses_the_threshold_only_when_consecutive() {
        let mut mgr = ReplicaManager::new(
            ReplicationConfig {
                max_uncorrectable_ticks: 2,
                ..ReplicationConfig::default()
            },
            1,
        );
        assert!(!mgr.note_active_uncorrectable(0, true));
        assert!(!mgr.note_active_uncorrectable(0, false), "streak resets");
        assert!(!mgr.note_active_uncorrectable(0, true));
        assert!(mgr.note_active_uncorrectable(0, true), "2 consecutive");
    }

    #[test]
    fn health_thresholds_gate_planned_failover() {
        let mgr = ReplicaManager::new(ReplicationConfig::default(), 1);
        let healthy = ControllerHealth::default();
        assert!(!mgr.health_exceeded(&healthy));
        let worn = ControllerHealth {
            max_wear_fraction: 0.9,
            ..ControllerHealth::default()
        };
        assert!(mgr.health_exceeded(&worn));
        let corrupt = ControllerHealth {
            uncorrectable_words: 1,
            ..ControllerHealth::default()
        };
        assert!(mgr.health_exceeded(&corrupt));
    }
}
