//! The named-bit-vector catalog: striped allocation of logical vectors
//! across the shard pool.
//!
//! A vector of `L` rows is *striped*: vector row `i` lives on shard
//! `i mod S` at the next free local row of that shard. Striping makes
//! every shard carry `≈ L / S` rows of every vector, so one logical op
//! decomposes into `S` same-shard batches of equal size — the shape the
//! pool executes concurrently. Because every vector stripes with the
//! same phase (row 0 on shard 0), row `i` of *all* equal-length vectors
//! is co-resident on shard `i mod S`, and a row-wise logic op never
//! needs cross-shard operand movement.

use crate::ServeError;
use felim_arch::geometry::RowId;
use felim_arch::shard::ShardId;
use serde::Serialize;
use std::collections::HashMap;

/// Placement of one named vector.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct VectorPlacement {
    /// Rows in the vector.
    pub rows: u64,
    /// For each shard, the first local row of this vector's run there.
    pub shard_base: Vec<u64>,
}

impl VectorPlacement {
    /// Rows of this vector resident on `shard` (stripe arithmetic).
    pub fn rows_on_shard(&self, shard: ShardId, shards: u32) -> u64 {
        let s = u64::from(shard.0);
        let stride = u64::from(shards);
        if s >= self.rows {
            0
        } else {
            (self.rows - s).div_ceil(stride)
        }
    }

    /// The shard and local row holding vector row `i`.
    pub fn locate(&self, i: u64, shards: u32) -> (ShardId, RowId) {
        let shard = (i % u64::from(shards)) as u32;
        let k = i / u64::from(shards);
        (ShardId(shard), RowId(self.shard_base[shard as usize] + k))
    }
}

/// The service's name → placement registry plus the per-shard bump
/// allocator over each shard's usable data rows.
#[derive(Debug, Clone)]
pub struct Catalog {
    shards: u32,
    /// Local data rows available per shard (below the backends' reserved
    /// compute/scratch/spare region).
    data_rows_per_shard: u64,
    next_free: Vec<u64>,
    vectors: HashMap<String, VectorPlacement>,
}

impl Catalog {
    /// An empty catalog over `shards` shards with `data_rows_per_shard`
    /// allocatable local rows each.
    pub fn new(shards: u32, data_rows_per_shard: u64) -> Self {
        Self {
            shards,
            data_rows_per_shard,
            next_free: vec![0; shards as usize],
            vectors: HashMap::new(),
        }
    }

    /// Registers a new `rows`-row vector under `name`, allocating its
    /// striped placement.
    ///
    /// # Errors
    ///
    /// [`ServeError::VectorExists`] for duplicate names,
    /// [`ServeError::CapacityExhausted`] when any shard's data region
    /// cannot hold its stripe, and [`ServeError::EmptyVector`] for
    /// zero-row vectors.
    pub fn create(&mut self, name: &str, rows: u64) -> Result<&VectorPlacement, ServeError> {
        if rows == 0 {
            return Err(ServeError::EmptyVector {
                vector: name.to_owned(),
            });
        }
        if self.vectors.contains_key(name) {
            return Err(ServeError::VectorExists {
                vector: name.to_owned(),
            });
        }
        // Stripe sizes first, so a failed allocation changes nothing.
        let stripe = |s: u64| (rows.saturating_sub(s)).div_ceil(u64::from(self.shards));
        for s in 0..u64::from(self.shards) {
            if self.next_free[s as usize] + stripe(s) > self.data_rows_per_shard {
                return Err(ServeError::CapacityExhausted {
                    shard: ShardId(s as u32),
                    requested_rows: stripe(s),
                    free_rows: self.data_rows_per_shard - self.next_free[s as usize],
                });
            }
        }
        let shard_base = self.next_free.clone();
        for s in 0..u64::from(self.shards) {
            self.next_free[s as usize] += stripe(s);
        }
        let placement = VectorPlacement { rows, shard_base };
        Ok(self
            .vectors
            .entry(name.to_owned())
            .or_insert(placement))
    }

    /// Looks up a vector's placement.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownVector`] when no such name is registered.
    pub fn get(&self, name: &str) -> Result<&VectorPlacement, ServeError> {
        self.vectors.get(name).ok_or_else(|| ServeError::UnknownVector {
            vector: name.to_owned(),
        })
    }

    /// Number of registered vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Is the catalog empty?
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Local rows still allocatable on the fullest shard's complement —
    /// i.e. the largest equal stripe every shard can still take.
    pub fn free_stripe_rows(&self) -> u64 {
        self.next_free
            .iter()
            .map(|&used| self.data_rows_per_shard - used)
            .min()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn striping_balances_rows_across_shards() {
        let mut c = Catalog::new(4, 100);
        let p = c.create("v", 10).unwrap().clone();
        assert_eq!(p.rows_on_shard(ShardId(0), 4), 3); // rows 0,4,8
        assert_eq!(p.rows_on_shard(ShardId(1), 4), 3); // rows 1,5,9
        assert_eq!(p.rows_on_shard(ShardId(2), 4), 2); // rows 2,6
        assert_eq!(p.rows_on_shard(ShardId(3), 4), 2); // rows 3,7
        let total: u64 = (0..4).map(|s| p.rows_on_shard(ShardId(s), 4)).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn equal_length_vectors_colocate_rows() {
        let mut c = Catalog::new(3, 100);
        let a = c.create("a", 7).unwrap().clone();
        let b = c.create("b", 7).unwrap().clone();
        for i in 0..7 {
            let (sa, _) = a.locate(i, 3);
            let (sb, _) = b.locate(i, 3);
            assert_eq!(sa, sb, "row {i} must co-locate");
        }
    }

    #[test]
    fn locate_and_bases_are_consistent() {
        let mut c = Catalog::new(2, 100);
        c.create("x", 5).unwrap();
        let y = c.create("y", 4).unwrap().clone();
        // x used 3 rows on shard 0 (rows 0,2,4) and 2 on shard 1 (1,3).
        assert_eq!(y.shard_base, vec![3, 2]);
        assert_eq!(y.locate(0, 2), (ShardId(0), RowId(3)));
        assert_eq!(y.locate(1, 2), (ShardId(1), RowId(2)));
        assert_eq!(y.locate(2, 2), (ShardId(0), RowId(4)));
    }

    #[test]
    fn errors_are_typed_and_atomic() {
        let mut c = Catalog::new(2, 4);
        assert!(matches!(
            c.create("z", 0),
            Err(ServeError::EmptyVector { .. })
        ));
        c.create("a", 8).unwrap(); // fills both shards exactly
        let before = c.free_stripe_rows();
        assert!(matches!(
            c.create("b", 1),
            Err(ServeError::CapacityExhausted { .. })
        ));
        assert_eq!(c.free_stripe_rows(), before, "failed alloc must not leak");
        assert!(matches!(
            c.create("a", 2),
            Err(ServeError::VectorExists { .. })
        ));
        assert!(matches!(c.get("nope"), Err(ServeError::UnknownVector { .. })));
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }
}
