//! The kernel expression DSL: parsing `d = (a & b) ^ ~c` programs.
//!
//! A *kernel program* is a sequence of assignment statements over named
//! bit-vectors, executed top to bottom. It is the textual form a query
//! planner or workload generator submits in a single
//! [`LogicalOp::Kernel`](crate::LogicalOp::Kernel) request, letting the
//! service compile the whole dataflow into one fused per-shard schedule
//! (see [`plan`](crate::plan)) instead of paying the admission ladder
//! per primitive.
//!
//! ## Grammar
//!
//! ```text
//! program   := statement*
//! statement := ident '=' expr        -- one per line, or ';'-separated
//! expr      := or
//! or        := xor ('|' xor)*        -- precedence low → high:
//! xor       := and ('^' and)*        --   |  then  ^  then  &  then
//! and       := unary ('&' unary)*    --   unary ~ / ! and parentheses
//! unary     := ('~' | '!') unary | '(' expr ')' | ident
//! ident     := [A-Za-z_][A-Za-z0-9_]*
//! ```
//!
//! `#` starts a comment running to end of line. Blank lines are
//! ignored. Assigning to a name introduces (or rebinds) it for
//! subsequent statements; names read before any assignment are the
//! program's *inputs* and must be bound to catalog vectors in the
//! request.
//!
//! ```
//! use felim_serve::dsl::Program;
//!
//! let p = Program::parse(
//!     "t = a & b          # temporary\n\
//!      d = t ^ ~c",
//! ).unwrap();
//! assert_eq!(p.statements.len(), 2);
//! assert_eq!(p.inputs(), vec!["a", "b", "c"]);
//! ```

use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt;

/// One expression node of a kernel statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A name: a request binding or an earlier statement's target.
    Name(String),
    /// Bitwise complement (`~x` or `!x`).
    Not(Box<Expr>),
    /// Bitwise conjunction (`a & b`).
    And(Box<Expr>, Box<Expr>),
    /// Bitwise disjunction (`a | b`).
    Or(Box<Expr>, Box<Expr>),
    /// Bitwise exclusive-or (`a ^ b`).
    Xor(Box<Expr>, Box<Expr>),
}

/// One `target = expr` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Statement {
    /// The assigned name.
    pub target: String,
    /// The right-hand side.
    pub expr: Expr,
}

/// A parsed kernel program: statements in source order.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// The statements, in execution order.
    pub statements: Vec<Statement>,
}

/// Kernel-program parse failure with the global byte position.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct KernelParseError {
    /// Byte offset into the program text.
    pub position: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for KernelParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "kernel parse error at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for KernelParseError {}

struct ExprParser<'a> {
    src: &'a [u8],
    /// Global byte offset of `src[0]` in the original program text, so
    /// error positions point into the program, not the statement.
    base: usize,
    pos: usize,
}

impl<'a> ExprParser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn err(&self, message: impl Into<String>) -> KernelParseError {
        KernelParseError {
            position: self.base + self.pos,
            message: message.into(),
        }
    }

    // or := xor ('|' xor)*
    fn parse_or(&mut self) -> Result<Expr, KernelParseError> {
        let mut left = self.parse_xor()?;
        while self.peek() == Some(b'|') {
            self.bump();
            let right = self.parse_xor()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    // xor := and ('^' and)*
    fn parse_xor(&mut self) -> Result<Expr, KernelParseError> {
        let mut left = self.parse_and()?;
        while self.peek() == Some(b'^') {
            self.bump();
            let right = self.parse_and()?;
            left = Expr::Xor(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    // and := unary ('&' unary)*
    fn parse_and(&mut self) -> Result<Expr, KernelParseError> {
        let mut left = self.parse_unary()?;
        while self.peek() == Some(b'&') {
            self.bump();
            let right = self.parse_unary()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr, KernelParseError> {
        match self.peek() {
            Some(b'~') | Some(b'!') => {
                self.bump();
                Ok(Expr::Not(Box::new(self.parse_unary()?)))
            }
            Some(b'(') => {
                self.bump();
                let inner = self.parse_or()?;
                if self.bump() != Some(b')') {
                    return Err(self.err("expected `)`"));
                }
                Ok(inner)
            }
            Some(c) if c == b'_' || c.is_ascii_alphabetic() => Ok(Expr::Name(self.parse_ident())),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of statement")),
        }
    }

    fn parse_ident(&mut self) -> String {
        self.skip_ws();
        let start = self.pos;
        while self
            .src
            .get(self.pos)
            .is_some_and(|&c| c == b'_' || c.is_ascii_alphanumeric())
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .expect("identifier bytes are ASCII")
            .to_owned()
    }
}

impl Program {
    /// Parses a kernel program.
    ///
    /// # Errors
    ///
    /// Returns a [`KernelParseError`] carrying the failing byte
    /// position; an empty program (no statements after stripping
    /// comments and blank lines) is an error too.
    pub fn parse(input: &str) -> Result<Program, KernelParseError> {
        let mut statements = Vec::new();
        // Statements end at newlines or `;`; `#` comments run to end of
        // line. Splitting before expression parsing keeps the grammar
        // line-oriented: one statement per line (or `;`-chained).
        let bytes = input.as_bytes();
        let mut seg_start = 0usize;
        let mut i = 0usize;
        let mut in_comment = false;
        while i <= bytes.len() {
            let at_sep = i == bytes.len() || bytes[i] == b'\n' || (!in_comment && bytes[i] == b';');
            if i < bytes.len() && bytes[i] == b'#' {
                in_comment = true;
            }
            if at_sep {
                let raw = &input[seg_start..i];
                let seg = match raw.find('#') {
                    Some(h) => &raw[..h],
                    None => raw,
                };
                if !seg.trim().is_empty() {
                    statements.push(Self::parse_statement(seg, seg_start)?);
                }
                if i < bytes.len() && bytes[i] == b'\n' {
                    in_comment = false;
                }
                seg_start = i + 1;
            }
            i += 1;
        }
        if statements.is_empty() {
            return Err(KernelParseError {
                position: input.len(),
                message: "program has no statements".into(),
            });
        }
        Ok(Program { statements })
    }

    fn parse_statement(seg: &str, base: usize) -> Result<Statement, KernelParseError> {
        let mut p = ExprParser {
            src: seg.as_bytes(),
            base,
            pos: 0,
        };
        let target = match p.peek() {
            Some(c) if c == b'_' || c.is_ascii_alphabetic() => p.parse_ident(),
            _ => return Err(p.err("expected statement target name")),
        };
        if p.bump() != Some(b'=') {
            return Err(p.err("expected `=` after target name"));
        }
        let expr = p.parse_or()?;
        p.skip_ws();
        if p.pos != p.src.len() {
            return Err(p.err("trailing input after expression"));
        }
        Ok(Statement { target, expr })
    }

    /// The program's input names — names read before any assignment to
    /// them — sorted and deduplicated. These are exactly the names a
    /// [`Kernel`](crate::LogicalOp::Kernel) request must bind.
    pub fn inputs(&self) -> Vec<String> {
        fn walk(e: &Expr, defined: &[String], out: &mut Vec<String>) {
            match e {
                Expr::Name(n) => {
                    if !defined.contains(n) && !out.contains(n) {
                        out.push(n.clone());
                    }
                }
                Expr::Not(x) => walk(x, defined, out),
                Expr::And(a, b) | Expr::Or(a, b) | Expr::Xor(a, b) => {
                    walk(a, defined, out);
                    walk(b, defined, out);
                }
            }
        }
        let mut defined: Vec<String> = Vec::new();
        let mut out = Vec::new();
        for s in &self.statements {
            walk(&s.expr, &defined, &mut out);
            if !defined.contains(&s.target) {
                defined.push(s.target.clone());
            }
        }
        out.sort();
        out
    }

    /// Names assigned by the program, in first-assignment order.
    pub fn targets(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for s in &self.statements {
            if !out.contains(&s.target) {
                out.push(s.target.clone());
            }
        }
        out
    }

    /// Host-side reference evaluation over plain `u64` lanes: runs the
    /// statements in order against `env` (name → word), returning the
    /// final environment. Missing inputs read as 0. This is the oracle
    /// the property tests compare the in-memory execution against, one
    /// word at a time.
    pub fn eval_words(&self, env: &BTreeMap<String, u64>) -> BTreeMap<String, u64> {
        fn walk(e: &Expr, env: &BTreeMap<String, u64>) -> u64 {
            match e {
                Expr::Name(n) => *env.get(n).unwrap_or(&0),
                Expr::Not(x) => !walk(x, env),
                Expr::And(a, b) => walk(a, env) & walk(b, env),
                Expr::Or(a, b) => walk(a, env) | walk(b, env),
                Expr::Xor(a, b) => walk(a, env) ^ walk(b, env),
            }
        }
        let mut env = env.clone();
        for s in &self.statements {
            let v = walk(&s.expr, &env);
            env.insert(s.target.clone(), v);
        }
        env
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_multi_statement_programs() {
        let p = Program::parse("t = a & b; d = t ^ ~c").unwrap();
        assert_eq!(p.statements.len(), 2);
        assert_eq!(p.inputs(), vec!["a", "b", "c"]);
        assert_eq!(p.targets(), vec!["t", "d"]);
    }

    #[test]
    fn newlines_comments_and_blank_lines() {
        let p = Program::parse(
            "# CRC feedback tap\n\
             fb = s7 ^ bit\n\
             \n\
             s1 = s1 ^ fb   # poly term x^1\n\
             s2 = s2 ^ fb ; s0 = fb\n",
        )
        .unwrap();
        assert_eq!(p.statements.len(), 4);
        assert_eq!(p.targets(), vec!["fb", "s1", "s2", "s0"]);
        assert_eq!(p.inputs(), vec!["bit", "s1", "s2", "s7"]);
    }

    #[test]
    fn precedence_matches_host_semantics() {
        // a | b & c  ==  a | (b & c);  ~a ^ b  ==  (~a) ^ b
        let p = Program::parse("d = a | b & c\ne = ~a ^ b").unwrap();
        let mut env = BTreeMap::new();
        env.insert("a".to_owned(), 0b0011u64);
        env.insert("b".to_owned(), 0b0101u64);
        env.insert("c".to_owned(), 0b1111u64);
        let out = p.eval_words(&env);
        assert_eq!(out["d"], 0b0011 | (0b0101 & 0b1111));
        assert_eq!(out["e"], !0b0011u64 ^ 0b0101);
    }

    #[test]
    fn rebinding_uses_latest_value() {
        let p = Program::parse("x = a ^ b\nx = x & a\nd = x").unwrap();
        let mut env = BTreeMap::new();
        env.insert("a".to_owned(), 0xF0u64);
        env.insert("b".to_owned(), 0x3Cu64);
        let out = p.eval_words(&env);
        assert_eq!(out["d"], (0xF0u64 ^ 0x3C) & 0xF0);
        // `x` rebinds, so the program's inputs are only a and b.
        assert_eq!(p.inputs(), vec!["a", "b"]);
    }

    #[test]
    fn bang_and_tilde_are_synonyms() {
        let a = Program::parse("d = !a").unwrap();
        let b = Program::parse("d = ~a").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parse_errors_carry_global_positions() {
        let e = Program::parse("d = a &").unwrap_err();
        assert!(e.message.contains("end of statement"));
        let e = Program::parse("d = (a | b").unwrap_err();
        assert!(e.message.contains(")"));
        let e = Program::parse("d a").unwrap_err();
        assert!(e.message.contains("`=`"));
        let e = Program::parse("= a").unwrap_err();
        assert!(e.message.contains("target"));
        let e = Program::parse("d = a b").unwrap_err();
        assert!(e.message.contains("trailing"));
        let e = Program::parse("d = 5").unwrap_err();
        assert!(e.message.contains("unexpected character"));
        let e = Program::parse("# only a comment\n\n").unwrap_err();
        assert!(e.message.contains("no statements"));
        // Second-line errors point past the first line.
        let e = Program::parse("d = a\ne = a &").unwrap_err();
        assert!(e.position > 6, "position {} not global", e.position);
        assert!(e.to_string().contains("byte"));
    }

    #[test]
    fn semicolon_inside_comment_is_text() {
        let p = Program::parse("d = a # not a sep; really\ne = d").unwrap();
        assert_eq!(p.statements.len(), 2);
    }
}
