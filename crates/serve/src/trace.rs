//! Seeded synthetic request traces for tests, campaigns and benchmarks.
//!
//! A [`TraceSpec`] describes a multi-tenant workload shape — how many
//! tenants, how many requests, how many arrive per tick, the op mix —
//! and [`generate_trace`] expands it into the vector set to create plus
//! a tick-sorted event list. Everything derives from the spec's seed via
//! [`derive_seed`], so the same spec always produces the same trace:
//! the benchmark sweeps replay *identical* offered load against every
//! shard count, and the determinism suite replays identical load
//! against every worker count.

use crate::request::{LogicalOp, TenantId};
use felim_exec::derive_seed;
use serde::Serialize;

/// One offered request in a trace.
#[derive(Debug, Clone, Serialize)]
pub struct TraceEvent {
    /// Virtual tick at which the client submits it.
    pub at_tick: u64,
    /// Submitting tenant.
    pub tenant: TenantId,
    /// The request body.
    pub op: LogicalOp,
    /// Relative deadline in ticks (`None` = best-effort).
    pub deadline_ticks: Option<u64>,
}

/// Shape of a synthetic multi-tenant workload.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct TraceSpec {
    /// Tenant accounts generating load (each gets its own vector set).
    pub tenants: u32,
    /// Rows per named vector.
    pub vector_rows: u64,
    /// Logic/read requests after the warm-up writes.
    pub requests: u64,
    /// Requests offered per tick (the load level).
    pub per_tick: u32,
    /// Relative deadline stamped on every request (`None` = none).
    pub deadline_ticks: Option<u64>,
    /// Seed of the op-mix stream.
    pub seed: u64,
}

impl TraceSpec {
    /// A small default: 2 tenants, 8-row vectors, 64 requests, 4 per
    /// tick, best-effort deadlines.
    pub fn small(seed: u64) -> Self {
        Self {
            tenants: 2,
            vector_rows: 8,
            requests: 64,
            per_tick: 4,
            deadline_ticks: None,
            seed,
        }
    }

    /// Vector names for tenant `t`: two operands and a destination.
    pub fn tenant_vectors(t: u32) -> [String; 3] {
        [format!("t{t}.a"), format!("t{t}.b"), format!("t{t}.d")]
    }
}

/// Expands a spec into `(vectors_to_create, events)`.
///
/// The trace opens with one `Write` per tenant vector (operand
/// initialisation *through the service*, so warm-up is part of the
/// offered load), then `requests` logic/read events round-robin across
/// tenants, `per_tick` per tick, with a seeded op mix of the eight
/// logic ops plus occasional reads.
pub fn generate_trace(spec: &TraceSpec) -> (Vec<(String, u64)>, Vec<TraceEvent>) {
    assert!(spec.tenants > 0, "need at least one tenant");
    assert!(spec.per_tick > 0, "need a positive load level");
    let mut vectors = Vec::new();
    for t in 0..spec.tenants {
        for name in TraceSpec::tenant_vectors(t) {
            vectors.push((name, spec.vector_rows));
        }
    }

    let mut events = Vec::new();
    let mut tick = 0u64;
    let mut in_tick = 0u32;
    let mut push = |op: LogicalOp, tenant: TenantId, events: &mut Vec<TraceEvent>| {
        events.push(TraceEvent {
            at_tick: tick,
            tenant,
            op,
            deadline_ticks: spec.deadline_ticks,
        });
        in_tick += 1;
        if in_tick == spec.per_tick {
            in_tick = 0;
            tick += 1;
        }
    };

    // Warm-up: seed every operand (and destination) with a derived
    // pattern so reads are meaningful from the first tick.
    for t in 0..spec.tenants {
        let [a, b, d] = TraceSpec::tenant_vectors(t);
        for (i, name) in [a, b, d].into_iter().enumerate() {
            let w = derive_seed(spec.seed, u64::from(t) * 8 + i as u64);
            push(
                LogicalOp::Write {
                    dst: name,
                    words: vec![w, !w, w.rotate_left(17)],
                },
                TenantId(t),
                &mut events,
            );
        }
    }

    for r in 0..spec.requests {
        let t = (r % u64::from(spec.tenants)) as u32;
        let [a, b, d] = TraceSpec::tenant_vectors(t);
        let roll = derive_seed(spec.seed ^ 0x7_2ace, r) % 10;
        let op = match roll {
            0 => LogicalOp::And { a, b, dst: d },
            1 => LogicalOp::Or { a, b, dst: d },
            2 => LogicalOp::Xor { a, b, dst: d },
            3 => LogicalOp::Nand { a, b, dst: d },
            4 => LogicalOp::Nor { a, b, dst: d },
            5 => LogicalOp::Xnor { a, b, dst: d },
            6 => LogicalOp::Not { src: a, dst: d },
            7 => LogicalOp::Copy { src: b, dst: d },
            8 => LogicalOp::Read { src: d },
            _ => LogicalOp::Write {
                dst: a,
                words: vec![derive_seed(spec.seed, r ^ 0x77), r + 1],
            },
        };
        push(op, TenantId(t), &mut events);
    }
    (vectors, events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_and_sorted() {
        let spec = TraceSpec::small(9);
        let (v1, e1) = generate_trace(&spec);
        let (v2, e2) = generate_trace(&spec);
        assert_eq!(v1, v2);
        assert_eq!(
            serde_json::to_string(&e1).unwrap(),
            serde_json::to_string(&e2).unwrap()
        );
        assert!(e1.windows(2).all(|w| w[0].at_tick <= w[1].at_tick));
        assert_eq!(e1.len() as u64, spec.requests + u64::from(spec.tenants) * 3);
    }

    #[test]
    fn different_seeds_differ() {
        let (_, e1) = generate_trace(&TraceSpec::small(1));
        let (_, e2) = generate_trace(&TraceSpec::small(2));
        assert_ne!(
            serde_json::to_string(&e1).unwrap(),
            serde_json::to_string(&e2).unwrap()
        );
    }

    #[test]
    fn load_level_packs_events_per_tick() {
        let mut spec = TraceSpec::small(3);
        spec.per_tick = 2;
        let (_, events) = generate_trace(&spec);
        let on_tick0 = events.iter().filter(|e| e.at_tick == 0).count();
        assert_eq!(on_tick0, 2);
    }
}
