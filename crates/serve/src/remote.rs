//! Remote shards: TCP clients, the mixed local/remote shard pool, and
//! the daemon-side session loop behind `felim-shardd`.
//!
//! The [`wire`](crate::wire) module defines *what* crosses the link;
//! this module defines *who talks*:
//!
//! * [`RemoteShard`] — the client end: one persistent `TcpStream` per
//!   shard host, a [`Frame::Hello`] handshake that constructs the
//!   hosted shard from exactly the parameters a local shard would get
//!   (including the **already-derived** per-shard drift seed), then
//!   pipelined seq-tagged batch frames with strictly ordered replies.
//!   Any transport failure **poisons** the connection: a shardd's state
//!   cannot be reconstructed mid-session, so reconnecting silently
//!   would break the determinism contract — every later call returns
//!   the same typed [`ServeError::Transport`] instead (honest
//!   backpressure, never silent drops).
//! * [`ShardPool`] — the dispatch surface the service runs against: a
//!   vector of members, each either a local `Mutex<Shard>` or a
//!   `Mutex<RemoteShard>`. Both arms expose the same
//!   `execute`/`read_local_row` calls, so [`BulkService`] settles
//!   responses identically whether a shard is in-process, across a
//!   socket, or a mix (pinned by `tests/remote.rs`).
//! * [`ShardHost`] + [`run_session`] — the daemon side: accept a
//!   connection, build one fresh [`Shard`] per session from the Hello
//!   parameters, answer batches until `Shutdown` or peer loss. One
//!   shard per *connection* keeps the daemon state-safe: a new session
//!   can never observe a previous client's rows.
//! * [`ShardHostChild`] — test/bench helper that spawns a `felim-shardd`
//!   child on an ephemeral loopback port, parses the advertised
//!   address, and kills the daemon on drop so suites never leak
//!   processes.
//!
//! [`BulkService`]: crate::BulkService

use crate::shard::{Shard, ShardBatchOutcome, Technology};
use crate::wire::{Frame, TransportErrorKind, WireError, WIRE_VERSION};
use crate::ServeError;
use felim_arch::batch::RowOp;
use felim_arch::drift::DriftSpec;
use felim_arch::geometry::MemoryGeometry;
use felim_arch::ControllerHealth;
use felim_telemetry as telemetry;
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Chunk size for snapshot transfer frames: large enough to amortise
/// framing, small enough that one chunk never approaches
/// [`MAX_FRAME`](crate::wire::MAX_FRAME).
pub const SNAPSHOT_CHUNK_LEN: u64 = 1 << 20;

/// Bounded-backoff policy for the initial connection to a shard host.
///
/// Only *connection establishment* retries: once a session is live, a
/// transport failure poisons it (the remote shard's state is
/// unrecoverable) and surfaces as [`ServeError::Transport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnectRetry {
    /// Connection attempts before giving up (at least 1).
    pub attempts: u32,
    /// Backoff before the second attempt, doubling per attempt and
    /// capped at one second.
    pub base_backoff: Duration,
}

impl Default for ConnectRetry {
    fn default() -> Self {
        Self {
            attempts: 5,
            base_backoff: Duration::from_millis(20),
        }
    }
}

impl ConnectRetry {
    /// The sleep before attempt `attempt` (0-based; attempt 0 never
    /// sleeps). Deterministic: `base · 2^(attempt-1)`, capped at 1 s.
    pub fn backoff(&self, attempt: u32) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let factor = 1u32 << (attempt - 1).min(10);
        (self.base_backoff * factor).min(Duration::from_secs(1))
    }
}

/// The client end of one shard-host session. See the [module
/// docs](self) for the pipelining and poisoning contract.
pub struct RemoteShard {
    peer: String,
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_seq: u64,
    /// Sequence numbers written but not yet answered, oldest first —
    /// replies must arrive in exactly this order.
    inflight: VecDeque<u64>,
    data_rows: u64,
    /// Set on the first transport failure; every later call echoes it.
    poisoned: Option<WireError>,
    /// Handshake parameters, retained so a replacement session can be
    /// opened with [`reconnect_fresh`](Self::reconnect_fresh) after a
    /// poisoning failure (failover rebuild).
    params: ConnectParams,
}

/// Everything needed to reopen a session to the same hosted shard slot.
#[derive(Debug, Clone)]
struct ConnectParams {
    addr: String,
    technology: Technology,
    geometry: MemoryGeometry,
    tier: Option<(DriftSpec, f64)>,
    retry: ConnectRetry,
    slot: u64,
}

impl std::fmt::Debug for RemoteShard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteShard")
            .field("peer", &self.peer)
            .field("inflight", &self.inflight.len())
            .field("poisoned", &self.poisoned.is_some())
            .finish()
    }
}

impl RemoteShard {
    /// Connects to a shard host at `addr` (with bounded retry/backoff)
    /// and performs the Hello handshake, constructing the hosted shard
    /// from `technology`/`geometry`/`tier`. A protected tier's drift
    /// seed must already be derived for this shard's index — the daemon
    /// applies it verbatim, which is what makes a remote shard
    /// bit-identical to the local shard it replaces.
    ///
    /// # Errors
    ///
    /// [`ServeError::Transport`]: `PeerLost` when every connection
    /// attempt failed, `VersionMismatch` when the daemon speaks a
    /// different [`WIRE_VERSION`], `Protocol` on a malformed handshake.
    pub fn connect(
        addr: &str,
        technology: Technology,
        geometry: MemoryGeometry,
        tier: Option<(DriftSpec, f64)>,
        retry: ConnectRetry,
    ) -> Result<Self, ServeError> {
        Self::connect_slot(addr, technology, geometry, tier, retry, 0, false)
    }

    /// [`connect`](Self::connect) addressing a specific daemon-local
    /// `slot` — the connection-multiplexing handshake: one daemon hosts
    /// many shards of one service, each session naming its slot.
    /// `resume = true` attaches to the shard already at `slot` (failover
    /// rebuild) instead of constructing a fresh one; the daemon refuses
    /// (`data_rows == 0` in the ack, surfaced as `Protocol`) when the
    /// slot is empty.
    ///
    /// # Errors
    ///
    /// As for [`connect`](Self::connect), plus `Protocol` when a resume
    /// targets an empty slot.
    #[allow(clippy::too_many_arguments)]
    pub fn connect_slot(
        addr: &str,
        technology: Technology,
        geometry: MemoryGeometry,
        tier: Option<(DriftSpec, f64)>,
        retry: ConnectRetry,
        slot: u64,
        resume: bool,
    ) -> Result<Self, ServeError> {
        let attempts = retry.attempts.max(1);
        let mut last_err = None;
        let mut stream = None;
        for attempt in 0..attempts {
            std::thread::sleep(retry.backoff(attempt));
            if attempt > 0 {
                telemetry::counter("serve.remote.connect_retries").inc();
            }
            match TcpStream::connect(addr) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) => last_err = Some(e),
            }
        }
        let Some(stream) = stream else {
            return Err(ServeError::Transport {
                peer: addr.to_owned(),
                kind: TransportErrorKind::PeerLost,
                detail: format!(
                    "connect failed after {attempts} attempts: {}",
                    last_err.map_or_else(|| "no error recorded".into(), |e| e.to_string())
                ),
            });
        };
        // Batches are latency-sensitive request/reply pairs; never sit
        // on Nagle.
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone().map_err(|e| ServeError::Transport {
            peer: addr.to_owned(),
            kind: TransportErrorKind::PeerLost,
            detail: format!("cloning stream: {e}"),
        })?);
        let mut remote = Self {
            peer: addr.to_owned(),
            reader,
            writer: BufWriter::new(stream),
            next_seq: 0,
            inflight: VecDeque::new(),
            data_rows: 0,
            poisoned: None,
            params: ConnectParams {
                addr: addr.to_owned(),
                technology,
                geometry,
                tier: tier.clone(),
                retry,
                slot,
            },
        };
        let hello = Frame::Hello {
            version: WIRE_VERSION,
            technology,
            geometry,
            tier,
            slot,
            resume,
        };
        remote.write_frame(&hello)?;
        match remote.read_frame()? {
            Frame::HelloAck { version, data_rows } => {
                if version != WIRE_VERSION {
                    return Err(remote.poison(WireError::new(
                        TransportErrorKind::VersionMismatch,
                        format!("peer speaks wire v{version}, this build speaks v{WIRE_VERSION}"),
                    )));
                }
                if resume && data_rows == 0 {
                    return Err(remote.poison(WireError::new(
                        TransportErrorKind::Protocol,
                        format!("daemon refused resume: no shard at slot {slot}"),
                    )));
                }
                remote.data_rows = data_rows;
                Ok(remote)
            }
            other => Err(remote.poison(WireError::new(
                TransportErrorKind::Protocol,
                format!("expected hello_ack, got {}", other.name()),
            ))),
        }
    }

    /// The peer address this session talks to.
    pub fn peer(&self) -> &str {
        &self.peer
    }

    /// Data rows of the hosted shard, from the handshake.
    pub fn data_rows(&self) -> u64 {
        self.data_rows
    }

    /// Batches written but not yet answered.
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }

    /// Maps a wire failure into the session-poisoning transport error.
    fn poison(&mut self, e: WireError) -> ServeError {
        telemetry::counter("serve.remote.transport_errors").inc();
        let err = ServeError::Transport {
            peer: self.peer.clone(),
            kind: e.kind,
            detail: e.detail.clone(),
        };
        self.poisoned.get_or_insert(e);
        err
    }

    /// Errors out if a previous transport failure poisoned the session.
    fn check_poison(&self) -> Result<(), ServeError> {
        match &self.poisoned {
            None => Ok(()),
            Some(e) => Err(ServeError::Transport {
                peer: self.peer.clone(),
                kind: e.kind,
                detail: format!("session poisoned by earlier failure: {}", e.detail),
            }),
        }
    }

    fn write_frame(&mut self, frame: &Frame) -> Result<(), ServeError> {
        self.check_poison()?;
        frame
            .write_to(&mut self.writer)
            .map_err(|e| self.poison(e))
    }

    fn read_frame(&mut self) -> Result<Frame, ServeError> {
        self.check_poison()?;
        Frame::read_from(&mut self.reader).map_err(|e| self.poison(e))
    }

    /// Writes one batch frame **without waiting for its reply** and
    /// returns its sequence number — the pipelining half. Replies
    /// arrive strictly in send order via [`recv_batch`](Self::recv_batch).
    ///
    /// # Errors
    ///
    /// [`ServeError::Transport`] on a poisoned session or write failure.
    pub fn send_batch(&mut self, ops: &[RowOp], tick_s: f64) -> Result<u64, ServeError> {
        let seq = self.next_seq;
        self.write_frame(&Frame::Batch {
            seq,
            tick_s,
            ops: ops.to_vec(),
        })?;
        self.next_seq += 1;
        self.inflight.push_back(seq);
        telemetry::counter("serve.remote.batches_sent").inc();
        Ok(seq)
    }

    /// Receives the oldest in-flight batch's outcome, enforcing the
    /// (shard, sequence) settlement order: a reply for any other
    /// sequence — or any other frame type — is a `Protocol` failure.
    ///
    /// # Errors
    ///
    /// [`ServeError::Transport`] on transport failure, out-of-order
    /// reply, or when nothing is in flight.
    pub fn recv_batch(&mut self) -> Result<(u64, ShardBatchOutcome), ServeError> {
        let Some(expected) = self.inflight.front().copied() else {
            return Err(ServeError::Transport {
                peer: self.peer.clone(),
                kind: TransportErrorKind::Protocol,
                detail: "recv_batch with no batch in flight".into(),
            });
        };
        match self.read_frame()? {
            Frame::BatchReply { seq, outcome } if seq == expected => {
                self.inflight.pop_front();
                Ok((seq, outcome))
            }
            Frame::BatchReply { seq, .. } => Err(self.poison(WireError::new(
                TransportErrorKind::Protocol,
                format!("out-of-order reply: expected seq {expected}, got {seq}"),
            ))),
            other => Err(self.poison(WireError::new(
                TransportErrorKind::Protocol,
                format!("expected batch_reply, got {}", other.name()),
            ))),
        }
    }

    /// Depth-1 convenience: send one batch and wait for its outcome —
    /// the call shape [`ShardPool`] dispatches through.
    ///
    /// # Errors
    ///
    /// [`ServeError::Transport`] as for
    /// [`send_batch`](Self::send_batch)/[`recv_batch`](Self::recv_batch).
    pub fn execute(&mut self, ops: &[RowOp], tick_s: f64) -> Result<ShardBatchOutcome, ServeError> {
        let seq = self.send_batch(ops, tick_s)?;
        let (got, outcome) = self.recv_batch()?;
        debug_assert_eq!(got, seq, "depth-1 pipelines settle their own batch");
        Ok(outcome)
    }

    /// Maintenance read of one shard-local row across the link.
    ///
    /// # Errors
    ///
    /// [`ServeError::Transport`] for link failures,
    /// [`ServeError::Backend`] when the remote backend itself faulted.
    pub fn read_local_row(&mut self, row: u64) -> Result<Vec<u64>, ServeError> {
        if !self.inflight.is_empty() {
            return Err(ServeError::Transport {
                peer: self.peer.clone(),
                kind: TransportErrorKind::Protocol,
                detail: format!(
                    "read_local_row with {} batches in flight",
                    self.inflight.len()
                ),
            });
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.write_frame(&Frame::ReadRow { seq, row })?;
        match self.read_frame()? {
            Frame::ReadRowReply { seq: got, result } if got == seq => {
                result.map_err(|source| ServeError::Backend { source })
            }
            Frame::ReadRowReply { seq: got, .. } => Err(self.poison(WireError::new(
                TransportErrorKind::Protocol,
                format!("out-of-order read reply: expected seq {seq}, got {got}"),
            ))),
            other => Err(self.poison(WireError::new(
                TransportErrorKind::Protocol,
                format!("expected read_row_reply, got {}", other.name()),
            ))),
        }
    }

    /// The daemon-local slot this session addresses.
    pub fn slot(&self) -> u64 {
        self.params.slot
    }

    /// Opens a **replacement session** to the same address and slot with
    /// the original handshake parameters (`resume = false`, so the
    /// daemon constructs a fresh shard at the slot). Used by failover
    /// rebuild after this session was poisoned; the replacement's state
    /// is then restored via [`push_snapshot`](Self::push_snapshot).
    ///
    /// # Errors
    ///
    /// As for [`connect`](Self::connect).
    pub fn reconnect_fresh(&self) -> Result<Self, ServeError> {
        let p = &self.params;
        Self::connect_slot(
            &p.addr,
            p.technology,
            p.geometry,
            p.tier.clone(),
            p.retry,
            p.slot,
            false,
        )
    }

    /// Pulls the hosted shard's complete state snapshot in
    /// [`SNAPSHOT_CHUNK_LEN`]-byte chunks (back-to-back, so no batch can
    /// interleave and tear the transfer). `None` when the shard cannot
    /// snapshot. Requires an idle pipeline, like
    /// [`read_local_row`](Self::read_local_row).
    ///
    /// # Errors
    ///
    /// [`ServeError::Transport`] on link failure, a non-chunk reply, or
    /// chunks that do not assemble into the advertised total.
    pub fn fetch_snapshot(&mut self) -> Result<Option<Vec<u8>>, ServeError> {
        if !self.inflight.is_empty() {
            return Err(ServeError::Transport {
                peer: self.peer.clone(),
                kind: TransportErrorKind::Protocol,
                detail: format!("fetch_snapshot with {} batches in flight", self.inflight.len()),
            });
        }
        let mut snapshot = Vec::new();
        loop {
            let offset = snapshot.len() as u64;
            let seq = self.next_seq;
            self.next_seq += 1;
            self.write_frame(&Frame::SnapshotPull {
                seq,
                offset,
                max_len: SNAPSHOT_CHUNK_LEN,
            })?;
            let (got_offset, total_len, data) = match self.read_frame()? {
                Frame::SnapshotChunk {
                    seq: got,
                    offset,
                    total_len,
                    data,
                } if got == seq => (offset, total_len, data),
                other => {
                    return Err(self.poison(WireError::new(
                        TransportErrorKind::Protocol,
                        format!("expected snapshot_chunk for seq {seq}, got {}", other.name()),
                    )));
                }
            };
            if total_len == 0 {
                return Ok(None);
            }
            if got_offset != offset || data.is_empty() || offset + data.len() as u64 > total_len {
                return Err(self.poison(WireError::new(
                    TransportErrorKind::Protocol,
                    format!(
                        "snapshot chunk misassembled: offset {got_offset} (wanted {offset}), \
                         {} bytes toward {total_len}",
                        data.len()
                    ),
                )));
            }
            snapshot.extend_from_slice(&data);
            if snapshot.len() as u64 == total_len {
                telemetry::counter("serve.replica.snapshot_pulls").inc();
                return Ok(Some(snapshot));
            }
        }
    }

    /// Pushes a state snapshot into the hosted shard in
    /// [`SNAPSHOT_CHUNK_LEN`]-byte chunks; the daemon reassembles and
    /// restores atomically on the final chunk. Returns whether the
    /// restore succeeded. Requires an idle pipeline.
    ///
    /// # Errors
    ///
    /// [`ServeError::Transport`] on link failure or a rejected chunk.
    pub fn push_snapshot(&mut self, snapshot: &[u8]) -> Result<bool, ServeError> {
        if !self.inflight.is_empty() {
            return Err(ServeError::Transport {
                peer: self.peer.clone(),
                kind: TransportErrorKind::Protocol,
                detail: format!("push_snapshot with {} batches in flight", self.inflight.len()),
            });
        }
        let total_len = snapshot.len() as u64;
        let mut offset = 0u64;
        loop {
            let end = (offset + SNAPSHOT_CHUNK_LEN).min(total_len);
            let chunk = &snapshot[offset as usize..end as usize];
            let seq = self.next_seq;
            self.next_seq += 1;
            self.write_frame(&Frame::SnapshotPush {
                seq,
                offset,
                total_len,
                data: chunk.to_vec(),
            })?;
            let ok = match self.read_frame()? {
                Frame::SnapshotPushAck { seq: got, ok } if got == seq => ok,
                other => {
                    return Err(self.poison(WireError::new(
                        TransportErrorKind::Protocol,
                        format!("expected snapshot_push_ack for seq {seq}, got {}", other.name()),
                    )));
                }
            };
            if !ok {
                return Ok(false);
            }
            offset = end;
            if offset >= total_len {
                telemetry::counter("serve.replica.snapshot_pushes").inc();
                return Ok(ok);
            }
        }
    }

    /// Polls the hosted shard's reliability-health counters.
    ///
    /// # Errors
    ///
    /// [`ServeError::Transport`] on link failure or a non-health reply.
    pub fn health(&mut self) -> Result<ControllerHealth, ServeError> {
        if !self.inflight.is_empty() {
            return Err(ServeError::Transport {
                peer: self.peer.clone(),
                kind: TransportErrorKind::Protocol,
                detail: format!("health poll with {} batches in flight", self.inflight.len()),
            });
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.write_frame(&Frame::Health { seq })?;
        match self.read_frame()? {
            Frame::HealthReply {
                seq: got,
                uncorrectable_words,
                corrected_bits,
                scrub_rewrites,
                drift_flips,
                max_wear_fraction,
            } if got == seq => Ok(ControllerHealth {
                uncorrectable_words,
                corrected_bits,
                scrub_rewrites,
                drift_flips,
                max_wear_fraction,
            }),
            other => Err(self.poison(WireError::new(
                TransportErrorKind::Protocol,
                format!("expected health_reply for seq {seq}, got {}", other.name()),
            ))),
        }
    }

    /// Ends the session politely. Errors are ignored — the daemon drops
    /// the shard either way when the stream closes.
    pub fn shutdown(&mut self) {
        if self.poisoned.is_none() {
            let _ = Frame::Shutdown.write_to(&mut self.writer);
        }
    }
}

impl Drop for RemoteShard {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One member of the service's shard pool.
pub enum PoolMember {
    /// An in-process shard, exactly as PR 7 built them.
    Local(Mutex<Shard>),
    /// A shard hosted behind a `felim-shardd` session. Boxed: a
    /// session (stream + frame buffers + poison record) dwarfs the
    /// `Local` variant, and pools mix both.
    Remote(Mutex<Box<RemoteShard>>),
}

/// The dispatch surface [`BulkService`](crate::BulkService) runs
/// against: an indexable pool whose members answer `execute` and
/// `read_local_row` identically whether local or remote. Settlement
/// order is (tick, shard, sequence) — the service reduces outcomes in
/// shard-index order every tick and each remote link settles its
/// replies in sequence order, so the response log is byte-identical for
/// any local/remote mix.
pub struct ShardPool {
    members: Vec<PoolMember>,
}

impl std::fmt::Debug for ShardPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPool")
            .field("shards", &self.members.len())
            .field("remote", &self.remote_count())
            .finish()
    }
}

impl ShardPool {
    /// Wraps the members into a pool.
    pub fn new(members: Vec<PoolMember>) -> Self {
        Self { members }
    }

    /// Number of shards in the pool.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the pool has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Number of remote members.
    pub fn remote_count(&self) -> usize {
        self.members
            .iter()
            .filter(|m| matches!(m, PoolMember::Remote(_)))
            .count()
    }

    /// Is shard `s` remote?
    pub fn is_remote(&self, s: usize) -> bool {
        matches!(self.members[s], PoolMember::Remote(_))
    }

    /// Data rows of shard `s` (identical across members by
    /// construction; validated by the service at build time).
    pub fn data_rows(&self, s: usize) -> u64 {
        match &self.members[s] {
            PoolMember::Local(shard) => shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .data_rows(),
            PoolMember::Remote(remote) => remote
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .data_rows(),
        }
    }

    /// Executes one coalesced batch on shard `s`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Transport`] when a remote member's link failed;
    /// local members are infallible at this layer (their per-op faults
    /// ride inside the outcome).
    pub fn execute(
        &self,
        s: usize,
        ops: &[RowOp],
        tick_s: f64,
    ) -> Result<ShardBatchOutcome, ServeError> {
        match &self.members[s] {
            PoolMember::Local(shard) => Ok(shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .execute(ops, tick_s)),
            PoolMember::Remote(remote) => remote
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .execute(ops, tick_s),
        }
    }

    /// Maintenance read of shard `s`'s local `row`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Backend`] for backend faults,
    /// [`ServeError::Transport`] for remote link failures.
    pub fn read_local_row(&self, s: usize, row: u64) -> Result<Vec<u64>, ServeError> {
        match &self.members[s] {
            PoolMember::Local(shard) => shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .read_local_row(row)
                .map_err(|source| ServeError::Backend { source }),
            PoolMember::Remote(remote) => remote
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .read_local_row(row),
        }
    }

    /// Pulls member `s`'s complete state snapshot (local: direct;
    /// remote: chunked over the wire). `Ok(None)` when the backend
    /// cannot snapshot.
    ///
    /// # Errors
    ///
    /// [`ServeError::Transport`] for remote link failures.
    pub fn snapshot_state(&self, s: usize) -> Result<Option<Vec<u8>>, ServeError> {
        match &self.members[s] {
            PoolMember::Local(shard) => Ok(shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .snapshot_state()),
            PoolMember::Remote(remote) => remote
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .fetch_snapshot(),
        }
    }

    /// Restores member `s` from a snapshot (local: direct; remote:
    /// chunked push, restored atomically daemon-side). Returns whether
    /// the restore succeeded.
    ///
    /// # Errors
    ///
    /// [`ServeError::Transport`] for remote link failures.
    pub fn restore_state(&self, s: usize, snapshot: &[u8]) -> Result<bool, ServeError> {
        match &self.members[s] {
            PoolMember::Local(shard) => Ok(shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .restore_state(snapshot)),
            PoolMember::Remote(remote) => remote
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push_snapshot(snapshot),
        }
    }

    /// Polls member `s`'s reliability-health counters.
    ///
    /// # Errors
    ///
    /// [`ServeError::Transport`] for remote link failures.
    pub fn health(&self, s: usize) -> Result<ControllerHealth, ServeError> {
        match &self.members[s] {
            PoolMember::Local(shard) => Ok(shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .health()),
            PoolMember::Remote(remote) => remote
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .health(),
        }
    }

    /// Revives member `s` after a poisoning transport failure by
    /// opening a **fresh replacement session** to the same address and
    /// slot (the daemon constructs an empty shard there; the caller
    /// restores state next). A no-op for local members — their state
    /// never left the process.
    ///
    /// # Errors
    ///
    /// [`ServeError::Transport`] when the replacement connection fails —
    /// the member stays poisoned and can be revived again later.
    pub fn revive(&self, s: usize) -> Result<(), ServeError> {
        match &self.members[s] {
            PoolMember::Local(_) => Ok(()),
            PoolMember::Remote(remote) => {
                let mut guard = remote
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                let fresh = guard.reconnect_fresh()?;
                telemetry::counter("serve.replica.revivals").inc();
                **guard = fresh;
                Ok(())
            }
        }
    }
}

/// Shared slot registry of one daemon: the shards it hosts, keyed by
/// the slot each session named at handshake. Shared across sessions so
/// a reconnect can resume (or replace) a slot's shard — the
/// connection-multiplexing surface behind `felim-shardd`.
pub type SlotRegistry = Arc<Mutex<HashMap<u64, Arc<Mutex<Shard>>>>>;

/// The daemon side: a bound listener serving shard sessions. Used by
/// the `felim-shardd` binary and, in-process, by transport tests. All
/// sessions share one [`SlotRegistry`], so one daemon hosts many shards
/// of one service (each session addresses its slot at handshake) and a
/// rebuild can reconnect to a slot after its session died.
#[derive(Debug)]
pub struct ShardHost {
    listener: TcpListener,
    registry: SlotRegistry,
}

impl ShardHost {
    /// Binds to `addr` (use port 0 for an ephemeral port).
    ///
    /// # Errors
    ///
    /// The bind failure, verbatim.
    pub fn bind(addr: &str) -> std::io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            registry: Arc::new(Mutex::new(HashMap::new())),
        })
    }

    /// The bound address (what to advertise to clients).
    ///
    /// # Panics
    ///
    /// Never in practice: a bound listener has a local address.
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener has an address")
    }

    /// Accepts and serves exactly one session on the calling thread.
    ///
    /// # Errors
    ///
    /// The accept failure, verbatim (session-level wire errors end the
    /// session silently — the client owns failure reporting).
    pub fn serve_once(&self) -> std::io::Result<()> {
        let (stream, _) = self.listener.accept()?;
        run_session_mux(stream, &self.registry);
        Ok(())
    }

    /// Accepts sessions forever, one thread per connection — the
    /// `felim-shardd` main loop. Only returns on accept failure.
    ///
    /// # Errors
    ///
    /// The accept failure, verbatim.
    pub fn serve_forever(&self) -> std::io::Result<()> {
        loop {
            let (stream, _) = self.listener.accept()?;
            let registry = Arc::clone(&self.registry);
            std::thread::spawn(move || run_session_mux(stream, &registry));
        }
    }
}

/// Serves one client session against a **private** registry — the
/// pre-multiplexing behaviour: the session's shard is built fresh from
/// the Hello parameters and dropped when the session ends, so no client
/// can observe another's rows. Kept for in-process tests that serve one
/// session at a time; daemons use [`run_session_mux`] with a shared
/// registry.
pub fn run_session(stream: TcpStream) {
    let registry: SlotRegistry = Arc::new(Mutex::new(HashMap::new()));
    run_session_mux(stream, &registry);
}

/// Serves one client session: Hello → slot lookup/construction → batch
/// loop. The daemon main loop runs one of these per connection, all
/// sharing the daemon's [`SlotRegistry`].
///
/// A **fresh** Hello (`resume = false`) constructs a new shard at its
/// slot, replacing any prior occupant — a reconnect without resume
/// always starts from a well-defined (empty) state, and no client can
/// observe a previous session's rows at that slot. A **resume** Hello
/// attaches to the shard already at the slot (failover rebuild), and is
/// refused (`data_rows == 0` ack) when the slot is empty. Wire failures
/// end the session quietly — the client side owns turning them into
/// typed errors; the shard stays in the registry for a later resume.
pub fn run_session_mux(stream: TcpStream, registry: &SlotRegistry) {
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);

    // Handshake: exactly one Hello, answered even on version mismatch
    // so the client can diagnose `VersionMismatch` instead of a dead
    // socket.
    let shard: Arc<Mutex<Shard>> = match Frame::read_from(&mut reader) {
        Ok(Frame::Hello {
            version,
            technology,
            geometry,
            tier,
            slot,
            resume,
        }) => {
            let refuse = |writer: &mut BufWriter<TcpStream>| {
                let _ = Frame::HelloAck {
                    version: WIRE_VERSION,
                    data_rows: 0,
                }
                .write_to(writer);
            };
            if version != WIRE_VERSION || geometry.validate().is_err() {
                refuse(&mut writer);
                return;
            }
            let mut slots = registry
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if resume {
                match slots.get(&slot) {
                    Some(existing) => Arc::clone(existing),
                    None => {
                        drop(slots);
                        refuse(&mut writer);
                        return;
                    }
                }
            } else {
                let fresh = Arc::new(Mutex::new(Shard::new(technology, geometry, tier)));
                slots.insert(slot, Arc::clone(&fresh));
                fresh
            }
        }
        _ => return,
    };
    let data_rows = shard
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .data_rows();
    let ack = Frame::HelloAck {
        version: WIRE_VERSION,
        data_rows,
    };
    if ack.write_to(&mut writer).is_err() {
        return;
    }
    telemetry::counter("serve.remote.sessions").inc();

    // Partial snapshot-push reassembly: strictly sequential chunks,
    // restored atomically when complete.
    let mut push_buf: Vec<u8> = Vec::new();
    let mut push_total: u64 = 0;

    loop {
        match Frame::read_from(&mut reader) {
            Ok(Frame::Batch { seq, tick_s, ops }) => {
                let outcome = shard
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .execute(&ops, tick_s);
                let reply = Frame::BatchReply { seq, outcome };
                if reply.write_to(&mut writer).is_err() {
                    return;
                }
            }
            Ok(Frame::ReadRow { seq, row }) => {
                let result = shard
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .read_local_row(row);
                let reply = Frame::ReadRowReply { seq, result };
                if reply.write_to(&mut writer).is_err() {
                    return;
                }
            }
            Ok(Frame::SnapshotPull { seq, offset, max_len }) => {
                let snapshot = shard
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .snapshot_state();
                let reply = match snapshot {
                    None => Frame::SnapshotChunk {
                        seq,
                        offset: 0,
                        total_len: 0,
                        data: Vec::new(),
                    },
                    Some(snap) => {
                        let total_len = snap.len() as u64;
                        let start = offset.min(total_len);
                        let end = start.saturating_add(max_len).min(total_len);
                        Frame::SnapshotChunk {
                            seq,
                            offset: start,
                            total_len,
                            data: snap[start as usize..end as usize].to_vec(),
                        }
                    }
                };
                if reply.write_to(&mut writer).is_err() {
                    return;
                }
            }
            Ok(Frame::SnapshotPush {
                seq,
                offset,
                total_len,
                data,
            }) => {
                // Chunks must arrive in order and agree on the total;
                // anything else aborts the transfer (the client sees
                // `ok = false` and owns the retry).
                if offset == 0 {
                    push_buf.clear();
                    push_total = total_len;
                }
                let ok = if total_len != push_total || offset != push_buf.len() as u64 {
                    push_buf.clear();
                    push_total = 0;
                    false
                } else {
                    push_buf.extend_from_slice(&data);
                    if push_buf.len() as u64 >= push_total {
                        let restored = shard
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .restore_state(&push_buf);
                        push_buf = Vec::new();
                        push_total = 0;
                        restored
                    } else {
                        true
                    }
                };
                let reply = Frame::SnapshotPushAck { seq, ok };
                if reply.write_to(&mut writer).is_err() {
                    return;
                }
            }
            Ok(Frame::Health { seq }) => {
                let h = shard
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .health();
                let reply = Frame::HealthReply {
                    seq,
                    uncorrectable_words: h.uncorrectable_words,
                    corrected_bits: h.corrected_bits,
                    scrub_rewrites: h.scrub_rewrites,
                    drift_flips: h.drift_flips,
                    max_wear_fraction: h.max_wear_fraction,
                };
                if reply.write_to(&mut writer).is_err() {
                    return;
                }
            }
            Ok(Frame::Shutdown) => return,
            // A second Hello, a reply frame, or any wire failure ends
            // the session; the shard stays registered for a resume.
            _ => return,
        }
    }
}

/// A `felim-shardd` child process on an ephemeral loopback port, killed
/// on drop. The daemon advertises its bound address as the first stdout
/// line (`LISTENING <addr>`), which `spawn` parses.
#[derive(Debug)]
pub struct ShardHostChild {
    child: std::process::Child,
    addr: String,
}

impl ShardHostChild {
    /// Spawns `bin --listen 127.0.0.1:0` and waits for its address
    /// line.
    ///
    /// # Errors
    ///
    /// Spawn failures, or a daemon that exits / prints garbage instead
    /// of `LISTENING <addr>`.
    pub fn spawn(bin: impl AsRef<std::ffi::OsStr>) -> std::io::Result<Self> {
        let mut child = std::process::Command::new(bin.as_ref())
            .args(["--listen", "127.0.0.1:0"])
            .stdout(std::process::Stdio::piped())
            .spawn()?;
        let stdout = child.stdout.take().expect("stdout was piped");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line)?;
        let addr = match line.trim().strip_prefix("LISTENING ") {
            Some(addr) if !addr.is_empty() => addr.to_owned(),
            _ => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("shardd did not advertise an address (got {line:?})"),
                ));
            }
        };
        Ok(Self { child, addr })
    }

    /// The daemon's advertised `host:port`.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Kills the daemon now (tests that simulate peer loss).
    pub fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ShardHostChild {
    fn drop(&mut self) {
        self.kill();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use felim_arch::batch::RowOpOutput;
    use felim_arch::geometry::RowId;

    /// An in-process host serving `sessions` sessions on its own thread.
    fn host(sessions: usize) -> (SocketAddr, std::thread::JoinHandle<()>) {
        let host = ShardHost::bind("127.0.0.1:0").unwrap();
        let addr = host.local_addr();
        let handle = std::thread::spawn(move || {
            for _ in 0..sessions {
                host.serve_once().unwrap();
            }
        });
        (addr, handle)
    }

    #[test]
    fn remote_shard_matches_local_shard_bit_for_bit() {
        let (addr, handle) = host(1);
        let geometry = MemoryGeometry::tiny();
        let mut local = Shard::new(Technology::Feram, geometry, None);
        let mut remote = RemoteShard::connect(
            &addr.to_string(),
            Technology::Feram,
            geometry,
            None,
            ConnectRetry::default(),
        )
        .unwrap();
        assert_eq!(remote.data_rows(), local.data_rows());

        let ops = vec![
            RowOp::Write {
                row: RowId(0),
                data: vec![0b1100; 128],
            },
            RowOp::Write {
                row: RowId(1),
                data: vec![0b1010; 128],
            },
            RowOp::Nand {
                a: RowId(0),
                b: RowId(1),
                dst: RowId(2),
            },
            RowOp::Read { row: RowId(2) },
        ];
        let want = local.execute(&ops, 1e-3);
        let got = remote.execute(&ops, 1e-3).unwrap();
        assert_eq!(got, want, "remote outcome must be bit-identical");
        match &got.outputs[3] {
            Ok(RowOpOutput::Data(words)) => assert_eq!(words[0], !0b1000u64),
            other => panic!("expected data, got {other:?}"),
        }
        assert_eq!(
            remote.read_local_row(2).unwrap(),
            local.read_local_row(2).unwrap()
        );
        remote.shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn pipelined_batches_settle_in_sequence_order() {
        let (addr, handle) = host(1);
        let mut remote = RemoteShard::connect(
            &addr.to_string(),
            Technology::Feram,
            MemoryGeometry::tiny(),
            None,
            ConnectRetry::default(),
        )
        .unwrap();
        // Queue four batches before reading any reply.
        let mut seqs = Vec::new();
        for i in 0..4u64 {
            let ops = vec![RowOp::Write {
                row: RowId(i),
                data: vec![i; 128],
            }];
            seqs.push(remote.send_batch(&ops, 1e-3).unwrap());
        }
        assert_eq!(remote.inflight(), 4);
        for want in seqs {
            let (seq, outcome) = remote.recv_batch().unwrap();
            assert_eq!(seq, want);
            assert!(outcome.outputs.iter().all(Result::is_ok));
        }
        assert_eq!(remote.inflight(), 0);
        remote.shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn protected_tier_crosses_the_wire() {
        let (addr, handle) = host(1);
        let geometry = MemoryGeometry::tiny();
        let tier = Some((DriftSpec::quiet(99), 0.5));
        let mut local = Shard::new(Technology::Feram, geometry, tier.clone());
        let mut remote = RemoteShard::connect(
            &addr.to_string(),
            Technology::Feram,
            geometry,
            tier,
            ConnectRetry::default(),
        )
        .unwrap();
        let ops = vec![
            RowOp::Write {
                row: RowId(5),
                data: vec![0xF0F0; 128],
            },
            RowOp::Read { row: RowId(5) },
        ];
        assert_eq!(remote.execute(&ops, 0.5).unwrap(), local.execute(&ops, 0.5));
        remote.shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn dead_peer_poisons_the_session_with_typed_errors() {
        let (addr, handle) = host(1);
        let mut remote = RemoteShard::connect(
            &addr.to_string(),
            Technology::Feram,
            MemoryGeometry::tiny(),
            None,
            ConnectRetry::default(),
        )
        .unwrap();
        // End the daemon side by shutting down, then keep using the
        // session: the next call must be a typed Transport error, and
        // every call after that echoes the poison.
        remote.shutdown();
        handle.join().unwrap();
        let ops = vec![RowOp::Read { row: RowId(0) }];
        // The send may still land in the OS buffer; the recv must fail.
        let err = match remote.execute(&ops, 1e-3) {
            Err(e) => e,
            Ok(_) => panic!("session kept working after peer shutdown"),
        };
        match &err {
            ServeError::Transport { kind, .. } => {
                assert!(
                    matches!(
                        kind,
                        TransportErrorKind::PeerLost | TransportErrorKind::ShortRead
                    ),
                    "got {kind:?}"
                );
            }
            other => panic!("expected transport error, got {other:?}"),
        }
        assert!(matches!(
            remote.execute(&ops, 1e-3),
            Err(ServeError::Transport { .. })
        ));
    }

    #[test]
    fn connect_to_nothing_fails_after_bounded_retries() {
        // Bind-then-drop to find a port with nothing listening.
        let port = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let retry = ConnectRetry {
            attempts: 2,
            base_backoff: Duration::from_millis(1),
        };
        let err = RemoteShard::connect(
            &format!("127.0.0.1:{port}"),
            Technology::Feram,
            MemoryGeometry::tiny(),
            None,
            retry,
        )
        .unwrap_err();
        match err {
            ServeError::Transport { kind, detail, .. } => {
                assert_eq!(kind, TransportErrorKind::PeerLost);
                assert!(detail.contains("2 attempts"), "{detail}");
            }
            other => panic!("expected transport error, got {other:?}"),
        }
    }

    #[test]
    fn backoff_is_bounded_and_deterministic() {
        let retry = ConnectRetry::default();
        assert_eq!(retry.backoff(0), Duration::ZERO);
        assert_eq!(retry.backoff(1), Duration::from_millis(20));
        assert_eq!(retry.backoff(2), Duration::from_millis(40));
        assert_eq!(retry.backoff(30), Duration::from_secs(1), "capped");
    }

    #[test]
    fn pool_mixes_local_and_remote_members_transparently() {
        let (addr, handle) = host(1);
        let geometry = MemoryGeometry::tiny();
        let remote = RemoteShard::connect(
            &addr.to_string(),
            Technology::Feram,
            geometry,
            None,
            ConnectRetry::default(),
        )
        .unwrap();
        let pool = ShardPool::new(vec![
            PoolMember::Local(Mutex::new(Shard::new(Technology::Feram, geometry, None))),
            PoolMember::Remote(Mutex::new(Box::new(remote))),
        ]);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.remote_count(), 1);
        assert!(!pool.is_remote(0));
        assert!(pool.is_remote(1));
        assert_eq!(pool.data_rows(0), pool.data_rows(1));
        let ops = vec![
            RowOp::Write {
                row: RowId(0),
                data: vec![42; 128],
            },
            RowOp::Read { row: RowId(0) },
        ];
        let a = pool.execute(0, &ops, 1e-3).unwrap();
        let b = pool.execute(1, &ops, 1e-3).unwrap();
        assert_eq!(a, b, "local and remote members must agree bit-for-bit");
        assert_eq!(
            pool.read_local_row(0, 0).unwrap(),
            pool.read_local_row(1, 0).unwrap()
        );
        drop(pool);
        handle.join().unwrap();
    }

    #[test]
    fn version_mismatch_is_refused_with_a_typed_error() {
        // A raw listener that answers Hello with a wrong-version ack.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = BufWriter::new(stream);
            assert!(matches!(
                Frame::read_from(&mut reader).unwrap(),
                Frame::Hello { .. }
            ));
            Frame::HelloAck {
                version: WIRE_VERSION + 1,
                data_rows: 0,
            }
            .write_to(&mut writer)
            .unwrap();
        });
        let err = RemoteShard::connect(
            &addr.to_string(),
            Technology::Feram,
            MemoryGeometry::tiny(),
            None,
            ConnectRetry::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ServeError::Transport {
                kind: TransportErrorKind::VersionMismatch,
                ..
            }
        ));
        handle.join().unwrap();
    }
}
