//! One shard of the service: a command-logging backend plus its batch
//! execution entry point.
//!
//! A shard owns an independent [`BulkBackend`] instance — FeRAM, the
//! Ambit DRAM baseline, or either wrapped in a
//! [`ReliabilityController`] — always built `.with_command_log()`. Each
//! dispatch runs one coalesced [`RowOp`] batch through
//! [`execute_batch`], then replays the batch's command log with
//! [`schedule`] to price it as a *makespan* under subarray parallelism
//! (one slot per subarray), and finally clears the log so the next
//! batch's replay stands alone. The service charges each virtual tick
//! the slowest shard's makespan — the quantity the PR-7 benchmark sweeps
//! against shard count.

use felim_arch::batch::{execute_batch, RowOp, RowOpOutput};
use felim_arch::controller::{ControllerConfig, ReliabilityController};
use felim_arch::drift::DriftSpec;
use felim_arch::geometry::MemoryGeometry;
use felim_arch::schedule::schedule;
use felim_arch::{ArchError, BulkBackend, DramBackend, FeramBackend};
use serde::Serialize;

/// Which memory technology backs each shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Technology {
    /// The paper's 2T-nC FeRAM logic-in-memory array.
    Feram,
    /// The Ambit-style triple-row-activation DRAM baseline.
    Dram,
}

impl Technology {
    /// Lower-case label for reports and telemetry.
    pub fn label(self) -> &'static str {
        match self {
            Technology::Feram => "feram",
            Technology::Dram => "dram",
        }
    }
}

/// The backend behind one shard. Reliability-tiered shards wrap the raw
/// backend in a [`ReliabilityController`] (SECDED ECC + patrol scrub).
enum ShardBackend {
    Feram(Box<FeramBackend>),
    Dram(Box<DramBackend>),
    ReliableFeram(Box<ReliabilityController<FeramBackend>>),
    ReliableDram(Box<ReliabilityController<DramBackend>>),
}

/// Outcome of one batch dispatch on one shard. `Clone + PartialEq` so
/// outcomes can cross the [`wire`](crate::wire) protocol and be
/// compared end-to-end in transport tests.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardBatchOutcome {
    /// Per-op results, in batch order (empty batches yield an empty
    /// vector — the dispatch still ticks the reliability clock).
    pub outputs: Vec<Result<RowOpOutput, ArchError>>,
    /// Serial cycles the batch's commands would take back-to-back.
    pub serial_cycles: u64,
    /// Makespan of the batch under subarray-parallel replay — the
    /// shard's contribution to the tick's duration.
    pub makespan_cycles: u64,
    /// Energy charged for the batch, nanojoules.
    pub energy_nj: f64,
    /// A maintenance (scrub/drift tick) fault, if one fired. Recorded,
    /// not escalated: maintenance failures do not fail client requests.
    pub maintenance_error: Option<ArchError>,
}

/// One shard: an isolated backend plus its dispatch state.
pub struct Shard {
    backend: ShardBackend,
    slots: usize,
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("tech", &self.tech_name())
            .field("slots", &self.slots)
            .finish()
    }
}

impl Shard {
    /// Builds a shard over `geometry`. `tier_config` of `None` gives the
    /// raw backend; `Some((drift, scrub_period_s))` wraps it in a
    /// protected [`ReliabilityController`].
    pub fn new(
        technology: Technology,
        geometry: MemoryGeometry,
        tier_config: Option<(DriftSpec, f64)>,
    ) -> Self {
        let slots = geometry.subarrays().max(1) as usize;
        let backend = match (technology, tier_config) {
            (Technology::Feram, None) => {
                ShardBackend::Feram(Box::new(FeramBackend::new(geometry).with_command_log()))
            }
            (Technology::Dram, None) => {
                ShardBackend::Dram(Box::new(DramBackend::new(geometry).with_command_log()))
            }
            (Technology::Feram, Some((drift, period))) => {
                let inner = FeramBackend::new(geometry).with_command_log();
                ShardBackend::ReliableFeram(Box::new(ReliabilityController::new(
                    inner,
                    ControllerConfig::protected(drift, period),
                )))
            }
            (Technology::Dram, Some((drift, period))) => {
                let inner = DramBackend::new(geometry).with_command_log();
                ShardBackend::ReliableDram(Box::new(ReliabilityController::new(
                    inner,
                    ControllerConfig::protected(drift, period),
                )))
            }
        };
        Self { backend, slots }
    }

    /// The shard's technology label (`"feram"` / `"dram"`).
    pub fn tech_name(&self) -> &'static str {
        match &self.backend {
            ShardBackend::Feram(_) | ShardBackend::ReliableFeram(_) => "feram",
            ShardBackend::Dram(_) | ShardBackend::ReliableDram(_) => "dram",
        }
    }

    /// First reserved local row — data rows live strictly below it.
    pub fn data_rows(&self) -> u64 {
        match &self.backend {
            ShardBackend::Feram(m) => m.first_reserved_row().0,
            ShardBackend::Dram(m) => m.first_reserved_row().0,
            ShardBackend::ReliableFeram(c) => c.inner().first_reserved_row().0,
            ShardBackend::ReliableDram(c) => c.inner().first_reserved_row().0,
        }
    }

    /// Runs one coalesced batch: advances the reliability clock by
    /// `tick_s` (protected tiers), executes the ops, and prices the
    /// batch's command log as a subarray-parallel makespan.
    pub fn execute(&mut self, ops: &[RowOp], tick_s: f64) -> ShardBatchOutcome {
        let maintenance_error = match &mut self.backend {
            ShardBackend::ReliableFeram(c) => c.tick(tick_s).err(),
            ShardBackend::ReliableDram(c) => c.tick(tick_s).err(),
            _ => None,
        };

        let report = execute_batch(self.backend_mut(), ops);

        let (serial_cycles, makespan_cycles) = {
            let (log, geometry, latency) = match &self.backend {
                ShardBackend::Feram(m) => (m.command_log(), m.geometry(), m.latency_model()),
                ShardBackend::Dram(m) => (m.command_log(), m.geometry(), m.latency_model()),
                ShardBackend::ReliableFeram(c) => {
                    let m = c.inner();
                    (m.command_log(), m.geometry(), m.latency_model())
                }
                ShardBackend::ReliableDram(c) => {
                    let m = c.inner();
                    (m.command_log(), m.geometry(), m.latency_model())
                }
            };
            if log.is_empty() {
                (0, 0)
            } else {
                let replay = schedule(log, geometry, latency, self.slots);
                (replay.serial_cycles, replay.makespan_cycles)
            }
        };
        match &mut self.backend {
            ShardBackend::Feram(m) => m.clear_command_log(),
            ShardBackend::Dram(m) => m.clear_command_log(),
            ShardBackend::ReliableFeram(c) => c.inner_mut().clear_command_log(),
            ShardBackend::ReliableDram(c) => c.inner_mut().clear_command_log(),
        }

        ShardBatchOutcome {
            outputs: report.outputs,
            serial_cycles,
            makespan_cycles,
            energy_nj: report.energy_nj,
            maintenance_error,
        }
    }

    /// Direct maintenance read of a local row (bypasses the queue; used
    /// by [`BulkService::read_vector`](crate::BulkService::read_vector)).
    ///
    /// # Errors
    ///
    /// Propagates the backend's [`ArchError`].
    pub fn read_local_row(&mut self, row: u64) -> Result<Vec<u64>, ArchError> {
        let row = felim_arch::geometry::RowId(row);
        let data = self.backend_mut().read_row(row);
        // Keep maintenance traffic out of the next batch's makespan.
        match &mut self.backend {
            ShardBackend::Feram(m) => m.clear_command_log(),
            ShardBackend::Dram(m) => m.clear_command_log(),
            ShardBackend::ReliableFeram(c) => c.inner_mut().clear_command_log(),
            ShardBackend::ReliableDram(c) => c.inner_mut().clear_command_log(),
        }
        data
    }

    /// Serialises the complete backend state (rows, wear, ECC
    /// side-bands, drift clocks) for replica transfer. `None` when the
    /// backend cannot snapshot (e.g. a fault injector is attached).
    pub fn snapshot_state(&self) -> Option<Vec<u8>> {
        match &self.backend {
            ShardBackend::Feram(m) => BulkBackend::snapshot_state(m.as_ref()),
            ShardBackend::Dram(m) => BulkBackend::snapshot_state(m.as_ref()),
            ShardBackend::ReliableFeram(c) => BulkBackend::snapshot_state(c.as_ref()),
            ShardBackend::ReliableDram(c) => BulkBackend::snapshot_state(c.as_ref()),
        }
    }

    /// Restores the backend from a [`snapshot_state`](Self::snapshot_state)
    /// buffer. `false` (state untouched) on any mismatch or corruption.
    pub fn restore_state(&mut self, snapshot: &[u8]) -> bool {
        self.backend_mut().restore_state(snapshot)
    }

    /// Current reliability-health counters. Raw (Baseline) shards report
    /// all-zero health: nothing is tracked, so nothing can degrade.
    pub fn health(&self) -> felim_arch::ControllerHealth {
        match &self.backend {
            ShardBackend::ReliableFeram(c) => c.health(),
            ShardBackend::ReliableDram(c) => c.health(),
            ShardBackend::Feram(_) | ShardBackend::Dram(_) => {
                felim_arch::ControllerHealth::default()
            }
        }
    }

    /// Cumulative backend statistics (cycles, energy, command mix).
    pub fn stats(&self) -> &felim_arch::stats::ExecStats {
        match &self.backend {
            ShardBackend::Feram(m) => m.stats(),
            ShardBackend::Dram(m) => m.stats(),
            ShardBackend::ReliableFeram(c) => c.stats(),
            ShardBackend::ReliableDram(c) => c.stats(),
        }
    }

    fn backend_mut(&mut self) -> &mut dyn BulkBackend {
        match &mut self.backend {
            ShardBackend::Feram(m) => m.as_mut(),
            ShardBackend::Dram(m) => m.as_mut(),
            ShardBackend::ReliableFeram(c) => c.as_mut(),
            ShardBackend::ReliableDram(c) => c.as_mut(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use felim_arch::geometry::RowId;

    #[test]
    fn batch_prices_as_makespan_not_serial_sum() {
        let mut shard = Shard::new(Technology::Feram, MemoryGeometry::tiny(), None);
        // Ops in different subarrays overlap under replay.
        let ops: Vec<RowOp> = (0..8)
            .map(|i| RowOp::Write {
                row: RowId(i * 64),
                data: vec![i; 128],
            })
            .collect();
        let out = shard.execute(&ops, 1e-3);
        assert!(out.outputs.iter().all(|o| o.is_ok()));
        assert!(out.makespan_cycles > 0);
        assert!(
            out.makespan_cycles < out.serial_cycles,
            "8 subarrays must overlap: makespan {} vs serial {}",
            out.makespan_cycles,
            out.serial_cycles
        );
    }

    #[test]
    fn consecutive_batches_price_independently() {
        let mut shard = Shard::new(Technology::Dram, MemoryGeometry::tiny(), None);
        let ops = vec![RowOp::Write {
            row: RowId(0),
            data: vec![7; 128],
        }];
        let first = shard.execute(&ops, 1e-3);
        let second = shard.execute(&ops, 1e-3);
        assert_eq!(
            first.makespan_cycles, second.makespan_cycles,
            "log must be cleared between batches"
        );
    }

    #[test]
    fn protected_shard_serves_and_ticks() {
        let mut shard = Shard::new(
            Technology::Feram,
            MemoryGeometry::tiny(),
            Some((DriftSpec::quiet(7), 1.0)),
        );
        assert_eq!(shard.tech_name(), "feram");
        let ops = vec![
            RowOp::Write {
                row: RowId(0),
                data: vec![0b1100; 128],
            },
            RowOp::Write {
                row: RowId(1),
                data: vec![0b1010; 128],
            },
            RowOp::And {
                a: RowId(0),
                b: RowId(1),
                dst: RowId(2),
            },
            RowOp::Read { row: RowId(2) },
        ];
        let out = shard.execute(&ops, 0.5);
        assert!(out.maintenance_error.is_none());
        match &out.outputs[3] {
            Ok(RowOpOutput::Data(words)) => assert_eq!(words[0], 0b1000),
            other => panic!("expected read data, got {other:?}"),
        }
        assert_eq!(shard.read_local_row(2).unwrap()[0], 0b1000);
    }

    #[test]
    fn empty_batch_is_a_priced_noop() {
        let mut shard = Shard::new(Technology::Feram, MemoryGeometry::tiny(), None);
        let out = shard.execute(&[], 1e-3);
        assert!(out.outputs.is_empty());
        assert_eq!(out.makespan_cycles, 0);
    }
}
