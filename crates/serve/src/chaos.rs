//! Deterministic chaos proxy for wire-protocol tests.
//!
//! [`ChaosProxy`] sits between a client (`RemoteShard`) and a
//! `felim-shardd` daemon as a plain TCP forwarder, with three seedable
//! fault toggles on the **server → client** direction:
//!
//! * **delay** — every N-th reply frame is held for a fixed number of
//!   milliseconds (exercises timeout paths without nondeterminism);
//! * **drop** — at a chosen global frame index the connection is closed
//!   *between* frames (a clean transport loss);
//! * **kill mid-frame** — at a chosen global frame index, half the
//!   frame is forwarded and the connection is cut (a torn frame: the
//!   CRC/length guards must catch it, never a half-applied batch).
//!
//! Reply frames are parsed just enough to find their boundaries
//! (`[len u32][payload][crc u32]`, the framing of [`crate::wire`]), and
//! a single proxy-wide frame counter indexes faults, so a spec is fully
//! deterministic for a given request schedule. The client → server
//! direction is forwarded verbatim: faults on requests would be
//! indistinguishable from reply loss to the client anyway, and keeping
//! the daemon's view clean makes tests easier to reason about.
//!
//! After a faulted connection dies, *later* connections pass through
//! untouched (each fault fires at most once) — which is exactly the
//! shape of a failover test: kill the primary's session mid-campaign,
//! then let the rebuild reconnect cleanly.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use felim_exec::derive_seed;

/// Deterministic fault schedule for a [`ChaosProxy`]. Frame indices are
/// proxy-global (across all connections), counted over server → client
/// reply frames only, starting at 0.
#[derive(Debug, Clone, Default)]
pub struct ChaosSpec {
    /// Seed for the delay pattern (mixed with the frame index via
    /// [`derive_seed`], so two proxies with different seeds delay
    /// different frames).
    pub seed: u64,
    /// When nonzero, roughly one in `delay_every` reply frames is held
    /// for [`delay_ms`](Self::delay_ms) before forwarding.
    pub delay_every: u64,
    /// Hold time for delayed frames, milliseconds.
    pub delay_ms: u64,
    /// Close the connection cleanly *before* forwarding this reply
    /// frame index (a whole-frame transport loss).
    pub drop_at_frame: Option<u64>,
    /// Forward only the first half of this reply frame index, then cut
    /// the connection (a torn frame the CRC must reject).
    pub kill_mid_frame_at: Option<u64>,
}

/// What the proxy did to one reply frame (recorded for test assertions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Forwarded untouched.
    Forward,
    /// Held for the configured delay, then forwarded.
    Delay,
    /// Connection closed before the frame.
    Drop,
    /// Half the frame forwarded, then the connection cut.
    KillMidFrame,
}

/// A fault-injecting TCP proxy in front of a shard daemon. Construct
/// with [`ChaosProxy::start`], point `RemoteShard` connections at
/// [`addr`](Self::addr), and the spec's faults fire deterministically.
pub struct ChaosProxy {
    addr: SocketAddr,
    frames: Arc<AtomicU64>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds a listener on `127.0.0.1` and forwards every connection to
    /// `upstream` under `spec`'s fault schedule.
    pub fn start(upstream: SocketAddr, spec: ChaosSpec) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let frames = Arc::new(AtomicU64::new(0));
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_frames = Arc::clone(&frames);
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(client) = stream else { break };
                let spec = spec.clone();
                let frames = Arc::clone(&accept_frames);
                std::thread::spawn(move || {
                    let _ = run_connection(client, upstream, &spec, &frames);
                });
            }
        });
        Ok(Self {
            addr,
            frames,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Reply frames seen so far across all connections.
    pub fn frames_forwarded(&self) -> u64 {
        self.frames.load(Ordering::SeqCst)
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

/// Decides the fate of reply frame `index` under `spec`.
fn action_for(spec: &ChaosSpec, index: u64) -> ChaosAction {
    if spec.kill_mid_frame_at == Some(index) {
        return ChaosAction::KillMidFrame;
    }
    if spec.drop_at_frame == Some(index) {
        return ChaosAction::Drop;
    }
    if spec.delay_every > 0 && derive_seed(spec.seed, index).is_multiple_of(spec.delay_every) {
        return ChaosAction::Delay;
    }
    ChaosAction::Forward
}

/// Proxies one client connection: requests stream to the daemon
/// verbatim; replies are re-framed and subjected to the fault schedule.
fn run_connection(
    client: TcpStream,
    upstream: SocketAddr,
    spec: &ChaosSpec,
    frames: &AtomicU64,
) -> std::io::Result<()> {
    let server = TcpStream::connect(upstream)?;
    client.set_nodelay(true)?;
    server.set_nodelay(true)?;

    // client → server: raw byte copy on its own thread.
    let mut client_rx = client.try_clone()?;
    let mut server_tx = server.try_clone()?;
    let uplink = std::thread::spawn(move || {
        let _ = std::io::copy(&mut client_rx, &mut server_tx);
        let _ = server_tx.shutdown(std::net::Shutdown::Write);
    });

    // server → client: frame-aware forwarding with fault injection.
    let mut server_rx = server;
    let mut client_tx = client;
    loop {
        let mut frame = Vec::new();
        if !read_frame(&mut server_rx, &mut frame)? {
            break;
        }
        let index = frames.fetch_add(1, Ordering::SeqCst);
        match action_for(spec, index) {
            ChaosAction::Forward => client_tx.write_all(&frame)?,
            ChaosAction::Delay => {
                std::thread::sleep(Duration::from_millis(spec.delay_ms));
                client_tx.write_all(&frame)?;
            }
            ChaosAction::Drop => break,
            ChaosAction::KillMidFrame => {
                let half = (frame.len() / 2).max(1);
                client_tx.write_all(&frame[..half])?;
                client_tx.flush()?;
                break;
            }
        }
    }
    let _ = client_tx.shutdown(std::net::Shutdown::Both);
    let _ = server_rx.shutdown(std::net::Shutdown::Both);
    let _ = uplink.join();
    Ok(())
}

/// Reads one `[len][payload][crc]` frame into `buf` (including the
/// length prefix and CRC, ready to forward verbatim). Returns `false`
/// on clean EOF before a frame starts.
fn read_frame(stream: &mut TcpStream, buf: &mut Vec<u8>) -> std::io::Result<bool> {
    let mut len_bytes = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        let n = stream.read(&mut len_bytes[got..])?;
        if n == 0 {
            return Ok(false);
        }
        got += n;
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    buf.clear();
    buf.extend_from_slice(&len_bytes);
    buf.resize(4 + len + 4, 0);
    let mut pos = 4;
    while pos < buf.len() {
        let n = stream.read(&mut buf[pos..])?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "upstream died mid-frame",
            ));
        }
        pos += n;
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_schedule_is_deterministic_and_faults_fire_once() {
        let spec = ChaosSpec {
            seed: 7,
            drop_at_frame: Some(3),
            kill_mid_frame_at: Some(5),
            ..ChaosSpec::default()
        };
        let first: Vec<ChaosAction> = (0..8).map(|i| action_for(&spec, i)).collect();
        let second: Vec<ChaosAction> = (0..8).map(|i| action_for(&spec, i)).collect();
        assert_eq!(first, second);
        assert_eq!(first[3], ChaosAction::Drop);
        assert_eq!(first[5], ChaosAction::KillMidFrame);
        assert_eq!(
            first.iter().filter(|a| **a == ChaosAction::Drop).count(),
            1
        );
    }

    #[test]
    fn delay_pattern_depends_on_seed() {
        let base = ChaosSpec {
            seed: 1,
            delay_every: 3,
            delay_ms: 1,
            ..ChaosSpec::default()
        };
        let other = ChaosSpec { seed: 2, ..base.clone() };
        let a: Vec<ChaosAction> = (0..64).map(|i| action_for(&base, i)).collect();
        let b: Vec<ChaosAction> = (0..64).map(|i| action_for(&other, i)).collect();
        assert!(a.contains(&ChaosAction::Delay));
        assert_ne!(a, b, "different seeds should delay different frames");
    }
}
