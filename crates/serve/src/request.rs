//! The service's request/response vocabulary.
//!
//! Clients speak in *named bit-vectors* — contiguous logical arrays of
//! memory rows registered in the [`Catalog`](crate::catalog::Catalog) —
//! and submit [`LogicalOp`]s over them: the eight bulk-bitwise logic
//! operations plus host read/write. The service assigns every accepted
//! submission a monotonically increasing [`RequestId`] and eventually
//! emits exactly one [`ServeResponse`] for it; rejected submissions get
//! their response immediately. The stream of responses, serialised in
//! completion order, is the *response log* — the artifact the
//! determinism suite compares byte-for-byte across worker counts.

use serde::Serialize;

/// Identifier of one tenant (client account) of the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub struct TenantId(pub u32);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant#{}", self.0)
    }
}

/// Identifier of one accepted request — the submission sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// A logical bulk-bitwise request over named bit-vectors.
///
/// All vectors named by one op must have the same row count (checked at
/// submission). `Write` fills row `r` of the destination with the given
/// word pattern cyclically rotated by `r`, so a short pattern describes
/// a full deterministic payload without shipping megabytes through the
/// trace.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum LogicalOp {
    /// `dst = NOT src`, row-wise.
    Not {
        /// Source vector name.
        src: String,
        /// Destination vector name.
        dst: String,
    },
    /// `dst = a AND b`, row-wise.
    And {
        /// First operand vector.
        a: String,
        /// Second operand vector.
        b: String,
        /// Destination vector.
        dst: String,
    },
    /// `dst = a OR b`, row-wise.
    Or {
        /// First operand vector.
        a: String,
        /// Second operand vector.
        b: String,
        /// Destination vector.
        dst: String,
    },
    /// `dst = a XOR b`, row-wise.
    Xor {
        /// First operand vector.
        a: String,
        /// Second operand vector.
        b: String,
        /// Destination vector.
        dst: String,
    },
    /// `dst = NOT (a AND b)`, row-wise.
    Nand {
        /// First operand vector.
        a: String,
        /// Second operand vector.
        b: String,
        /// Destination vector.
        dst: String,
    },
    /// `dst = NOT (a OR b)`, row-wise.
    Nor {
        /// First operand vector.
        a: String,
        /// Second operand vector.
        b: String,
        /// Destination vector.
        dst: String,
    },
    /// `dst = NOT (a XOR b)`, row-wise.
    Xnor {
        /// First operand vector.
        a: String,
        /// Second operand vector.
        b: String,
        /// Destination vector.
        dst: String,
    },
    /// Copies `src` into `dst`, row-wise.
    Copy {
        /// Source vector name.
        src: String,
        /// Destination vector name.
        dst: String,
    },
    /// Host write: fills `dst` from a cyclic word pattern (row `r` gets
    /// `words[(j + r) % words.len()]` at word `j`).
    Write {
        /// Destination vector name.
        dst: String,
        /// Non-empty word pattern.
        words: Vec<u64>,
    },
    /// Host read of the whole vector; the response carries its FNV-1a
    /// digest (and the data is available via
    /// [`BulkService::read_vector`](crate::service::BulkService::read_vector)).
    Read {
        /// Source vector name.
        src: String,
    },
    /// A multi-statement kernel: an expression-DSL program compiled
    /// server-side into one fused per-shard schedule (see
    /// [`dsl`](crate::dsl) for the grammar and [`plan`](crate::plan) for
    /// the compiler). `bindings` maps the program's free names to
    /// catalog vector names; every bound vector must share one row
    /// count. Temporaries never touch the catalog — they live in
    /// reserved scratch rows for the duration of the batch.
    Kernel {
        /// DSL program text (statements `name = expr`, separated by
        /// newlines or `;`).
        program: String,
        /// `(dsl_name, vector_name)` pairs binding program names to
        /// catalog vectors. Names read by the program must be bound;
        /// bound names assigned by the program are written back.
        bindings: Vec<(String, String)>,
    },
}

impl LogicalOp {
    /// Short mnemonic for telemetry labels and trace displays.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            LogicalOp::Not { .. } => "not",
            LogicalOp::And { .. } => "and",
            LogicalOp::Or { .. } => "or",
            LogicalOp::Xor { .. } => "xor",
            LogicalOp::Nand { .. } => "nand",
            LogicalOp::Nor { .. } => "nor",
            LogicalOp::Xnor { .. } => "xnor",
            LogicalOp::Copy { .. } => "copy",
            LogicalOp::Write { .. } => "write",
            LogicalOp::Read { .. } => "read",
            LogicalOp::Kernel { .. } => "kernel",
        }
    }

    /// Names of the vectors this op touches, operands before results.
    pub fn vectors(&self) -> Vec<&str> {
        match self {
            LogicalOp::Not { src, dst } | LogicalOp::Copy { src, dst } => vec![src, dst],
            LogicalOp::And { a, b, dst }
            | LogicalOp::Or { a, b, dst }
            | LogicalOp::Xor { a, b, dst }
            | LogicalOp::Nand { a, b, dst }
            | LogicalOp::Nor { a, b, dst }
            | LogicalOp::Xnor { a, b, dst } => vec![a, b, dst],
            LogicalOp::Write { dst, .. } => vec![dst],
            LogicalOp::Read { src } => vec![src],
            LogicalOp::Kernel { bindings, .. } => {
                bindings.iter().map(|(_, v)| v.as_str()).collect()
            }
        }
    }
}

/// Payload of a successfully served request.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum ResponsePayload {
    /// The op completed; no host-visible data.
    Done,
    /// A `Read` completed: vector length in rows and the FNV-1a digest
    /// of its contents in row order.
    Digest {
        /// Rows read.
        rows: u64,
        /// FNV-1a 64-bit digest over all words, row-major.
        digest: u64,
    },
    /// A `Kernel` completed; carries the compiler's fusion counters so
    /// clients (and the bench harness) can see what the plan saved.
    Kernel {
        /// Row-level ops actually scheduled across all shards.
        fused_ops: u64,
        /// DAG nodes eliminated by common-subexpression reuse.
        cse_hits: u64,
        /// Scratch row slots the plan needed per shard stripe.
        scratch_slots: u64,
    },
}

/// The terminal record for one submission — exactly one per request,
/// whether it completed, failed, or was rejected at admission.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServeResponse {
    /// The submission's sequence number.
    pub request: RequestId,
    /// The submitting tenant.
    pub tenant: TenantId,
    /// Op mnemonic (the full op is in the trace, keyed by id).
    pub op: &'static str,
    /// The outcome: payload or typed error.
    pub outcome: Result<ResponsePayload, crate::ServeError>,
    /// Virtual tick at which the request was submitted.
    pub submitted_tick: u64,
    /// Virtual tick at which this response was produced.
    pub completed_tick: u64,
    /// Service latency in modelled memory cycles: the simulated time
    /// between admission and completion (queue wait + execution, using
    /// each tick's slowest-shard makespan as the tick duration). Zero
    /// for admission-time rejections.
    pub latency_cycles: u64,
    /// Retry attempts consumed (0 = served first try).
    pub retries: u32,
}

impl ServeResponse {
    /// Did the request complete successfully?
    pub fn is_ok(&self) -> bool {
        self.outcome.is_ok()
    }
}

/// FNV-1a 64-bit over a word slice (row-major vector digests).
///
/// Re-exported from the workspace-shared implementation in
/// [`felim_exec::hash`] so the service, the transient memoizer, and the
/// read cache all key on the exact same digest.
pub use felim_exec::hash::fnv1a_words;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vectors_and_mnemonics() {
        let op = LogicalOp::Nand {
            a: "x".into(),
            b: "y".into(),
            dst: "z".into(),
        };
        assert_eq!(op.vectors(), vec!["x", "y", "z"]);
        assert_eq!(op.mnemonic(), "nand");
        let w = LogicalOp::Write {
            dst: "x".into(),
            words: vec![1],
        };
        assert_eq!(w.vectors(), vec!["x"]);
        let k = LogicalOp::Kernel {
            program: "d = a & b".into(),
            bindings: vec![
                ("a".into(), "va".into()),
                ("b".into(), "vb".into()),
                ("d".into(), "vd".into()),
            ],
        };
        assert_eq!(k.mnemonic(), "kernel");
        assert_eq!(k.vectors(), vec!["va", "vb", "vd"]);
    }

    #[test]
    fn fnv_digest_is_stable_and_sensitive() {
        let a = fnv1a_words(&[1, 2, 3]);
        assert_eq!(a, fnv1a_words(&[1, 2, 3]));
        assert_ne!(a, fnv1a_words(&[1, 2, 4]));
        assert_ne!(a, fnv1a_words(&[2, 1, 3]));
    }

    #[test]
    fn ids_display() {
        assert_eq!(TenantId(2).to_string(), "tenant#2");
        assert_eq!(RequestId(9).to_string(), "req#9");
    }
}
