//! The multi-tenant bulk-bitwise service: admission, batching, sharded
//! dispatch, and deterministic virtual time.
//!
//! # Execution model
//!
//! The service advances in *virtual ticks*. Each tick it promotes due
//! retries, sheds requests whose deadline passed, takes up to
//! `batch_window` requests FIFO from the pending queue, decomposes them
//! through the [`Catalog`] into per-shard [`RowOp`] batches, and runs
//! every shard's batch concurrently on a persistent
//! [`felim_exec::ExecPool`]. The tick's *duration* is the
//! slowest shard's subarray-parallel makespan, so simulated time shrinks
//! as sharding spreads the same row-work wider — the scaling the PR-7
//! benchmark measures. A request's latency is the simulated-cycle delta
//! between admission and completion: queue wait plus execution.
//!
//! # Determinism
//!
//! Shard results reduce in shard-index order, responses are assembled in
//! batch (request-id) order, and retry jitter derives from
//! [`derive_seed`] — never from wall clocks or scheduling. Identical
//! submissions therefore produce byte-identical serialised response
//! logs at any `FELIM_THREADS` setting (pinned by `tests/service.rs`).
//!
//! # Admission control
//!
//! Submission is atomic: a request is either admitted to every shard
//! queue it needs, or rejected with one typed [`ServeError`] and no
//! state change. Bounded per-shard queues give
//! [`ServeError::Overloaded`] backpressure; per-tenant fair-share
//! quotas give [`ServeError::QuotaExceeded`]; stale requests shed with
//! [`ServeError::DeadlineExceeded`] instead of executing late. Requests
//! that hit an uncorrectable ECC escalation retry with deterministic
//! jitter up to `max_retries` times before failing with
//! [`ServeError::RetriesExhausted`]. Every submission — accepted or not
//! — produces exactly one [`ServeResponse`].

use crate::catalog::Catalog;
use crate::dsl::Program;
use crate::plan::KernelPlan;
use crate::remote::{ConnectRetry, PoolMember, RemoteShard, ShardPool};
use crate::replica::{ReplicaManager, ReplicaStats, ReplicationConfig};
use crate::request::{
    fnv1a_words, LogicalOp, RequestId, ResponsePayload, ServeResponse, TenantId,
};
use crate::shard::{Shard, ShardBatchOutcome, Technology};
use crate::ServeError;
use felim_arch::batch::{RowOp, RowOpOutput};
use felim_arch::drift::DriftSpec;
use felim_arch::energy::LatencyModel;
use felim_arch::geometry::{MemoryGeometry, RowId};
use felim_arch::shard::{ShardId, ShardMap};
use felim_arch::ArchError;
use felim_exec::{derive_seed, fnv1a_str, ExecPool};
use felim_telemetry as telemetry;
use serde::Serialize;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Reliability tier the shard pool runs at.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum ServiceTier {
    /// Raw backends: no ECC, no scrub, no drift process.
    Baseline,
    /// Every shard wrapped in a protected
    /// [`ReliabilityController`](felim_arch::ReliabilityController)
    /// (SECDED ECC + patrol scrub) over the given drift physics.
    Protected {
        /// The drift/disturb fault process each shard runs.
        drift: DriftSpec,
        /// Patrol scrub period, seconds of virtual time.
        scrub_period_s: f64,
    },
}

impl ServiceTier {
    /// Short label for reports and telemetry.
    pub fn label(&self) -> &'static str {
        match self {
            ServiceTier::Baseline => "baseline",
            ServiceTier::Protected { .. } => "protected",
        }
    }
}

/// Static configuration of a [`BulkService`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServiceConfig {
    /// Number of independent shards (backend instances).
    pub shards: u32,
    /// Memory technology behind every shard.
    pub technology: Technology,
    /// Reliability tier (baseline or ECC + scrub).
    pub tier: ServiceTier,
    /// Geometry of each shard's array.
    pub shard_geometry: MemoryGeometry,
    /// Bound on each shard's queue, in requests; admission beyond it is
    /// [`ServeError::Overloaded`].
    pub queue_depth: usize,
    /// Requests coalesced per tick (the batching window).
    pub batch_window: usize,
    /// Per-tenant batch-window overrides as `(tenant, window)` pairs,
    /// for latency-sensitive tenants opting out of coalescing (the
    /// BENCH_PR7 w1/w8 tradeoff). A tick's effective window is the
    /// minimum over the tenants it includes, so a window-1 tenant's
    /// requests never share a tick. Validated when the service is
    /// built: tenants must exist, windows must be non-zero.
    pub tenant_batch_window: Vec<(u32, usize)>,
    /// Number of tenant accounts.
    pub tenants: u32,
    /// Per-tenant cap on queued requests; `None` derives the fair share
    /// `max(1, queue_depth / tenants)`.
    pub tenant_quota: Option<usize>,
    /// Retries granted to an uncorrectable-ECC escalation before the
    /// request fails (0 disables retry).
    pub max_retries: u32,
    /// Upper bound on the deterministic retry jitter, in ticks.
    pub retry_backoff_ticks: u64,
    /// Virtual seconds of reliability time per dispatch tick (drives
    /// drift and patrol scrub on protected tiers).
    pub tick_s: f64,
    /// Seed for every derived stream (retry jitter).
    pub seed: u64,
    /// Local rows per shard reserved at the top of the data region for
    /// kernel temporaries (scratch slots stripe through them). Catalog
    /// capacity shrinks by the same amount.
    pub kernel_scratch_rows: u64,
    /// Serve `Read` requests from the content-addressed digest cache
    /// when the vector is unchanged since its last read (invalidated on
    /// any write to it).
    pub read_cache: bool,
    /// Shards hosted remotely, as `(shard_index, "host:port")` pairs
    /// pointing at `felim-shardd` daemons. Unlisted shards stay
    /// in-process; the mix is transparent — response logs are
    /// byte-identical for any placement. Validated when the service is
    /// built: indices must be in range and unique.
    pub remote_shards: Vec<(u32, String)>,
    /// Connection attempts per remote shard before the build fails
    /// (bounded backoff between attempts; at least 1).
    pub remote_connect_attempts: u32,
    /// Backoff before the second connection attempt, milliseconds
    /// (doubling per attempt, capped at one second).
    pub remote_connect_backoff_ms: u64,
    /// Stripe replication: `Some` backs every stripe with hot standbys
    /// and enables deterministic failover (see [`crate::replica`]).
    /// `None` (the default) runs each stripe on a single member and is
    /// byte-identical to replication being on — standbys are exact
    /// copies and never influence settled responses.
    pub replication: Option<ReplicationConfig>,
    /// Adapt the batching window at runtime: widen it under sustained
    /// queue pressure (throughput mode), narrow it when deadlines
    /// tighten (latency mode). Off by default; when off,
    /// [`batch_window`](Self::batch_window) is used verbatim.
    pub adaptive_batch_window: bool,
}

impl ServiceConfig {
    /// A small test-friendly configuration over `shards` tiny FeRAM
    /// arrays: queue depth 32, batch window 8, 4 tenants, 3 retries.
    pub fn small(shards: u32) -> Self {
        Self {
            shards,
            technology: Technology::Feram,
            tier: ServiceTier::Baseline,
            shard_geometry: MemoryGeometry::tiny(),
            queue_depth: 32,
            batch_window: 8,
            tenant_batch_window: Vec::new(),
            tenants: 4,
            tenant_quota: None,
            max_retries: 3,
            retry_backoff_ticks: 4,
            tick_s: 1e-3,
            seed: 0x5eed,
            kernel_scratch_rows: 64,
            read_cache: true,
            remote_shards: Vec::new(),
            remote_connect_attempts: 5,
            remote_connect_backoff_ms: 20,
            replication: None,
            adaptive_batch_window: false,
        }
    }

    /// The connection-retry policy derived from the remote knobs.
    pub fn connect_retry(&self) -> ConnectRetry {
        ConnectRetry {
            attempts: self.remote_connect_attempts.max(1),
            base_backoff: Duration::from_millis(self.remote_connect_backoff_ms),
        }
    }

    /// The effective per-tenant quota.
    pub fn quota(&self) -> usize {
        self.tenant_quota
            .unwrap_or_else(|| (self.queue_depth / self.tenants.max(1) as usize).max(1))
    }

    /// The batch window governing `tenant`'s requests (its override, or
    /// the global `batch_window`).
    pub fn window_for(&self, tenant: TenantId) -> usize {
        self.tenant_batch_window
            .iter()
            .find(|&&(t, _)| t == tenant.0)
            .map_or(self.batch_window, |&(_, w)| w)
    }
}

/// An admitted request waiting for (or between) dispatches.
struct PendingRequest {
    id: RequestId,
    tenant: TenantId,
    op: LogicalOp,
    deadline: Option<u64>,
    submitted_tick: u64,
    submit_cycles: u64,
    attempts: u32,
    not_before: u64,
    involved: Vec<u32>,
    /// Compiled schedule of a `Kernel` op (built once at admission).
    plan: Option<Arc<KernelPlan>>,
    /// A `Read` answered from the digest cache: `(rows, digest)` — the
    /// request then dispatches zero row-ops.
    cached_digest: Option<(u64, u64)>,
    /// An executed `Read` may populate the cache at settlement (false
    /// when a later request in the same batch overwrites the vector).
    cache_fill: bool,
}

/// Running totals over one shard's dispatches.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct ShardLoad {
    /// Batches dispatched to the shard.
    pub batches: u64,
    /// Row-ops it executed.
    pub row_ops: u64,
    /// Its summed batch makespans, cycles.
    pub makespan_cycles: u64,
    /// Largest queue depth observed at admission.
    pub max_queue_depth: usize,
}

/// Counter block for one service lifetime.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct ServiceStats {
    /// Submissions offered (accepted + rejected).
    pub submitted: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Rejections for shard-queue backpressure.
    pub rejected_overloaded: u64,
    /// Rejections for tenant quota.
    pub rejected_quota: u64,
    /// Rejections for malformed requests (unknown vector, shape…).
    pub rejected_invalid: u64,
    /// Requests shed at their deadline.
    pub shed_deadline: u64,
    /// Requests that failed on the backend (incl. retries exhausted).
    pub failed: u64,
    /// Retry dispatches consumed.
    pub retries: u64,
    /// Non-empty ticks dispatched.
    pub batches: u64,
    /// Maintenance (scrub/drift) faults recorded, not escalated.
    pub maintenance_errors: u64,
    /// Kernel requests completed.
    pub kernels: u64,
    /// `Read` requests answered from the digest cache (zero row-ops).
    pub cache_hits: u64,
    /// `Read` requests that had to touch the backend.
    pub cache_misses: u64,
    /// Cache entries dropped because their vector was written.
    pub cache_invalidations: u64,
    /// Kernel submissions whose compiled plan came from the plan cache
    /// (same program digest and bindings — compilation skipped).
    pub plan_cache_hits: u64,
    /// Requests failed by a remote shard's transport (torn frame,
    /// corrupt payload, peer loss) — never silently dropped.
    pub transport_errors: u64,
}

/// Latency distribution over completed requests, in simulated cycles.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct LatencySummary {
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Worst case.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl LatencySummary {
    /// Summarises a set of latencies (all zeros when empty).
    pub fn from_latencies(mut values: Vec<u64>) -> Self {
        if values.is_empty() {
            return Self::default();
        }
        values.sort_unstable();
        let n = values.len();
        // Nearest-rank: the smallest value with at least q·n values ≤ it.
        let pick = |q: f64| values[(((q * n as f64).ceil() as usize).max(1) - 1).min(n - 1)];
        Self {
            p50: pick(0.50),
            p95: pick(0.95),
            p99: pick(0.99),
            max: values[n - 1],
            mean: values.iter().sum::<u64>() as f64 / n as f64,
        }
    }
}

/// End-of-run summary of a service lifetime (what the PR-7 benchmark
/// sweeps and what `run_service_campaign` reports).
#[derive(Debug, Clone, Serialize)]
pub struct ServiceReport {
    /// Shards configured.
    pub shards: u32,
    /// Technology label.
    pub technology: &'static str,
    /// Tier label.
    pub tier: &'static str,
    /// Counter block.
    pub stats: ServiceStats,
    /// Total simulated cycles across all ticks (slowest-shard makespans).
    pub sim_cycles: u64,
    /// The same in seconds under the paper's clock.
    pub sim_seconds: f64,
    /// Completed requests per simulated second.
    pub throughput_rps: f64,
    /// Row-ops executed per simulated second.
    pub row_ops_per_second: f64,
    /// Latency distribution over completed requests.
    pub latency: LatencySummary,
    /// Total backend energy, millijoules.
    pub energy_mj: f64,
    /// Per-shard load totals.
    pub per_shard: Vec<ShardLoad>,
    /// Replication-layer counters, when replication is configured.
    pub replica: Option<ReplicaStats>,
}

/// The multi-tenant bulk-bitwise request service. See the [module
/// docs](self) for the execution model; see the crate docs for a
/// quickstart.
pub struct BulkService {
    config: ServiceConfig,
    map: ShardMap,
    catalog: Catalog,
    shards: Arc<ShardPool>,
    pool: ExecPool,
    latency_model: LatencyModel,
    pending: VecDeque<PendingRequest>,
    retries: Vec<PendingRequest>,
    queued_per_tenant: Vec<usize>,
    queued_per_shard: Vec<usize>,
    responses: Vec<ServeResponse>,
    shard_load: Vec<ShardLoad>,
    stats: ServiceStats,
    now: u64,
    sim_cycles: u64,
    energy_nj: f64,
    next_id: u64,
    /// First local row of the per-shard kernel scratch region (the
    /// catalog allocates strictly below it).
    scratch_base: u64,
    /// Content-addressed read cache: vector name → `(rows, digest)`,
    /// valid while the vector is unwritten since the digest was taken.
    read_cache: HashMap<String, (u64, u64)>,
    /// Compiled-kernel cache keyed on (program digest, bindings):
    /// repeated `Kernel` submissions of the same program against the
    /// same binding shape skip recompilation entirely.
    plan_cache: HashMap<PlanKey, Arc<KernelPlan>>,
    /// Replication state machine, when `config.replication` is set.
    /// Pool members are laid out replica-major (member
    /// `replica · shards + stripe`), so member indices 0..shards are
    /// the primaries and all stripe-indexed bookkeeping is unchanged.
    replicas: Option<ReplicaManager>,
    /// Current adaptive batch window (tracks `config.batch_window`
    /// when the auto-tuner is off).
    tuned_window: usize,
    /// Consecutive ticks of sustained queue pressure (auto-tuner
    /// hysteresis).
    pressure_ticks: u32,
}

/// Plan-cache key: the kernel program's content digest plus the exact
/// (dst, src) binding list it was compiled against.
type PlanKey = (u64, Vec<(String, String)>);

impl std::fmt::Debug for BulkService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BulkService")
            .field("shards", &self.config.shards)
            .field("now", &self.now)
            .field("pending", &self.pending.len())
            .finish()
    }
}

impl BulkService {
    /// Builds the shard pool and its worker pool (sized by
    /// `FELIM_THREADS`, minus the calling thread).
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] for a self-inconsistent
    /// configuration: zero shards, window, or queue; a per-tenant
    /// window override naming an unknown tenant or a zero window; or a
    /// scratch reservation that swallows the whole data region.
    pub fn new(config: ServiceConfig) -> Result<Self, ServeError> {
        let invalid = |message: &str| {
            Err(ServeError::InvalidConfig {
                message: message.to_owned(),
            })
        };
        if config.shards == 0 {
            return invalid("need at least one shard");
        }
        if config.batch_window == 0 {
            return invalid("need a non-empty batch window");
        }
        if config.queue_depth == 0 {
            return invalid("need a non-empty queue");
        }
        for &(tenant, window) in &config.tenant_batch_window {
            if tenant >= config.tenants {
                return Err(ServeError::InvalidConfig {
                    message: format!(
                        "batch-window override for tenant#{tenant} outside the configured {} tenants",
                        config.tenants
                    ),
                });
            }
            if window == 0 {
                return Err(ServeError::InvalidConfig {
                    message: format!("batch-window override for tenant#{tenant} must be non-zero"),
                });
            }
        }
        for (i, &(s, _)) in config.remote_shards.iter().enumerate() {
            if s >= config.shards {
                return Err(ServeError::InvalidConfig {
                    message: format!(
                        "remote placement for shard#{s} outside the configured {} shards",
                        config.shards
                    ),
                });
            }
            if config.remote_shards[..i].iter().any(|&(t, _)| t == s) {
                return Err(ServeError::InvalidConfig {
                    message: format!("shard#{s} has two remote placements"),
                });
            }
        }
        if let Some(repl) = &config.replication {
            if repl.standbys == 0 {
                return invalid("replication needs at least one standby");
            }
            if repl.epoch_ticks == 0 {
                return invalid("replication epoch must be non-zero ticks");
            }
            if repl.rebuild_chunk_bytes == 0 {
                return invalid("rebuild pacing needs a non-zero chunk");
            }
            for (i, &(s, r, _)) in repl.remote_standbys.iter().enumerate() {
                if s >= config.shards {
                    return Err(ServeError::InvalidConfig {
                        message: format!(
                            "remote standby for stripe#{s} outside the configured {} shards",
                            config.shards
                        ),
                    });
                }
                if r == 0 || r > repl.standbys {
                    return Err(ServeError::InvalidConfig {
                        message: format!(
                            "remote standby#{r} for stripe#{s} outside 1..={}",
                            repl.standbys
                        ),
                    });
                }
                if repl.remote_standbys[..i].iter().any(|&(s2, r2, _)| (s2, r2) == (s, r)) {
                    return Err(ServeError::InvalidConfig {
                        message: format!("standby#{r} of stripe#{s} has two remote placements"),
                    });
                }
            }
        }
        let tier_config = match &config.tier {
            ServiceTier::Baseline => None,
            ServiceTier::Protected {
                drift,
                scrub_period_s,
            } => Some((drift.clone(), *scrub_period_s)),
        };
        // Pool layout is replica-major: member `r · shards + i` is
        // stripe `i`'s replica `r`, so with replication off (one
        // replica) member indices coincide with stripe indices and
        // nothing downstream changes.
        let replica_count = 1 + config.replication.as_ref().map_or(0, |r| r.standbys) as usize;
        let mut members: Vec<PoolMember> =
            Vec::with_capacity(replica_count * config.shards as usize);
        for r in 0..replica_count {
            for i in 0..config.shards {
                let tier = tier_config.clone().map(|(mut drift, period)| {
                    // Each STRIPE gets its own derived fault stream —
                    // derived before any placement decision, so a
                    // remote shard receives exactly the seed its local
                    // twin would have used, and every replica of a
                    // stripe shares its primary's virtual physics
                    // (replicas must be byte-identical by
                    // construction).
                    drift.seed = derive_seed(drift.seed, u64::from(i));
                    (drift, period)
                });
                let addr = if r == 0 {
                    config
                        .remote_shards
                        .iter()
                        .find(|&&(s, _)| s == i)
                        .map(|(_, a)| a)
                } else {
                    config.replication.as_ref().and_then(|repl| {
                        repl.remote_standbys
                            .iter()
                            .find(|&&(s, sb, _)| s == i && sb as usize == r)
                            .map(|(_, _, a)| a)
                    })
                };
                let member = match addr {
                    None => PoolMember::Local(Mutex::new(Shard::new(
                        config.technology,
                        config.shard_geometry,
                        tier,
                    ))),
                    Some(addr) => {
                        // The session slot is the member's pool index,
                        // so one daemon can host any mix of primaries
                        // and standbys.
                        let slot = (r * config.shards as usize + i as usize) as u64;
                        RemoteShard::connect_slot(
                            addr,
                            config.technology,
                            config.shard_geometry,
                            tier,
                            config.connect_retry(),
                            slot,
                            false,
                        )
                        .map(|rs| PoolMember::Remote(Mutex::new(Box::new(rs))))?
                    }
                };
                members.push(member);
            }
        }
        let shards = ShardPool::new(members);
        let data_rows = shards.data_rows(0);
        for s in 1..replica_count * config.shards as usize {
            if shards.data_rows(s) != data_rows {
                return Err(ServeError::InvalidConfig {
                    message: format!(
                        "pool member#{s} reports {} data rows, member#0 reports {data_rows} — \
                         a remote host was built with different parameters",
                        shards.data_rows(s)
                    ),
                });
            }
        }
        if config.kernel_scratch_rows >= data_rows {
            return Err(ServeError::InvalidConfig {
                message: format!(
                    "kernel_scratch_rows {} swallows the whole {data_rows}-row data region",
                    config.kernel_scratch_rows
                ),
            });
        }
        // Kernel scratch sits at the top of the data region; the
        // catalog allocates strictly below it.
        let scratch_base = data_rows - config.kernel_scratch_rows;
        let map = ShardMap::new(config.shards, data_rows).expect("non-zero shards and rows");
        let catalog = Catalog::new(config.shards, scratch_base);
        telemetry::gauge("serve.shards").set(f64::from(config.shards));
        telemetry::gauge("serve.remote.shards").set(shards.remote_count() as f64);
        telemetry::gauge("serve.replica.standbys")
            .set((replica_count - 1) as f64 * f64::from(config.shards));
        let replicas = config
            .replication
            .clone()
            .map(|repl| ReplicaManager::new(repl, config.shards as usize));
        let tuned_window = config.batch_window;
        Ok(Self {
            catalog,
            map,
            shards: Arc::new(shards),
            pool: ExecPool::with_env_threads(),
            latency_model: LatencyModel::paper_default(),
            pending: VecDeque::new(),
            retries: Vec::new(),
            queued_per_tenant: vec![0; config.tenants as usize],
            queued_per_shard: vec![0; config.shards as usize],
            responses: Vec::new(),
            shard_load: vec![ShardLoad::default(); config.shards as usize],
            stats: ServiceStats::default(),
            now: 0,
            sim_cycles: 0,
            energy_nj: 0.0,
            next_id: 0,
            scratch_base,
            read_cache: HashMap::new(),
            plan_cache: HashMap::new(),
            replicas,
            tuned_window,
            pressure_ticks: 0,
            config,
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The shard ownership map (contiguous row ranges per shard).
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// The current virtual tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Simulated cycles elapsed (sum of per-tick slowest-shard
    /// makespans).
    pub fn sim_cycles(&self) -> u64 {
        self.sim_cycles
    }

    /// The counter block so far.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// Responses produced so far, in completion order.
    pub fn responses(&self) -> &[ServeResponse] {
        &self.responses
    }

    /// Takes (and clears) the response log.
    pub fn take_responses(&mut self) -> Vec<ServeResponse> {
        std::mem::take(&mut self.responses)
    }

    /// Registers a named vector of `rows` rows, striped across shards.
    ///
    /// # Errors
    ///
    /// See [`Catalog::create`].
    pub fn create_vector(&mut self, name: &str, rows: u64) -> Result<(), ServeError> {
        self.catalog.create(name, rows).map(|_| ())
    }

    /// Submits one request for `tenant`, optionally with a deadline
    /// `deadline_ticks` from now. Admission is atomic; rejected
    /// submissions consume a [`RequestId`] and produce an immediate
    /// error response in the log.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`], [`ServeError::QuotaExceeded`], or a
    /// validation error ([`ServeError::UnknownVector`],
    /// [`ServeError::ShapeMismatch`], [`ServeError::EmptyPattern`],
    /// [`ServeError::UnknownTenant`]).
    pub fn submit(
        &mut self,
        tenant: TenantId,
        op: LogicalOp,
        deadline_ticks: Option<u64>,
    ) -> Result<RequestId, ServeError> {
        let id = RequestId(self.next_id);
        self.next_id += 1;
        self.stats.submitted += 1;
        telemetry::counter("serve.submitted").inc();

        match self.admit(tenant, &op) {
            Ok((involved, plan)) => {
                for &s in &involved {
                    let depth = &mut self.queued_per_shard[s as usize];
                    *depth += 1;
                    let load = &mut self.shard_load[s as usize];
                    load.max_queue_depth = load.max_queue_depth.max(*depth);
                }
                self.queued_per_tenant[tenant.0 as usize] += 1;
                self.pending.push_back(PendingRequest {
                    id,
                    tenant,
                    op,
                    deadline: deadline_ticks.map(|d| self.now + d),
                    submitted_tick: self.now,
                    submit_cycles: self.sim_cycles,
                    attempts: 0,
                    not_before: self.now,
                    involved,
                    plan,
                    cached_digest: None,
                    cache_fill: false,
                });
                Ok(id)
            }
            Err(err) => {
                match &err {
                    ServeError::Overloaded { .. } => {
                        self.stats.rejected_overloaded += 1;
                        telemetry::counter("serve.rejected.overloaded").inc();
                    }
                    ServeError::QuotaExceeded { .. } => {
                        self.stats.rejected_quota += 1;
                        telemetry::counter("serve.rejected.quota").inc();
                    }
                    _ => {
                        self.stats.rejected_invalid += 1;
                        telemetry::counter("serve.rejected.invalid").inc();
                    }
                }
                self.responses.push(ServeResponse {
                    request: id,
                    tenant,
                    op: op.mnemonic(),
                    outcome: Err(err.clone()),
                    submitted_tick: self.now,
                    completed_tick: self.now,
                    latency_cycles: 0,
                    retries: 0,
                });
                Err(err)
            }
        }
    }

    /// Validates a submission and returns the shards it will occupy,
    /// plus the compiled plan for kernel requests (`&mut self` only to
    /// feed the plan cache).
    #[allow(clippy::type_complexity)]
    fn admit(
        &mut self,
        tenant: TenantId,
        op: &LogicalOp,
    ) -> Result<(Vec<u32>, Option<Arc<KernelPlan>>), ServeError> {
        if tenant.0 >= self.config.tenants {
            return Err(ServeError::UnknownTenant {
                tenant,
                tenants: self.config.tenants,
            });
        }
        if let LogicalOp::Write { words, .. } = op {
            if words.is_empty() {
                return Err(ServeError::EmptyPattern);
            }
        }
        // Kernels parse and plan at admission, before any queue state
        // changes: a malformed program is rejected atomically, and the
        // compiled plan rides with the request so dispatch just stamps
        // it out per shard. Compilation is deterministic, so a plan
        // keyed on (program digest, bindings) is reusable verbatim —
        // repeated submissions of the same kernel skip the compiler.
        let plan = if let LogicalOp::Kernel { program, bindings } = op {
            let key = (fnv1a_str(program), bindings.clone());
            if let Some(cached) = self.plan_cache.get(&key) {
                self.stats.plan_cache_hits += 1;
                telemetry::counter("serve.kernel.plan_cache_hits").inc();
                Some(Arc::clone(cached))
            } else {
                let parsed = Program::parse(program).map_err(|e| ServeError::KernelParse {
                    position: e.position,
                    message: e.message,
                })?;
                let plan = Arc::new(KernelPlan::compile(&parsed, bindings).map_err(|e| {
                    ServeError::KernelPlan {
                        message: e.to_string(),
                    }
                })?);
                self.plan_cache.insert(key, Arc::clone(&plan));
                Some(plan)
            }
        } else {
            None
        };
        let names = op.vectors();
        let mut rows = None;
        for name in &names {
            let placement = self.catalog.get(name)?;
            match rows {
                None => rows = Some(placement.rows),
                Some(r) if r != placement.rows => {
                    return Err(ServeError::ShapeMismatch {
                        left: names[0].to_owned(),
                        left_rows: r,
                        right: (*name).to_owned(),
                        right_rows: placement.rows,
                    });
                }
                Some(_) => {}
            }
        }
        let rows = rows.expect("every op names at least one vector");
        if let Some(plan) = &plan {
            let needed = plan.scratch_rows_needed(rows, self.config.shards);
            if needed > self.config.kernel_scratch_rows {
                return Err(ServeError::ScratchExhausted {
                    needed_rows: needed,
                    budget_rows: self.config.kernel_scratch_rows,
                });
            }
        }
        let placement = self.catalog.get(names[0])?;
        let involved: Vec<u32> = (0..self.config.shards)
            .filter(|&s| placement.rows_on_shard(ShardId(s), self.config.shards) > 0)
            .collect();
        debug_assert!(!involved.is_empty(), "{rows}-row vector spans no shard");
        if self.queued_per_tenant[tenant.0 as usize] >= self.config.quota() {
            return Err(ServeError::QuotaExceeded {
                tenant,
                queued: self.queued_per_tenant[tenant.0 as usize],
                quota: self.config.quota(),
            });
        }
        for &s in &involved {
            if self.queued_per_shard[s as usize] >= self.config.queue_depth {
                return Err(ServeError::Overloaded {
                    shard: ShardId(s),
                    depth: self.queued_per_shard[s as usize],
                });
            }
        }
        Ok((involved, plan))
    }

    /// Advances one virtual tick: promote due retries, shed expired
    /// requests, dispatch up to `batch_window` requests across the shard
    /// pool, and charge the slowest shard's makespan to simulated time.
    /// Returns the number of requests dispatched this tick.
    pub fn step(&mut self) -> usize {
        self.promote_due_retries();
        if self.config.adaptive_batch_window {
            self.tune_window();
        }
        let mut batch = self.collect_batch();
        if batch.is_empty() {
            // Idle ticks still pump replication upkeep: a background
            // rebuild must finish even when no requests arrive.
            if self.replicas.is_some() {
                self.replica_maintenance(&[]);
            }
            self.now += 1;
            return 0;
        }
        self.stats.batches += 1;
        telemetry::counter("serve.batches").inc();

        // Cache maintenance runs in batch order *before* decomposition:
        // a write earlier in the batch invalidates the digest a later
        // read would otherwise hit, and a read followed by a write in
        // the same batch must not populate the cache with the stale
        // digest (`last_write` tracks that).
        if self.config.read_cache {
            let mut last_write: HashMap<String, usize> = HashMap::new();
            for (i, req) in batch.iter().enumerate() {
                for v in Self::written_vectors(req) {
                    last_write.insert(v.to_owned(), i);
                }
            }
            for (i, req) in batch.iter_mut().enumerate() {
                for v in Self::written_vectors(req) {
                    if self.read_cache.remove(v).is_some() {
                        self.stats.cache_invalidations += 1;
                        telemetry::counter("serve.cache.invalidations").inc();
                    }
                }
                if let LogicalOp::Read { src } = &req.op {
                    if let Some(&entry) = self.read_cache.get(src) {
                        req.cached_digest = Some(entry);
                        self.stats.cache_hits += 1;
                        telemetry::counter("serve.cache.hits").inc();
                    } else {
                        req.cache_fill = last_write.get(src).is_none_or(|&j| j < i);
                        self.stats.cache_misses += 1;
                        telemetry::counter("serve.cache.misses").inc();
                    }
                }
            }
        }

        // Decompose each request into per-shard row-op runs.
        let shard_count = self.config.shards as usize;
        let mut shard_ops: Vec<Vec<RowOp>> = vec![Vec::new(); shard_count];
        let mut spans: Vec<Vec<(usize, usize)>> = Vec::with_capacity(batch.len());
        for req in &batch {
            let mut req_spans = Vec::with_capacity(shard_count);
            for (s, ops) in shard_ops.iter_mut().enumerate() {
                let start = ops.len();
                self.decompose_for_shard(req, s as u32, ops);
                req_spans.push((start, ops.len() - start));
            }
            spans.push(req_spans);
        }

        // Dispatch every replica of every stripe (empty batches still
        // tick the reliability clock) concurrently; reduce in stripe
        // order. A remote member's dispatch can fail at the transport —
        // the per-member `Result` carries that without disturbing the
        // other outcomes. With replication off there is exactly one
        // work item per stripe and the reduction is the identity.
        if let Some(mgr) = &mut self.replicas {
            for (s, ops) in shard_ops.iter().enumerate() {
                // A mid-rebuild member misses this batch; it replays
                // from the schedule log when its snapshot lands.
                mgr.log_schedule(s, self.config.tick_s, ops);
            }
        }
        let work: Arc<Vec<(usize, usize, Vec<RowOp>)>> = match &self.replicas {
            None => Arc::new(
                shard_ops
                    .into_iter()
                    .enumerate()
                    .map(|(s, ops)| (s, 0, ops))
                    .collect(),
            ),
            Some(mgr) => Arc::new(
                shard_ops
                    .iter()
                    .enumerate()
                    .flat_map(|(s, ops)| {
                        mgr.dispatch_replicas(s)
                            .into_iter()
                            .map(move |r| (s, r, ops.clone()))
                    })
                    .collect(),
            ),
        };
        let shards = Arc::clone(&self.shards);
        let tick_s = self.config.tick_s;
        let stripes = shard_count;
        let raw: Vec<Result<ShardBatchOutcome, ServeError>> = self.pool.map(
            &work,
            Arc::new(move |_i: usize, (s, r, ops): &(usize, usize, Vec<RowOp>)| {
                shards.execute(r * stripes + s, ops, tick_s)
            }),
        );
        let outcomes = self.reduce_outcomes(&work, raw);

        let makespan = outcomes
            .iter()
            .filter_map(|o| o.as_ref().ok().map(|o| o.makespan_cycles))
            .max()
            .unwrap_or(0);
        self.sim_cycles += makespan;
        telemetry::histogram("serve.tick.makespan_cycles").record(makespan);
        for (s, outcome) in outcomes.iter().enumerate() {
            let Ok(outcome) = outcome else { continue };
            let load = &mut self.shard_load[s];
            load.batches += 1;
            load.row_ops += outcome.outputs.len() as u64;
            load.makespan_cycles += outcome.makespan_cycles;
            self.energy_nj += outcome.energy_nj;
            if outcome.maintenance_error.is_some() {
                self.stats.maintenance_errors += 1;
                telemetry::counter("serve.maintenance_errors").inc();
            }
        }

        let dispatched = batch.len();
        for (req, req_spans) in batch.into_iter().zip(spans) {
            self.settle(req, &req_spans, &outcomes);
        }
        if self.replicas.is_some() {
            self.replica_maintenance(&outcomes);
        }
        self.now += 1;
        dispatched
    }

    /// Reduces the raw per-member dispatch results to one outcome per
    /// stripe. With replication off this is the identity (one item per
    /// stripe, in stripe order). With replication on, every `Ok`
    /// outcome folds into its replica's rolling digest, standby energy
    /// moves to the replica-side account, and the stripe settles from
    /// its active replica's outcome — unless the active faulted at the
    /// transport, in which case the first healthy standby is promoted
    /// *mid-tick* and the stripe settles from its already-computed,
    /// byte-identical outcome. Exactly one outcome per stripe, exactly
    /// one response per request, in either case.
    fn reduce_outcomes(
        &mut self,
        work: &[(usize, usize, Vec<RowOp>)],
        raw: Vec<Result<ShardBatchOutcome, ServeError>>,
    ) -> Vec<Result<ShardBatchOutcome, ServeError>> {
        let Some(mgr) = &mut self.replicas else {
            return raw;
        };
        let shard_count = self.config.shards as usize;
        let mut slots: Vec<Option<Result<ShardBatchOutcome, ServeError>>> =
            raw.into_iter().map(Some).collect();
        // (replica, raw index) per stripe, in dispatch order.
        let mut by_stripe: Vec<Vec<(usize, usize)>> = vec![Vec::new(); shard_count];
        for (i, &(s, r, _)) in work.iter().enumerate() {
            by_stripe[s].push((r, i));
            if let Some(Ok(o)) = &slots[i] {
                mgr.note_outcome(s, r, o);
            }
        }
        let mut reduced = Vec::with_capacity(shard_count);
        for (s, entries) in by_stripe.iter().enumerate() {
            let active = mgr.active_replica(s);
            let active_idx = entries
                .iter()
                .find(|&&(r, _)| r == active)
                .map(|&(_, i)| i)
                .expect("the active replica always dispatches");
            let chosen = if matches!(slots[active_idx], Some(Err(_))) {
                let healthy: Vec<usize> = entries
                    .iter()
                    .filter(|&&(r, i)| r != active && matches!(slots[i], Some(Ok(_))))
                    .map(|&(r, _)| r)
                    .collect();
                match mgr.promote_after_fault(s, &healthy) {
                    Some(promoted) => {
                        telemetry::counter("serve.replica.failovers").inc();
                        entries
                            .iter()
                            .find(|&&(r, _)| r == promoted)
                            .map(|&(_, i)| i)
                            .expect("promotion picks a dispatched standby")
                    }
                    // No standby left: the stripe fails honestly with
                    // the active's transport error.
                    None => active_idx,
                }
            } else {
                active_idx
            };
            for &(_, i) in entries {
                if i != chosen {
                    if let Some(Ok(o)) = &slots[i] {
                        mgr.add_standby_energy(o.energy_nj);
                    }
                }
            }
            reduced.push(slots[chosen].take().expect("each slot is taken once"));
        }
        reduced
    }

    /// Post-settle replication upkeep, once per tick: roll the
    /// uncorrectable streak (planned failover past the threshold),
    /// audit digests and poll active-member health at epoch
    /// boundaries, and pump background rebuilds by one paced chunk.
    /// `outcomes` is empty on idle ticks (nothing dispatched).
    fn replica_maintenance(&mut self, outcomes: &[Result<ShardBatchOutcome, ServeError>]) {
        let shard_count = self.config.shards as usize;
        let epoch = self
            .replicas
            .as_ref()
            .is_some_and(|m| m.epoch_due(self.now + 1));
        for s in 0..shard_count {
            let any_uncorrectable = outcomes.get(s).is_some_and(|o| {
                o.as_ref().is_ok_and(|o| {
                    o.outputs
                        .iter()
                        .any(|out| matches!(out, Err(ArchError::Uncorrectable { .. })))
                })
            });
            let mgr = self.replicas.as_mut().expect("caller checked");
            if mgr.note_active_uncorrectable(s, any_uncorrectable)
                && mgr.promote_planned(s).is_some()
            {
                telemetry::counter("serve.replica.planned_failovers").inc();
            }
            if epoch {
                let divergent = mgr.audit_epoch(s);
                for _ in &divergent {
                    telemetry::counter("serve.replica.divergences").inc();
                }
                let member = mgr.active_member(s);
                if let Ok(health) = self.shards.health(member) {
                    let mgr = self.replicas.as_mut().expect("caller checked");
                    if mgr.health_exceeded(&health) && mgr.promote_planned(s).is_some() {
                        telemetry::counter("serve.replica.planned_failovers").inc();
                    }
                }
            }
            self.pump_rebuild(s);
        }
    }

    /// Advances stripe `s`'s background rebuild by one tick: starts a
    /// snapshot transfer for the oldest retired replica, paces the
    /// in-flight transfer, and on completion restores the snapshot
    /// (chunked over the wire for remote members), replays the missed
    /// schedule log, and rejoins the member as a standby.
    fn pump_rebuild(&mut self, s: usize) {
        let mgr = self.replicas.as_mut().expect("caller checked");
        if mgr.rebuild_in_progress(s).is_some() {
            if let Some((replica, snapshot, pending)) = mgr.rebuild_step(s) {
                let member = mgr.member(s, replica);
                // A remote member's session may have died with the
                // fault that retired it — revive opens a fresh session
                // at the same slot before the snapshot lands.
                let mut ok = self.shards.revive(member).is_ok()
                    && self
                        .shards
                        .restore_state(member, &snapshot)
                        .unwrap_or(false);
                let mut replayed = 0;
                if ok {
                    for (tick_s, ops) in &pending {
                        if self.shards.execute(member, ops, *tick_s).is_err() {
                            ok = false;
                            break;
                        }
                        replayed += 1;
                    }
                }
                let mgr = self.replicas.as_mut().expect("caller checked");
                mgr.complete_rebuild(s, replica, ok, replayed);
                if ok {
                    telemetry::counter("serve.replica.rebuilds").inc();
                }
            }
        } else if let Some(replica) = mgr.needs_rebuild(s) {
            let active = mgr.active_member(s);
            // Snapshot the new active *after* the tick settled, so the
            // schedule log starts exactly at the snapshot's state. An
            // unavailable snapshot (transport hiccup) retries next tick.
            if let Ok(Some(snapshot)) = self.shards.snapshot_state(active) {
                let mgr = self.replicas.as_mut().expect("caller checked");
                mgr.begin_rebuild(s, replica, snapshot);
                telemetry::counter("serve.replica.rebuilds_started").inc();
            }
        }
    }

    /// Adapts the batching window one notch per tick: halve it when a
    /// deadline near the queue head is about to expire (latency mode),
    /// double it after sustained queue pressure (throughput mode), and
    /// drift back toward the configured window when neither holds. The
    /// window stays within `[1, max(queue_depth, batch_window)]`.
    fn tune_window(&mut self) {
        let deadline_tight = self
            .pending
            .iter()
            .take(16)
            .any(|r| r.deadline.is_some_and(|d| d <= self.now + 2));
        if deadline_tight {
            self.tuned_window = (self.tuned_window / 2).max(1);
            self.pressure_ticks = 0;
        } else if self.pending.len() > 2 * self.tuned_window {
            self.pressure_ticks += 1;
            if self.pressure_ticks >= 2 {
                let cap = self.config.queue_depth.max(self.config.batch_window);
                self.tuned_window = (self.tuned_window * 2).min(cap);
                self.pressure_ticks = 0;
            }
        } else {
            self.pressure_ticks = 0;
            if self.pending.len() <= self.tuned_window / 2 {
                // Relax halfway back toward the configured window.
                self.tuned_window =
                    usize::midpoint(self.tuned_window, self.config.batch_window).max(1);
            }
        }
        telemetry::gauge("serve.window").set(self.tuned_window as f64);
    }

    /// Runs ticks until every queued and retrying request has settled.
    pub fn drain(&mut self) {
        while !self.pending.is_empty() || !self.retries.is_empty() {
            self.step();
        }
    }

    /// Replays a trace: submits each event at its tick, stepping once
    /// per tick, then drains. Events must be sorted by `at_tick`.
    /// Rejected submissions are already logged as responses — the replay
    /// never aborts on them.
    pub fn run_trace(&mut self, events: &[crate::trace::TraceEvent]) {
        debug_assert!(
            events.windows(2).all(|w| w[0].at_tick <= w[1].at_tick),
            "trace events must be sorted by tick"
        );
        let mut idx = 0;
        while idx < events.len() {
            while idx < events.len() && events[idx].at_tick <= self.now {
                let ev = &events[idx];
                let _ = self.submit(ev.tenant, ev.op.clone(), ev.deadline_ticks);
                idx += 1;
            }
            self.step();
        }
        self.drain();
    }

    /// Reads a whole vector back, row-major, bypassing the request queue
    /// (a maintenance path for verification and tests).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownVector`] or a wrapped backend fault.
    pub fn read_vector(&mut self, name: &str) -> Result<Vec<Vec<u64>>, ServeError> {
        let placement = self.catalog.get(name)?.clone();
        let mut rows = Vec::with_capacity(placement.rows as usize);
        for i in 0..placement.rows {
            let (shard, local) = placement.locate(i, self.config.shards);
            debug_assert_eq!(
                self.map.owner(self.map.logical(shard, local)),
                shard,
                "placement and ownership map disagree"
            );
            let member = self
                .replicas
                .as_ref()
                .map_or(shard.0 as usize, |m| m.active_member(shard.0 as usize));
            let data = self.shards.read_local_row(member, local.0)?;
            rows.push(data);
        }
        Ok(rows)
    }

    /// Summarises the run: counters, simulated throughput and latency
    /// percentiles, energy, and per-shard load.
    pub fn report(&self) -> ServiceReport {
        let latencies: Vec<u64> = self
            .responses
            .iter()
            .filter(|r| r.is_ok())
            .map(|r| r.latency_cycles)
            .collect();
        let sim_seconds = self.latency_model.seconds(self.sim_cycles);
        let row_ops: u64 = self.shard_load.iter().map(|l| l.row_ops).sum();
        ServiceReport {
            shards: self.config.shards,
            technology: self.config.technology.label(),
            tier: self.config.tier.label(),
            stats: self.stats,
            sim_cycles: self.sim_cycles,
            sim_seconds,
            throughput_rps: if sim_seconds > 0.0 {
                self.stats.completed as f64 / sim_seconds
            } else {
                0.0
            },
            row_ops_per_second: if sim_seconds > 0.0 {
                row_ops as f64 / sim_seconds
            } else {
                0.0
            },
            latency: LatencySummary::from_latencies(latencies),
            energy_mj: self.energy_nj * 1e-6,
            per_shard: self.shard_load.clone(),
            replica: self.replicas.as_ref().map(|m| *m.stats()),
        }
    }

    /// Moves retries whose backoff expired to the head of the pending
    /// queue, oldest request first.
    fn promote_due_retries(&mut self) {
        let now = self.now;
        // `retries` is kept sorted by (not_before, id); due entries form
        // a sorted prefix once partitioned.
        let mut due: Vec<PendingRequest> = Vec::new();
        let mut rest: Vec<PendingRequest> = Vec::new();
        for r in self.retries.drain(..) {
            if r.not_before <= now {
                due.push(r);
            } else {
                rest.push(r);
            }
        }
        self.retries = rest;
        for r in due.into_iter().rev() {
            self.pending.push_front(r);
        }
    }

    /// Pops up to `batch_window` requests, shedding any whose deadline
    /// already passed (they respond with `DeadlineExceeded`).
    ///
    /// The effective window tightens to the minimum of the windows of
    /// the tenants already in the batch: once a window-1 tenant's
    /// request is taken, the batch closes, and such a request never
    /// joins a batch that already has members — latency-sensitive
    /// tenants opt out of coalescing without stalling anyone else.
    fn collect_batch(&mut self) -> Vec<PendingRequest> {
        // The auto-tuned window replaces the configured default, but an
        // explicit per-tenant override still clamps: a window-1 tenant
        // stays uncoalesced no matter how wide the tuner goes.
        let default_window = if self.config.adaptive_batch_window {
            self.tuned_window
        } else {
            self.config.batch_window
        };
        let mut window = default_window;
        let mut batch = Vec::with_capacity(window);
        while let Some(req) = self.pending.pop_front() {
            if let Some(deadline) = req.deadline {
                if deadline < self.now {
                    self.stats.shed_deadline += 1;
                    telemetry::counter("serve.shed.deadline").inc();
                    self.release(&req);
                    self.responses.push(ServeResponse {
                        request: req.id,
                        tenant: req.tenant,
                        op: req.op.mnemonic(),
                        outcome: Err(ServeError::DeadlineExceeded {
                            deadline_tick: deadline,
                            now_tick: self.now,
                        }),
                        submitted_tick: req.submitted_tick,
                        completed_tick: self.now,
                        latency_cycles: self.sim_cycles - req.submit_cycles,
                        retries: req.attempts,
                    });
                    continue;
                }
            }
            let tenant_window = self
                .config
                .tenant_batch_window
                .iter()
                .find(|&&(t, _)| t == req.tenant.0)
                .map_or(default_window, |&(_, w)| w);
            let proposed = window.min(tenant_window);
            if batch.len() >= proposed {
                self.pending.push_front(req);
                break;
            }
            window = proposed;
            batch.push(req);
        }
        batch
    }

    /// Catalog vectors `req` writes (cache-invalidation set).
    fn written_vectors(req: &PendingRequest) -> Vec<&str> {
        match &req.op {
            LogicalOp::Not { dst, .. }
            | LogicalOp::Copy { dst, .. }
            | LogicalOp::And { dst, .. }
            | LogicalOp::Or { dst, .. }
            | LogicalOp::Xor { dst, .. }
            | LogicalOp::Nand { dst, .. }
            | LogicalOp::Nor { dst, .. }
            | LogicalOp::Xnor { dst, .. }
            | LogicalOp::Write { dst, .. } => vec![dst.as_str()],
            LogicalOp::Read { .. } => Vec::new(),
            LogicalOp::Kernel { .. } => req
                .plan
                .as_ref()
                .expect("kernels carry their plan")
                .output_names()
                .collect(),
        }
    }

    /// Appends the per-shard row-ops realising `req` on shard `s`.
    fn decompose_for_shard(&self, req: &PendingRequest, s: u32, out: &mut Vec<RowOp>) {
        let shards = self.config.shards;
        let get = |name: &str| {
            self.catalog
                .get(name)
                .expect("validated at admission")
                .clone()
        };
        match &req.op {
            LogicalOp::Not { src, dst } | LogicalOp::Copy { src, dst } => {
                let (ps, pd) = (get(src), get(dst));
                let n = ps.rows_on_shard(ShardId(s), shards);
                for k in 0..n {
                    let a = RowId(ps.shard_base[s as usize] + k);
                    let d = RowId(pd.shard_base[s as usize] + k);
                    out.push(if matches!(req.op, LogicalOp::Not { .. }) {
                        RowOp::Not { src: a, dst: d }
                    } else {
                        RowOp::Copy { src: a, dst: d }
                    });
                }
            }
            LogicalOp::And { a, b, dst }
            | LogicalOp::Or { a, b, dst }
            | LogicalOp::Xor { a, b, dst }
            | LogicalOp::Nand { a, b, dst }
            | LogicalOp::Nor { a, b, dst }
            | LogicalOp::Xnor { a, b, dst } => {
                let (pa, pb, pd) = (get(a), get(b), get(dst));
                let n = pa.rows_on_shard(ShardId(s), shards);
                for k in 0..n {
                    let ra = RowId(pa.shard_base[s as usize] + k);
                    let rb = RowId(pb.shard_base[s as usize] + k);
                    let rd = RowId(pd.shard_base[s as usize] + k);
                    out.push(match req.op {
                        LogicalOp::And { .. } => RowOp::And { a: ra, b: rb, dst: rd },
                        LogicalOp::Or { .. } => RowOp::Or { a: ra, b: rb, dst: rd },
                        LogicalOp::Xor { .. } => RowOp::Xor { a: ra, b: rb, dst: rd },
                        LogicalOp::Nand { .. } => RowOp::Nand { a: ra, b: rb, dst: rd },
                        LogicalOp::Nor { .. } => RowOp::Nor { a: ra, b: rb, dst: rd },
                        _ => RowOp::Xnor { a: ra, b: rb, dst: rd },
                    });
                }
            }
            LogicalOp::Write { dst, words } => {
                let pd = get(dst);
                let n = pd.rows_on_shard(ShardId(s), shards);
                let words_per_row = self.config.shard_geometry.row_words();
                for k in 0..n {
                    let vector_row = u64::from(s) + k * u64::from(shards);
                    let data: Vec<u64> = (0..words_per_row)
                        .map(|j| words[(j as u64 + vector_row) as usize % words.len()])
                        .collect();
                    out.push(RowOp::Write {
                        row: RowId(pd.shard_base[s as usize] + k),
                        data,
                    });
                }
            }
            LogicalOp::Read { src } => {
                // A cache-hit read dispatches zero row-ops: the digest
                // is served straight from the cache at settlement.
                if req.cached_digest.is_some() {
                    return;
                }
                let ps = get(src);
                let n = ps.rows_on_shard(ShardId(s), shards);
                for k in 0..n {
                    out.push(RowOp::Read {
                        row: RowId(ps.shard_base[s as usize] + k),
                    });
                }
            }
            LogicalOp::Kernel { .. } => {
                let plan = req.plan.as_ref().expect("kernels carry their plan");
                let bases: Vec<u64> = plan
                    .vector_names()
                    .map(|v| get(v).shard_base[s as usize])
                    .collect();
                let rows = plan
                    .vector_names()
                    .next()
                    .map(|v| get(v).rows)
                    .expect("plans touch at least one vector");
                plan.emit_for_shard(s, shards, rows, &bases, self.scratch_base, out);
            }
        }
    }

    /// Settles one dispatched request: success response, retry
    /// re-queue, or typed failure.
    fn settle(
        &mut self,
        mut req: PendingRequest,
        spans: &[(usize, usize)],
        outcomes: &[Result<ShardBatchOutcome, ServeError>],
    ) {
        // A transport failure on any shard this request dispatched to
        // fails it honestly: the remote shard's post-failure state is
        // unknown, so neither success nor retry would be truthful. The
        // first failing shard in index order decides (determinism).
        for (s, &(_, count)) in spans.iter().enumerate() {
            if count == 0 {
                continue;
            }
            if let Err(err) = &outcomes[s] {
                self.stats.failed += 1;
                self.stats.transport_errors += 1;
                telemetry::counter("serve.failed").inc();
                telemetry::counter("serve.transport_errors").inc();
                self.release(&req);
                self.responses.push(ServeResponse {
                    request: req.id,
                    tenant: req.tenant,
                    op: req.op.mnemonic(),
                    outcome: Err(err.clone()),
                    submitted_tick: req.submitted_tick,
                    completed_tick: self.now,
                    latency_cycles: self.sim_cycles - req.submit_cycles,
                    retries: req.attempts,
                });
                return;
            }
        }
        // From here every shard this request touched has an outcome.
        let outcome_at = |s: usize| -> &ShardBatchOutcome {
            outcomes[s]
                .as_ref()
                .expect("transport failures settled above")
        };

        // First error in shard-then-op order decides the outcome.
        let mut first_error: Option<ArchError> = None;
        'scan: for (s, &(start, count)) in spans.iter().enumerate() {
            if count == 0 {
                continue;
            }
            for r in &outcome_at(s).outputs[start..start + count] {
                if let Err(e) = r {
                    first_error = Some(e.clone());
                    break 'scan;
                }
            }
        }

        match first_error {
            None => {
                let payload = match (&req.op, req.cached_digest) {
                    (LogicalOp::Read { .. }, Some((rows, digest))) => {
                        // Served from the digest cache: no row was read.
                        ResponsePayload::Digest { rows, digest }
                    }
                    (LogicalOp::Read { src }, None) => {
                        let placement = self
                            .catalog
                            .get(src)
                            .expect("validated at admission")
                            .clone();
                        let shards = self.config.shards;
                        let mut words = Vec::new();
                        for i in 0..placement.rows {
                            let (shard, _) = placement.locate(i, shards);
                            let s = shard.0 as usize;
                            let k = (i / u64::from(shards)) as usize;
                            let (start, _) = spans[s];
                            match &outcome_at(s).outputs[start + k] {
                                Ok(RowOpOutput::Data(row)) => words.extend_from_slice(row),
                                other => unreachable!("read op yielded {other:?}"),
                            }
                        }
                        let digest = fnv1a_words(&words);
                        if self.config.read_cache && req.cache_fill {
                            self.read_cache
                                .insert(src.clone(), (placement.rows, digest));
                        }
                        ResponsePayload::Digest {
                            rows: placement.rows,
                            digest,
                        }
                    }
                    (LogicalOp::Kernel { .. }, _) => {
                        let plan = req.plan.as_ref().expect("kernels carry their plan");
                        let rows = plan
                            .vector_names()
                            .next()
                            .map(|v| {
                                self.catalog
                                    .get(v)
                                    .expect("validated at admission")
                                    .rows
                            })
                            .expect("plans touch at least one vector");
                        let fused_ops = plan.vector_ops() * rows;
                        self.stats.kernels += 1;
                        telemetry::counter("serve.kernel.requests").inc();
                        telemetry::counter("serve.kernel.fused_ops").add(fused_ops);
                        telemetry::counter("serve.kernel.cse_hits").add(plan.cse_hits);
                        ResponsePayload::Kernel {
                            fused_ops,
                            cse_hits: plan.cse_hits,
                            scratch_slots: u64::from(plan.scratch_slots),
                        }
                    }
                    _ => ResponsePayload::Done,
                };
                self.stats.completed += 1;
                telemetry::counter("serve.completed").inc();
                let latency = self.sim_cycles - req.submit_cycles;
                telemetry::histogram("serve.latency_cycles").record(latency);
                self.release(&req);
                self.responses.push(ServeResponse {
                    request: req.id,
                    tenant: req.tenant,
                    op: req.op.mnemonic(),
                    outcome: Ok(payload),
                    submitted_tick: req.submitted_tick,
                    completed_tick: self.now,
                    latency_cycles: latency,
                    retries: req.attempts,
                });
            }
            Some(err @ ArchError::Uncorrectable { .. })
                if req.attempts < self.config.max_retries =>
            {
                req.attempts += 1;
                let jitter = if self.config.retry_backoff_ticks > 0 {
                    derive_seed(
                        self.config.seed,
                        req.id.0.wrapping_mul(0x9e37).wrapping_add(u64::from(req.attempts)),
                    ) % self.config.retry_backoff_ticks
                } else {
                    0
                };
                req.not_before = self.now + 1 + jitter;
                self.stats.retries += 1;
                telemetry::counter("serve.retries").inc();
                let _ = err;
                // Queue accounting stays held: a retrying request still
                // occupies its shard slots, which is honest backpressure.
                let pos = self
                    .retries
                    .partition_point(|r| (r.not_before, r.id) <= (req.not_before, req.id));
                self.retries.insert(pos, req);
            }
            Some(err) => {
                self.stats.failed += 1;
                telemetry::counter("serve.failed").inc();
                let outcome = match err {
                    ArchError::Uncorrectable { .. } => ServeError::RetriesExhausted {
                        attempts: req.attempts + 1,
                        source: err,
                    },
                    other => ServeError::Backend { source: other },
                };
                self.release(&req);
                self.responses.push(ServeResponse {
                    request: req.id,
                    tenant: req.tenant,
                    op: req.op.mnemonic(),
                    outcome: Err(outcome),
                    submitted_tick: req.submitted_tick,
                    completed_tick: self.now,
                    latency_cycles: self.sim_cycles - req.submit_cycles,
                    retries: req.attempts,
                });
            }
        }
    }

    /// Releases a settled request's queue accounting.
    fn release(&mut self, req: &PendingRequest) {
        for &s in &req.involved {
            self.queued_per_shard[s as usize] -= 1;
        }
        self.queued_per_tenant[req.tenant.0 as usize] -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(shards: u32) -> BulkService {
        let mut svc = BulkService::new(ServiceConfig::small(shards)).unwrap();
        svc.create_vector("a", 8).unwrap();
        svc.create_vector("b", 8).unwrap();
        svc.create_vector("d", 8).unwrap();
        svc
    }

    fn write(svc: &mut BulkService, t: TenantId, dst: &str, words: Vec<u64>) {
        svc.submit(t, LogicalOp::Write { dst: dst.into(), words }, None)
            .unwrap();
    }

    #[test]
    fn logic_ops_compute_correct_vectors() {
        let mut svc = setup(2);
        let t = TenantId(0);
        write(&mut svc, t, "a", vec![0b1100]);
        write(&mut svc, t, "b", vec![0b1010]);
        for (op, want) in [
            (
                LogicalOp::And {
                    a: "a".into(),
                    b: "b".into(),
                    dst: "d".into(),
                },
                0b1000u64,
            ),
            (
                LogicalOp::Xor {
                    a: "a".into(),
                    b: "b".into(),
                    dst: "d".into(),
                },
                0b0110,
            ),
            (
                LogicalOp::Nor {
                    a: "a".into(),
                    b: "b".into(),
                    dst: "d".into(),
                },
                !0b1110,
            ),
        ] {
            svc.submit(t, op, None).unwrap();
            svc.drain();
            let rows = svc.read_vector("d").unwrap();
            assert_eq!(rows.len(), 8);
            // Write pattern is cyclic with one word, so every word of
            // every row holds the same operand value.
            for row in &rows {
                assert!(row.iter().all(|&w| w == want));
            }
        }
        assert!(svc.take_responses().iter().all(|r| r.is_ok()));
    }

    #[test]
    fn read_digest_matches_read_vector() {
        let mut svc = setup(2);
        let t = TenantId(1);
        write(&mut svc, t, "a", vec![1, 2, 3]);
        svc.submit(t, LogicalOp::Read { src: "a".into() }, None)
            .unwrap();
        svc.drain();
        let responses = svc.take_responses();
        let digest = match &responses[1].outcome {
            Ok(ResponsePayload::Digest { rows, digest }) => {
                assert_eq!(*rows, 8);
                *digest
            }
            other => panic!("expected digest, got {other:?}"),
        };
        let words: Vec<u64> = svc
            .read_vector("a")
            .unwrap()
            .into_iter()
            .flatten()
            .collect();
        assert_eq!(digest, fnv1a_words(&words));
    }

    #[test]
    fn rejections_are_typed_and_logged() {
        let mut svc = setup(1);
        let t = TenantId(0);
        assert!(matches!(
            svc.submit(t, LogicalOp::Read { src: "nope".into() }, None),
            Err(ServeError::UnknownVector { .. })
        ));
        assert!(matches!(
            svc.submit(TenantId(99), LogicalOp::Read { src: "a".into() }, None),
            Err(ServeError::UnknownTenant { .. })
        ));
        assert!(matches!(
            svc.submit(
                t,
                LogicalOp::Write {
                    dst: "a".into(),
                    words: vec![]
                },
                None
            ),
            Err(ServeError::EmptyPattern)
        ));
        svc.create_vector("short", 3).unwrap();
        assert!(matches!(
            svc.submit(
                t,
                LogicalOp::And {
                    a: "a".into(),
                    b: "short".into(),
                    dst: "d".into()
                },
                None
            ),
            Err(ServeError::ShapeMismatch { .. })
        ));
        // Every rejection produced a response.
        assert_eq!(svc.responses().len(), 4);
        assert_eq!(svc.stats().rejected_invalid, 4);
    }

    #[test]
    fn quota_and_overload_backpressure() {
        let mut cfg = ServiceConfig::small(1);
        cfg.queue_depth = 4;
        cfg.tenants = 2;
        cfg.tenant_quota = Some(3);
        cfg.batch_window = 1;
        let mut svc = BulkService::new(cfg).unwrap();
        svc.create_vector("v", 4).unwrap();
        let op = || LogicalOp::Read { src: "v".into() };
        let (t0, t1) = (TenantId(0), TenantId(1));
        for _ in 0..3 {
            svc.submit(t0, op(), None).unwrap();
        }
        assert!(matches!(
            svc.submit(t0, op(), None),
            Err(ServeError::QuotaExceeded { .. })
        ));
        svc.submit(t1, op(), None).unwrap(); // queue now full at 4
        assert!(matches!(
            svc.submit(t1, op(), None),
            Err(ServeError::Overloaded { .. })
        ));
        svc.drain();
        // Accounting drains back to zero: a fresh submission is accepted.
        svc.submit(t1, op(), None).unwrap();
        svc.drain();
        let total = svc.responses().len() as u64;
        assert_eq!(total, svc.stats().submitted);
    }

    #[test]
    fn deadline_shedding_rejects_stale_requests() {
        let mut cfg = ServiceConfig::small(1);
        cfg.batch_window = 1;
        let mut svc = BulkService::new(cfg).unwrap();
        svc.create_vector("v", 4).unwrap();
        let t = TenantId(0);
        // Three requests, one-per-tick service, deadline 0 ticks: the
        // second and third expire before their turn.
        for _ in 0..3 {
            svc.submit(t, LogicalOp::Read { src: "v".into() }, Some(0))
                .unwrap();
        }
        svc.drain();
        assert_eq!(svc.stats().completed, 1);
        assert_eq!(svc.stats().shed_deadline, 2);
        assert!(svc
            .responses()
            .iter()
            .any(|r| matches!(r.outcome, Err(ServeError::DeadlineExceeded { .. }))));
    }

    #[test]
    fn multi_shard_equals_single_shard_results() {
        let mut one = setup(1);
        let mut four = setup(4);
        let t = TenantId(2);
        for svc in [&mut one, &mut four] {
            write(svc, t, "a", vec![0xDEAD, 0xBEEF]);
            write(svc, t, "b", vec![0x1234]);
            svc.submit(
                t,
                LogicalOp::Xnor {
                    a: "a".into(),
                    b: "b".into(),
                    dst: "d".into(),
                },
                None,
            )
            .unwrap();
            svc.drain();
        }
        assert_eq!(
            one.read_vector("d").unwrap(),
            four.read_vector("d").unwrap(),
            "sharding must not change results"
        );
        // More shards, shorter simulated time for the same work.
        assert!(four.sim_cycles() < one.sim_cycles());
    }

    #[test]
    fn protected_tier_serves_correctly() {
        let mut cfg = ServiceConfig::small(2);
        cfg.tier = ServiceTier::Protected {
            drift: DriftSpec::quiet(11),
            scrub_period_s: 0.5,
        };
        let mut svc = BulkService::new(cfg).unwrap();
        svc.create_vector("a", 6).unwrap();
        svc.create_vector("d", 6).unwrap();
        let t = TenantId(0);
        write(&mut svc, t, "a", vec![0xF0F0]);
        svc.submit(
            t,
            LogicalOp::Not {
                src: "a".into(),
                dst: "d".into(),
            },
            None,
        )
        .unwrap();
        svc.drain();
        assert_eq!(svc.stats().completed, 2);
        let rows = svc.read_vector("d").unwrap();
        assert!(rows.iter().all(|r| r.iter().all(|&w| w == !0xF0F0u64)));
    }

    #[test]
    fn report_summarises_the_run() {
        let mut svc = setup(2);
        let t = TenantId(0);
        write(&mut svc, t, "a", vec![1]);
        write(&mut svc, t, "b", vec![2]);
        svc.submit(
            t,
            LogicalOp::Or {
                a: "a".into(),
                b: "b".into(),
                dst: "d".into(),
            },
            None,
        )
        .unwrap();
        svc.drain();
        let report = svc.report();
        assert_eq!(report.shards, 2);
        assert_eq!(report.technology, "feram");
        assert_eq!(report.stats.completed, 3);
        assert!(report.sim_seconds > 0.0);
        assert!(report.throughput_rps > 0.0);
        assert!(report.latency.max >= report.latency.p50);
        assert!(report.energy_mj > 0.0);
        assert_eq!(report.per_shard.len(), 2);
        serde_json::to_string(&report).unwrap();
    }

    #[test]
    fn kernel_computes_fused_program_and_reports_counters() {
        let mut svc = setup(2);
        let t = TenantId(0);
        write(&mut svc, t, "a", vec![0b1100]);
        write(&mut svc, t, "b", vec![0b1010]);
        svc.submit(
            t,
            LogicalOp::Kernel {
                program: "t = a & b\nd = t ^ ~b".into(),
                bindings: vec![
                    ("a".into(), "a".into()),
                    ("b".into(), "b".into()),
                    ("d".into(), "d".into()),
                ],
            },
            None,
        )
        .unwrap();
        svc.drain();
        let responses = svc.take_responses();
        match &responses[2].outcome {
            Ok(ResponsePayload::Kernel {
                fused_ops,
                scratch_slots,
                ..
            }) => {
                // 6 gates (AND, NOT, and the XOR's four-NAND network)
                // × 8 rows, fused: every intermediate feeds the next
                // gate without a catalog round-trip, and d
                // direct-writes the network's final NAND.
                assert_eq!(*fused_ops, 48);
                assert!(*scratch_slots <= 3);
            }
            other => panic!("expected kernel payload, got {other:?}"),
        }
        assert_eq!(svc.stats().kernels, 1);
        let want = (0b1100u64 & 0b1010) ^ !0b1010u64;
        let rows = svc.read_vector("d").unwrap();
        assert!(rows.iter().all(|r| r.iter().all(|&w| w == want)));
    }

    #[test]
    fn kernel_rejections_are_typed() {
        let mut svc = setup(1);
        let t = TenantId(0);
        let kernel = |program: &str, bindings: Vec<(&str, &str)>| LogicalOp::Kernel {
            program: program.into(),
            bindings: bindings
                .into_iter()
                .map(|(d, v)| (d.to_owned(), v.to_owned()))
                .collect(),
        };
        assert!(matches!(
            svc.submit(t, kernel("d = (a", vec![("a", "a"), ("d", "d")]), None),
            Err(ServeError::KernelParse { .. })
        ));
        assert!(matches!(
            svc.submit(t, kernel("d = ghost", vec![("d", "d")]), None),
            Err(ServeError::KernelPlan { .. })
        ));
        assert!(matches!(
            svc.submit(t, kernel("d = a", vec![("a", "nope"), ("d", "d")]), None),
            Err(ServeError::UnknownVector { .. })
        ));
        // The XOR network peaks at two live scratch slots; 8-row
        // vectors on one shard then need 16 scratch rows — more than a
        // 4-row budget.
        let mut cfg = ServiceConfig::small(1);
        cfg.kernel_scratch_rows = 4;
        let mut tight = BulkService::new(cfg).unwrap();
        tight.create_vector("a", 8).unwrap();
        tight.create_vector("b", 8).unwrap();
        tight.create_vector("d", 8).unwrap();
        tight.create_vector("e", 8).unwrap();
        assert!(matches!(
            tight.submit(
                t,
                kernel(
                    "t = a ^ b\nd = t & a\ne = t | b",
                    vec![("a", "a"), ("b", "b"), ("d", "d"), ("e", "e")],
                ),
                None
            ),
            Err(ServeError::ScratchExhausted {
                needed_rows: 16,
                budget_rows: 4,
            })
        ));
    }

    #[test]
    fn read_cache_serves_repeats_and_invalidates_on_write() {
        let mut svc = setup(2);
        let t = TenantId(0);
        let read = || LogicalOp::Read { src: "a".into() };
        write(&mut svc, t, "a", vec![5, 6]);
        for _ in 0..3 {
            svc.submit(t, read(), None).unwrap();
            svc.drain();
        }
        // First read misses and fills; the next two hit.
        assert_eq!(svc.stats().cache_hits, 2);
        assert_eq!(svc.stats().cache_misses, 1);
        write(&mut svc, t, "a", vec![7]);
        svc.submit(t, read(), None).unwrap();
        svc.drain();
        assert_eq!(svc.stats().cache_invalidations, 1);
        assert_eq!(svc.stats().cache_misses, 2);
        // Every response carries the digest of the vector as it was at
        // that point — cached or not.
        let digests: Vec<u64> = svc
            .take_responses()
            .iter()
            .filter_map(|r| match &r.outcome {
                Ok(ResponsePayload::Digest { digest, .. }) => Some(*digest),
                _ => None,
            })
            .collect();
        assert_eq!(digests.len(), 4);
        assert_eq!(digests[0], digests[1]);
        assert_eq!(digests[1], digests[2]);
        assert_ne!(digests[2], digests[3], "write must invalidate");
    }

    #[test]
    fn cache_respects_same_batch_write_ordering() {
        // Read then write coalesced into ONE batch: the read must not
        // populate the cache with the pre-write digest.
        let mut svc = setup(1);
        let t = TenantId(0);
        write(&mut svc, t, "a", vec![1]);
        svc.drain();
        svc.submit(t, LogicalOp::Read { src: "a".into() }, None)
            .unwrap();
        svc.submit(
            t,
            LogicalOp::Write {
                dst: "a".into(),
                words: vec![2],
            },
            None,
        )
        .unwrap();
        svc.drain(); // both in the same window-8 batch
        svc.submit(t, LogicalOp::Read { src: "a".into() }, None)
            .unwrap();
        svc.drain();
        // The trailing read must miss (no stale fill) and see the new
        // contents.
        assert_eq!(svc.stats().cache_hits, 0);
        assert_eq!(svc.stats().cache_misses, 2);
        let responses = svc.take_responses();
        let digest = |i: usize| match &responses[i].outcome {
            Ok(ResponsePayload::Digest { digest, .. }) => *digest,
            other => panic!("expected digest, got {other:?}"),
        };
        assert_ne!(digest(1), digest(3));
    }

    #[test]
    fn disabled_cache_never_hits() {
        let mut cfg = ServiceConfig::small(1);
        cfg.read_cache = false;
        let mut svc = BulkService::new(cfg).unwrap();
        svc.create_vector("a", 4).unwrap();
        let t = TenantId(0);
        write(&mut svc, t, "a", vec![9]);
        for _ in 0..2 {
            svc.submit(t, LogicalOp::Read { src: "a".into() }, None)
                .unwrap();
            svc.drain();
        }
        assert_eq!(svc.stats().cache_hits, 0);
        assert_eq!(svc.stats().cache_misses, 0, "accounting off while disabled");
        assert!(svc.take_responses().iter().all(|r| r.is_ok()));
    }

    #[test]
    fn per_tenant_window_override_prevents_coalescing() {
        let mut cfg = ServiceConfig::small(1);
        cfg.tenant_batch_window = vec![(1, 1)];
        let mut svc = BulkService::new(cfg).unwrap();
        svc.create_vector("v", 4).unwrap();
        let read = || LogicalOp::Read { src: "v".into() };
        // 3 bulk-tenant requests, 1 latency-tenant, 3 bulk again: the
        // override forces three batches (3 / 1 / 3) where the default
        // window of 8 would take all seven at once.
        for _ in 0..3 {
            svc.submit(TenantId(0), read(), None).unwrap();
        }
        svc.submit(TenantId(1), read(), None).unwrap();
        for _ in 0..3 {
            svc.submit(TenantId(0), read(), None).unwrap();
        }
        svc.drain();
        assert_eq!(svc.stats().batches, 3);
        assert_eq!(svc.stats().completed, 7);
    }

    #[test]
    fn invalid_configs_are_typed_errors() {
        let mut cfg = ServiceConfig::small(1);
        cfg.shards = 0;
        assert!(matches!(
            BulkService::new(cfg),
            Err(ServeError::InvalidConfig { .. })
        ));
        let mut cfg = ServiceConfig::small(1);
        cfg.tenant_batch_window = vec![(99, 1)];
        assert!(matches!(
            BulkService::new(cfg),
            Err(ServeError::InvalidConfig { .. })
        ));
        let mut cfg = ServiceConfig::small(1);
        cfg.tenant_batch_window = vec![(0, 0)];
        assert!(matches!(
            BulkService::new(cfg),
            Err(ServeError::InvalidConfig { .. })
        ));
        let mut cfg = ServiceConfig::small(1);
        cfg.kernel_scratch_rows = u64::MAX;
        assert!(matches!(
            BulkService::new(cfg),
            Err(ServeError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn kernel_plan_cache_skips_recompilation() {
        let mut svc = setup(2);
        let t = TenantId(0);
        write(&mut svc, t, "a", vec![0b1100]);
        write(&mut svc, t, "b", vec![0b1010]);
        let kernel = || LogicalOp::Kernel {
            program: "d = a & ~b".into(),
            bindings: vec![
                ("a".into(), "a".into()),
                ("b".into(), "b".into()),
                ("d".into(), "d".into()),
            ],
        };
        for _ in 0..3 {
            svc.submit(t, kernel(), None).unwrap();
            svc.drain();
        }
        // First submission compiles and fills; the next two hit.
        assert_eq!(svc.stats().plan_cache_hits, 2);
        let rows = svc.read_vector("d").unwrap();
        let want = 0b1100u64 & !0b1010u64;
        assert!(rows.iter().all(|r| r.iter().all(|&w| w == want)));
        // A different binding shape is a different plan: no false hit.
        svc.create_vector("e", 8).unwrap();
        svc.submit(
            t,
            LogicalOp::Kernel {
                program: "d = a & ~b".into(),
                bindings: vec![
                    ("a".into(), "b".into()),
                    ("b".into(), "a".into()),
                    ("d".into(), "e".into()),
                ],
            },
            None,
        )
        .unwrap();
        svc.drain();
        assert_eq!(svc.stats().plan_cache_hits, 2);
    }

    #[test]
    fn remote_placements_are_validated() {
        let mut cfg = ServiceConfig::small(2);
        cfg.remote_shards = vec![(7, "127.0.0.1:1".into())];
        assert!(matches!(
            BulkService::new(cfg),
            Err(ServeError::InvalidConfig { .. })
        ));
        let mut cfg = ServiceConfig::small(2);
        cfg.remote_shards = vec![(0, "127.0.0.1:1".into()), (0, "127.0.0.1:2".into())];
        assert!(matches!(
            BulkService::new(cfg),
            Err(ServeError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn unreachable_remote_shard_fails_the_build_with_transport() {
        // Bind-then-drop to get a dead port.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let mut cfg = ServiceConfig::small(1);
        cfg.remote_shards = vec![(0, format!("127.0.0.1:{port}"))];
        cfg.remote_connect_attempts = 2;
        cfg.remote_connect_backoff_ms = 1;
        assert!(matches!(
            BulkService::new(cfg),
            Err(ServeError::Transport { .. })
        ));
    }

    #[test]
    fn remote_shard_service_is_byte_identical_to_local() {
        use crate::remote::ShardHost;

        let host = ShardHost::bind("127.0.0.1:0").unwrap();
        let addr = host.local_addr().to_string();
        let server = std::thread::spawn(move || host.serve_once().unwrap());

        let drive = |mut svc: BulkService| -> (String, Vec<Vec<u64>>) {
            svc.create_vector("a", 8).unwrap();
            svc.create_vector("b", 8).unwrap();
            svc.create_vector("d", 8).unwrap();
            let t = TenantId(0);
            write(&mut svc, t, "a", vec![0xDEAD, 0xBEEF]);
            write(&mut svc, t, "b", vec![0x1234]);
            svc.submit(
                t,
                LogicalOp::Xor {
                    a: "a".into(),
                    b: "b".into(),
                    dst: "d".into(),
                },
                None,
            )
            .unwrap();
            svc.submit(t, LogicalOp::Read { src: "d".into() }, None)
                .unwrap();
            svc.drain();
            let log = serde_json::to_string(&svc.take_responses()).unwrap();
            (log, svc.read_vector("d").unwrap())
        };

        let mut remote_cfg = ServiceConfig::small(2);
        remote_cfg.remote_shards = vec![(1, addr)];
        let (remote_log, remote_rows) = drive(BulkService::new(remote_cfg).unwrap());
        let (local_log, local_rows) = drive(BulkService::new(ServiceConfig::small(2)).unwrap());
        assert_eq!(remote_log, local_log, "response logs must be byte-identical");
        assert_eq!(remote_rows, local_rows);
        server.join().unwrap();
    }

    #[test]
    fn latency_summary_percentiles() {
        let s = LatencySummary::from_latencies((1..=100).collect());
        assert_eq!(s.p50, 50);
        assert_eq!(s.p95, 95);
        assert_eq!(s.p99, 99);
        assert_eq!(s.max, 100);
        let empty = LatencySummary::from_latencies(vec![]);
        assert_eq!(empty.max, 0);
    }

    /// Drives the same small campaign through `svc` and returns the
    /// serialised response log plus the final contents of `d`.
    fn campaign(mut svc: BulkService) -> (String, Vec<Vec<u64>>) {
        svc.create_vector("a", 8).unwrap();
        svc.create_vector("b", 8).unwrap();
        svc.create_vector("d", 8).unwrap();
        let t = TenantId(0);
        write(&mut svc, t, "a", vec![0xFACE, 0xCAFE]);
        write(&mut svc, t, "b", vec![0xF0F0]);
        for op in [
            LogicalOp::Xor { a: "a".into(), b: "b".into(), dst: "d".into() },
            LogicalOp::Nand { a: "d".into(), b: "b".into(), dst: "d".into() },
            LogicalOp::Read { src: "d".into() },
        ] {
            svc.submit(t, op, None).unwrap();
        }
        svc.drain();
        let log = serde_json::to_string(&svc.take_responses()).unwrap();
        let rows = svc.read_vector("d").unwrap();
        (log, rows)
    }

    #[test]
    fn replication_on_is_byte_identical_to_replication_off() {
        // Standbys are exact copies and never influence settled
        // responses — the response log and readback must match the
        // unreplicated service bit for bit, on both tiers.
        for tier in [
            ServiceTier::Baseline,
            ServiceTier::Protected {
                drift: DriftSpec::quiet(17),
                scrub_period_s: 0.25,
            },
        ] {
            let mut plain = ServiceConfig::small(2);
            plain.tier = tier.clone();
            let mut replicated = plain.clone();
            replicated.replication = Some(ReplicationConfig {
                standbys: 2,
                ..ReplicationConfig::default()
            });
            let (log_off, rows_off) = campaign(BulkService::new(plain).unwrap());
            let (log_on, rows_on) = campaign(BulkService::new(replicated).unwrap());
            assert_eq!(log_on, log_off, "replication must be invisible in the log");
            assert_eq!(rows_on, rows_off);
        }
    }

    #[test]
    fn replicated_report_accounts_standby_energy_separately() {
        let mut cfg = ServiceConfig::small(2);
        cfg.replication = Some(ReplicationConfig::default());
        let svc_cfg = cfg.clone();
        let mut svc = BulkService::new(svc_cfg).unwrap();
        svc.create_vector("a", 4).unwrap();
        write(&mut svc, TenantId(0), "a", vec![7]);
        svc.drain();
        let report = svc.report();
        let replica = report.replica.expect("replication configured");
        assert!(
            replica.standby_energy_nj > 0.0,
            "the standby executed the same batch and its energy lands here"
        );
        assert_eq!(replica.failovers, 0);
        // The settled energy matches an unreplicated run (checked
        // byte-for-byte by the identity test); standby energy rides
        // outside it.
        assert!(report.energy_mj > 0.0);
    }

    #[test]
    fn replication_epoch_audit_passes_on_identical_replicas() {
        let mut cfg = ServiceConfig::small(2);
        cfg.tenant_quota = Some(32);
        cfg.replication = Some(ReplicationConfig {
            epoch_ticks: 2,
            ..ReplicationConfig::default()
        });
        let mut svc = BulkService::new(cfg).unwrap();
        svc.create_vector("a", 8).unwrap();
        for i in 0..12 {
            write(&mut svc, TenantId(0), "a", vec![i]);
        }
        svc.drain();
        let replica = svc.report().replica.unwrap();
        assert_eq!(replica.divergences, 0, "identical replicas never diverge");
        assert_eq!(replica.planned_failovers, 0);
    }

    #[test]
    fn invalid_replication_configs_are_typed_errors() {
        let cases: Vec<(&str, ReplicationConfig)> = vec![
            ("zero standbys", ReplicationConfig { standbys: 0, ..ReplicationConfig::default() }),
            ("zero epoch", ReplicationConfig { epoch_ticks: 0, ..ReplicationConfig::default() }),
            (
                "zero chunk",
                ReplicationConfig { rebuild_chunk_bytes: 0, ..ReplicationConfig::default() },
            ),
            (
                "stripe out of range",
                ReplicationConfig {
                    remote_standbys: vec![(9, 1, "127.0.0.1:1".into())],
                    ..ReplicationConfig::default()
                },
            ),
            (
                "standby index out of range",
                ReplicationConfig {
                    remote_standbys: vec![(0, 2, "127.0.0.1:1".into())],
                    ..ReplicationConfig::default()
                },
            ),
            (
                "duplicate placement",
                ReplicationConfig {
                    remote_standbys: vec![
                        (0, 1, "127.0.0.1:1".into()),
                        (0, 1, "127.0.0.1:2".into()),
                    ],
                    ..ReplicationConfig::default()
                },
            ),
        ];
        for (label, repl) in cases {
            let mut cfg = ServiceConfig::small(2);
            cfg.replication = Some(repl);
            assert!(
                matches!(BulkService::new(cfg), Err(ServeError::InvalidConfig { .. })),
                "{label} must be rejected at build time"
            );
        }
    }

    #[test]
    fn adaptive_window_widens_under_pressure_and_narrows_for_deadlines() {
        // Throughput mode: a deep queue with no deadlines should widen
        // the window past the configured batch_window, finishing in
        // fewer batches than the fixed-window service (the BENCH_PR7
        // w1/w8 tradeoff, chosen automatically).
        let drive = |adaptive: bool, deadlines: bool| -> (u64, usize) {
            let mut cfg = ServiceConfig::small(2);
            cfg.batch_window = 2;
            cfg.queue_depth = 64;
            cfg.tenant_quota = Some(64);
            cfg.adaptive_batch_window = adaptive;
            let mut svc = BulkService::new(cfg).unwrap();
            svc.create_vector("a", 4).unwrap();
            for i in 0..48u64 {
                let deadline = if deadlines { Some(1 + i / 2) } else { None };
                let _ = svc.submit(
                    TenantId(0),
                    LogicalOp::Write { dst: "a".into(), words: vec![i] },
                    deadline,
                );
            }
            svc.drain();
            (svc.stats().batches, svc.tuned_window)
        };
        let (fixed_batches, _) = drive(false, false);
        let (adaptive_batches, widened) = drive(true, false);
        assert!(
            adaptive_batches < fixed_batches,
            "pressure must widen the window: {adaptive_batches} vs {fixed_batches} batches"
        );
        assert!(widened > 2, "window widened past the configured 2");
        // Latency mode: imminent deadlines pull the window down to the
        // floor instead of widening.
        let (_, narrowed) = drive(true, true);
        assert_eq!(narrowed, 1, "tight deadlines narrow the window to 1");
    }

    #[test]
    fn adaptive_window_relaxes_back_when_pressure_clears() {
        let mut cfg = ServiceConfig::small(1);
        cfg.batch_window = 2;
        cfg.queue_depth = 64;
        cfg.tenant_quota = Some(64);
        cfg.adaptive_batch_window = true;
        let mut svc = BulkService::new(cfg).unwrap();
        svc.create_vector("a", 4).unwrap();
        for i in 0..40u64 {
            let _ = svc.submit(
                TenantId(0),
                LogicalOp::Write { dst: "a".into(), words: vec![i] },
                None,
            );
        }
        svc.drain();
        let widened = svc.tuned_window;
        assert!(widened > 2);
        // Idle ticks with an empty queue drift the window back toward
        // the configured value.
        for _ in 0..16 {
            svc.step();
        }
        assert!(
            svc.tuned_window < widened,
            "an idle service relaxes toward batch_window"
        );
    }
}
