//! Replication & failover suite: a real `felim-shardd` daemon, real
//! loopback TCP, a deterministic [`ChaosProxy`] in the middle, and the
//! full [`BulkService`] with hot standbys.
//!
//! The headline contract is the PR 10 acceptance criterion: kill the
//! primary's transport **mid-campaign** and the service fails over to a
//! standby with *zero silent corruptions*, *exactly one response per
//! request*, and a response log **byte-identical** to the no-fault
//! run's — the standby executed the same deterministic schedules, so
//! settling from its outcome is indistinguishable. The satellite
//! contracts ride along: daemon multiplexing (one child hosting many
//! slots), resume sessions, snapshot pull/push over the wire, and
//! chaos delays not perturbing the log.

use felim_arch::drift::DriftSpec;
use felim_arch::geometry::MemoryGeometry;
use felim_serve::{
    generate_trace, BulkService, ChaosProxy, ChaosSpec, ConnectRetry, RemoteShard,
    ReplicationConfig, ServiceConfig, ServiceTier, ShardHostChild, Technology, TraceSpec,
};

/// Path of the `felim-shardd` binary Cargo built for this test run.
const SHARDD: &str = env!("CARGO_BIN_EXE_felim-shardd");

fn spawn_daemon() -> ShardHostChild {
    ShardHostChild::spawn(SHARDD).expect("felim-shardd spawns and advertises an address")
}

/// Replays one trace against `config`, pumping a few idle ticks at the
/// end so background rebuilds settle; returns the serialised response
/// log and the final report.
///
/// Under `FELIM_REMOTE_POOL=1` every member the caller left local is
/// routed through a freshly spawned daemon instead, so the no-fault
/// "truth" runs exercise the wire transport just like the chaos runs —
/// the byte-identity assertions then compare remote against remote.
fn replay(mut config: ServiceConfig, trace: &TraceSpec) -> (String, felim_serve::ServiceReport) {
    let _daemon = if std::env::var("FELIM_REMOTE_POOL").as_deref() == Ok("1") {
        let daemon = spawn_daemon();
        let addr = daemon.addr().to_owned();
        for s in 0..config.shards {
            if !config.remote_shards.iter().any(|(i, _)| *i == s) {
                config.remote_shards.push((s, addr.clone()));
            }
        }
        if let Some(replication) = config.replication.as_mut() {
            for s in 0..config.shards {
                for r in 1..=replication.standbys {
                    if !replication.remote_standbys.iter().any(|(i, rr, _)| (*i, *rr) == (s, r)) {
                        replication.remote_standbys.push((s, r, addr.clone()));
                    }
                }
            }
        }
        Some(daemon)
    } else {
        None
    };
    let (vectors, events) = generate_trace(trace);
    let mut service = BulkService::new(config).expect("valid config");
    for (name, rows) in &vectors {
        service.create_vector(name, *rows).expect("vectors fit");
    }
    service.run_trace(&events);
    for _ in 0..32 {
        service.step();
    }
    let report = service.report();
    let log = serde_json::to_string(&service.take_responses()).expect("log serializes");
    (log, report)
}

fn base_config(tier: ServiceTier) -> ServiceConfig {
    let mut config = ServiceConfig::small(2);
    config.tier = tier;
    config.replication = Some(ReplicationConfig {
        standbys: 1,
        // A generous per-tick chunk so rebuilds complete within the
        // drain's idle ticks.
        rebuild_chunk_bytes: 1 << 20,
        ..ReplicationConfig::default()
    });
    config
}

fn small_trace() -> TraceSpec {
    let mut trace = TraceSpec::small(77);
    trace.requests = 40;
    trace
}

#[test]
fn killing_the_primary_mid_campaign_fails_over_with_a_byte_identical_log() {
    for (label, tier) in [
        ("baseline", ServiceTier::Baseline),
        (
            "protected",
            ServiceTier::Protected {
                drift: DriftSpec::quiet(23),
                scrub_period_s: 0.25,
            },
        ),
    ] {
        let trace = small_trace();
        // The truth: every member local, no faults.
        let (want_log, want_report) = replay(base_config(tier.clone()), &trace);

        // The victim: stripe 0's primary behind a chaos proxy that cuts
        // the session mid-frame partway through the campaign. Its
        // standby is local and promoted mid-tick.
        let daemon = spawn_daemon();
        let upstream = daemon.addr().parse().expect("daemon addr parses");
        let chaos = ChaosProxy::start(
            upstream,
            ChaosSpec {
                seed: 5,
                kill_mid_frame_at: Some(9),
                ..ChaosSpec::default()
            },
        )
        .expect("proxy binds");
        let mut config = base_config(tier);
        config.remote_shards = vec![(0, chaos.addr().to_string())];
        let (got_log, got_report) = replay(config, &trace);

        // Zero silent drops: exactly one response per submission, and
        // the log is byte-identical to the no-fault run — including the
        // requests in flight when the primary died.
        assert_eq!(
            got_report.stats.submitted, want_report.stats.submitted,
            "{label}: same trace, same submissions"
        );
        assert_eq!(
            got_log, want_log,
            "{label}: failover must be invisible in the response log"
        );
        let replica = got_report.replica.expect("replication configured");
        assert_eq!(replica.failovers, 1, "{label}: the kill fired exactly once");
        assert_eq!(
            got_report.stats.transport_errors, 0,
            "{label}: the standby absorbed the fault before settlement"
        );
        // The retired primary was revived through the proxy (later
        // connections pass untouched) and rebuilt from a snapshot.
        assert_eq!(replica.rebuilds_started, 1, "{label}");
        assert_eq!(replica.rebuilds_completed, 1, "{label}");
        assert_eq!(replica.divergences, 0, "{label}: replicas never diverged");
    }
}

#[test]
fn a_clean_connection_drop_also_fails_over_without_log_damage() {
    let trace = small_trace();
    let (want_log, _) = replay(base_config(ServiceTier::Baseline), &trace);

    let daemon = spawn_daemon();
    let upstream = daemon.addr().parse().expect("daemon addr parses");
    let chaos = ChaosProxy::start(
        upstream,
        ChaosSpec {
            seed: 6,
            drop_at_frame: Some(5),
            ..ChaosSpec::default()
        },
    )
    .expect("proxy binds");
    let mut config = base_config(ServiceTier::Baseline);
    config.remote_shards = vec![(1, chaos.addr().to_string())];
    let (got_log, got_report) = replay(config, &trace);

    assert_eq!(got_log, want_log);
    let replica = got_report.replica.expect("replication configured");
    assert_eq!(replica.failovers, 1);
    assert_eq!(replica.rebuilds_completed, 1);
}

#[test]
fn chaos_delays_do_not_perturb_the_response_log() {
    // Virtual time is decoupled from wall time: holding every few reply
    // frames for a few milliseconds changes nothing observable.
    let trace = small_trace();
    let (want_log, _) = replay(base_config(ServiceTier::Baseline), &trace);

    let daemon = spawn_daemon();
    let upstream = daemon.addr().parse().expect("daemon addr parses");
    let chaos = ChaosProxy::start(
        upstream,
        ChaosSpec {
            seed: 99,
            delay_every: 4,
            delay_ms: 3,
            ..ChaosSpec::default()
        },
    )
    .expect("proxy binds");
    let mut config = base_config(ServiceTier::Baseline);
    config.remote_shards = vec![(0, chaos.addr().to_string())];
    let (got_log, got_report) = replay(config, &trace);

    assert_eq!(got_log, want_log, "delays must be invisible");
    let replica = got_report.replica.expect("replication configured");
    assert_eq!(replica.failovers, 0, "no fault, no failover");
}

#[test]
fn one_daemon_multiplexes_primaries_and_standbys_across_slots() {
    // Four pool members (2 stripes × primary+standby) all behind a
    // single daemon process, distinguished only by their handshake
    // slot. The log still matches the all-local run.
    let trace = small_trace();
    let (want_log, _) = replay(base_config(ServiceTier::Baseline), &trace);

    let daemon = spawn_daemon();
    let addr = daemon.addr().to_owned();
    let mut config = base_config(ServiceTier::Baseline);
    config.remote_shards = (0..2).map(|s| (s, addr.clone())).collect();
    config.replication = Some(ReplicationConfig {
        standbys: 1,
        remote_standbys: (0..2).map(|s| (s, 1, addr.clone())).collect(),
        ..ReplicationConfig::default()
    });
    let (got_log, got_report) = replay(config, &trace);

    assert_eq!(got_log, want_log);
    assert_eq!(got_report.replica.expect("configured").failovers, 0);
}

#[test]
fn resume_sessions_reattach_and_snapshots_round_trip_over_the_wire() {
    use felim_arch::batch::{RowOp, RowOpOutput};
    use felim_arch::geometry::RowId;

    let daemon = spawn_daemon();
    let addr = daemon.addr();
    let geometry = MemoryGeometry::tiny();
    let retry = ConnectRetry::default();

    // Session 1 at slot 7: write a recognisable row, then die without
    // Shutdown — the shard must outlive the session.
    let mut first =
        RemoteShard::connect_slot(addr, Technology::Feram, geometry, None, retry, 7, false)
            .expect("fresh session");
    let outcome = first
        .execute(
            &[RowOp::Write { row: RowId(3), data: vec![0xFEED_F00D; geometry.row_words()] }],
            1e-3,
        )
        .expect("write lands");
    assert!(outcome.outputs[0].is_ok());
    drop(first);

    // Session 2 resumes slot 7 and reads the row back.
    let mut second =
        RemoteShard::connect_slot(addr, Technology::Feram, geometry, None, retry, 7, true)
            .expect("resume session");
    let outcome = second
        .execute(&[RowOp::Read { row: RowId(3) }], 1e-3)
        .expect("read runs");
    match &outcome.outputs[0] {
        Ok(RowOpOutput::Data(words)) => {
            assert!(words.iter().all(|&w| w == 0xFEED_F00D), "state survived the session");
        }
        other => panic!("expected data, got {other:?}"),
    }

    // Snapshot pull → push onto a different slot → the clone serves the
    // same row.
    let snapshot = second
        .fetch_snapshot()
        .expect("pull succeeds")
        .expect("baseline tier snapshots");
    let mut clone =
        RemoteShard::connect_slot(addr, Technology::Feram, geometry, None, retry, 8, false)
            .expect("clone session");
    assert!(clone.push_snapshot(&snapshot).expect("push succeeds"), "daemon restores");
    let outcome = clone
        .execute(&[RowOp::Read { row: RowId(3) }], 1e-3)
        .expect("read runs");
    match &outcome.outputs[0] {
        Ok(RowOpOutput::Data(words)) => {
            assert!(words.iter().all(|&w| w == 0xFEED_F00D), "snapshot carried the row");
        }
        other => panic!("expected data, got {other:?}"),
    }

    // Resuming an empty slot is refused with a typed error, not a hang.
    assert!(
        RemoteShard::connect_slot(addr, Technology::Feram, geometry, None, retry, 99, true)
            .is_err(),
        "nothing lives at slot 99"
    );
}
