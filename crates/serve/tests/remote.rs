//! Cross-process transport suite: a real `felim-shardd` daemon (spawned
//! from this build's own binary), real loopback TCP, and the full
//! [`BulkService`] running against local, remote, and mixed shard
//! pools.
//!
//! The headline contract is the PR 9 acceptance criterion: the
//! serialised response log of a trace replay is **byte-identical**
//! whether every shard is in-process, every shard is behind a daemon,
//! or the pool mixes both — on the Baseline tier and under the
//! Protected tier's drift physics. The failure-path contract rides
//! along: killing the daemon mid-session yields typed
//! [`ServeError::Transport`] responses, never panics or silent drops.

use felim_arch::drift::DriftSpec;
use felim_serve::{
    generate_trace, BulkService, ConnectRetry, LogicalOp, RemoteShard, ServeError,
    ServiceConfig, ServiceTier, ShardHostChild, Technology, TenantId, TraceSpec,
};

/// Path of the `felim-shardd` binary Cargo built for this test run.
const SHARDD: &str = env!("CARGO_BIN_EXE_felim-shardd");

fn spawn_daemon() -> ShardHostChild {
    ShardHostChild::spawn(SHARDD).expect("felim-shardd spawns and advertises an address")
}

/// Replays one trace against `config` and returns the serialised
/// response log and report.
fn replay(config: ServiceConfig, trace: &TraceSpec) -> (String, String) {
    let (vectors, events) = generate_trace(trace);
    let mut service = BulkService::new(config).expect("valid config");
    for (name, rows) in &vectors {
        service.create_vector(name, *rows).expect("vectors fit");
    }
    service.run_trace(&events);
    let report = serde_json::to_string(&service.report()).expect("report serializes");
    let log = serde_json::to_string(&service.take_responses()).expect("log serializes");
    (log, report)
}

fn config_with_remotes(tier: ServiceTier, remotes: Vec<(u32, String)>) -> ServiceConfig {
    let mut config = ServiceConfig::small(4);
    config.tier = tier;
    config.remote_shards = remotes;
    config
}

#[test]
fn response_log_is_byte_identical_across_local_remote_and_mixed_pools() {
    // One daemon serves every remote session: each connection hosts its
    // own fresh shard, so a single child can back a whole pool.
    let daemon = spawn_daemon();
    let addr = daemon.addr().to_owned();
    let mut trace = TraceSpec::small(42);
    trace.requests = 48;

    type TierCase = (&'static str, fn() -> ServiceTier);
    let tiers: [TierCase; 2] = [
        ("baseline", || ServiceTier::Baseline),
        ("protected", || ServiceTier::Protected {
            drift: DriftSpec::quiet(13),
            scrub_period_s: 0.25,
        }),
    ];
    for (label, tier) in tiers {
        let local = replay(config_with_remotes(tier(), Vec::new()), &trace);
        let remote = replay(
            config_with_remotes(
                tier(),
                (0..4).map(|s| (s, addr.clone())).collect(),
            ),
            &trace,
        );
        let mixed = replay(
            config_with_remotes(tier(), vec![(1, addr.clone()), (3, addr.clone())]),
            &trace,
        );
        assert_eq!(
            local.0, remote.0,
            "{label}: all-remote response log must match all-local"
        );
        assert_eq!(
            local.0, mixed.0,
            "{label}: mixed-pool response log must match all-local"
        );
        assert_eq!(local.1, remote.1, "{label}: reports must match");
        assert_eq!(local.1, mixed.1, "{label}: reports must match");
        assert!(local.0.contains("\"Ok\""), "{label}: replay must complete work");
    }
}

#[test]
fn pipelined_batches_settle_in_order_against_a_real_daemon() {
    use felim_arch::batch::{RowOp, RowOpOutput};
    use felim_arch::geometry::{MemoryGeometry, RowId};

    let daemon = spawn_daemon();
    let mut remote = RemoteShard::connect(
        daemon.addr(),
        Technology::Feram,
        MemoryGeometry::tiny(),
        None,
        ConnectRetry::default(),
    )
    .expect("handshake succeeds");

    // Queue four dependent batches without waiting — depth-4 pipeline.
    let words = remote.data_rows(); // row width probe not needed; write row 0 with a recognisable word
    assert!(words > 0);
    let row_words = {
        // Read an empty row to learn the width.
        remote.read_local_row(0).expect("fresh shard row readable").len()
    };
    let pattern = |i: u64| vec![0x1111_1111_1111_1111 * (i + 1); row_words];
    let mut seqs = Vec::new();
    for i in 0..4u64 {
        let ops = vec![
            RowOp::Write { row: RowId(0), data: pattern(i) },
            RowOp::Read { row: RowId(0) },
        ];
        seqs.push(remote.send_batch(&ops, 1e-3).expect("send pipelined"));
    }
    assert_eq!(remote.inflight(), 4);
    for (i, want_seq) in seqs.into_iter().enumerate() {
        let (seq, outcome) = remote.recv_batch().expect("reply in order");
        assert_eq!(seq, want_seq, "replies settle strictly in sequence order");
        match &outcome.outputs[1] {
            Ok(RowOpOutput::Data(words)) => {
                assert_eq!(words, &pattern(i as u64), "batch {i} sees its own write")
            }
            other => panic!("batch {i}: expected read data, got {other:?}"),
        }
    }
    assert_eq!(remote.inflight(), 0);
}

#[test]
fn every_session_gets_a_fresh_shard() {
    use felim_arch::batch::RowOp;
    use felim_arch::geometry::{MemoryGeometry, RowId};

    let daemon = spawn_daemon();
    let connect = || {
        RemoteShard::connect(
            daemon.addr(),
            Technology::Feram,
            MemoryGeometry::tiny(),
            None,
            ConnectRetry::default(),
        )
        .expect("handshake succeeds")
    };
    let mut first = connect();
    let row_words = first.read_local_row(0).expect("readable").len();
    first
        .execute(
            &[RowOp::Write { row: RowId(0), data: vec![u64::MAX; row_words] }],
            1e-3,
        )
        .expect("write lands");
    assert_eq!(first.read_local_row(0).unwrap(), vec![u64::MAX; row_words]);
    drop(first);

    // A new session must never observe the previous client's rows.
    let mut second = connect();
    assert_eq!(
        second.read_local_row(0).unwrap(),
        vec![0u64; row_words],
        "a reconnect starts from a well-defined empty shard"
    );
}

#[test]
fn killing_the_daemon_mid_session_yields_typed_transport_errors() {
    let mut daemon = spawn_daemon();
    let mut config = ServiceConfig::small(1);
    config.remote_shards = vec![(0, daemon.addr().to_owned())];
    let mut service = BulkService::new(config).expect("remote pool builds");
    service.create_vector("v", 4).expect("fits");
    let t = TenantId(0);

    // The link works before the kill.
    service
        .submit(t, LogicalOp::Write { dst: "v".into(), words: vec![7] }, None)
        .expect("admitted");
    service.drain();
    assert!(
        service.take_responses().iter().all(|r| r.is_ok()),
        "pre-kill traffic completes"
    );

    daemon.kill();

    // Post-kill traffic fails with typed Transport errors — exactly one
    // response per submission, no panics, no hangs, no silent drops.
    for _ in 0..3 {
        service
            .submit(t, LogicalOp::Write { dst: "v".into(), words: vec![9] }, None)
            .expect("admission still works; failure surfaces at settlement");
    }
    service.drain();
    let responses = service.take_responses();
    assert_eq!(responses.len(), 3, "every submission gets a response");
    for r in &responses {
        match &r.outcome {
            Err(ServeError::Transport { peer, kind, .. }) => {
                assert_eq!(peer, daemon.addr());
                // The first failure is the torn link; later ones echo
                // the poisoned session. All are transport-class.
                let label = kind.label();
                assert!(
                    ["peer_lost", "short_read", "protocol"].contains(&label),
                    "unexpected transport kind {label}"
                );
            }
            other => panic!("expected a typed Transport error, got {other:?}"),
        }
    }
    assert!(service.stats().transport_errors >= 1);
    assert_eq!(service.stats().failed, 3);

    // Maintenance reads against the dead shard fail honestly too.
    assert!(matches!(
        service.read_vector("v"),
        Err(ServeError::Transport { .. })
    ));
}
