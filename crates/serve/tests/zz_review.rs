use felim_serve::{BulkService, LogicalOp, Program, ServiceConfig, TenantId};
use std::collections::BTreeMap;

#[test]
fn review_writeback_order() {
    let program = "t = a\na = x\nd = t";
    let parsed = Program::parse(program).unwrap();
    let mut env = BTreeMap::new();
    env.insert("a".to_owned(), 0xAAAAu64);
    env.insert("x".to_owned(), 0x5555u64);
    let expected = parsed.eval_words(&env);
    assert_eq!(expected["d"], 0xAAAA);

    let mut svc = BulkService::new(ServiceConfig::small(1)).unwrap();
    for n in ["a", "x", "d"] {
        svc.create_vector(n, 4).unwrap();
    }
    let t = TenantId(0);
    svc.submit(t, LogicalOp::Write { dst: "a".into(), words: vec![0xAAAA] }, None).unwrap();
    svc.submit(t, LogicalOp::Write { dst: "x".into(), words: vec![0x5555] }, None).unwrap();
    svc.submit(
        t,
        LogicalOp::Kernel {
            program: program.into(),
            bindings: vec![
                ("a".into(), "a".into()),
                ("x".into(), "x".into()),
                ("d".into(), "d".into()),
            ],
        },
        None,
    )
    .unwrap();
    svc.drain();
    assert!(svc.take_responses().iter().all(|r| r.is_ok()));
    let d = svc.read_vector("d").unwrap();
    assert_eq!(d[0][0], 0xAAAA, "d must hold OLD a; got {:#x}", d[0][0]);
}
