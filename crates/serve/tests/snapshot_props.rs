//! Property suite for backend state snapshots: for **every** backend
//! combination (FeRAM/DRAM × Baseline/Protected), a random workload's
//! state must survive `snapshot → chunked transfer → restore` into a
//! fresh instance **bit-identically** — including rows in the kernel
//! scratch region, the reliability controller's wear accumulators,
//! ECC check bytes, spare-row remaps, and the drift process's RNG
//! position. "Bit-identical" is checked two ways: the restored
//! instance re-snapshots to the very same bytes, and it produces the
//! same outcome as the original on an identical follow-up batch (the
//! property failover actually relies on).

use felim_arch::batch::RowOp;
use felim_arch::drift::DriftSpec;
use felim_arch::geometry::{MemoryGeometry, RowId};
use felim_exec::derive_seed;
use felim_serve::shard::{Shard, Technology};
use felim_serve::ServiceTier;
use proptest::prelude::*;

/// Tiny deterministic generator over a splitmix64 stream (the vendored
/// proptest hands each case a `u64` seed; everything else derives from
/// it so failures replay exactly).
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Gen { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = derive_seed(self.state, 1);
        self.state
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random workload batch over the whole row space — including the
/// top rows, which the service reserves for kernel scratch (the
/// snapshot must not treat them specially).
fn gen_batch(g: &mut Gen, rows: u64, words: usize) -> Vec<RowOp> {
    let row = |g: &mut Gen| {
        // Bias toward the top of the array so scratch rows are hit in
        // every case.
        let r = if g.below(3) == 0 { rows - 1 - g.below(4.min(rows)) } else { g.below(rows) };
        RowId(r)
    };
    (0..4 + g.below(12))
        .map(|_| match g.below(6) {
            0 => RowOp::Write {
                row: row(g),
                data: (0..words).map(|_| g.next()).collect(),
            },
            1 => RowOp::Not { src: row(g), dst: row(g) },
            2 => RowOp::And { a: row(g), b: row(g), dst: row(g) },
            3 => RowOp::Xor { a: row(g), b: row(g), dst: row(g) },
            4 => RowOp::Copy { src: row(g), dst: row(g) },
            _ => RowOp::Read { row: row(g) },
        })
        .collect()
}

fn tiers(seed: u64) -> [ServiceTier; 2] {
    [
        ServiceTier::Baseline,
        ServiceTier::Protected {
            // Hot and disturb-prone: real drift flips, scrub rewrites,
            // and wear accumulate within a few virtual seconds, so the
            // snapshot has non-trivial controller state to carry.
            drift: DriftSpec::accelerated(seed, 390.0, 1e-4),
            scrub_period_s: 0.5,
        },
    ]
}

fn shard_for(technology: Technology, tier: &ServiceTier) -> Shard {
    let tier = match tier {
        ServiceTier::Baseline => None,
        ServiceTier::Protected { drift, scrub_period_s } => {
            Some((drift.clone(), *scrub_period_s))
        }
    };
    Shard::new(technology, MemoryGeometry::tiny(), tier)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The full matrix: random workload, snapshot, transfer in random
    /// chunk sizes, restore into a fresh shard — then both shards must
    /// agree byte-for-byte (re-snapshot) and behaviour-for-behaviour
    /// (identical follow-up batch, including faults and energy).
    fn snapshot_transfer_restore_is_bit_identical(seed in 0u64..u64::MAX) {
        for technology in [Technology::Feram, Technology::Dram] {
            for tier in tiers(seed ^ 0x7157) {
                let mut g = Gen::new(derive_seed(seed, 0x5eed));
                let mut original = shard_for(technology, &tier);
                let rows = original.data_rows();
                let words = MemoryGeometry::tiny().row_words();

                // A few ticks of real work (drift clock advancing on
                // the protected tier).
                for _ in 0..3 {
                    let batch = gen_batch(&mut g, rows, words);
                    let _ = original.execute(&batch, 0.75);
                }

                let snapshot = original
                    .snapshot_state()
                    .expect("unfaulted backends always snapshot");

                // Chunked transfer at a random chunk size — the frame
                // path reassembles exactly this way.
                let chunk = 1 + g.below(snapshot.len().max(2) as u64) as usize;
                let mut transferred = Vec::with_capacity(snapshot.len());
                for piece in snapshot.chunks(chunk) {
                    transferred.extend_from_slice(piece);
                }
                prop_assert_eq!(&transferred, &snapshot);

                let mut restored = shard_for(technology, &tier);
                prop_assert!(
                    restored.restore_state(&transferred),
                    "restore accepts its own snapshot ({:?})", technology
                );

                // Byte-identity: the restored shard re-snapshots to the
                // same bytes (wear, ECC, spares, RNG position and all).
                prop_assert_eq!(
                    restored.snapshot_state().as_deref(),
                    Some(&snapshot[..]),
                    "re-snapshot differs ({:?})", technology
                );

                // Behavioural identity: the same follow-up batch gives
                // the same outcome on both, fault-for-fault.
                let followup = gen_batch(&mut g, rows, words);
                let a = original.execute(&followup, 0.75);
                let b = restored.execute(&followup, 0.75);
                prop_assert_eq!(a, b, "follow-up diverged ({:?})", technology);
            }
        }
    }

    /// Corrupted or truncated snapshots are refused atomically: the
    /// target shard keeps serving its own pre-restore state.
    fn damaged_snapshots_are_refused_without_state_damage(seed in 0u64..u64::MAX) {
        let mut g = Gen::new(seed);
        for tier in tiers(seed ^ 0x60D) {
            let mut donor = shard_for(Technology::Feram, &tier);
            let rows = donor.data_rows();
            let words = MemoryGeometry::tiny().row_words();
            let _ = donor.execute(&gen_batch(&mut g, rows, words), 0.5);
            let good = donor.snapshot_state().expect("snapshots");

            let mut target = shard_for(Technology::Feram, &tier);
            let marker = vec![0xD1CE_D1CE_D1CE_D1CEu64; words];
            let _ = target.execute(
                &[RowOp::Write { row: RowId(0), data: marker.clone() }],
                0.5,
            );
            let before = target.snapshot_state().expect("snapshots");

            // Truncation and tail garbage are both refused...
            let cut = g.below(good.len() as u64) as usize;
            prop_assert!(!target.restore_state(&good[..cut]), "truncated at {}", cut);
            let mut extended = good.clone();
            extended.push(g.next() as u8);
            prop_assert!(!target.restore_state(&extended), "trailing garbage");

            // ...and the target's state is untouched by the attempts.
            prop_assert_eq!(
                target.snapshot_state().as_deref(),
                Some(&before[..]),
                "a refused restore must not dent existing state"
            );
        }
    }
}
