//! Property suite for the shard-transport frame codec.
//!
//! Random frames of **every** [`Frame`] type — random op mixes, random
//! outcome shapes, random drift specs — must survive
//! `encode → decode` exactly, both at the payload layer and through
//! the full `[len][payload][crc]` framing. And no corruption of the
//! byte stream may ever panic or mis-decode: a flipped CRC byte, a
//! truncated length prefix, a mid-frame disconnect, or arbitrary bit
//! flips each yield a typed [`TransportErrorKind`], never a silent
//! drop.

use felim_arch::batch::{RowOp, RowOpOutput};
use felim_arch::drift::DriftSpec;
use felim_arch::geometry::{MemoryGeometry, RowId};
use felim_arch::ArchError;
use felim_exec::derive_seed;
use felim_serve::shard::ShardBatchOutcome;
use felim_serve::{Frame, Technology, TransportErrorKind};
use proptest::prelude::*;

/// Tiny deterministic generator over a splitmix64 stream: the vendored
/// proptest hands each case a `u64` seed; everything else derives from
/// it so failures replay exactly.
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Gen { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = derive_seed(self.state, 1);
        self.state
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// A finite, wire-exact f64 (NaN would break `PartialEq` round
    /// trips even though the bits survive).
    fn finite_f64(&mut self) -> f64 {
        (self.next() % 1_000_003) as f64 / 7.0
    }

    fn row(&mut self) -> RowId {
        RowId(self.below(1 << 20))
    }

    fn words(&mut self, max: u64) -> Vec<u64> {
        (0..self.below(max)).map(|_| self.next()).collect()
    }
}

fn gen_op(g: &mut Gen) -> RowOp {
    match g.below(10) {
        0 => RowOp::Not { src: g.row(), dst: g.row() },
        1 => RowOp::And { a: g.row(), b: g.row(), dst: g.row() },
        2 => RowOp::Or { a: g.row(), b: g.row(), dst: g.row() },
        3 => RowOp::Xor { a: g.row(), b: g.row(), dst: g.row() },
        4 => RowOp::Nand { a: g.row(), b: g.row(), dst: g.row() },
        5 => RowOp::Nor { a: g.row(), b: g.row(), dst: g.row() },
        6 => RowOp::Xnor { a: g.row(), b: g.row(), dst: g.row() },
        7 => RowOp::Copy { src: g.row(), dst: g.row() },
        8 => RowOp::Write { row: g.row(), data: g.words(9) },
        _ => RowOp::Read { row: g.row() },
    }
}

fn gen_arch_error(g: &mut Gen) -> ArchError {
    match g.below(5) {
        0 => ArchError::RowOutOfRange { row: g.next(), rows: g.next() },
        1 => ArchError::RowSizeMismatch {
            expected: g.below(1 << 16) as usize,
            got: g.below(1 << 16) as usize,
        },
        2 => ArchError::UncorrectableWrite { row: g.next(), attempts: g.below(8) as u32 },
        3 => ArchError::SparesExhausted { row: g.next() },
        _ => ArchError::Uncorrectable {
            row: g.next(),
            words: (0..g.below(5)).map(|_| g.below(128) as usize).collect(),
        },
    }
}

fn gen_outcome(g: &mut Gen) -> ShardBatchOutcome {
    let outputs = (0..g.below(6))
        .map(|_| match g.below(3) {
            0 => Ok(RowOpOutput::Done),
            1 => Ok(RowOpOutput::Data(g.words(9))),
            _ => Err(gen_arch_error(g)),
        })
        .collect();
    ShardBatchOutcome {
        outputs,
        serial_cycles: g.next(),
        makespan_cycles: g.next(),
        energy_nj: g.finite_f64(),
        maintenance_error: if g.below(3) == 0 { Some(gen_arch_error(g)) } else { None },
    }
}

fn gen_drift(g: &mut Gen) -> DriftSpec {
    let mut d = DriftSpec::quiet(g.next());
    d.temperature_k = 250.0 + g.finite_f64() % 200.0;
    d.sense_margin_v = g.finite_f64() / 1e6;
    d.disturb_per_read = g.finite_f64() / 1e9;
    d.retention.beta = 0.1 + g.finite_f64() % 1.0;
    d.imprint.onset_s = 1.0 + g.finite_f64();
    d
}

fn gen_geometry(g: &mut Gen) -> MemoryGeometry {
    // Not necessarily *valid* — the codec must carry any field values
    // faithfully; validation is the daemon's job.
    MemoryGeometry {
        capacity_bytes: g.next(),
        row_bytes: g.next(),
        rows_per_subarray: g.next(),
    }
}

/// One random frame of the type picked by `which` — the suite cycles
/// `which` over all fourteen frame types so every variant is exercised
/// in every case.
fn gen_frame(g: &mut Gen, which: u64) -> Frame {
    match which % 14 {
        0 => Frame::Hello {
            version: g.next() as u32,
            technology: if g.below(2) == 0 { Technology::Feram } else { Technology::Dram },
            geometry: gen_geometry(g),
            tier: if g.below(2) == 0 {
                None
            } else {
                Some((gen_drift(g), g.finite_f64()))
            },
            slot: g.next(),
            resume: g.below(2) == 0,
        },
        1 => Frame::HelloAck { version: g.next() as u32, data_rows: g.next() },
        2 => Frame::Batch {
            seq: g.next(),
            tick_s: g.finite_f64(),
            ops: (0..g.below(7)).map(|_| gen_op(g)).collect(),
        },
        3 => Frame::BatchReply { seq: g.next(), outcome: gen_outcome(g) },
        4 => Frame::ReadRow { seq: g.next(), row: g.next() },
        5 => Frame::ReadRowReply {
            seq: g.next(),
            result: if g.below(2) == 0 {
                Ok(g.words(9))
            } else {
                Err(gen_arch_error(g))
            },
        },
        6 => Frame::SnapshotPull { seq: g.next(), offset: g.next(), max_len: g.next() },
        7 => Frame::SnapshotChunk {
            seq: g.next(),
            offset: g.next(),
            total_len: g.next(),
            data: g.words(9).iter().map(|w| *w as u8).collect(),
        },
        8 => Frame::SnapshotPush {
            seq: g.next(),
            offset: g.next(),
            total_len: g.next(),
            data: g.words(9).iter().map(|w| *w as u8).collect(),
        },
        9 => Frame::SnapshotPushAck { seq: g.next(), ok: g.below(2) == 0 },
        10 => Frame::Health { seq: g.next() },
        11 => Frame::HealthReply {
            seq: g.next(),
            uncorrectable_words: g.next(),
            corrected_bits: g.next(),
            scrub_rewrites: g.next(),
            drift_flips: g.next(),
            max_wear_fraction: g.finite_f64(),
        },
        _ => Frame::Shutdown,
    }
}

/// Encodes `frame` with full framing into a fresh byte buffer.
fn framed_bytes(frame: &Frame) -> Vec<u8> {
    let mut bytes = Vec::new();
    frame.write_to(&mut bytes).expect("in-memory write succeeds");
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `encode_payload → decode_payload` is the identity for every
    /// frame type, and the framed stream (`write_to → read_from`)
    /// carries a whole random sequence of frames bit-for-bit.
    fn every_frame_type_round_trips(seed in 0u64..u64::MAX) {
        let mut g = Gen::new(seed);
        let frames: Vec<Frame> = (0..14).map(|i| gen_frame(&mut g, i)).collect();
        let mut stream = Vec::new();
        for f in &frames {
            let payload = f.encode_payload();
            prop_assert_eq!(&Frame::decode_payload(&payload).unwrap(), f);
            f.write_to(&mut stream).unwrap();
        }
        let mut cursor = &stream[..];
        for f in &frames {
            prop_assert_eq!(&Frame::read_from(&mut cursor).unwrap(), f);
        }
        // The drained stream reports a clean peer departure, not a
        // phantom frame.
        prop_assert_eq!(
            Frame::read_from(&mut cursor).unwrap_err().kind,
            TransportErrorKind::PeerLost
        );
    }

    /// Flipping any bit of the trailing CRC word is always `Corrupt` —
    /// the guard itself cannot be silently damaged.
    fn a_flipped_crc_byte_is_always_corrupt(seed in 0u64..u64::MAX) {
        let mut g = Gen::new(seed);
        let which = g.next();
        let frame = gen_frame(&mut g, which);
        let mut bytes = framed_bytes(&frame);
        let n = bytes.len();
        let crc_byte = n - 4 + (g.below(4) as usize);
        bytes[crc_byte] ^= 1 << g.below(8);
        let err = Frame::read_from(&mut &bytes[..]).unwrap_err();
        prop_assert_eq!(err.kind, TransportErrorKind::Corrupt);
    }

    /// A truncated length prefix — the peer died mid-`len` — is a torn
    /// frame (`ShortRead`), while a cut before any byte arrived is a
    /// clean `PeerLost`. Nothing in between panics.
    fn a_truncated_length_prefix_is_a_short_read(seed in 0u64..u64::MAX) {
        let mut g = Gen::new(seed);
        let which = g.next();
        let frame = gen_frame(&mut g, which);
        let bytes = framed_bytes(&frame);
        prop_assert_eq!(
            Frame::read_from(&mut &bytes[..0]).unwrap_err().kind,
            TransportErrorKind::PeerLost
        );
        for cut in 1..4 {
            prop_assert_eq!(
                Frame::read_from(&mut &bytes[..cut]).unwrap_err().kind,
                TransportErrorKind::ShortRead,
                "cut inside the length prefix at {}", cut
            );
        }
    }

    /// A disconnect anywhere inside the frame body or CRC is a
    /// `ShortRead` — the reader never blocks on or invents the missing
    /// bytes.
    fn a_mid_frame_disconnect_is_a_short_read(seed in 0u64..u64::MAX) {
        let mut g = Gen::new(seed);
        let which = g.next();
        let frame = gen_frame(&mut g, which);
        let bytes = framed_bytes(&frame);
        let cut = 4 + (g.below((bytes.len() - 4) as u64) as usize);
        let err = Frame::read_from(&mut &bytes[..cut]).unwrap_err();
        prop_assert_eq!(
            err.kind,
            TransportErrorKind::ShortRead,
            "cut at {}/{} of a {} frame", cut, bytes.len(), frame.name()
        );
    }

    /// Flipping any single bit anywhere in the framed bytes yields a
    /// typed transport error or decodes to a *different-but-valid*
    /// stream that still fails somewhere (flips in the length prefix
    /// shift framing) — it never panics and never silently returns the
    /// original frame.
    fn arbitrary_bit_flips_never_panic_or_pass_silently(seed in 0u64..u64::MAX) {
        let mut g = Gen::new(seed);
        let which = g.next();
        let frame = gen_frame(&mut g, which);
        let mut bytes = framed_bytes(&frame);
        let at = g.below(bytes.len() as u64) as usize;
        bytes[at] ^= 1 << g.below(8);
        match Frame::read_from(&mut &bytes[..]) {
            // A corrupted stream must not reproduce the original frame:
            // the CRC catches payload flips, the length bound catches
            // prefix flips.
            Ok(decoded) => prop_assert_ne!(decoded, frame, "flip at byte {} went unnoticed", at),
            Err(e) => prop_assert!(
                matches!(
                    e.kind,
                    TransportErrorKind::Corrupt
                        | TransportErrorKind::ShortRead
                        | TransportErrorKind::Oversize
                        | TransportErrorKind::PeerLost
                ),
                "unexpected error class {:?} for flip at byte {}", e, at
            ),
        }
    }

    /// Random garbage — arbitrary bytes that were never a frame — is
    /// rejected with a typed error, never a panic or a runaway
    /// allocation.
    fn random_garbage_is_rejected_typed(seed in 0u64..u64::MAX) {
        let mut g = Gen::new(seed);
        let garbage: Vec<u8> = (0..g.below(96)).map(|_| g.next() as u8).collect();
        let err = Frame::read_from(&mut &garbage[..]).unwrap_err();
        prop_assert!(
            matches!(
                err.kind,
                TransportErrorKind::Corrupt
                    | TransportErrorKind::ShortRead
                    | TransportErrorKind::Oversize
                    | TransportErrorKind::PeerLost
            ),
            "garbage produced {:?}", err
        );
    }
}
