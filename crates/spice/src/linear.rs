//! Dense LU factorisation with partial pivoting.
//!
//! Cell-level netlists have tens of unknowns; a dense solver is both
//! simpler and faster than sparse machinery at that scale. The solver is
//! built for re-use on the Newton hot path: pivot bookkeeping lives in a
//! caller-owned [`LuWorkspace`], and [`DenseMatrix::clear`] re-zeroes
//! only the entries actually stamped since the last full clear (the MNA
//! stamp pattern is identical every iteration), so a steady-state solve
//! performs no heap allocation at all.

/// Numerical singularity report: the elimination step at which no usable
/// pivot remained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularPivot {
    /// 0-based elimination column whose pivot column was numerically zero
    /// — in MNA terms, the unknown (node voltage or source current) the
    /// system carries no information about.
    pub pivot: usize,
}

/// Reusable scratch for [`DenseMatrix::solve_in_place_with`]: the pivot
/// permutation and the forward-substitution vector. Allocate once per
/// analysis, reuse across every Newton iteration and timestep.
#[derive(Debug, Clone, Default)]
pub struct LuWorkspace {
    perm: Vec<usize>,
    y: Vec<f64>,
}

impl LuWorkspace {
    /// Creates a workspace for `n×n` systems (grows on demand if a
    /// larger system is solved later).
    pub fn new(n: usize) -> Self {
        Self {
            perm: (0..n).collect(),
            y: vec![0.0; n],
        }
    }

    fn prepare(&mut self, n: usize) {
        self.perm.clear();
        self.perm.extend(0..n);
        self.y.clear();
        self.y.resize(n, 0.0);
    }
}

/// A dense, row-major square matrix.
#[derive(Debug, Clone)]
pub struct DenseMatrix {
    n: usize,
    data: Vec<f64>,
    /// Linear indices written through `set`/`add` since the last full
    /// clear — the stamp pattern. `clear` re-zeroes only these.
    touched: Vec<u32>,
    /// Membership mask for `touched` (one flag per entry).
    touch_mask: Vec<bool>,
    /// An in-place factorisation scribbled over `data` outside the
    /// recorded pattern; the next `clear` must fall back to a full wipe.
    destroyed: bool,
}

impl PartialEq for DenseMatrix {
    fn eq(&self, other: &Self) -> bool {
        // Pattern bookkeeping is an optimisation detail, not value state.
        self.n == other.n && self.data == other.data
    }
}

impl DenseMatrix {
    /// Creates an `n×n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * n],
            touched: Vec::new(),
            touch_mask: vec![false; n * n],
            destroyed: false,
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Returns the entry at (`row`, `col`).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.n && col < self.n, "index out of bounds");
        self.data[row * self.n + col]
    }

    #[inline]
    fn touch(&mut self, idx: usize) {
        if !self.touch_mask[idx] {
            self.touch_mask[idx] = true;
            self.touched.push(idx as u32);
        }
    }

    /// Sets the entry at (`row`, `col`).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.n && col < self.n, "index out of bounds");
        let idx = row * self.n + col;
        self.touch(idx);
        self.data[idx] = value;
    }

    /// Adds `value` to the entry at (`row`, `col`) — the MNA stamp
    /// primitive.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.n && col < self.n, "index out of bounds");
        let idx = row * self.n + col;
        self.touch(idx);
        self.data[idx] += value;
    }

    /// Resets every entry to zero, keeping the allocation — and, after
    /// the first assembly, keeping the recorded stamp pattern so only the
    /// entries actually used are re-zeroed.
    pub fn clear(&mut self) {
        if self.destroyed {
            // An in-place solve scribbled outside the pattern.
            self.data.fill(0.0);
            self.destroyed = false;
        } else {
            for &idx in &self.touched {
                self.data[idx as usize] = 0.0;
            }
        }
    }

    /// Copies another matrix's values into this one (same dimension),
    /// reusing this allocation. Used to preserve the stamped system while
    /// the copy is destroyed by factorisation.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn copy_values_from(&mut self, src: &DenseMatrix) {
        assert_eq!(self.n, src.n, "dimension mismatch");
        self.data.copy_from_slice(&src.data);
        self.destroyed = true;
    }

    /// Solves `A·x = b` in place by LU factorisation with partial
    /// pivoting, allocating a fresh workspace. Destroys the matrix
    /// contents.
    ///
    /// # Errors
    ///
    /// [`SingularPivot`] with the failing elimination column if the
    /// matrix is numerically singular.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n`.
    pub fn solve_in_place(&mut self, b: &mut [f64]) -> Result<(), SingularPivot> {
        let mut ws = LuWorkspace::new(self.n);
        self.solve_in_place_with(b, &mut ws)
    }

    /// [`DenseMatrix::solve_in_place`] with caller-owned scratch — the
    /// zero-allocation hot path.
    ///
    /// # Errors
    ///
    /// [`SingularPivot`] with the failing elimination column if the
    /// matrix is numerically singular.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n`.
    pub fn solve_in_place_with(
        &mut self,
        b: &mut [f64],
        ws: &mut LuWorkspace,
    ) -> Result<(), SingularPivot> {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        self.factorize_with(ws)?;
        self.substitute_with(b, ws);
        Ok(())
    }

    /// Factorises the matrix in place (partial-pivot LU), leaving `L` and
    /// `U` stored under the permutation recorded in `ws`. The factors can
    /// then be applied to any number of right-hand sides with
    /// [`DenseMatrix::substitute_with`] — the modified-Newton reuse path.
    /// Destroys the matrix contents.
    ///
    /// # Errors
    ///
    /// [`SingularPivot`] with the failing elimination column if the
    /// matrix is numerically singular.
    pub fn factorize_with(&mut self, ws: &mut LuWorkspace) -> Result<(), SingularPivot> {
        let n = self.n;
        self.destroyed = true;
        let a = &mut self.data;
        ws.prepare(n);
        let perm = &mut ws.perm;

        for k in 0..n {
            // Partial pivot: largest |a[i][k]| for i >= k.
            let mut pivot_row = k;
            let mut pivot_val = a[perm[k] * n + k].abs();
            for (i, &pi) in perm.iter().enumerate().skip(k + 1) {
                let v = a[pi * n + k].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val < 1e-300 {
                return Err(SingularPivot { pivot: k });
            }
            perm.swap(k, pivot_row);
            let pk = perm[k];
            let diag = a[pk * n + k];
            for &pi in perm.iter().skip(k + 1) {
                let factor = a[pi * n + k] / diag;
                if factor == 0.0 {
                    continue;
                }
                a[pi * n + k] = factor;
                for j in (k + 1)..n {
                    a[pi * n + j] -= factor * a[pk * n + j];
                }
            }
        }
        Ok(())
    }

    /// Applies an existing factorisation (produced by
    /// [`DenseMatrix::factorize_with`] with the *same* workspace) to the
    /// right-hand side `b` in place. Infallible: every pivot was already
    /// checked during factorisation.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n`.
    pub fn substitute_with(&self, b: &mut [f64], ws: &mut LuWorkspace) {
        let n = self.n;
        assert_eq!(b.len(), n, "rhs length mismatch");
        let a = &self.data;
        let LuWorkspace { perm, y } = ws;

        // Forward substitution (L has unit diagonal, stored below).
        for i in 0..n {
            let mut sum = b[perm[i]];
            for (j, &yj) in y.iter().enumerate().take(i) {
                sum -= a[perm[i] * n + j] * yj;
            }
            y[i] = sum;
        }
        // Back substitution.
        for i in (0..n).rev() {
            let mut sum = y[i];
            for j in (i + 1)..n {
                sum -= a[perm[i] * n + j] * b[j];
            }
            b[i] = sum / a[perm[i] * n + i];
        }
    }

    /// Borrows row `r` as a contiguous slice (used by the residual
    /// evaluation of the modified-Newton path).
    ///
    /// # Panics
    ///
    /// Panics if `r >= n`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.n, "row index out of bounds");
        &self.data[r * self.n..(r + 1) * self.n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(mut m: DenseMatrix, mut b: Vec<f64>) -> Result<Vec<f64>, SingularPivot> {
        m.solve_in_place(&mut b).map(|()| b)
    }

    #[test]
    fn solves_identity() {
        let mut m = DenseMatrix::zeros(3);
        for i in 0..3 {
            m.set(i, i, 1.0);
        }
        let x = solve(m, vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_general_system() {
        // [2 1; 1 3] x = [5; 10] → x = [1, 3]
        let mut m = DenseMatrix::zeros(2);
        m.set(0, 0, 2.0);
        m.set(0, 1, 1.0);
        m.set(1, 0, 1.0);
        m.set(1, 1, 3.0);
        let x = solve(m, vec![5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // [0 1; 1 0] x = [2; 3] → x = [3, 2]
        let mut m = DenseMatrix::zeros(2);
        m.set(0, 1, 1.0);
        m.set(1, 0, 1.0);
        let x = solve(m, vec![2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singularity_with_pivot() {
        let mut m = DenseMatrix::zeros(2);
        m.set(0, 0, 1.0);
        m.set(0, 1, 2.0);
        m.set(1, 0, 2.0);
        m.set(1, 1, 4.0);
        // Row 2 = 2×row 1: elimination dies at the second pivot.
        assert_eq!(solve(m, vec![1.0, 2.0]), Err(SingularPivot { pivot: 1 }));
    }

    #[test]
    fn workspace_reuse_matches_fresh_solves() {
        let mut ws = LuWorkspace::new(2);
        for rhs in [[5.0, 10.0], [1.0, 0.0], [-2.0, 7.0]] {
            let mut m = DenseMatrix::zeros(2);
            m.set(0, 0, 2.0);
            m.set(0, 1, 1.0);
            m.set(1, 0, 1.0);
            m.set(1, 1, 3.0);
            let mut b_ws = rhs.to_vec();
            m.solve_in_place_with(&mut b_ws, &mut ws).unwrap();

            let mut m2 = DenseMatrix::zeros(2);
            m2.set(0, 0, 2.0);
            m2.set(0, 1, 1.0);
            m2.set(1, 0, 1.0);
            m2.set(1, 1, 3.0);
            let mut b_fresh = rhs.to_vec();
            m2.solve_in_place(&mut b_fresh).unwrap();
            assert_eq!(b_ws, b_fresh, "workspace reuse must not change results");
        }
    }

    #[test]
    fn pattern_clear_equals_full_clear() {
        // Stamp a pattern, clear, restamp: identical to a fresh matrix.
        let mut m = DenseMatrix::zeros(3);
        m.add(0, 0, 2.0);
        m.add(1, 2, -1.0);
        m.clear();
        m.add(0, 0, 5.0);
        let mut fresh = DenseMatrix::zeros(3);
        fresh.add(0, 0, 5.0);
        assert_eq!(m, fresh);
        // After a destructive solve the full wipe path restores zeros.
        let mut sys = DenseMatrix::zeros(2);
        sys.set(0, 0, 1.0);
        sys.set(0, 1, 3.0);
        sys.set(1, 0, 2.0);
        sys.set(1, 1, 1.0);
        let mut b = vec![1.0, 1.0];
        sys.solve_in_place(&mut b).unwrap();
        sys.clear();
        assert_eq!(sys, DenseMatrix::zeros(2));
    }

    #[test]
    fn copy_values_preserves_source() {
        let mut src = DenseMatrix::zeros(2);
        src.set(0, 0, 4.0);
        src.set(1, 1, 2.0);
        let mut dst = DenseMatrix::zeros(2);
        dst.copy_values_from(&src);
        let mut b = vec![8.0, 4.0];
        dst.solve_in_place(&mut b).unwrap();
        assert_eq!(b, vec![2.0, 2.0]);
        // The source still holds the stamped system.
        assert_eq!(src.get(0, 0), 4.0);
        assert_eq!(src.get(1, 1), 2.0);
    }

    #[test]
    fn add_accumulates_stamps() {
        let mut m = DenseMatrix::zeros(1);
        m.add(0, 0, 1.5);
        m.add(0, 0, 2.5);
        assert_eq!(m.get(0, 0), 4.0);
        m.clear();
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn random_spd_roundtrip() {
        // Build A = Bᵀ·B + I (well conditioned), check A·x recovers b.
        let n = 8;
        let mut seed = 42u64;
        let mut rnd = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as f64 / (1u64 << 31) as f64 - 1.0
        };
        let b_mat: Vec<f64> = (0..n * n).map(|_| rnd()).collect();
        let mut a = DenseMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                let mut s = if i == j { 1.0 } else { 0.0 };
                for k in 0..n {
                    s += b_mat[k * n + i] * b_mat[k * n + j];
                }
                a.set(i, j, s);
            }
        }
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 3.0).collect();
        let mut rhs = vec![0.0; n];
        for (i, r) in rhs.iter_mut().enumerate() {
            for (j, xt) in x_true.iter().enumerate() {
                *r += a.get(i, j) * xt;
            }
        }
        let x = solve(a, rhs).unwrap();
        for (xi, xt) in x.iter().zip(&x_true) {
            assert!((xi - xt).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "rhs length mismatch")]
    fn rejects_wrong_rhs_length() {
        let mut m = DenseMatrix::zeros(2);
        m.set(0, 0, 1.0);
        m.set(1, 1, 1.0);
        let mut b = vec![1.0];
        let _ = m.solve_in_place(&mut b);
    }
}
