//! Dense LU factorisation with partial pivoting.
//!
//! Cell-level netlists have tens of unknowns; a dense solver is both
//! simpler and faster than sparse machinery at that scale.

/// A dense, row-major square matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates an `n×n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Returns the entry at (`row`, `col`).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.n && col < self.n, "index out of bounds");
        self.data[row * self.n + col]
    }

    /// Sets the entry at (`row`, `col`).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.n && col < self.n, "index out of bounds");
        self.data[row * self.n + col] = value;
    }

    /// Adds `value` to the entry at (`row`, `col`) — the MNA stamp
    /// primitive.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.n && col < self.n, "index out of bounds");
        self.data[row * self.n + col] += value;
    }

    /// Resets every entry to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Solves `A·x = b` in place by LU factorisation with partial
    /// pivoting. Destroys the matrix contents. Returns `None` if the
    /// matrix is numerically singular.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n`.
    pub fn solve_in_place(&mut self, b: &mut [f64]) -> Option<()> {
        let n = self.n;
        assert_eq!(b.len(), n, "rhs length mismatch");
        let a = &mut self.data;
        let mut perm: Vec<usize> = (0..n).collect();

        for k in 0..n {
            // Partial pivot: largest |a[i][k]| for i >= k.
            let mut pivot_row = k;
            let mut pivot_val = a[perm[k] * n + k].abs();
            for (i, &pi) in perm.iter().enumerate().skip(k + 1) {
                let v = a[pi * n + k].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val < 1e-300 {
                return None;
            }
            perm.swap(k, pivot_row);
            let pk = perm[k];
            let diag = a[pk * n + k];
            for &pi in perm.iter().skip(k + 1) {
                let factor = a[pi * n + k] / diag;
                if factor == 0.0 {
                    continue;
                }
                a[pi * n + k] = factor;
                for j in (k + 1)..n {
                    a[pi * n + j] -= factor * a[pk * n + j];
                }
            }
        }

        // Forward substitution (L has unit diagonal, stored below).
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[perm[i]];
            for (j, &yj) in y.iter().enumerate().take(i) {
                sum -= a[perm[i] * n + j] * yj;
            }
            y[i] = sum;
        }
        // Back substitution.
        for i in (0..n).rev() {
            let mut sum = y[i];
            for j in (i + 1)..n {
                sum -= a[perm[i] * n + j] * b[j];
            }
            b[i] = sum / a[perm[i] * n + i];
        }
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(mut m: DenseMatrix, mut b: Vec<f64>) -> Option<Vec<f64>> {
        m.solve_in_place(&mut b).map(|_| b)
    }

    #[test]
    fn solves_identity() {
        let mut m = DenseMatrix::zeros(3);
        for i in 0..3 {
            m.set(i, i, 1.0);
        }
        let x = solve(m, vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_general_system() {
        // [2 1; 1 3] x = [5; 10] → x = [1, 3]
        let mut m = DenseMatrix::zeros(2);
        m.set(0, 0, 2.0);
        m.set(0, 1, 1.0);
        m.set(1, 0, 1.0);
        m.set(1, 1, 3.0);
        let x = solve(m, vec![5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // [0 1; 1 0] x = [2; 3] → x = [3, 2]
        let mut m = DenseMatrix::zeros(2);
        m.set(0, 1, 1.0);
        m.set(1, 0, 1.0);
        let x = solve(m, vec![2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singularity() {
        let mut m = DenseMatrix::zeros(2);
        m.set(0, 0, 1.0);
        m.set(0, 1, 2.0);
        m.set(1, 0, 2.0);
        m.set(1, 1, 4.0);
        assert!(solve(m, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn add_accumulates_stamps() {
        let mut m = DenseMatrix::zeros(1);
        m.add(0, 0, 1.5);
        m.add(0, 0, 2.5);
        assert_eq!(m.get(0, 0), 4.0);
        m.clear();
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn random_spd_roundtrip() {
        // Build A = Bᵀ·B + I (well conditioned), check A·x recovers b.
        let n = 8;
        let mut seed = 42u64;
        let mut rnd = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as f64 / (1u64 << 31) as f64 - 1.0
        };
        let b_mat: Vec<f64> = (0..n * n).map(|_| rnd()).collect();
        let mut a = DenseMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                let mut s = if i == j { 1.0 } else { 0.0 };
                for k in 0..n {
                    s += b_mat[k * n + i] * b_mat[k * n + j];
                }
                a.set(i, j, s);
            }
        }
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 3.0).collect();
        let mut rhs = vec![0.0; n];
        for (i, r) in rhs.iter_mut().enumerate() {
            for (j, xt) in x_true.iter().enumerate() {
                *r += a.get(i, j) * xt;
            }
        }
        let x = solve(a, rhs).unwrap();
        for (xi, xt) in x.iter().zip(&x_true) {
            assert!((xi - xt).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "rhs length mismatch")]
    fn rejects_wrong_rhs_length() {
        let mut m = DenseMatrix::zeros(2);
        m.set(0, 0, 1.0);
        m.set(1, 1, 1.0);
        let mut b = vec![1.0];
        let _ = m.solve_in_place(&mut b);
    }
}
