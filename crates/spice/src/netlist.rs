//! Circuit construction: nodes, named elements, voltage sources.

use crate::elements::Element;
use crate::waveform::Waveform;
use crate::SpiceError;
use felim_ferro::MfmCapacitor;
use std::collections::HashMap;

/// Handle to a circuit node. Obtain via [`Circuit::node`]; ground is
/// [`Circuit::GND`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Is this the ground node?
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }

    /// MNA matrix row for this node (`None` for ground).
    pub(crate) fn index(self) -> Option<usize> {
        self.0.checked_sub(1)
    }
}

/// A voltage source entry (kept separate from [`Element`] because each one
/// adds a branch-current unknown to the MNA system).
#[derive(Debug, Clone)]
pub(crate) struct VSource {
    pub name: String,
    pub p: NodeId,
    pub n: NodeId,
    pub wave: Waveform,
}

/// A circuit under construction (and, after analyses, the owner of all
/// element state such as ferroelectric polarization).
///
/// See the [crate documentation](crate) for a complete example.
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    pub(crate) node_names: Vec<String>,
    node_lookup: HashMap<String, NodeId>,
    pub(crate) elements: Vec<(String, Element)>,
    pub(crate) vsources: Vec<VSource>,
    pub(crate) initial_voltages: Vec<(NodeId, f64)>,
}

impl Circuit {
    /// The ground (reference) node.
    pub const GND: NodeId = NodeId(0);

    /// Creates an empty circuit.
    pub fn new() -> Self {
        Self {
            node_names: vec!["0".to_owned()],
            node_lookup: HashMap::new(),
            elements: Vec::new(),
            vsources: Vec::new(),
            initial_voltages: Vec::new(),
        }
    }

    /// Returns the node with the given name, creating it on first use.
    /// The names `"0"` and `"gnd"` always refer to ground.
    pub fn node(&mut self, name: &str) -> NodeId {
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            return Self::GND;
        }
        if let Some(&id) = self.node_lookup.get(name) {
            return id;
        }
        let id = NodeId(self.node_names.len());
        self.node_names.push(name.to_owned());
        self.node_lookup.insert(name.to_owned(), id);
        id
    }

    /// Looks up an existing node by name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            return Some(Self::GND);
        }
        self.node_lookup.get(name).copied()
    }

    /// The name of a node.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id.0]
    }

    /// Number of non-ground nodes.
    pub fn node_count(&self) -> usize {
        self.node_names.len() - 1
    }

    /// Adds a named element.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken by another element.
    pub fn add(&mut self, name: &str, element: Element) {
        assert!(
            self.elements.iter().all(|(n, _)| n != name),
            "duplicate element name `{name}`"
        );
        self.elements.push((name.to_owned(), element));
    }

    /// Adds an independent voltage source driving `p` relative to `n`.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken by another voltage source.
    pub fn add_vsource(&mut self, name: &str, p: NodeId, n: NodeId, wave: Waveform) {
        assert!(
            self.vsources.iter().all(|v| v.name != name),
            "duplicate voltage source name `{name}`"
        );
        self.vsources.push(VSource {
            name: name.to_owned(),
            p,
            n,
            wave,
        });
    }

    /// Replaces the waveform of an existing voltage source.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::NotFound`] if no source has that name.
    pub fn set_vsource(&mut self, name: &str, wave: Waveform) -> Result<(), SpiceError> {
        match self.vsources.iter_mut().find(|v| v.name == name) {
            Some(v) => {
                v.wave = wave;
                Ok(())
            }
            None => Err(SpiceError::NotFound {
                name: name.to_owned(),
            }),
        }
    }

    /// The current waveform of a named voltage source.
    pub fn vsource_waveform(&self, name: &str) -> Option<Waveform> {
        self.vsources
            .iter()
            .find(|v| v.name == name)
            .map(|v| v.wave.clone())
    }

    /// Sets an initial node voltage used when initialising a transient
    /// analysis (a `.ic` directive).
    pub fn set_initial_voltage(&mut self, node: NodeId, volts: f64) {
        self.initial_voltages.push((node, volts));
    }

    /// Immutable access to a named element.
    pub fn element(&self, name: &str) -> Option<&Element> {
        self.elements
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, e)| e)
    }

    /// Mutable access to a named element (e.g. to rewrite a ferroelectric
    /// capacitor's state between analyses).
    pub fn element_mut(&mut self, name: &str) -> Option<&mut Element> {
        self.elements
            .iter_mut()
            .find(|(n, _)| n == name)
            .map(|(_, e)| e)
    }

    /// The ferroelectric capacitor inside element `name`, if that element
    /// is a [`Element::FeCap`].
    pub fn fe_capacitor(&self, name: &str) -> Option<&MfmCapacitor> {
        match self.element(name)? {
            Element::FeCap { cap, .. } => Some(cap),
            _ => None,
        }
    }

    /// Mutable variant of [`Circuit::fe_capacitor`].
    pub fn fe_capacitor_mut(&mut self, name: &str) -> Option<&mut MfmCapacitor> {
        match self.element_mut(name)? {
            Element::FeCap { cap, .. } => Some(cap),
            _ => None,
        }
    }

    /// Total number of MNA unknowns (node voltages + source currents).
    pub(crate) fn unknowns(&self) -> usize {
        self.node_count() + self.vsources.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_aliases() {
        let mut c = Circuit::new();
        assert_eq!(c.node("0"), Circuit::GND);
        assert_eq!(c.node("gnd"), Circuit::GND);
        assert_eq!(c.node("GND"), Circuit::GND);
        assert!(Circuit::GND.is_ground());
    }

    #[test]
    fn nodes_are_interned() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        assert_ne!(a, b);
        assert_eq!(c.node("a"), a);
        assert_eq!(c.node_count(), 2);
        assert_eq!(c.node_name(a), "a");
        assert_eq!(c.find_node("b"), Some(b));
        assert_eq!(c.find_node("zzz"), None);
    }

    #[test]
    fn unknown_count_includes_sources() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource("V1", a, Circuit::GND, Waveform::dc(1.0));
        assert_eq!(c.unknowns(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate element name")]
    fn rejects_duplicate_element_names() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add("R1", Element::resistor(a, Circuit::GND, 1.0));
        c.add("R1", Element::resistor(a, Circuit::GND, 2.0));
    }

    #[test]
    #[should_panic(expected = "duplicate voltage source")]
    fn rejects_duplicate_vsource_names() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource("V1", a, Circuit::GND, Waveform::dc(1.0));
        c.add_vsource("V1", a, Circuit::GND, Waveform::dc(2.0));
    }

    #[test]
    fn set_vsource_replaces_waveform() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource("V1", a, Circuit::GND, Waveform::dc(1.0));
        c.set_vsource("V1", Waveform::dc(2.0)).unwrap();
        assert!(matches!(
            c.set_vsource("V2", Waveform::dc(0.0)),
            Err(SpiceError::NotFound { .. })
        ));
    }

    #[test]
    fn fe_capacitor_accessor_discriminates() {
        use felim_ferro::MfmParams;
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add("R1", Element::resistor(a, Circuit::GND, 1.0));
        c.add(
            "CF1",
            Element::fe_capacitor(a, Circuit::GND, &MfmParams::scaled_45nm()),
        );
        assert!(c.fe_capacitor("CF1").is_some());
        assert!(c.fe_capacitor("R1").is_none());
        assert!(c.fe_capacitor("nope").is_none());
        assert!(c.fe_capacitor_mut("CF1").is_some());
    }
}
