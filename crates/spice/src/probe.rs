//! Simulation results: waveform traces and measurement helpers.

use crate::waveform::Waveform;
use crate::SpiceError;

/// A recorded transient waveform set.
///
/// Node voltages, voltage-source branch currents, and element branch
/// currents are recorded at every accepted time step.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    pub(crate) times: Vec<f64>,
    pub(crate) node_names: Vec<String>,
    pub(crate) node_data: Vec<Vec<f64>>,
    pub(crate) source_names: Vec<String>,
    pub(crate) source_currents: Vec<Vec<f64>>,
    pub(crate) element_names: Vec<String>,
    pub(crate) element_currents: Vec<Vec<f64>>,
}

impl Trace {
    /// The time axis in seconds.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Is the trace empty?
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Names of all recorded nodes, in recording order.
    pub fn node_names(&self) -> &[String] {
        &self.node_names
    }

    /// Names of all recorded voltage sources, in recording order.
    pub fn source_names(&self) -> &[String] {
        &self.source_names
    }

    /// Names of all recorded elements, in recording order.
    pub fn element_names(&self) -> &[String] {
        &self.element_names
    }

    /// Voltage samples of the named node (`"0"`/`"gnd"` returns zeros).
    pub fn voltage(&self, node: &str) -> Option<&[f64]> {
        self.node_names
            .iter()
            .position(|n| n == node)
            .map(|i| self.node_data[i].as_slice())
    }

    /// Branch current of the named voltage source (positive = current
    /// flowing from `p` through the source to `n`).
    pub fn source_current(&self, source: &str) -> Option<&[f64]> {
        self.source_names
            .iter()
            .position(|n| n == source)
            .map(|i| self.source_currents[i].as_slice())
    }

    /// Branch current of the named element (p→n, drain→source for
    /// MOSFETs).
    pub fn element_current(&self, element: &str) -> Option<&[f64]> {
        self.element_names
            .iter()
            .position(|n| n == element)
            .map(|i| self.element_currents[i].as_slice())
    }

    /// Linear interpolation of a node voltage at time `t_s`.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::NotFound`] for an unknown node.
    pub fn voltage_at(&self, node: &str, t_s: f64) -> Result<f64, SpiceError> {
        let data = self.voltage(node).ok_or_else(|| SpiceError::NotFound {
            name: node.to_owned(),
        })?;
        Ok(interp(&self.times, data, t_s))
    }

    /// Linear interpolation of an element current at time `t_s`.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::NotFound`] for an unknown element.
    pub fn element_current_at(&self, element: &str, t_s: f64) -> Result<f64, SpiceError> {
        let data = self
            .element_current(element)
            .ok_or_else(|| SpiceError::NotFound {
                name: element.to_owned(),
            })?;
        Ok(interp(&self.times, data, t_s))
    }

    /// Maximum of a node voltage over the whole trace.
    pub fn max_voltage(&self, node: &str) -> Option<f64> {
        self.voltage(node)?.iter().copied().reduce(f64::max)
    }

    /// Minimum of a node voltage over the whole trace.
    pub fn min_voltage(&self, node: &str) -> Option<f64> {
        self.voltage(node)?.iter().copied().reduce(f64::min)
    }

    /// Final sample of a node voltage.
    pub fn final_voltage(&self, node: &str) -> Option<f64> {
        self.voltage(node)?.last().copied()
    }

    /// Energy delivered by the named voltage source over the whole trace,
    /// in joules: `E = ∫ V(t)·(−i(t)) dt` with trapezoidal integration
    /// (the MNA convention has positive branch current flowing p→n
    /// *inside* the source, so delivered power is `−V·i`).
    ///
    /// Pass the same waveform the source was built with — the trace
    /// records currents, not the drive voltages.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::NotFound`] for an unknown source.
    pub fn source_energy(&self, source: &str, wave: &Waveform) -> Result<f64, SpiceError> {
        let current = self
            .source_current(source)
            .ok_or_else(|| SpiceError::NotFound {
                name: source.to_owned(),
            })?;
        let mut energy = 0.0;
        for k in 1..self.times.len() {
            let dt = self.times[k] - self.times[k - 1];
            let p0 = -wave.at(self.times[k - 1]) * current[k - 1];
            let p1 = -wave.at(self.times[k]) * current[k];
            energy += 0.5 * (p0 + p1) * dt;
        }
        Ok(energy)
    }

    /// First time at which the node voltage crosses `level` in the rising
    /// direction, with linear interpolation.
    pub fn rising_crossing(&self, node: &str, level: f64) -> Option<f64> {
        let data = self.voltage(node)?;
        for i in 1..data.len() {
            if data[i - 1] < level && data[i] >= level {
                let f = (level - data[i - 1]) / (data[i] - data[i - 1]);
                return Some(self.times[i - 1] + f * (self.times[i] - self.times[i - 1]));
            }
        }
        None
    }
}

/// A DC operating point.
#[derive(Debug, Clone, Default)]
pub struct DcPoint {
    pub(crate) node_names: Vec<String>,
    pub(crate) voltages: Vec<f64>,
    pub(crate) source_names: Vec<String>,
    pub(crate) source_currents: Vec<f64>,
}

impl DcPoint {
    /// Voltage of the named node.
    pub fn voltage(&self, node: &str) -> Option<f64> {
        if node == "0" || node.eq_ignore_ascii_case("gnd") {
            return Some(0.0);
        }
        self.node_names
            .iter()
            .position(|n| n == node)
            .map(|i| self.voltages[i])
    }

    /// Branch current of the named voltage source.
    pub fn source_current(&self, source: &str) -> Option<f64> {
        self.source_names
            .iter()
            .position(|n| n == source)
            .map(|i| self.source_currents[i])
    }
}

fn interp(times: &[f64], data: &[f64], t: f64) -> f64 {
    let n = times.len().min(data.len());
    if n == 0 {
        return 0.0;
    }
    if t <= times[0] {
        return data[0];
    }
    for i in 1..n {
        if t <= times[i] {
            let span = times[i] - times[i - 1];
            if span == 0.0 {
                return data[i];
            }
            let f = (t - times[i - 1]) / span;
            return data[i - 1] + f * (data[i] - data[i - 1]);
        }
    }
    data[n - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace {
            times: vec![0.0, 1.0, 2.0],
            node_names: vec!["a".into()],
            node_data: vec![vec![0.0, 1.0, 0.5]],
            source_names: vec!["V1".into()],
            source_currents: vec![vec![0.1, 0.2, 0.3]],
            element_names: vec!["R1".into()],
            element_currents: vec![vec![1.0, 2.0, 3.0]],
        }
    }

    #[test]
    fn lookup_by_name() {
        let t = sample_trace();
        assert_eq!(t.voltage("a").unwrap()[1], 1.0);
        assert!(t.voltage("b").is_none());
        assert_eq!(t.source_current("V1").unwrap()[2], 0.3);
        assert_eq!(t.element_current("R1").unwrap()[0], 1.0);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn interpolation_midpoints_and_clamps() {
        let t = sample_trace();
        assert_eq!(t.voltage_at("a", 0.5).unwrap(), 0.5);
        assert_eq!(t.voltage_at("a", 1.5).unwrap(), 0.75);
        assert_eq!(t.voltage_at("a", -1.0).unwrap(), 0.0);
        assert_eq!(t.voltage_at("a", 99.0).unwrap(), 0.5);
        assert!(t.voltage_at("zzz", 0.0).is_err());
        assert_eq!(t.element_current_at("R1", 0.5).unwrap(), 1.5);
    }

    #[test]
    fn extrema_and_final() {
        let t = sample_trace();
        assert_eq!(t.max_voltage("a"), Some(1.0));
        assert_eq!(t.min_voltage("a"), Some(0.0));
        assert_eq!(t.final_voltage("a"), Some(0.5));
    }

    #[test]
    fn source_energy_integrates_power() {
        // Constant 2 V source delivering a steady −1 mA branch current
        // for 2 s: E = 2 V × 1 mA × 2 s = 4 mJ.
        let t = Trace {
            times: vec![0.0, 1.0, 2.0],
            node_names: vec![],
            node_data: vec![],
            source_names: vec!["V1".into()],
            source_currents: vec![vec![-1e-3, -1e-3, -1e-3]],
            element_names: vec![],
            element_currents: vec![],
        };
        let e = t.source_energy("V1", &Waveform::dc(2.0)).unwrap();
        assert!((e - 4e-3).abs() < 1e-12);
        assert!(t.source_energy("nope", &Waveform::dc(0.0)).is_err());
    }

    #[test]
    fn rising_crossing_interpolates() {
        let t = sample_trace();
        assert_eq!(t.rising_crossing("a", 0.5), Some(0.5));
        assert_eq!(t.rising_crossing("a", 2.0), None);
    }

    #[test]
    fn dc_point_lookup() {
        let p = DcPoint {
            node_names: vec!["x".into()],
            voltages: vec![1.5],
            source_names: vec!["V1".into()],
            source_currents: vec![-1e-3],
        };
        assert_eq!(p.voltage("x"), Some(1.5));
        assert_eq!(p.voltage("gnd"), Some(0.0));
        assert_eq!(p.voltage("nope"), None);
        assert_eq!(p.source_current("V1"), Some(-1e-3));
    }
}
