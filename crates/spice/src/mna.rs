//! Modified-nodal-analysis system assembly.
//!
//! The unknown vector is `[v_1 … v_N, i_V1 … i_VM]`: one voltage per
//! non-ground node followed by one branch current per voltage source.
//! Elements contribute through the `stamp_*` primitives; sign conventions
//! follow standard MNA (currents leaving a node are positive).

use crate::linear::{DenseMatrix, LuWorkspace, SingularPivot};
use crate::netlist::NodeId;

/// Analysis mode passed to element stamps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StampMode {
    /// DC operating point: capacitors open, inductors (none here) short.
    Dc,
    /// Transient step of size `dt`.
    Transient {
        /// Step size in seconds.
        dt: f64,
        /// Trapezoidal (second-order) companion models for linear
        /// capacitors; backward Euler otherwise. State-dependent elements
        /// (the ferroelectric capacitor) always integrate with backward
        /// Euler.
        trapezoidal: bool,
    },
}

/// One recorded stamp primitive. The static half of a stamp split is
/// captured as a sequence of these on the first Newton iteration of a
/// solve and replayed verbatim — identical values, identical order, so
/// the assembled system is byte-exact with a full re-stamp — on every
/// later iteration.
#[derive(Debug, Clone, Copy)]
enum StampOp {
    /// `matrix[row][col] += val`.
    MatAdd { row: u32, col: u32, val: f64 },
    /// `rhs[idx] += val`.
    RhsAdd { idx: u32, val: f64 },
    /// `rhs[idx] = val` (voltage-source rows).
    RhsSet { idx: u32, val: f64 },
}

/// The assembled linear(ised) system `G·x = rhs` for one Newton
/// iteration, together with all factorisation scratch. Allocated **once
/// per analysis** and re-stamped in place every iteration and timestep:
/// the solver hot path performs no heap allocation.
#[derive(Debug)]
pub struct MnaSystem {
    /// Number of non-ground nodes.
    n_nodes: usize,
    /// System matrix (survives each solve; only `factors` is destroyed).
    pub(crate) matrix: DenseMatrix,
    /// Right-hand side.
    pub(crate) rhs: Vec<f64>,
    /// Factorisation buffer: the stamped matrix is copied here and the
    /// LU scribbles over the copy, so the stamp pattern in `matrix`
    /// stays valid for the next pattern-reuse clear.
    factors: DenseMatrix,
    /// Solution buffer (rhs copy, overwritten by the solve).
    x: Vec<f64>,
    /// Pivot permutation + substitution scratch.
    lu: LuWorkspace,
    /// Recorded static-stamp primitives (flat arena).
    ops: Vec<StampOp>,
    /// Per-slot ranges into `ops`, in recording order.
    slots: Vec<(u32, u32)>,
    /// Primitive calls are being appended to `ops`.
    recording: bool,
    /// `factors`/`lu` hold a usable factorisation from a previous solve.
    factors_valid: bool,
}

impl MnaSystem {
    /// Creates a zeroed system for `n_nodes` node voltages and
    /// `n_vsources` source currents.
    pub fn new(n_nodes: usize, n_vsources: usize) -> Self {
        let n = n_nodes + n_vsources;
        felim_telemetry::counter("spice.mna_allocations").inc();
        Self {
            n_nodes,
            matrix: DenseMatrix::zeros(n),
            rhs: vec![0.0; n],
            factors: DenseMatrix::zeros(n),
            x: vec![0.0; n],
            lu: LuWorkspace::new(n),
            ops: Vec::new(),
            slots: Vec::new(),
            recording: false,
            factors_valid: false,
        }
    }

    /// Total unknowns (`n_nodes + n_vsources`).
    pub fn dim(&self) -> usize {
        self.rhs.len()
    }

    /// Clears the system for reassembly, then applies `g_min` from every
    /// node to ground (regularises floating nodes).
    pub fn reset(&mut self, gmin: f64) {
        self.matrix.clear();
        self.rhs.fill(0.0);
        for i in 0..self.n_nodes {
            self.matrix.add(i, i, gmin);
        }
    }

    /// The matrix-add primitive: applies immediately and, while a static
    /// slot is being recorded, logs the operation for replay.
    #[inline]
    fn mat_add(&mut self, row: usize, col: usize, val: f64) {
        self.matrix.add(row, col, val);
        if self.recording {
            self.ops.push(StampOp::MatAdd {
                row: row as u32,
                col: col as u32,
                val,
            });
        }
    }

    /// The rhs-accumulate primitive (recorded like [`Self::mat_add`]).
    #[inline]
    fn rhs_add(&mut self, idx: usize, val: f64) {
        self.rhs[idx] += val;
        if self.recording {
            self.ops.push(StampOp::RhsAdd {
                idx: idx as u32,
                val,
            });
        }
    }

    /// The rhs-assign primitive (recorded like [`Self::mat_add`]).
    #[inline]
    fn rhs_set(&mut self, idx: usize, val: f64) {
        self.rhs[idx] = val;
        if self.recording {
            self.ops.push(StampOp::RhsSet {
                idx: idx as u32,
                val,
            });
        }
    }

    /// Discards all recorded static-stamp slots. Call at the start of
    /// each Newton solve before recording the solve's static pattern.
    pub fn static_log_clear(&mut self) {
        self.ops.clear();
        self.slots.clear();
    }

    /// Runs `f`, stamping into the system as usual while recording every
    /// primitive it emits into a replayable slot. Returns the slot index
    /// (slots are numbered in recording order).
    pub fn record_static<F: FnOnce(&mut MnaSystem)>(&mut self, f: F) -> usize {
        let start = self.ops.len() as u32;
        self.recording = true;
        f(self);
        self.recording = false;
        self.slots.push((start, self.ops.len() as u32));
        self.slots.len() - 1
    }

    /// Replays a recorded slot: the identical primitive sequence with the
    /// identical values, byte-exact with re-running the original stamp —
    /// but without re-evaluating the element model.
    ///
    /// # Panics
    ///
    /// Panics if `slot` was not recorded since the last
    /// [`Self::static_log_clear`].
    pub fn replay_static(&mut self, slot: usize) {
        static STAMP_STATIC_HITS: felim_telemetry::CachedCounter =
            felim_telemetry::CachedCounter::new("spice.stamp_static_hits");
        STAMP_STATIC_HITS.inc();
        let (start, end) = self.slots[slot];
        for i in start as usize..end as usize {
            match self.ops[i] {
                StampOp::MatAdd { row, col, val } => {
                    self.matrix.add(row as usize, col as usize, val);
                }
                StampOp::RhsAdd { idx, val } => self.rhs[idx as usize] += val,
                StampOp::RhsSet { idx, val } => self.rhs[idx as usize] = val,
            }
        }
    }

    /// Stamps a conductance `g` between nodes `p` and `n`.
    pub fn stamp_conductance(&mut self, p: NodeId, n: NodeId, g: f64) {
        if let Some(i) = p.index() {
            self.mat_add(i, i, g);
        }
        if let Some(j) = n.index() {
            self.mat_add(j, j, g);
        }
        if let (Some(i), Some(j)) = (p.index(), n.index()) {
            self.mat_add(i, j, -g);
            self.mat_add(j, i, -g);
        }
    }

    /// Stamps a current source of `amps` injected into `p` and drawn out
    /// of `n`.
    pub fn stamp_current(&mut self, p: NodeId, n: NodeId, amps: f64) {
        if let Some(i) = p.index() {
            self.rhs_add(i, amps);
        }
        if let Some(j) = n.index() {
            self.rhs_add(j, -amps);
        }
    }

    /// Stamps the `.ic` pinning network on one (non-ground) node: a
    /// conductance `g` to ground pulling the node toward `volts`.
    pub fn stamp_ic(&mut self, node: usize, g: f64, volts: f64) {
        self.mat_add(node, node, g);
        self.rhs_add(node, g * volts);
    }

    /// Stamps a linearised MOSFET: drain current `ids` at the candidate
    /// operating point `(vgs, vds)` with transconductance `gm` and output
    /// conductance `gds`. Current flows d→s.
    #[allow(clippy::too_many_arguments)]
    pub fn stamp_transconductance(
        &mut self,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        ids: f64,
        gm: f64,
        gds: f64,
        vgs: f64,
        vds: f64,
    ) {
        // i_d(v) ≈ I0 + gm·(vg − vs) + gds·(vd − vs)
        let i0 = ids - gm * vgs - gds * vds;
        let (di, gi, si) = (d.index(), g.index(), s.index());
        // KCL at drain: +i_d.
        if let (Some(r), Some(c)) = (di, gi) {
            self.mat_add(r, c, gm);
        }
        if let Some(r) = di {
            self.mat_add(r, r, gds);
        }
        if let (Some(r), Some(c)) = (di, si) {
            self.mat_add(r, c, -(gm + gds));
        }
        if let Some(i) = di {
            self.rhs_add(i, -i0);
        }
        // KCL at source: −i_d.
        if let (Some(r), Some(c)) = (si, gi) {
            self.mat_add(r, c, -gm);
        }
        if let (Some(r), Some(c)) = (si, di) {
            self.mat_add(r, c, -gds);
        }
        if let Some(r) = si {
            self.mat_add(r, r, gm + gds);
        }
        if let Some(i) = si {
            self.rhs_add(i, i0);
        }
    }

    /// Stamps voltage source `k` (0-based among sources) forcing
    /// `v(p) − v(n) = volts`, with its branch-current unknown.
    pub fn stamp_vsource(&mut self, k: usize, p: NodeId, n: NodeId, volts: f64) {
        let row = self.n_nodes + k;
        if let Some(i) = p.index() {
            self.mat_add(row, i, 1.0);
            self.mat_add(i, row, 1.0);
        }
        if let Some(j) = n.index() {
            self.mat_add(row, j, -1.0);
            self.mat_add(j, row, -1.0);
        }
        self.rhs_set(row, volts);
    }

    /// Solves the assembled system, returning the unknown vector (a view
    /// into the internal solution buffer, valid until the next stamp or
    /// solve). The stamped matrix itself is preserved — the LU runs on
    /// the internal factor buffer — so the system can be pattern-cleared
    /// and re-stamped without reallocation.
    ///
    /// # Errors
    ///
    /// [`SingularPivot`] naming the dead elimination column if the
    /// system is numerically singular.
    pub fn solve(&mut self) -> Result<&[f64], SingularPivot> {
        LU_FACTORIZATIONS.inc();
        self.factors.copy_values_from(&self.matrix);
        self.x.copy_from_slice(&self.rhs);
        self.factors.solve_in_place_with(&mut self.x, &mut self.lu)?;
        self.factors_valid = true;
        Ok(&self.x)
    }

    /// Factorises the currently stamped matrix into the internal factor
    /// buffer without solving anything, making the factors available for
    /// [`Self::solve_with_stored_factors`].
    ///
    /// # Errors
    ///
    /// [`SingularPivot`] as for [`Self::solve`].
    pub fn factorize(&mut self) -> Result<(), SingularPivot> {
        LU_FACTORIZATIONS.inc();
        self.factors.copy_values_from(&self.matrix);
        self.factors.factorize_with(&mut self.lu)?;
        self.factors_valid = true;
        Ok(())
    }

    /// Whether a factorisation from a previous [`Self::solve`] or
    /// [`Self::factorize`] is available for reuse.
    pub fn has_factors(&self) -> bool {
        self.factors_valid
    }

    /// Applies the stored LU factors to `b` in place (modified Newton:
    /// the factors may be stale relative to the currently stamped
    /// matrix, which is exactly the point — the caller trades a fresh
    /// factorisation for a quasi-Newton step).
    ///
    /// # Panics
    ///
    /// Panics if no factorisation is available ([`Self::has_factors`]).
    pub fn solve_with_stored_factors(&mut self, b: &mut [f64]) {
        assert!(self.factors_valid, "no stored LU factors to reuse");
        self.factors.substitute_with(b, &mut self.lu);
    }

    /// Writes the KCL residual `rhs − A·x` of the currently stamped
    /// linearisation into `out`. For the companion-model stamps used
    /// here this is exactly the negated sum of element currents at the
    /// candidate solution `x`, so driving it to zero solves the step.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `out` have the wrong length.
    pub fn residual_into(&self, x: &[f64], out: &mut [f64]) {
        let n = self.rhs.len();
        assert_eq!(x.len(), n, "solution length mismatch");
        assert_eq!(out.len(), n, "residual length mismatch");
        for (i, o) in out.iter_mut().enumerate() {
            let row = self.matrix.row(i);
            let mut acc = 0.0;
            for (a, xj) in row.iter().zip(x) {
                acc += a * xj;
            }
            *o = self.rhs[i] - acc;
        }
    }
}

static LU_FACTORIZATIONS: felim_telemetry::CachedCounter =
    felim_telemetry::CachedCounter::new("spice.lu_factorizations");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn voltage_divider() {
        // V1 = 2 V into R1 (1k) — R2 (1k) to ground: middle node at 1 V.
        let a = NodeId(1);
        let b = NodeId(2);
        let mut sys = MnaSystem::new(2, 1);
        sys.reset(1e-12);
        sys.stamp_conductance(a, b, 1e-3);
        sys.stamp_conductance(b, NodeId(0), 1e-3);
        sys.stamp_vsource(0, a, NodeId(0), 2.0);
        let x = sys.solve().unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 1.0).abs() < 1e-6);
        // Source current: 2 V across 2 kΩ = 1 mA flowing out of the source.
        assert!((x[2] + 1e-3).abs() < 1e-6);
    }

    #[test]
    fn current_source_into_resistor() {
        let a = NodeId(1);
        let mut sys = MnaSystem::new(1, 0);
        sys.reset(1e-12);
        sys.stamp_conductance(a, NodeId(0), 1e-3);
        sys.stamp_current(a, NodeId(0), 1e-3);
        let x = sys.solve().unwrap();
        assert!((x[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn gmin_rescues_floating_node() {
        // No element touches the single node — without gmin this would be
        // singular.
        let mut sys = MnaSystem::new(1, 0);
        sys.reset(1e-12);
        let x = sys.solve().unwrap();
        assert_eq!(x[0], 0.0);
    }

    #[test]
    fn singular_without_gmin_names_the_pivot() {
        let mut sys = MnaSystem::new(1, 0);
        sys.reset(0.0);
        assert_eq!(sys.solve().unwrap_err().pivot, 0);
    }

    #[test]
    fn restamping_after_solve_matches_fresh_system() {
        // The zero-allocation path: one system, two different circuits.
        let a = NodeId(1);
        let mut sys = MnaSystem::new(1, 0);
        sys.reset(1e-12);
        sys.stamp_conductance(a, NodeId(0), 1e-3);
        sys.stamp_current(a, NodeId(0), 1e-3);
        let first = sys.solve().unwrap().to_vec();
        assert!((first[0] - 1.0).abs() < 1e-6);
        // Re-stamp in place with doubled conductance.
        sys.reset(1e-12);
        sys.stamp_conductance(a, NodeId(0), 2e-3);
        sys.stamp_current(a, NodeId(0), 1e-3);
        let second = sys.solve().unwrap().to_vec();
        assert!((second[0] - 0.5).abs() < 1e-6, "got {}", second[0]);
        // And solving the identical system twice is bit-identical.
        sys.reset(1e-12);
        sys.stamp_conductance(a, NodeId(0), 2e-3);
        sys.stamp_current(a, NodeId(0), 1e-3);
        assert_eq!(sys.solve().unwrap(), &second[..]);
    }
}
