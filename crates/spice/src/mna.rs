//! Modified-nodal-analysis system assembly.
//!
//! The unknown vector is `[v_1 … v_N, i_V1 … i_VM]`: one voltage per
//! non-ground node followed by one branch current per voltage source.
//! Elements contribute through the `stamp_*` primitives; sign conventions
//! follow standard MNA (currents leaving a node are positive).

use crate::linear::{DenseMatrix, LuWorkspace, SingularPivot};
use crate::netlist::NodeId;

/// Analysis mode passed to element stamps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StampMode {
    /// DC operating point: capacitors open, inductors (none here) short.
    Dc,
    /// Transient step of size `dt`.
    Transient {
        /// Step size in seconds.
        dt: f64,
        /// Trapezoidal (second-order) companion models for linear
        /// capacitors; backward Euler otherwise. State-dependent elements
        /// (the ferroelectric capacitor) always integrate with backward
        /// Euler.
        trapezoidal: bool,
    },
}

/// The assembled linear(ised) system `G·x = rhs` for one Newton
/// iteration, together with all factorisation scratch. Allocated **once
/// per analysis** and re-stamped in place every iteration and timestep:
/// the solver hot path performs no heap allocation.
#[derive(Debug)]
pub struct MnaSystem {
    /// Number of non-ground nodes.
    n_nodes: usize,
    /// System matrix (survives each solve; only `factors` is destroyed).
    pub(crate) matrix: DenseMatrix,
    /// Right-hand side.
    pub(crate) rhs: Vec<f64>,
    /// Factorisation buffer: the stamped matrix is copied here and the
    /// LU scribbles over the copy, so the stamp pattern in `matrix`
    /// stays valid for the next pattern-reuse clear.
    factors: DenseMatrix,
    /// Solution buffer (rhs copy, overwritten by the solve).
    x: Vec<f64>,
    /// Pivot permutation + substitution scratch.
    lu: LuWorkspace,
}

impl MnaSystem {
    /// Creates a zeroed system for `n_nodes` node voltages and
    /// `n_vsources` source currents.
    pub fn new(n_nodes: usize, n_vsources: usize) -> Self {
        let n = n_nodes + n_vsources;
        felim_telemetry::counter("spice.mna_allocations").inc();
        Self {
            n_nodes,
            matrix: DenseMatrix::zeros(n),
            rhs: vec![0.0; n],
            factors: DenseMatrix::zeros(n),
            x: vec![0.0; n],
            lu: LuWorkspace::new(n),
        }
    }

    /// Total unknowns (`n_nodes + n_vsources`).
    pub fn dim(&self) -> usize {
        self.rhs.len()
    }

    /// Clears the system for reassembly, then applies `g_min` from every
    /// node to ground (regularises floating nodes).
    pub fn reset(&mut self, gmin: f64) {
        self.matrix.clear();
        self.rhs.fill(0.0);
        for i in 0..self.n_nodes {
            self.matrix.add(i, i, gmin);
        }
    }

    /// Stamps a conductance `g` between nodes `p` and `n`.
    pub fn stamp_conductance(&mut self, p: NodeId, n: NodeId, g: f64) {
        if let Some(i) = p.index() {
            self.matrix.add(i, i, g);
        }
        if let Some(j) = n.index() {
            self.matrix.add(j, j, g);
        }
        if let (Some(i), Some(j)) = (p.index(), n.index()) {
            self.matrix.add(i, j, -g);
            self.matrix.add(j, i, -g);
        }
    }

    /// Stamps a current source of `amps` injected into `p` and drawn out
    /// of `n`.
    pub fn stamp_current(&mut self, p: NodeId, n: NodeId, amps: f64) {
        if let Some(i) = p.index() {
            self.rhs[i] += amps;
        }
        if let Some(j) = n.index() {
            self.rhs[j] -= amps;
        }
    }

    /// Stamps a linearised MOSFET: drain current `ids` at the candidate
    /// operating point `(vgs, vds)` with transconductance `gm` and output
    /// conductance `gds`. Current flows d→s.
    #[allow(clippy::too_many_arguments)]
    pub fn stamp_transconductance(
        &mut self,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        ids: f64,
        gm: f64,
        gds: f64,
        vgs: f64,
        vds: f64,
    ) {
        // i_d(v) ≈ I0 + gm·(vg − vs) + gds·(vd − vs)
        let i0 = ids - gm * vgs - gds * vds;
        let add = |m: &mut DenseMatrix, r: Option<usize>, c: Option<usize>, val: f64| {
            if let (Some(r), Some(c)) = (r, c) {
                m.add(r, c, val);
            }
        };
        let (di, gi, si) = (d.index(), g.index(), s.index());
        // KCL at drain: +i_d.
        add(&mut self.matrix, di, gi, gm);
        add(&mut self.matrix, di, di, gds);
        add(&mut self.matrix, di, si, -(gm + gds));
        if let Some(i) = di {
            self.rhs[i] -= i0;
        }
        // KCL at source: −i_d.
        add(&mut self.matrix, si, gi, -gm);
        add(&mut self.matrix, si, di, -gds);
        add(&mut self.matrix, si, si, gm + gds);
        if let Some(i) = si {
            self.rhs[i] += i0;
        }
    }

    /// Stamps voltage source `k` (0-based among sources) forcing
    /// `v(p) − v(n) = volts`, with its branch-current unknown.
    pub fn stamp_vsource(&mut self, k: usize, p: NodeId, n: NodeId, volts: f64) {
        let row = self.n_nodes + k;
        if let Some(i) = p.index() {
            self.matrix.add(row, i, 1.0);
            self.matrix.add(i, row, 1.0);
        }
        if let Some(j) = n.index() {
            self.matrix.add(row, j, -1.0);
            self.matrix.add(j, row, -1.0);
        }
        self.rhs[row] = volts;
    }

    /// Solves the assembled system, returning the unknown vector (a view
    /// into the internal solution buffer, valid until the next stamp or
    /// solve). The stamped matrix itself is preserved — the LU runs on
    /// the internal factor buffer — so the system can be pattern-cleared
    /// and re-stamped without reallocation.
    ///
    /// # Errors
    ///
    /// [`SingularPivot`] naming the dead elimination column if the
    /// system is numerically singular.
    pub fn solve(&mut self) -> Result<&[f64], SingularPivot> {
        static LU_FACTORIZATIONS: felim_telemetry::CachedCounter =
            felim_telemetry::CachedCounter::new("spice.lu_factorizations");
        LU_FACTORIZATIONS.inc();
        self.factors.copy_values_from(&self.matrix);
        self.x.copy_from_slice(&self.rhs);
        self.factors.solve_in_place_with(&mut self.x, &mut self.lu)?;
        Ok(&self.x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn voltage_divider() {
        // V1 = 2 V into R1 (1k) — R2 (1k) to ground: middle node at 1 V.
        let a = NodeId(1);
        let b = NodeId(2);
        let mut sys = MnaSystem::new(2, 1);
        sys.reset(1e-12);
        sys.stamp_conductance(a, b, 1e-3);
        sys.stamp_conductance(b, NodeId(0), 1e-3);
        sys.stamp_vsource(0, a, NodeId(0), 2.0);
        let x = sys.solve().unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 1.0).abs() < 1e-6);
        // Source current: 2 V across 2 kΩ = 1 mA flowing out of the source.
        assert!((x[2] + 1e-3).abs() < 1e-6);
    }

    #[test]
    fn current_source_into_resistor() {
        let a = NodeId(1);
        let mut sys = MnaSystem::new(1, 0);
        sys.reset(1e-12);
        sys.stamp_conductance(a, NodeId(0), 1e-3);
        sys.stamp_current(a, NodeId(0), 1e-3);
        let x = sys.solve().unwrap();
        assert!((x[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn gmin_rescues_floating_node() {
        // No element touches the single node — without gmin this would be
        // singular.
        let mut sys = MnaSystem::new(1, 0);
        sys.reset(1e-12);
        let x = sys.solve().unwrap();
        assert_eq!(x[0], 0.0);
    }

    #[test]
    fn singular_without_gmin_names_the_pivot() {
        let mut sys = MnaSystem::new(1, 0);
        sys.reset(0.0);
        assert_eq!(sys.solve().unwrap_err().pivot, 0);
    }

    #[test]
    fn restamping_after_solve_matches_fresh_system() {
        // The zero-allocation path: one system, two different circuits.
        let a = NodeId(1);
        let mut sys = MnaSystem::new(1, 0);
        sys.reset(1e-12);
        sys.stamp_conductance(a, NodeId(0), 1e-3);
        sys.stamp_current(a, NodeId(0), 1e-3);
        let first = sys.solve().unwrap().to_vec();
        assert!((first[0] - 1.0).abs() < 1e-6);
        // Re-stamp in place with doubled conductance.
        sys.reset(1e-12);
        sys.stamp_conductance(a, NodeId(0), 2e-3);
        sys.stamp_current(a, NodeId(0), 1e-3);
        let second = sys.solve().unwrap().to_vec();
        assert!((second[0] - 0.5).abs() < 1e-6, "got {}", second[0]);
        // And solving the identical system twice is bit-identical.
        sys.reset(1e-12);
        sys.stamp_conductance(a, NodeId(0), 2e-3);
        sys.stamp_current(a, NodeId(0), 1e-3);
        assert_eq!(sys.solve().unwrap(), &second[..]);
    }
}
