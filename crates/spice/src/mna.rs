//! Modified-nodal-analysis system assembly.
//!
//! The unknown vector is `[v_1 … v_N, i_V1 … i_VM]`: one voltage per
//! non-ground node followed by one branch current per voltage source.
//! Elements contribute through the `stamp_*` primitives; sign conventions
//! follow standard MNA (currents leaving a node are positive).

use crate::linear::DenseMatrix;
use crate::netlist::NodeId;

/// Analysis mode passed to element stamps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StampMode {
    /// DC operating point: capacitors open, inductors (none here) short.
    Dc,
    /// Transient step of size `dt`.
    Transient {
        /// Step size in seconds.
        dt: f64,
        /// Trapezoidal (second-order) companion models for linear
        /// capacitors; backward Euler otherwise. State-dependent elements
        /// (the ferroelectric capacitor) always integrate with backward
        /// Euler.
        trapezoidal: bool,
    },
}

/// The assembled linear(ised) system `G·x = rhs` for one Newton iteration.
#[derive(Debug)]
pub struct MnaSystem {
    /// Number of non-ground nodes.
    n_nodes: usize,
    /// System matrix.
    pub(crate) matrix: DenseMatrix,
    /// Right-hand side.
    pub(crate) rhs: Vec<f64>,
}

impl MnaSystem {
    /// Creates a zeroed system for `n_nodes` node voltages and
    /// `n_vsources` source currents.
    pub fn new(n_nodes: usize, n_vsources: usize) -> Self {
        let n = n_nodes + n_vsources;
        Self {
            n_nodes,
            matrix: DenseMatrix::zeros(n),
            rhs: vec![0.0; n],
        }
    }

    /// Clears the system for reassembly, then applies `g_min` from every
    /// node to ground (regularises floating nodes).
    pub fn reset(&mut self, gmin: f64) {
        self.matrix.clear();
        self.rhs.fill(0.0);
        for i in 0..self.n_nodes {
            self.matrix.add(i, i, gmin);
        }
    }

    /// Stamps a conductance `g` between nodes `p` and `n`.
    pub fn stamp_conductance(&mut self, p: NodeId, n: NodeId, g: f64) {
        if let Some(i) = p.index() {
            self.matrix.add(i, i, g);
        }
        if let Some(j) = n.index() {
            self.matrix.add(j, j, g);
        }
        if let (Some(i), Some(j)) = (p.index(), n.index()) {
            self.matrix.add(i, j, -g);
            self.matrix.add(j, i, -g);
        }
    }

    /// Stamps a current source of `amps` injected into `p` and drawn out
    /// of `n`.
    pub fn stamp_current(&mut self, p: NodeId, n: NodeId, amps: f64) {
        if let Some(i) = p.index() {
            self.rhs[i] += amps;
        }
        if let Some(j) = n.index() {
            self.rhs[j] -= amps;
        }
    }

    /// Stamps a linearised MOSFET: drain current `ids` at the candidate
    /// operating point `(vgs, vds)` with transconductance `gm` and output
    /// conductance `gds`. Current flows d→s.
    #[allow(clippy::too_many_arguments)]
    pub fn stamp_transconductance(
        &mut self,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        ids: f64,
        gm: f64,
        gds: f64,
        vgs: f64,
        vds: f64,
    ) {
        // i_d(v) ≈ I0 + gm·(vg − vs) + gds·(vd − vs)
        let i0 = ids - gm * vgs - gds * vds;
        let add = |m: &mut DenseMatrix, r: Option<usize>, c: Option<usize>, val: f64| {
            if let (Some(r), Some(c)) = (r, c) {
                m.add(r, c, val);
            }
        };
        let (di, gi, si) = (d.index(), g.index(), s.index());
        // KCL at drain: +i_d.
        add(&mut self.matrix, di, gi, gm);
        add(&mut self.matrix, di, di, gds);
        add(&mut self.matrix, di, si, -(gm + gds));
        if let Some(i) = di {
            self.rhs[i] -= i0;
        }
        // KCL at source: −i_d.
        add(&mut self.matrix, si, gi, -gm);
        add(&mut self.matrix, si, di, -gds);
        add(&mut self.matrix, si, si, gm + gds);
        if let Some(i) = si {
            self.rhs[i] += i0;
        }
    }

    /// Stamps voltage source `k` (0-based among sources) forcing
    /// `v(p) − v(n) = volts`, with its branch-current unknown.
    pub fn stamp_vsource(&mut self, k: usize, p: NodeId, n: NodeId, volts: f64) {
        let row = self.n_nodes + k;
        if let Some(i) = p.index() {
            self.matrix.add(row, i, 1.0);
            self.matrix.add(i, row, 1.0);
        }
        if let Some(j) = n.index() {
            self.matrix.add(row, j, -1.0);
            self.matrix.add(j, row, -1.0);
        }
        self.rhs[row] = volts;
    }

    /// Solves the assembled system, returning the unknown vector, or
    /// `None` if singular. Consumes the assembled matrix contents.
    pub fn solve(&mut self) -> Option<Vec<f64>> {
        felim_telemetry::counter("spice.lu_factorizations").inc();
        let mut x = self.rhs.clone();
        self.matrix.solve_in_place(&mut x)?;
        Some(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn voltage_divider() {
        // V1 = 2 V into R1 (1k) — R2 (1k) to ground: middle node at 1 V.
        let a = NodeId(1);
        let b = NodeId(2);
        let mut sys = MnaSystem::new(2, 1);
        sys.reset(1e-12);
        sys.stamp_conductance(a, b, 1e-3);
        sys.stamp_conductance(b, NodeId(0), 1e-3);
        sys.stamp_vsource(0, a, NodeId(0), 2.0);
        let x = sys.solve().unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 1.0).abs() < 1e-6);
        // Source current: 2 V across 2 kΩ = 1 mA flowing out of the source.
        assert!((x[2] + 1e-3).abs() < 1e-6);
    }

    #[test]
    fn current_source_into_resistor() {
        let a = NodeId(1);
        let mut sys = MnaSystem::new(1, 0);
        sys.reset(1e-12);
        sys.stamp_conductance(a, NodeId(0), 1e-3);
        sys.stamp_current(a, NodeId(0), 1e-3);
        let x = sys.solve().unwrap();
        assert!((x[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn gmin_rescues_floating_node() {
        // No element touches the single node — without gmin this would be
        // singular.
        let mut sys = MnaSystem::new(1, 0);
        sys.reset(1e-12);
        let x = sys.solve().unwrap();
        assert_eq!(x[0], 0.0);
    }

    #[test]
    fn singular_without_gmin() {
        let mut sys = MnaSystem::new(1, 0);
        sys.reset(0.0);
        assert!(sys.solve().is_none());
    }
}
