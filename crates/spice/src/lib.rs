//! # felim-spice — a compact MNA circuit simulator
//!
//! The paper validates the 2T-nC FeRAM cell with Cadence Spectre netlist
//! simulations (45 nm PTM transistors + a calibrated MFM capacitor model).
//! This crate is the from-scratch substitute: a modified-nodal-analysis
//! (MNA) nonlinear circuit simulator with
//!
//! * dense LU linear solves (cell netlists are tens of nodes),
//! * Newton–Raphson DC operating point with g_min regularisation,
//! * backward-Euler transient integration with adaptive step halving,
//! * elements: resistor, capacitor, voltage/current sources (DC/pulse/PWL),
//!   an EKV-style MOSFET (continuous from subthreshold to saturation,
//!   fit to 45 nm PTM-class parameters), a smooth voltage-controlled
//!   switch, and the multi-domain ferroelectric capacitor from
//!   [`felim_ferro`].
//!
//! ## Quickstart — an RC step response
//!
//! ```
//! use felim_spice::{Circuit, Element, TransientSpec, Waveform};
//!
//! # fn main() -> Result<(), felim_spice::SpiceError> {
//! let mut ckt = Circuit::new();
//! let vin = ckt.node("in");
//! let vout = ckt.node("out");
//! ckt.add_vsource("V1", vin, Circuit::GND, Waveform::step(1.0, 0.0));
//! ckt.add("R1", Element::resistor(vin, vout, 1e3));
//! ckt.add("C1", Element::capacitor(vout, Circuit::GND, 1e-9));
//!
//! let tr = ckt.transient(&TransientSpec::new(10e-6, 10e-9))?;
//! let v_end = *tr.voltage("out").unwrap().last().unwrap();
//! assert!((v_end - 1.0).abs() < 1e-3); // fully charged after 10 RC
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod elements;
pub mod emit;
pub mod linear;
pub mod mna;
pub mod mosfet;
pub mod netlist;
pub mod parse;
pub mod probe;
pub mod sweep;
pub mod waveform;

pub use analysis::{AdaptiveSpec, NewtonPolicy, SolverDiagnostics, TransientSpec};
pub use elements::{Element, SwitchParams};
pub use mosfet::{MosfetParams, MosfetType};
pub use netlist::{Circuit, NodeId};
pub use parse::{parse_netlist, ParsedNetlist};
pub use probe::{DcPoint, Trace};
pub use waveform::Waveform;

use std::fmt;

/// Thermal voltage kT/q at 300 K, in volts.
pub const THERMAL_VOLTAGE_300K: f64 = 0.025852;

/// Error type for netlist construction and simulation failures.
#[derive(Debug, Clone, PartialEq)]
pub enum SpiceError {
    /// Newton–Raphson failed to converge.
    NoConvergence {
        /// Analysis that failed ("dc" or "transient").
        analysis: &'static str,
        /// Simulation time at failure (0 for DC).
        time_s: f64,
        /// Solver effort spent before giving up.
        diagnostics: SolverDiagnostics,
    },
    /// The MNA matrix was singular (floating node or short loop).
    SingularMatrix {
        /// Simulation time at failure (0 for DC).
        time_s: f64,
        /// 0-based elimination column where the pivot vanished: the
        /// unknown (node voltage, then source currents in declaration
        /// order) the system carries no information about.
        pivot: usize,
    },
    /// A named element or node was not found.
    NotFound {
        /// The missing name.
        name: String,
    },
    /// An element was given a non-physical parameter.
    BadParameter {
        /// Description of the problem.
        what: String,
    },
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiceError::NoConvergence {
                analysis,
                time_s,
                diagnostics,
            } => {
                write!(
                    f,
                    "{analysis} analysis failed to converge at t = {time_s:e} s \
                     ({} Newton iterations, {} accepted / {} rejected / \
                     {} LTE-rejected steps, worst residual {:e}, \
                     min accepted dt {:e} s)",
                    diagnostics.newton_iterations,
                    diagnostics.accepted_steps,
                    diagnostics.rejected_steps,
                    diagnostics.lte_rejections,
                    diagnostics.worst_residual,
                    diagnostics.min_dt_s
                )
            }
            SpiceError::SingularMatrix { time_s, pivot } => {
                write!(
                    f,
                    "singular MNA matrix at t = {time_s:e} s \
                     (no pivot for unknown {pivot} — floating node or source loop?)"
                )
            }
            SpiceError::NotFound { name } => write!(f, "no element or node named `{name}`"),
            SpiceError::BadParameter { what } => write!(f, "bad parameter: {what}"),
        }
    }
}

impl std::error::Error for SpiceError {}
