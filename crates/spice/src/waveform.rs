//! Source waveforms: DC, step, rectangular pulse trains, and
//! piecewise-linear (PWL) sequences.

use serde::{Deserialize, Serialize};

/// A time-dependent source value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Waveform {
    /// Constant value.
    Dc(f64),
    /// Piecewise-linear: `(time, value)` pairs with linear interpolation,
    /// clamped at both ends. Points must be sorted by time.
    Pwl(Vec<(f64, f64)>),
    /// Periodic rectangular pulse.
    Pulse {
        /// Baseline value.
        low: f64,
        /// Plateau value.
        high: f64,
        /// Delay before the first rising edge, in s.
        delay_s: f64,
        /// Rise time, in s.
        rise_s: f64,
        /// Fall time, in s.
        fall_s: f64,
        /// Plateau width, in s.
        width_s: f64,
        /// Period, in s (0 = single pulse).
        period_s: f64,
    },
}

impl Waveform {
    /// Constant waveform.
    pub fn dc(value: f64) -> Self {
        Waveform::Dc(value)
    }

    /// Step from 0 to `value` at `at_s` with a 1 ns edge.
    pub fn step(value: f64, at_s: f64) -> Self {
        Waveform::Pwl(vec![(at_s, 0.0), (at_s + 1e-9, value)])
    }

    /// Single rectangular pulse from 0 to `high` with 1 ns edges.
    pub fn single_pulse(high: f64, delay_s: f64, width_s: f64) -> Self {
        Waveform::Pulse {
            low: 0.0,
            high,
            delay_s,
            rise_s: 1e-9,
            fall_s: 1e-9,
            width_s,
            period_s: 0.0,
        }
    }

    /// Piecewise-linear waveform from `(time, value)` points.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or not sorted by time.
    pub fn pwl(points: Vec<(f64, f64)>) -> Self {
        assert!(!points.is_empty(), "PWL needs at least one point");
        assert!(
            points.windows(2).all(|w| w[0].0 <= w[1].0),
            "PWL points must be sorted by time"
        );
        Waveform::Pwl(points)
    }

    /// The waveform value at time `t_s`.
    pub fn at(&self, t_s: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pwl(points) => {
                // A hand-built (constructor-bypassing) empty PWL reads
                // as 0 V rather than panicking mid-simulation.
                let Some(&(t_first, v_first)) = points.first() else {
                    return 0.0;
                };
                if t_s <= t_first {
                    return v_first;
                }
                for w in points.windows(2) {
                    let ((t0, v0), (t1, v1)) = (w[0], w[1]);
                    if t_s <= t1 {
                        if t1 == t0 {
                            return v1;
                        }
                        return v0 + (v1 - v0) * (t_s - t0) / (t1 - t0);
                    }
                }
                points.last().map_or(0.0, |p| p.1)
            }
            Waveform::Pulse {
                low,
                high,
                delay_s,
                rise_s,
                fall_s,
                width_s,
                period_s,
            } => {
                if t_s < *delay_s {
                    return *low;
                }
                let mut t = t_s - delay_s;
                if *period_s > 0.0 {
                    t %= period_s;
                }
                if t < *rise_s {
                    low + (high - low) * t / rise_s
                } else if t < rise_s + width_s {
                    *high
                } else if t < rise_s + width_s + fall_s {
                    high - (high - low) * (t - rise_s - width_s) / fall_s
                } else {
                    *low
                }
            }
        }
    }

    /// Times at which the waveform has corners — the transient engine
    /// aligns steps to these so edges are never skipped. Only corners in
    /// `[0, t_stop]` are returned.
    pub fn breakpoints(&self, t_stop: f64) -> Vec<f64> {
        match self {
            Waveform::Dc(_) => Vec::new(),
            Waveform::Pwl(points) => points
                .iter()
                .map(|&(t, _)| t)
                .filter(|&t| (0.0..=t_stop).contains(&t))
                .collect(),
            Waveform::Pulse {
                delay_s,
                rise_s,
                fall_s,
                width_s,
                period_s,
                ..
            } => {
                let mut out = Vec::new();
                let mut base = *delay_s;
                loop {
                    for corner in [
                        base,
                        base + rise_s,
                        base + rise_s + width_s,
                        base + rise_s + width_s + fall_s,
                    ] {
                        if corner <= t_stop {
                            out.push(corner);
                        }
                    }
                    if *period_s <= 0.0 || base + period_s > t_stop {
                        break;
                    }
                    base += period_s;
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_flat() {
        let w = Waveform::dc(1.5);
        assert_eq!(w.at(0.0), 1.5);
        assert_eq!(w.at(1e9), 1.5);
        assert!(w.breakpoints(1.0).is_empty());
    }

    #[test]
    fn step_transitions_sharply() {
        let w = Waveform::step(2.0, 1e-6);
        assert_eq!(w.at(0.0), 0.0);
        assert_eq!(w.at(0.99e-6), 0.0);
        assert_eq!(w.at(1.1e-6), 2.0);
        // Midpoint of the 1 ns edge.
        assert!((w.at(1e-6 + 0.5e-9) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = Waveform::pwl(vec![(1.0, 0.0), (2.0, 10.0), (3.0, -10.0)]);
        assert_eq!(w.at(0.0), 0.0); // clamp left
        assert_eq!(w.at(1.5), 5.0);
        assert_eq!(w.at(2.5), 0.0);
        assert_eq!(w.at(99.0), -10.0); // clamp right
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn pwl_rejects_unsorted() {
        let _ = Waveform::pwl(vec![(1.0, 0.0), (0.5, 1.0)]);
    }

    #[test]
    fn single_pulse_shape() {
        let w = Waveform::single_pulse(1.0, 10e-9, 100e-9);
        assert_eq!(w.at(0.0), 0.0);
        assert_eq!(w.at(50e-9), 1.0);
        assert_eq!(w.at(200e-9), 0.0);
    }

    #[test]
    fn periodic_pulse_repeats() {
        let w = Waveform::Pulse {
            low: 0.0,
            high: 1.0,
            delay_s: 0.0,
            rise_s: 1e-9,
            fall_s: 1e-9,
            width_s: 48e-9,
            period_s: 100e-9,
        };
        assert_eq!(w.at(25e-9), 1.0);
        assert_eq!(w.at(75e-9), 0.0);
        assert_eq!(w.at(125e-9), 1.0); // second period
        assert_eq!(w.at(175e-9), 0.0);
    }

    #[test]
    fn breakpoints_cover_edges() {
        let w = Waveform::single_pulse(1.0, 10e-9, 100e-9);
        let bps = w.breakpoints(1e-6);
        let has = |t: f64| bps.iter().any(|&b| (b - t).abs() < 1e-15);
        assert!(has(10e-9));
        assert!(has(11e-9));
        assert!(has(111e-9));
        assert!(has(112e-9));
    }

    #[test]
    fn breakpoints_respect_t_stop() {
        let w = Waveform::single_pulse(1.0, 10e-9, 100e-9);
        let bps = w.breakpoints(50e-9);
        assert!(bps.iter().all(|&t| t <= 50e-9));
        assert!(!bps.is_empty());
    }

    #[test]
    fn periodic_breakpoints_bounded() {
        let w = Waveform::Pulse {
            low: 0.0,
            high: 1.0,
            delay_s: 0.0,
            rise_s: 1e-9,
            fall_s: 1e-9,
            width_s: 8e-9,
            period_s: 20e-9,
        };
        let bps = w.breakpoints(100e-9);
        assert!(bps.len() >= 16);
        assert!(bps.iter().all(|&t| t <= 100e-9));
    }
}
