//! DC parameter sweeps (the `.dc` analysis).

use crate::netlist::Circuit;
use crate::probe::DcPoint;
use crate::waveform::Waveform;
use crate::SpiceError;

/// Evenly spaced sweep points from `from` to `to` inclusive.
///
/// ```
/// let pts = felim_spice::sweep::linspace(0.0, 1.0, 5);
/// assert_eq!(pts, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
/// ```
pub fn linspace(from: f64, to: f64, points: usize) -> Vec<f64> {
    assert!(points >= 2, "a sweep needs at least two points");
    (0..points)
        .map(|i| from + (to - from) * i as f64 / (points - 1) as f64)
        .collect()
}

/// Sweeps the DC value of the named voltage source and solves the
/// operating point at every step, restoring the original waveform
/// afterwards. Returns `(value, operating point)` pairs.
///
/// # Errors
///
/// Propagates [`SpiceError::NotFound`] for an unknown source and any
/// solver failure (the source waveform is still restored).
pub fn dc_sweep(
    circuit: &mut Circuit,
    source: &str,
    values: &[f64],
) -> Result<Vec<(f64, DcPoint)>, SpiceError> {
    let original = circuit
        .vsource_waveform(source)
        .ok_or_else(|| SpiceError::NotFound {
            name: source.to_owned(),
        })?;
    let mut out = Vec::with_capacity(values.len());
    let mut result = Ok(());
    for &v in values {
        circuit.set_vsource(source, Waveform::dc(v))?;
        match circuit.dc_operating_point() {
            Ok(op) => out.push((v, op)),
            Err(e) => {
                result = Err(e);
                break;
            }
        }
    }
    circuit.set_vsource(source, original)?;
    result.map(|_| out)
}

/// Convenience: the (V_GS, I_D) transfer curve of a single MOSFET with
/// the given drain bias — the Fig 4(d) measurement.
///
/// # Errors
///
/// Propagates solver failures.
pub fn mosfet_transfer_curve(
    params: &crate::mosfet::MosfetParams,
    vds: f64,
    vgs_values: &[f64],
) -> Result<Vec<(f64, f64)>, SpiceError> {
    let mut ckt = Circuit::new();
    let d = ckt.node("d");
    let g = ckt.node("g");
    ckt.add_vsource("VD", d, Circuit::GND, Waveform::dc(vds));
    ckt.add_vsource("VG", g, Circuit::GND, Waveform::dc(0.0));
    ckt.add(
        "M1",
        crate::elements::Element::mosfet(d, g, Circuit::GND, params.clone()),
    );
    let points = dc_sweep(&mut ckt, "VG", vgs_values)?;
    Ok(points
        .into_iter()
        .map(|(vgs, op)| (vgs, -op.source_current("VD").unwrap_or(0.0)))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::Element;
    use crate::mosfet::MosfetParams;

    #[test]
    fn linspace_endpoints_and_spacing() {
        let v = linspace(-1.0, 1.0, 3);
        assert_eq!(v, vec![-1.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn linspace_rejects_single_point() {
        let _ = linspace(0.0, 1.0, 1);
    }

    #[test]
    fn sweep_resistive_divider() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, Circuit::GND, Waveform::dc(0.0));
        c.add("R1", Element::resistor(a, b, 1e3));
        c.add("R2", Element::resistor(b, Circuit::GND, 1e3));
        let points = dc_sweep(&mut c, "V1", &linspace(0.0, 2.0, 5)).unwrap();
        assert_eq!(points.len(), 5);
        for (v, op) in &points {
            assert!((op.voltage("b").unwrap() - v / 2.0).abs() < 1e-6);
        }
        // Original waveform restored.
        assert_eq!(c.vsource_waveform("V1"), Some(Waveform::dc(0.0)));
    }

    #[test]
    fn sweep_unknown_source_errors() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource("V1", a, Circuit::GND, Waveform::dc(1.0));
        c.add("R1", Element::resistor(a, Circuit::GND, 1e3));
        assert!(matches!(
            dc_sweep(&mut c, "VX", &[0.0, 1.0]),
            Err(SpiceError::NotFound { .. })
        ));
    }

    #[test]
    fn transfer_curve_is_monotone() {
        let curve =
            mosfet_transfer_curve(&MosfetParams::ptm45_nmos(), 1.0, &linspace(0.0, 1.2, 13))
                .unwrap();
        let mut last = -1.0;
        for (_, id) in &curve {
            assert!(*id >= last, "I_D must grow with V_GS");
            last = *id;
        }
        assert!(curve.last().unwrap().1 > 1e-5, "on current");
    }
}
