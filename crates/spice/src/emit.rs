//! Netlist emission: dumping a [`Circuit`] back to the text card format
//! of [`crate::parse`], so programmatically-built testbenches can be
//! saved, diffed and re-simulated.
//!
//! Emission is lossy only where the in-memory model is richer than the
//! card format (custom MOSFET parameter sets map to the nearest named
//! model; ferroelectric capacitors to the nearest preset; switches to the
//! default `SW` model).

use crate::elements::Element;
use crate::mosfet::{MosfetParams, MosfetType};
use crate::netlist::Circuit;
use crate::waveform::Waveform;
use std::fmt::Write as _;

/// Renders a waveform as a source specification.
fn emit_waveform(w: &Waveform) -> String {
    match w {
        Waveform::Dc(v) => format!("DC {v}"),
        Waveform::Pulse {
            low,
            high,
            delay_s,
            rise_s,
            fall_s,
            width_s,
            period_s,
        } => format!("PULSE({low} {high} {delay_s} {rise_s} {fall_s} {width_s} {period_s})"),
        Waveform::Pwl(points) => {
            let body: Vec<String> = points.iter().map(|(t, v)| format!("{t} {v}")).collect();
            format!("PWL({})", body.join(" "))
        }
    }
}

/// The nearest named MOSFET model for emission.
fn mosfet_model_name(p: &MosfetParams) -> &'static str {
    match p.mos_type {
        MosfetType::Pmos => "PMOS",
        MosfetType::Nmos => {
            if (p.subthreshold_swing_mv_dec() - 110.0).abs() < 5.0 {
                "FABNMOS"
            } else {
                "NMOS"
            }
        }
    }
}

impl Circuit {
    /// Emits the circuit as a parseable netlist (see [`crate::parse`]).
    ///
    /// The optional `title` becomes the leading comment line. `.ic`
    /// directives are included; analysis directives are the caller's to
    /// append.
    pub fn to_netlist_string(&self, title: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "* {title}");
        for v in &self.vsources {
            let _ = writeln!(
                out,
                "{} {} {} {}",
                v.name,
                self.node_name(v.p),
                self.node_name(v.n),
                emit_waveform(&v.wave)
            );
        }
        for (name, e) in &self.elements {
            let line = match e {
                Element::Resistor { p, n, ohms } => {
                    format!(
                        "{name} {} {} {ohms}",
                        self.node_name(*p),
                        self.node_name(*n)
                    )
                }
                Element::Capacitor { p, n, farads, .. } => {
                    format!(
                        "{name} {} {} {farads}",
                        self.node_name(*p),
                        self.node_name(*n)
                    )
                }
                Element::CurrentSource { p, n, wave } => format!(
                    "{name} {} {} {}",
                    self.node_name(*p),
                    self.node_name(*n),
                    emit_waveform(wave)
                ),
                Element::Mosfet {
                    d, g, s, params, ..
                } => format!(
                    "{name} {} {} {} {}",
                    self.node_name(*d),
                    self.node_name(*g),
                    self.node_name(*s),
                    mosfet_model_name(params)
                ),
                Element::FeCap { p, n, cap, .. } => {
                    let preset = if cap.params().area_m2 > 1e-12 {
                        "FABRICATED"
                    } else {
                        "SCALED"
                    };
                    format!(
                        "{name} {} {} FECAP {preset}",
                        self.node_name(*p),
                        self.node_name(*n)
                    )
                }
                Element::Switch { p, n, ctrl, .. } => format!(
                    "{name} {} {} {} SW",
                    self.node_name(*p),
                    self.node_name(*n),
                    self.node_name(*ctrl)
                ),
            };
            let _ = writeln!(out, "{line}");
        }
        for (node, volts) in &self.initial_voltages {
            let _ = writeln!(out, ".ic v({})={volts}", self.node_name(*node));
        }
        let _ = writeln!(out, ".end");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_netlist;
    use crate::{Element, TransientSpec};
    use felim_ferro::MfmParams;

    #[test]
    fn emitted_netlist_reparses_and_solves_identically() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource("V1", a, Circuit::GND, Waveform::dc(2.0));
        ckt.add("R1", Element::resistor(a, b, 1e3));
        ckt.add("R2", Element::resistor(b, Circuit::GND, 3e3));

        let text = ckt.to_netlist_string("divider");
        let reparsed = parse_netlist(&text).unwrap();
        assert_eq!(reparsed.title.as_deref(), Some("divider"));
        let op1 = ckt.dc_operating_point().unwrap();
        let op2 = reparsed.circuit.dc_operating_point().unwrap();
        assert!((op1.voltage("b").unwrap() - op2.voltage("b").unwrap()).abs() < 1e-12);
    }

    #[test]
    fn roundtrips_sources_and_transients() {
        let mut ckt = Circuit::new();
        let a = ckt.node("in");
        let b = ckt.node("out");
        ckt.add_vsource(
            "V1",
            a,
            Circuit::GND,
            Waveform::single_pulse(1.0, 10e-9, 100e-9),
        );
        ckt.add("R1", Element::resistor(a, b, 1e3));
        ckt.add("C1", Element::capacitor(b, Circuit::GND, 1e-10));
        ckt.set_initial_voltage(b, 0.25);

        let text = ckt.to_netlist_string("rc pulse");
        assert!(text.contains("PULSE("));
        assert!(text.contains(".ic v(out)=0.25"));

        let mut reparsed = parse_netlist(&text).unwrap().circuit;
        let spec = TransientSpec::new(400e-9, 2e-9);
        let t1 = ckt.transient(&spec).unwrap();
        let t2 = reparsed.transient(&spec).unwrap();
        for &t in [50e-9, 100e-9, 300e-9].iter() {
            let v1 = t1.voltage_at("out", t).unwrap();
            let v2 = t2.voltage_at("out", t).unwrap();
            assert!((v1 - v2).abs() < 1e-9, "t={t}: {v1} vs {v2}");
        }
    }

    #[test]
    fn roundtrips_mosfets_switches_and_fecaps() {
        let mut ckt = Circuit::new();
        let d = ckt.node("d");
        let g = ckt.node("g");
        let p = ckt.node("p");
        let sn = ckt.node("sn");
        let ctl = ckt.node("ctl");
        ckt.add_vsource("VD", d, Circuit::GND, Waveform::dc(1.0));
        ckt.add_vsource("VG", g, Circuit::GND, Waveform::dc(1.0));
        ckt.add_vsource("VP", p, Circuit::GND, Waveform::dc(0.0));
        ckt.add_vsource("VC", ctl, Circuit::GND, Waveform::dc(1.0));
        ckt.add(
            "M1",
            Element::mosfet(d, g, Circuit::GND, crate::MosfetParams::ptm45_nmos()),
        );
        ckt.add(
            "M2",
            Element::mosfet(d, g, Circuit::GND, crate::MosfetParams::fabricated_nmos()),
        );
        ckt.add(
            "S1",
            Element::switch(d, sn, ctl, crate::SwitchParams::default()),
        );
        ckt.add(
            "XFE1",
            Element::fe_capacitor(p, sn, &MfmParams::scaled_45nm()),
        );

        let text = ckt.to_netlist_string("cell-ish");
        assert!(text.contains("M1 d g 0 NMOS"));
        assert!(text.contains("M2 d g 0 FABNMOS"));
        assert!(text.contains("S1 d sn ctl SW"));
        assert!(text.contains("XFE1 p sn FECAP SCALED"));
        let reparsed = parse_netlist(&text).unwrap();
        assert!(reparsed.circuit.fe_capacitor("XFE1").is_some());
        // Both solve to the same operating point.
        let op1 = ckt.dc_operating_point().unwrap();
        let op2 = reparsed.circuit.dc_operating_point().unwrap();
        assert!((op1.voltage("sn").unwrap() - op2.voltage("sn").unwrap()).abs() < 1e-6);
    }
}
