//! Circuit elements and their MNA stamps.

use crate::mna::{MnaSystem, StampMode};
use crate::mosfet::MosfetParams;
use crate::netlist::NodeId;
use crate::waveform::Waveform;
use felim_ferro::{MfmCapacitor, MfmParams};

/// Parameters of a smooth voltage-controlled switch.
///
/// The conductance transitions from `g_off` to `g_on` as the control-node
/// voltage crosses `threshold_v`, over a width of `transition_v` (a logistic
/// ramp — keeps Newton–Raphson well behaved).
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchParams {
    /// On conductance in S.
    pub g_on: f64,
    /// Off conductance in S.
    pub g_off: f64,
    /// Control threshold in V.
    pub threshold_v: f64,
    /// Transition width in V.
    pub transition_v: f64,
}

impl Default for SwitchParams {
    fn default() -> Self {
        Self {
            g_on: 1e-3,
            g_off: 1e-12,
            threshold_v: 0.5,
            transition_v: 0.05,
        }
    }
}

impl SwitchParams {
    /// Conductance at control voltage `vc`.
    ///
    /// Interpolates between `g_off` and `g_on` geometrically (log-space)
    /// along a logistic ramp, so the off state genuinely reaches `g_off`
    /// rather than a slowly-decaying linear tail.
    pub fn conductance(&self, vc: f64) -> f64 {
        let x = (vc - self.threshold_v) / self.transition_v;
        let s = 1.0 / (1.0 + (-x).exp());
        self.g_off.powf(1.0 - s) * self.g_on.powf(s)
    }
}

/// A two- or three-terminal circuit element.
///
/// Construct via the associated functions ([`Element::resistor`],
/// [`Element::capacitor`], …); the enum is public so cell libraries can
/// pattern-match on element state after a simulation.
// Variant sizes differ widely (FeCap carries a whole domain bank), but
// circuits hold a handful of elements in one short Vec — boxing the big
// variants would cost an indirection in the solver's per-iteration stamp
// loop for no measurable memory win.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Element {
    /// Linear resistor.
    Resistor {
        /// Positive terminal.
        p: NodeId,
        /// Negative terminal.
        n: NodeId,
        /// Resistance in Ω.
        ohms: f64,
    },
    /// Linear capacitor (backward-Euler or trapezoidal companion in
    /// transient, open in DC).
    Capacitor {
        /// Positive terminal.
        p: NodeId,
        /// Negative terminal.
        n: NodeId,
        /// Capacitance in F.
        farads: f64,
        /// Branch voltage at the last committed step.
        v_prev: f64,
        /// Branch current at the last committed step (trapezoidal
        /// history).
        i_prev: f64,
    },
    /// Independent current source injecting into `p` and out of `n`.
    CurrentSource {
        /// Node receiving the current.
        p: NodeId,
        /// Node sourcing the current.
        n: NodeId,
        /// Source value over time, in A.
        wave: Waveform,
    },
    /// EKV-style MOSFET.
    Mosfet {
        /// Drain.
        d: NodeId,
        /// Gate.
        g: NodeId,
        /// Source.
        s: NodeId,
        /// Compact-model parameters.
        params: MosfetParams,
        /// Gate–source voltage at the last committed step (for the lumped
        /// gate-capacitance companion).
        vgs_prev: f64,
    },
    /// Multi-domain ferroelectric capacitor (see [`felim_ferro`]).
    FeCap {
        /// Positive terminal.
        p: NodeId,
        /// Negative terminal.
        n: NodeId,
        /// Device state.
        cap: MfmCapacitor,
        /// Committed electrode charge, in C.
        q_prev: f64,
        /// Committed branch voltage, in V.
        v_prev: f64,
    },
    /// Smooth voltage-controlled switch.
    Switch {
        /// Positive terminal.
        p: NodeId,
        /// Negative terminal.
        n: NodeId,
        /// Control node.
        ctrl: NodeId,
        /// Switch parameters.
        params: SwitchParams,
    },
}

impl Element {
    /// Linear resistor between `p` and `n`.
    ///
    /// # Panics
    ///
    /// Panics if `ohms` is not strictly positive.
    pub fn resistor(p: NodeId, n: NodeId, ohms: f64) -> Self {
        assert!(ohms > 0.0, "resistance must be positive, got {ohms}");
        Element::Resistor { p, n, ohms }
    }

    /// Linear capacitor between `p` and `n`.
    ///
    /// # Panics
    ///
    /// Panics if `farads` is not strictly positive.
    pub fn capacitor(p: NodeId, n: NodeId, farads: f64) -> Self {
        assert!(farads > 0.0, "capacitance must be positive, got {farads}");
        Element::Capacitor {
            p,
            n,
            farads,
            v_prev: 0.0,
            i_prev: 0.0,
        }
    }

    /// Independent current source injecting into `p`.
    pub fn current_source(p: NodeId, n: NodeId, wave: Waveform) -> Self {
        Element::CurrentSource { p, n, wave }
    }

    /// MOSFET with terminals drain/gate/source.
    pub fn mosfet(d: NodeId, g: NodeId, s: NodeId, params: MosfetParams) -> Self {
        Element::Mosfet {
            d,
            g,
            s,
            params,
            vgs_prev: 0.0,
        }
    }

    /// Fresh ferroelectric capacitor built from device parameters
    /// (all domains in the `'0'`/down state).
    pub fn fe_capacitor(p: NodeId, n: NodeId, params: &MfmParams) -> Self {
        Self::fe_capacitor_with_state(p, n, MfmCapacitor::new(params))
    }

    /// Ferroelectric capacitor adopting an existing device state.
    pub fn fe_capacitor_with_state(p: NodeId, n: NodeId, cap: MfmCapacitor) -> Self {
        let q0 = cap.charge(0.0);
        Element::FeCap {
            p,
            n,
            cap,
            q_prev: q0,
            v_prev: 0.0,
        }
    }

    /// Voltage-controlled switch between `p` and `n`.
    pub fn switch(p: NodeId, n: NodeId, ctrl: NodeId, params: SwitchParams) -> Self {
        Element::Switch { p, n, ctrl, params }
    }

    /// Whether this element's stamp is independent of the candidate
    /// solution `x`. Within one Newton solve the time, step size and
    /// committed histories are all fixed, so these stamps are identical
    /// on every iteration and can be recorded once and replayed.
    pub(crate) fn is_static_stamp(&self) -> bool {
        matches!(
            self,
            Element::Resistor { .. } | Element::Capacitor { .. } | Element::CurrentSource { .. }
        )
    }

    /// Stamps the element's linearised contribution at candidate solution
    /// `x` into the MNA system.
    pub(crate) fn stamp(&self, x: &[f64], sys: &mut MnaSystem, mode: StampMode, time_s: f64) {
        let v = |id: NodeId| id.index().map_or(0.0, |i| x[i]);
        match self {
            Element::Resistor { p, n, ohms } => {
                sys.stamp_conductance(*p, *n, 1.0 / ohms);
            }
            Element::Capacitor {
                p,
                n,
                farads,
                v_prev,
                i_prev,
            } => {
                if let StampMode::Transient { dt, trapezoidal } = mode {
                    if trapezoidal {
                        // i = (2C/dt)(v − v_prev) − i_prev
                        let g = 2.0 * farads / dt;
                        sys.stamp_conductance(*p, *n, g);
                        sys.stamp_current(*p, *n, g * v_prev + i_prev);
                    } else {
                        let g = farads / dt;
                        sys.stamp_conductance(*p, *n, g);
                        sys.stamp_current(*p, *n, g * v_prev);
                    }
                }
            }
            Element::CurrentSource { p, n, wave } => {
                sys.stamp_current(*p, *n, wave.at(time_s));
            }
            Element::Mosfet {
                d,
                g,
                s,
                params,
                vgs_prev,
            } => {
                let vgs = v(*g) - v(*s);
                let vds = v(*d) - v(*s);
                let ids = params.ids(vgs, vds);
                let (gm, gds) = params.derivatives(vgs, vds);
                sys.stamp_transconductance(*d, *g, *s, ids, gm.max(0.0), gds.max(1e-12), vgs, vds);
                if let StampMode::Transient { dt, .. } = mode {
                    // The lumped gate capacitance always integrates with
                    // backward Euler (it is tiny; accuracy is set by the
                    // channel model).
                    if params.gate_capacitance_f > 0.0 {
                        let gc = params.gate_capacitance_f / dt;
                        sys.stamp_conductance(*g, *s, gc);
                        sys.stamp_current(*g, *s, gc * vgs_prev);
                    }
                }
            }
            Element::FeCap {
                p,
                n,
                cap,
                q_prev,
                v_prev,
            } => {
                match mode {
                    StampMode::Dc => {
                        // Open in DC; a tiny conductance keeps the node
                        // bounded (the global g_min covers singularity).
                    }
                    // Backward Euler regardless of the requested method:
                    // the charge model carries internal domain state.
                    StampMode::Transient { dt, .. } => {
                        let vb = v(*p) - v(*n);
                        const H: f64 = 1e-4;
                        // One fused domain sweep for both evaluation
                        // points of the finite-difference conductance.
                        let (q0, q1) = cap.predict_charge_pair(vb, vb + H, dt);
                        let dqdv = ((q1 - q0) / H).max(1e-18);
                        let geq = dqdv / dt;
                        let i_star = (q0 - q_prev) / dt;
                        // Norton: i = i* + geq·(v − v*)  ⇒ source geq·v* − i*.
                        sys.stamp_conductance(*p, *n, geq);
                        sys.stamp_current(*p, *n, geq * vb - i_star);
                        let _ = v_prev;
                    }
                }
            }
            Element::Switch { p, n, ctrl, params } => {
                let gc = params.conductance(v(*ctrl));
                sys.stamp_conductance(*p, *n, gc);
            }
        }
    }

    /// Commits element state after an accepted transient step at converged
    /// solution `x` with step size `dt`.
    pub(crate) fn commit(&mut self, x: &[f64], dt: f64, trapezoidal: bool) {
        let v = |id: NodeId| id.index().map_or(0.0, |i| x[i]);
        match self {
            Element::Capacitor {
                p,
                n,
                farads,
                v_prev,
                i_prev,
            } => {
                let vb = v(*p) - v(*n);
                *i_prev = if trapezoidal {
                    2.0 * *farads / dt * (vb - *v_prev) - *i_prev
                } else {
                    *farads / dt * (vb - *v_prev)
                };
                *v_prev = vb;
            }
            Element::Mosfet { g, s, vgs_prev, .. } => {
                *vgs_prev = v(*g) - v(*s);
            }
            Element::FeCap {
                p,
                n,
                cap,
                q_prev,
                v_prev,
            } => {
                let vb = v(*p) - v(*n);
                cap.apply_voltage(vb, dt);
                *q_prev = cap.charge(vb);
                *v_prev = vb;
            }
            _ => {}
        }
    }

    /// Initialises element history from a DC solution (start of transient).
    pub(crate) fn init_history(&mut self, x: &[f64]) {
        let v = |id: NodeId| id.index().map_or(0.0, |i| x[i]);
        match self {
            Element::Capacitor {
                p,
                n,
                v_prev,
                i_prev,
                ..
            } => {
                *v_prev = v(*p) - v(*n);
                *i_prev = 0.0;
            }
            Element::Mosfet { g, s, vgs_prev, .. } => {
                *vgs_prev = v(*g) - v(*s);
            }
            Element::FeCap {
                p,
                n,
                cap,
                q_prev,
                v_prev,
            } => {
                let vb = v(*p) - v(*n);
                *q_prev = cap.charge(vb);
                *v_prev = vb;
            }
            _ => {}
        }
    }

    /// Branch current (A) flowing p→n (drain→source for MOSFETs) at the
    /// converged solution `x`, for probing. Pass the step size that
    /// produced `x`; reactive elements need it for their companion current.
    pub(crate) fn branch_current(&self, x: &[f64], dt: Option<f64>) -> f64 {
        let v = |id: NodeId| id.index().map_or(0.0, |i| x[i]);
        match self {
            Element::Resistor { p, n, ohms } => (v(*p) - v(*n)) / ohms,
            Element::Capacitor {
                p,
                n,
                farads,
                v_prev,
                ..
            } => match dt {
                Some(dt) => farads * (v(*p) - v(*n) - v_prev) / dt,
                None => 0.0,
            },
            Element::CurrentSource { .. } => 0.0,
            Element::Mosfet {
                d, g, s, params, ..
            } => params.ids(v(*g) - v(*s), v(*d) - v(*s)),
            Element::FeCap {
                p, n, cap, q_prev, ..
            } => match dt {
                Some(dt) => (cap.predict_charge(v(*p) - v(*n), dt) - q_prev) / dt,
                None => 0.0,
            },
            Element::Switch { p, n, ctrl, params } => {
                params.conductance(v(*ctrl)) * (v(*p) - v(*n))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_conductance_transitions() {
        let s = SwitchParams::default();
        assert!(s.conductance(0.0) < 1e-11);
        assert!(s.conductance(1.0) > 0.9e-3);
        // Log-space midpoint: geometric mean of on and off conductance.
        let mid = s.conductance(0.5);
        let geo = (s.g_on * s.g_off).sqrt();
        assert!((mid / geo - 1.0).abs() < 0.05);
    }

    #[test]
    fn switch_conductance_monotone() {
        let s = SwitchParams::default();
        let mut last = 0.0;
        for mv in (-500..1500).step_by(50) {
            let g = s.conductance(mv as f64 / 1000.0);
            assert!(g >= last);
            last = g;
        }
    }

    #[test]
    #[should_panic(expected = "resistance must be positive")]
    fn rejects_zero_resistance() {
        let _ = Element::resistor(NodeId(1), NodeId(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "capacitance must be positive")]
    fn rejects_negative_capacitance() {
        let _ = Element::capacitor(NodeId(1), NodeId(0), -1e-12);
    }
}
