//! SPICE-style netlist parsing.
//!
//! A pragmatic subset of the classic card format, enough to express the
//! paper's cell testbenches as plain text:
//!
//! ```text
//! * 2T-nC read testbench
//! VWBL0 wbl0 0 PULSE(0 0.55 50n 1n 1n 200n 0)
//! VRBL  rbl  0 DC 0.7
//! R1    rsl  0 1k
//! C1    sn   0 3f
//! M1    rbl  sn rsl NMOS
//! XFE0  wbl0 sn FECAP SCALED
//! .ic v(sn)=0
//! .tran 10n 400n
//! .end
//! ```
//!
//! Element cards: `R` resistor, `C` capacitor, `V` source (`DC x`,
//! `PULSE(low high delay rise fall width period)`, `PWL(t1 v1 t2 v2 …)`),
//! `I` current source, `M` MOSFET (`NMOS` / `PMOS` / `FABNMOS`), `S`
//! switch (`SW`), `XFE` ferroelectric capacitor (`FECAP FABRICATED` /
//! `FECAP SCALED`). Directives: `.ic v(node)=value`, `.tran step stop
//! [trap]`, `.end`. `*` or `;` start comments; values accept the usual
//! engineering suffixes (`f p n u m k meg g t`).

use crate::analysis::TransientSpec;
use crate::elements::{Element, SwitchParams};
use crate::mosfet::MosfetParams;
use crate::netlist::Circuit;
use crate::waveform::Waveform;
use felim_ferro::MfmParams;
use std::fmt;

/// A parse failure with its line number (1-based).
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "netlist line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Result of parsing a netlist.
#[derive(Debug)]
pub struct ParsedNetlist {
    /// The assembled circuit.
    pub circuit: Circuit,
    /// The `.tran` directive, if present.
    pub transient: Option<TransientSpec>,
    /// The netlist title (first line if it is a comment).
    pub title: Option<String>,
}

/// Parses an engineering-notation value: `1k`, `3.3u`, `10MEG`, `2f`…
///
/// ```
/// use felim_spice::parse::parse_value;
/// assert_eq!(parse_value("1k").unwrap(), 1e3);
/// assert_eq!(parse_value("10n").unwrap(), 10e-9);
/// assert_eq!(parse_value("2.5meg").unwrap(), 2.5e6);
/// ```
pub fn parse_value(token: &str) -> Result<f64, String> {
    let t = token.trim().to_ascii_lowercase();
    let (num, mult) = if let Some(stripped) = t.strip_suffix("meg") {
        (stripped, 1e6)
    } else if let Some(stripped) = t.strip_suffix('f') {
        (stripped, 1e-15)
    } else if let Some(stripped) = t.strip_suffix('p') {
        (stripped, 1e-12)
    } else if let Some(stripped) = t.strip_suffix('n') {
        (stripped, 1e-9)
    } else if let Some(stripped) = t.strip_suffix('u') {
        (stripped, 1e-6)
    } else if let Some(stripped) = t.strip_suffix('m') {
        (stripped, 1e-3)
    } else if let Some(stripped) = t.strip_suffix('k') {
        (stripped, 1e3)
    } else if let Some(stripped) = t.strip_suffix('g') {
        (stripped, 1e9)
    } else if let Some(stripped) = t.strip_suffix('t') {
        (stripped, 1e12)
    } else {
        (t.as_str(), 1.0)
    };
    num.parse::<f64>()
        .map(|v| v * mult)
        .map_err(|_| format!("cannot parse value `{token}`"))
}

/// Parses a netlist into a circuit plus an optional transient directive.
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line.
pub fn parse_netlist(text: &str) -> Result<ParsedNetlist, ParseError> {
    let mut circuit = Circuit::new();
    let mut transient = None;
    let mut title = None;
    let mut trap = false;

    let err = |line: usize, message: String| ParseError { line, message };

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('*') {
            if lineno == 1 {
                title = Some(comment.trim().to_owned());
            }
            continue;
        }

        // Directives.
        if let Some(rest) = line.strip_prefix('.') {
            let lower = rest.to_ascii_lowercase();
            if lower == "end" {
                break;
            } else if let Some(ic) = lower.strip_prefix("ic ") {
                // .ic v(node)=value
                let ic = ic.trim();
                let inner = ic
                    .strip_prefix("v(")
                    .and_then(|s| s.split_once(')'))
                    .ok_or_else(|| err(lineno, format!("bad .ic syntax `{ic}`")))?;
                let node = circuit.node(inner.0.trim());
                let value = inner
                    .1
                    .trim()
                    .strip_prefix('=')
                    .ok_or_else(|| err(lineno, "missing `=` in .ic".into()))
                    .and_then(|v| parse_value(v).map_err(|m| err(lineno, m)))?;
                circuit.set_initial_voltage(node, value);
            } else if let Some(tran) = lower.strip_prefix("tran ") {
                let parts: Vec<&str> = tran.split_whitespace().collect();
                if parts.len() < 2 {
                    return Err(err(lineno, ".tran needs `step stop`".into()));
                }
                let dt = parse_value(parts[0]).map_err(|m| err(lineno, m))?;
                let stop = parse_value(parts[1]).map_err(|m| err(lineno, m))?;
                trap = parts.get(2).is_some_and(|p| *p == "trap");
                if !(dt > 0.0 && dt <= stop) {
                    return Err(err(
                        lineno,
                        format!(".tran needs 0 < step <= stop, got {dt} {stop}"),
                    ));
                }
                transient = Some(TransientSpec::new(stop, dt));
            } else {
                return Err(err(lineno, format!("unknown directive `.{rest}`")));
            }
            continue;
        }

        // Element cards.
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let Some(&name) = tokens.first() else {
            continue; // blank after comment stripping
        };
        let Some(first) = name.chars().next() else {
            return Err(err(lineno, "empty element name".into()));
        };
        let kind = first.to_ascii_uppercase();
        let need = |n: usize| -> Result<(), ParseError> {
            if tokens.len() < n {
                Err(err(lineno, format!("`{name}` needs at least {n} fields")))
            } else {
                Ok(())
            }
        };
        match kind {
            'R' => {
                need(4)?;
                let (p, n) = (circuit.node(tokens[1]), circuit.node(tokens[2]));
                let ohms = parse_value(tokens[3]).map_err(|m| err(lineno, m))?;
                if ohms <= 0.0 {
                    return Err(err(lineno, "resistance must be positive".into()));
                }
                circuit.add(name, Element::resistor(p, n, ohms));
            }
            'C' => {
                need(4)?;
                let (p, n) = (circuit.node(tokens[1]), circuit.node(tokens[2]));
                let farads = parse_value(tokens[3]).map_err(|m| err(lineno, m))?;
                if farads <= 0.0 {
                    return Err(err(lineno, "capacitance must be positive".into()));
                }
                circuit.add(name, Element::capacitor(p, n, farads));
            }
            'V' | 'I' => {
                need(4)?;
                let (p, n) = (circuit.node(tokens[1]), circuit.node(tokens[2]));
                let spec = tokens[3..].join(" ");
                let wave = parse_waveform(&spec).map_err(|m| err(lineno, m))?;
                if kind == 'V' {
                    circuit.add_vsource(name, p, n, wave);
                } else {
                    circuit.add(name, Element::current_source(p, n, wave));
                }
            }
            'M' => {
                need(5)?;
                let d = circuit.node(tokens[1]);
                let g = circuit.node(tokens[2]);
                let s = circuit.node(tokens[3]);
                let params = match tokens[4].to_ascii_uppercase().as_str() {
                    "NMOS" => MosfetParams::ptm45_nmos(),
                    "PMOS" => MosfetParams::ptm45_pmos(),
                    "FABNMOS" => MosfetParams::fabricated_nmos(),
                    other => return Err(err(lineno, format!("unknown MOSFET model `{other}`"))),
                };
                circuit.add(name, Element::mosfet(d, g, s, params));
            }
            'S' => {
                need(5)?;
                let p = circuit.node(tokens[1]);
                let n = circuit.node(tokens[2]);
                let ctrl = circuit.node(tokens[3]);
                if !tokens[4].eq_ignore_ascii_case("sw") {
                    return Err(err(lineno, format!("unknown switch model `{}`", tokens[4])));
                }
                circuit.add(name, Element::switch(p, n, ctrl, SwitchParams::default()));
            }
            'X' => {
                need(5)?;
                if !tokens[3].eq_ignore_ascii_case("fecap") {
                    return Err(err(lineno, format!("unknown subcircuit `{}`", tokens[3])));
                }
                let p = circuit.node(tokens[1]);
                let n = circuit.node(tokens[2]);
                let params = match tokens[4].to_ascii_uppercase().as_str() {
                    "FABRICATED" => MfmParams::fabricated(),
                    "SCALED" => MfmParams::scaled_45nm(),
                    other => return Err(err(lineno, format!("unknown FECAP preset `{other}`"))),
                };
                circuit.add(name, Element::fe_capacitor(p, n, &params));
            }
            other => {
                return Err(err(lineno, format!("unknown element kind `{other}`")));
            }
        }
    }

    if trap {
        transient = transient.map(|t| t.with_trapezoidal());
    }
    Ok(ParsedNetlist {
        circuit,
        transient,
        title,
    })
}

/// Parses a source specification: `DC x`, `PULSE(...)` or `PWL(...)`.
fn parse_waveform(spec: &str) -> Result<Waveform, String> {
    let s = spec.trim();
    let lower = s.to_ascii_lowercase();
    if let Some(v) = lower.strip_prefix("dc") {
        return parse_value(v.trim()).map(Waveform::dc);
    }
    if lower.starts_with("pulse") {
        let args = paren_args(s)?;
        if args.len() != 7 {
            return Err(format!(
                "PULSE needs 7 arguments (low high delay rise fall width period), got {}",
                args.len()
            ));
        }
        return Ok(Waveform::Pulse {
            low: args[0],
            high: args[1],
            delay_s: args[2],
            rise_s: args[3].max(1e-12),
            fall_s: args[4].max(1e-12),
            width_s: args[5],
            period_s: args[6],
        });
    }
    if lower.starts_with("pwl") {
        let args = paren_args(s)?;
        if args.len() < 2 || args.len() % 2 != 0 {
            return Err("PWL needs an even number of arguments (t v pairs)".into());
        }
        let points: Vec<(f64, f64)> = args.chunks(2).map(|c| (c[0], c[1])).collect();
        if !points.windows(2).all(|w| w[0].0 <= w[1].0) {
            return Err("PWL times must be non-decreasing".into());
        }
        return Ok(Waveform::Pwl(points));
    }
    // A bare number is a DC value.
    parse_value(s).map(Waveform::dc)
}

/// Extracts and parses the parenthesised argument list of `NAME(...)`.
fn paren_args(s: &str) -> Result<Vec<f64>, String> {
    let open = s.find('(').ok_or("missing `(`")?;
    let close = s.rfind(')').ok_or("missing `)`")?;
    s[open + 1..close]
        .split([' ', ','])
        .filter(|t| !t.is_empty())
        .map(parse_value)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_suffixes() {
        assert_eq!(parse_value("100").unwrap(), 100.0);
        assert_eq!(parse_value("1k").unwrap(), 1e3);
        assert_eq!(parse_value("2.2u").unwrap(), 2.2e-6);
        assert!((parse_value("3f").unwrap() - 3e-15).abs() < 1e-27);
        assert_eq!(parse_value("5MEG").unwrap(), 5e6);
        assert_eq!(parse_value("-0.5m").unwrap(), -0.5e-3);
        assert!(parse_value("abc").is_err());
    }

    #[test]
    fn parses_divider_and_solves() {
        let net = "* divider\nV1 a 0 DC 2.0\nR1 a b 1k\nR2 b 0 1k\n.end\n";
        let parsed = parse_netlist(net).unwrap();
        assert_eq!(parsed.title.as_deref(), Some("divider"));
        let op = parsed.circuit.dc_operating_point().unwrap();
        assert!((op.voltage("b").unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn parses_rc_transient_with_directives() {
        let net = "\
* rc
V1 a 0 PWL(0 0 1n 1)
R1 a b 1k
C1 b 0 1n
.ic v(b)=0
.tran 5n 5u
.end
";
        let parsed = parse_netlist(net).unwrap();
        let spec = parsed.transient.expect(".tran parsed");
        assert!((spec.dt_s - 5e-9).abs() < 1e-20);
        assert!((spec.t_stop_s - 5e-6).abs() < 1e-17);
        let mut ckt = parsed.circuit;
        let trace = ckt.transient(&spec).unwrap();
        assert!((trace.final_voltage("b").unwrap() - 1.0).abs() < 1e-2);
    }

    #[test]
    fn parses_pulse_source() {
        let net = "V1 a 0 PULSE(0 1 10n 1n 1n 100n 0)\nR1 a 0 1k\n";
        let parsed = parse_netlist(net).unwrap();
        let w = parsed.circuit.vsource_waveform("V1").unwrap();
        assert_eq!(w.at(50e-9), 1.0);
        assert_eq!(w.at(0.0), 0.0);
    }

    #[test]
    fn parses_mosfet_and_switch_and_fecap() {
        let net = "\
M1 d g 0 NMOS
M2 d2 g 0 FABNMOS
S1 a b ctl SW
XFE1 p sn FECAP SCALED
V1 d 0 DC 1
V2 g 0 DC 1
V3 d2 0 DC 1
V4 a 0 DC 1
V5 ctl 0 DC 1
V6 p 0 DC 0
";
        let parsed = parse_netlist(net).unwrap();
        assert!(parsed.circuit.fe_capacitor("XFE1").is_some());
        let op = parsed.circuit.dc_operating_point().unwrap();
        assert!(op.voltage("b").unwrap() > 0.9, "switch on pulls b up");
    }

    #[test]
    fn trapezoidal_flag_in_tran() {
        let net = "R1 a 0 1k\nV1 a 0 DC 1\n.tran 1n 1u trap\n";
        let parsed = parse_netlist(net).unwrap();
        assert!(parsed.transient.unwrap().trapezoidal);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_netlist("R1 a b 1k\nQ1 x y z\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("unknown element"));

        let e = parse_netlist("R1 a b\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("at least 4"));

        let e = parse_netlist("R1 a b -5\n").unwrap_err();
        assert!(e.message.contains("positive"));

        let e = parse_netlist(".tran 1u 1n\n").unwrap_err();
        assert!(e.message.contains("step <= stop"));

        let e = parse_netlist("V1 a 0 PULSE(1 2 3)\n").unwrap_err();
        assert!(e.message.contains("7 arguments"));

        let e = parse_netlist("M1 a b c BJT\n").unwrap_err();
        assert!(e.message.contains("unknown MOSFET model"));
    }

    #[test]
    fn comments_and_end_are_respected() {
        let net = "\
* title line
; a comment
R1 a 0 1k  ; trailing comment
V1 a 0 DC 1
.end
R_garbage_after_end x y z
";
        let parsed = parse_netlist(net).unwrap();
        let op = parsed.circuit.dc_operating_point().unwrap();
        assert!((op.voltage("a").unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn full_2tnc_read_testbench_from_text() {
        // The module-doc example, end to end: stored '0' read through the
        // parsed netlist shows the high-current QNRO response.
        let net = "\
* 2T-nC read testbench
VWBL0 wbl0 0 PULSE(0 0.55 50n 1n 1n 200n 0)
VRBL  rbl  0 DC 0.7
VRSL  rsl  0 DC 0
C1    sn   0 3f
M1    rbl  sn rsl NMOS
XFE0  wbl0 sn FECAP SCALED
.ic v(sn)=0
.tran 5n 400n
.end
";
        let parsed = parse_netlist(net).unwrap();
        let spec = parsed.transient.unwrap();
        let mut ckt = parsed.circuit;
        // Fresh FECAP is in the '0' (down) state → strong coupling.
        let trace = ckt.transient(&spec).unwrap();
        let v_sn = trace.voltage_at("sn", 200e-9).unwrap();
        assert!(
            v_sn > 0.05,
            "stored-0 read must lift the storage node, got {v_sn}"
        );
    }
}
