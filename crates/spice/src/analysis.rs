//! DC operating point and transient analyses.

use crate::mna::{MnaSystem, StampMode};
use crate::netlist::Circuit;
use crate::probe::{DcPoint, Trace};
use crate::SpiceError;
use felim_telemetry as telemetry;

/// Newton–Raphson controls shared by both analyses.
const MAX_NR_ITERATIONS: usize = 200;
const VOLTAGE_ABSTOL: f64 = 1e-6;
const CURRENT_ABSTOL: f64 = 1e-9;
const NR_DAMPING_V: f64 = 0.5;
const GMIN: f64 = 1e-12;

/// Hot-path counters (no-op ZSTs without the `telemetry` feature).
static LTE_REJECTED_STEPS: telemetry::CachedCounter =
    telemetry::CachedCounter::new("spice.lte_rejected_steps");
static LU_REUSE_HITS: telemetry::CachedCounter =
    telemetry::CachedCounter::new("spice.lu_reuse_hits");
static LU_REFACTORIZATIONS: telemetry::CachedCounter =
    telemetry::CachedCounter::new("spice.lu_refactorizations");

/// Solver effort bookkeeping, accumulated across an analysis run and
/// attached to [`SpiceError::NoConvergence`] so callers can see *how*
/// the solver failed (stalled Newton loop vs. exhausted step retries),
/// not merely that it did.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SolverDiagnostics {
    /// Total Newton–Raphson iterations spent, over all attempted solves.
    pub newton_iterations: u64,
    /// Transient steps that converged and were committed.
    pub accepted_steps: u64,
    /// Transient steps that failed to converge and were retried with a
    /// halved timestep.
    pub rejected_steps: u64,
    /// Largest Newton update remaining at any failed solve (V or A) —
    /// how far from the tolerance the worst stall was.
    pub worst_residual: f64,
    /// Smallest *accepted* timestep (s), seeded from the first accepted
    /// step; 0 if no transient step was accepted (e.g. a DC-only
    /// failure). Attempted-but-rejected steps do not count.
    pub min_dt_s: f64,
    /// Steps that converged but were rejected by the local-truncation-
    /// error controller and retried with a smaller step (only non-zero
    /// when [`TransientSpec::adaptive`] is enabled).
    pub lte_rejections: u64,
}

/// Publishes accumulated solver effort to the metrics registry. Compiles
/// to nothing without the `telemetry` feature.
fn record_solver_telemetry(diag: &SolverDiagnostics) {
    telemetry::counter("spice.newton_iterations").add(diag.newton_iterations);
    telemetry::counter("spice.accepted_steps").add(diag.accepted_steps);
    telemetry::counter("spice.rejected_steps").add(diag.rejected_steps);
    telemetry::counter("spice.solver_runs").inc();
    if diag.worst_residual > 0.0 {
        telemetry::gauge("spice.worst_residual").set(diag.worst_residual);
    }
    telemetry::histogram("spice.newton_iterations_per_run").record(diag.newton_iterations);
}

/// LU-factor handling policy for the transient Newton loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NewtonPolicy {
    /// Re-factorise the Jacobian on every Newton iteration (classic full
    /// Newton–Raphson). The default: bit-identical to the seed engine.
    #[default]
    Full,
    /// Modified Newton: solve delta systems against the previous LU
    /// factors while the update norm is contracting, re-factorising only
    /// on stall. Converged answers satisfy the same tolerances, but the
    /// iteration *path* differs from full Newton, so this is opt-in.
    Modified,
}

/// Local-truncation-error step control (SPICE2-style
/// predictor/corrector), enabled via [`TransientSpec::with_adaptive`].
///
/// The forward-Euler predictor built from committed history is compared
/// against the implicit corrector; the scaled difference estimates the
/// step's truncation error, shrinking `h` at waveform edges and growing
/// it through quiescent plateaus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveSpec {
    /// Relative LTE tolerance on node voltages.
    pub reltol: f64,
    /// Absolute LTE floor on node voltages, in V.
    pub abstol_v: f64,
    /// Maximum step-growth factor per accepted step.
    pub max_growth: f64,
    /// Cap on the step size, as a multiple of [`TransientSpec::dt_s`].
    pub max_step_factor: f64,
    /// Safety factor applied to the ideal step estimate (< 1).
    pub safety: f64,
}

impl Default for AdaptiveSpec {
    fn default() -> Self {
        Self {
            reltol: 1e-3,
            abstol_v: 1e-6,
            max_growth: 2.0,
            max_step_factor: 32.0,
            safety: 0.9,
        }
    }
}

/// Transient analysis configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientSpec {
    /// Stop time in s.
    pub t_stop_s: f64,
    /// Nominal step size in s (adaptively halved on non-convergence).
    pub dt_s: f64,
    /// Conductance used to enforce `.ic` initial voltages during the
    /// initialising DC solve.
    pub ic_conductance_s: f64,
    /// Use trapezoidal (second-order) integration for linear capacitors.
    pub trapezoidal: bool,
    /// Retry budget: total rejected (halved-and-retried) steps allowed
    /// over the whole run before the analysis gives up with
    /// [`SpiceError::NoConvergence`]. The same budget independently
    /// bounds LTE rejections when adaptive stepping is enabled.
    pub max_rejected_steps: u64,
    /// Local-truncation-error step control. `None` (the default) keeps
    /// the fixed-step schedule bit-identical to the seed engine.
    pub adaptive: Option<AdaptiveSpec>,
    /// LU-factor reuse policy for the transient Newton loop.
    pub newton: NewtonPolicy,
}

impl TransientSpec {
    /// A transient from 0 to `t_stop_s` with nominal step `dt_s`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < dt_s <= t_stop_s`.
    pub fn new(t_stop_s: f64, dt_s: f64) -> Self {
        assert!(
            dt_s > 0.0 && dt_s <= t_stop_s,
            "need 0 < dt ({dt_s}) <= t_stop ({t_stop_s})"
        );
        Self {
            t_stop_s,
            dt_s,
            ic_conductance_s: 1e3,
            trapezoidal: false,
            max_rejected_steps: 512,
            adaptive: None,
            newton: NewtonPolicy::Full,
        }
    }

    /// Switches linear capacitors to trapezoidal integration.
    pub fn with_trapezoidal(mut self) -> Self {
        self.trapezoidal = true;
        self
    }

    /// Overrides the rejected-step retry budget.
    pub fn with_max_rejected_steps(mut self, n: u64) -> Self {
        self.max_rejected_steps = n;
        self
    }

    /// Enables LTE-controlled adaptive time stepping.
    pub fn with_adaptive(mut self, adaptive: AdaptiveSpec) -> Self {
        self.adaptive = Some(adaptive);
        self
    }

    /// Overrides the Newton LU-factor policy.
    pub fn with_newton(mut self, newton: NewtonPolicy) -> Self {
        self.newton = newton;
        self
    }
}

impl Circuit {
    /// Solves the DC operating point (capacitors open, sources at t = 0).
    ///
    /// # Errors
    ///
    /// [`SpiceError::NoConvergence`] if Newton–Raphson (with source
    /// stepping fallback) fails; [`SpiceError::SingularMatrix`] for a
    /// structurally defective netlist.
    pub fn dc_operating_point(&self) -> Result<DcPoint, SpiceError> {
        let _span = telemetry::span("spice.dc_operating_point");
        let mut diag = SolverDiagnostics::default();
        let mut sys = MnaSystem::new(self.node_count(), self.vsources.len());
        let result = self.solve_dc_internal(&mut sys, false, &mut diag);
        record_solver_telemetry(&diag);
        let x = result?;
        Ok(self.make_dc_point(&x))
    }

    /// Runs a transient analysis, mutating element state (capacitor
    /// history, ferroelectric polarization) as simulation time advances.
    ///
    /// The run starts from a DC solve honouring any
    /// [`Circuit::set_initial_voltage`] directives; source waveform
    /// corners are always hit exactly; steps are halved (down to
    /// `dt/2²⁰`, within the [`TransientSpec::max_rejected_steps`] retry
    /// budget) when Newton–Raphson stalls. A final failure carries
    /// [`SolverDiagnostics`] describing the effort spent.
    ///
    /// # Errors
    ///
    /// [`SpiceError::NoConvergence`] / [`SpiceError::SingularMatrix`] as
    /// for [`Circuit::dc_operating_point`].
    pub fn transient(&mut self, spec: &TransientSpec) -> Result<Trace, SpiceError> {
        let _span = telemetry::span("spice.transient");
        let mut diag = SolverDiagnostics::default();
        let result = self.transient_inner(spec, &mut diag);
        record_solver_telemetry(&diag);
        result
    }

    fn transient_inner(
        &mut self,
        spec: &TransientSpec,
        diag: &mut SolverDiagnostics,
    ) -> Result<Trace, SpiceError> {
        // One system for the whole analysis: the DC init, every Newton
        // iteration and every timestep re-stamp it in place.
        let mut sys = MnaSystem::new(self.node_count(), self.vsources.len());
        let mut x = self.solve_dc_internal(&mut sys, true, diag)?;
        for (_, e) in &mut self.elements {
            e.init_history(&x);
        }

        // Breakpoints from all source waveforms. Coincident corners are
        // merged with a tolerance *relative to the run length*: an
        // absolute epsilon is simultaneously too coarse for ns-scale runs
        // (merging genuinely distinct corners) and too fine for
        // second-scale ones (keeping sub-ulp ghosts that force fs steps).
        let bp_eps = spec.t_stop_s * 1e-12;
        let mut breakpoints: Vec<f64> = self
            .vsources
            .iter()
            .flat_map(|v| v.wave.breakpoints(spec.t_stop_s))
            .filter(|&t| t > 0.0)
            .collect();
        breakpoints.sort_by(f64::total_cmp);
        breakpoints.dedup_by(|a, b| (*a - *b).abs() < bp_eps);

        let mut trace = self.new_trace();
        self.record(&mut trace, 0.0, &x, None);

        let n_nodes = self.node_count();
        let dt_min = spec.dt_s / (1 << 20) as f64;
        let dt_max = spec
            .adaptive
            .map_or(spec.dt_s, |a| spec.dt_s * a.max_step_factor);
        // Forward-Euler predictor slope from the last *committed* step
        // (None until one transient step has been accepted).
        let mut dxdt: Option<Vec<f64>> = None;
        let mut t = 0.0;
        let mut h = spec.dt_s;
        let mut next_bp = 0usize;
        while t < spec.t_stop_s - 1e-18 {
            while next_bp < breakpoints.len() && breakpoints[next_bp] <= t + bp_eps {
                next_bp += 1;
            }
            let mut t_next = (t + h).min(spec.t_stop_s);
            // Does this step end on a source corner? (Either clipped to
            // it, or landing within the merge tolerance of one.)
            let mut hit_bp = false;
            if next_bp < breakpoints.len() && breakpoints[next_bp] <= t_next + bp_eps {
                if breakpoints[next_bp] < t_next - bp_eps {
                    t_next = breakpoints[next_bp];
                }
                hit_bp = true;
            }
            let dt = t_next - t;
            let mode = StampMode::Transient {
                dt,
                trapezoidal: spec.trapezoidal,
            };
            match self.newton_solve(&mut sys, &x, mode, t_next, spec.newton, diag) {
                Ok(x_new) => {
                    // LTE control: compare the implicit corrector against
                    // the explicit predictor; the scaled gap estimates the
                    // local truncation error of this step.
                    let mut ratio = 0.0_f64;
                    if let (Some(a), Some(d)) = (spec.adaptive.as_ref(), dxdt.as_ref()) {
                        for i in 0..n_nodes {
                            let pred = x[i] + d[i] * dt;
                            let err = 0.5 * (x_new[i] - pred).abs();
                            let scale = a.reltol * x_new[i].abs().max(x[i].abs()) + a.abstol_v;
                            ratio = ratio.max(err / scale);
                        }
                        if ratio > 1.0
                            && dt > dt_min
                            && diag.lte_rejections < spec.max_rejected_steps
                        {
                            // Reject: nothing was committed, so shrinking
                            // the step and retrying is exact. BE's LTE is
                            // O(h²), so the ideal step scales with √ratio.
                            diag.lte_rejections += 1;
                            LTE_REJECTED_STEPS.inc();
                            h = (dt * (a.safety / ratio.sqrt()).max(0.1)).max(dt_min);
                            continue;
                        }
                    }
                    for (_, e) in &mut self.elements {
                        e.commit(&x_new, dt, spec.trapezoidal);
                    }
                    match spec.adaptive.as_ref() {
                        Some(a) => {
                            if hit_bp {
                                // Source corner: the waveform is not
                                // smooth across it, so the polynomial
                                // predictor (and with it the LTE
                                // estimate) is invalid. Restart the
                                // integrator exactly like the dense
                                // engine does — nominal step, no
                                // history — instead of letting a huge
                                // phantom LTE collapse the step to
                                // dt_min at every edge.
                                dxdt = None;
                                h = spec.dt_s;
                            } else {
                                let mut d =
                                    dxdt.take().unwrap_or_else(|| vec![0.0; x.len()]);
                                for (di, (new, old)) in
                                    d.iter_mut().zip(x_new.iter().zip(&x))
                                {
                                    *di = (new - old) / dt;
                                }
                                dxdt = Some(d);
                                // Ideal next step from the LTE estimate,
                                // but never growing more than `max_growth`
                                // past the *nominal* step h (so a
                                // breakpoint-clipped sliver does not
                                // collapse h).
                                let h_ideal = dt * (a.safety / ratio.sqrt());
                                h = h_ideal.min(h * a.max_growth).clamp(dt_min, dt_max);
                            }
                        }
                        None => {
                            if h < spec.dt_s {
                                h = (h * 2.0).min(spec.dt_s);
                            }
                        }
                    }
                    x = x_new;
                    t = t_next;
                    diag.min_dt_s = if diag.accepted_steps == 0 {
                        dt
                    } else {
                        diag.min_dt_s.min(dt)
                    };
                    diag.accepted_steps += 1;
                    self.record(&mut trace, t, &x, Some(dt));
                }
                Err(_) if h > dt_min && diag.rejected_steps < spec.max_rejected_steps => {
                    diag.rejected_steps += 1;
                    h *= 0.5;
                }
                Err(SpiceError::NoConvergence {
                    analysis, time_s, ..
                }) => {
                    // Step floor or retry budget exhausted: surface the
                    // accumulated solver effort with the failure.
                    return Err(SpiceError::NoConvergence {
                        analysis,
                        time_s,
                        diagnostics: *diag,
                    });
                }
                Err(e) => return Err(e),
            }
        }
        Ok(trace)
    }

    fn solve_dc_internal(
        &self,
        sys: &mut MnaSystem,
        with_ic: bool,
        diag: &mut SolverDiagnostics,
    ) -> Result<Vec<f64>, SpiceError> {
        let x0 = vec![0.0; self.unknowns()];
        // Plain Newton first; on failure, source-step from 10 % to 100 %.
        match self.newton_solve_scaled(sys, &x0, 1.0, with_ic, diag) {
            Ok(x) => Ok(x),
            Err(_) => {
                let mut x = x0;
                for step in 1..=10 {
                    let scale = step as f64 / 10.0;
                    x = self.newton_solve_scaled(sys, &x, scale, with_ic, diag)?;
                }
                Ok(x)
            }
        }
    }

    fn newton_solve(
        &self,
        sys: &mut MnaSystem,
        x0: &[f64],
        mode: StampMode,
        time_s: f64,
        newton: NewtonPolicy,
        diag: &mut SolverDiagnostics,
    ) -> Result<Vec<f64>, SpiceError> {
        self.newton_iterate(sys, x0, mode, time_s, 1.0, false, newton, diag)
    }

    fn newton_solve_scaled(
        &self,
        sys: &mut MnaSystem,
        x0: &[f64],
        source_scale: f64,
        with_ic: bool,
        diag: &mut SolverDiagnostics,
    ) -> Result<Vec<f64>, SpiceError> {
        // DC solves (plain and source-stepped) always run full Newton:
        // their Jacobian changes wildly between iterations and the LU is
        // a one-off cost.
        self.newton_iterate(
            sys,
            x0,
            StampMode::Dc,
            0.0,
            source_scale,
            with_ic,
            NewtonPolicy::Full,
            diag,
        )
    }

    /// One Newton–Raphson solve of the (non)linear system at `time_s`.
    ///
    /// Within a solve the step size, source values and element histories
    /// are all fixed, so every stamp that does not depend on the
    /// candidate solution `x` — resistors, linear-capacitor companions,
    /// current sources, the voltage-source rows and the `.ic` pinning
    /// network — is *identical* on every iteration. The first iteration
    /// records those stamps as primitive-operation logs; later iterations
    /// replay them (byte-exact: same values, same order, same slots in
    /// the element sequence) and re-evaluate only the solution-dependent
    /// models (MOSFETs, ferroelectric capacitors, switches).
    #[allow(clippy::too_many_arguments)]
    fn newton_iterate(
        &self,
        sys: &mut MnaSystem,
        x0: &[f64],
        mode: StampMode,
        time_s: f64,
        source_scale: f64,
        with_ic: bool,
        newton: NewtonPolicy,
        diag: &mut SolverDiagnostics,
    ) -> Result<Vec<f64>, SpiceError> {
        let n_nodes = self.node_count();
        let mut x = x0.to_vec();
        let analysis = match mode {
            StampMode::Dc => "dc",
            StampMode::Transient { .. } => "transient",
        };
        // Modified Newton: `delta` doubles as the residual/update buffer;
        // factors stored in `sys` (possibly from a previous timestep) are
        // reused while the update norm contracts.
        let modified = newton == NewtonPolicy::Modified;
        let mut delta_buf = if modified { vec![0.0; x.len()] } else { Vec::new() };
        let mut prev_norm = f64::INFINITY;
        let mut refactor = false;
        sys.static_log_clear();
        let mut recorded = false;
        let mut last_residual: f64 = 0.0;
        for _ in 0..MAX_NR_ITERATIONS {
            diag.newton_iterations += 1;
            sys.reset(GMIN);
            let mut slot = 0usize;
            for (_, e) in &self.elements {
                if e.is_static_stamp() {
                    if recorded {
                        sys.replay_static(slot);
                    } else {
                        sys.record_static(|s| e.stamp(&x, s, mode, time_s));
                    }
                    slot += 1;
                } else {
                    e.stamp(&x, &mut *sys, mode, time_s);
                }
            }
            if recorded {
                sys.replay_static(slot);
            } else {
                sys.record_static(|s| {
                    for (k, v) in self.vsources.iter().enumerate() {
                        s.stamp_vsource(k, v.p, v.n, v.wave.at(time_s) * source_scale);
                    }
                });
            }
            slot += 1;
            if with_ic {
                if recorded {
                    sys.replay_static(slot);
                } else {
                    sys.record_static(|s| {
                        for &(node, volts) in &self.initial_voltages {
                            if let Some(i) = node.index() {
                                s.stamp_ic(i, self.ic_conductance(), volts);
                            }
                        }
                    });
                }
            }
            recorded = true;

            let mut max_dv: f64 = 0.0;
            let mut max_di: f64 = 0.0;
            let mut used_stale = false;
            if modified && sys.has_factors() && !refactor {
                // Quasi-Newton step: exact residual of the fresh
                // linearisation, stale LU factors. The fixed point (zero
                // residual) is unchanged; only the path there differs.
                // Crucially, a small *update* under stale factors proves
                // nothing (a too-stiff stale Jacobian shrinks every
                // delta), so this path converges on the residual itself:
                // node rows are KCL currents, trailing rows are source
                // voltage constraints.
                used_stale = true;
                sys.residual_into(&x, &mut delta_buf);
                let mut r_kcl: f64 = 0.0;
                let mut r_src: f64 = 0.0;
                for (i, r) in delta_buf.iter().enumerate() {
                    if i < n_nodes {
                        r_kcl = r_kcl.max(r.abs());
                    } else {
                        r_src = r_src.max(r.abs());
                    }
                }
                // One order tighter than the update tolerances: a
                // residual of r leaves the solution within ~‖J⁻¹‖·r of
                // the fixed point, and the extra stale iterations this
                // costs are factorisation-free.
                if r_kcl < 0.1 * CURRENT_ABSTOL && r_src < 0.1 * VOLTAGE_ABSTOL {
                    return Ok(x);
                }
                LU_REUSE_HITS.inc();
                sys.solve_with_stored_factors(&mut delta_buf);
                for (i, d) in delta_buf.iter().enumerate() {
                    let mut delta = *d;
                    if i < n_nodes {
                        delta = delta.clamp(-NR_DAMPING_V, NR_DAMPING_V);
                        max_dv = max_dv.max(delta.abs());
                    } else {
                        max_di = max_di.max(delta.abs());
                    }
                    x[i] += delta;
                }
            } else {
                if modified && sys.has_factors() {
                    LU_REFACTORIZATIONS.inc();
                }
                let x_new = sys
                    .solve()
                    .map_err(|s| SpiceError::SingularMatrix {
                        time_s,
                        pivot: s.pivot,
                    })?;
                for i in 0..x.len() {
                    let mut delta = x_new[i] - x[i];
                    if i < n_nodes {
                        delta = delta.clamp(-NR_DAMPING_V, NR_DAMPING_V);
                        max_dv = max_dv.max(delta.abs());
                    } else {
                        max_di = max_di.max(delta.abs());
                    }
                    x[i] += delta;
                }
            }
            // The update-based test is only sound when the step came from
            // a fresh factorisation (a true Newton step); stale-factor
            // iterations return through the residual test above.
            if !used_stale && max_dv < VOLTAGE_ABSTOL && max_di < CURRENT_ABSTOL {
                return Ok(x);
            }
            let norm = max_dv.max(max_di);
            // Stale factors earn their keep only while the update norm
            // contracts; on stall, force a fresh factorisation.
            refactor = modified && norm >= 0.5 * prev_norm;
            prev_norm = norm;
            last_residual = norm;
        }
        diag.worst_residual = diag.worst_residual.max(last_residual);
        Err(SpiceError::NoConvergence {
            analysis,
            time_s,
            diagnostics: *diag,
        })
    }

    fn ic_conductance(&self) -> f64 {
        1e3
    }

    fn new_trace(&self) -> Trace {
        Trace {
            times: Vec::new(),
            node_names: self.node_names[1..].to_vec(),
            node_data: vec![Vec::new(); self.node_count()],
            source_names: self.vsources.iter().map(|v| v.name.clone()).collect(),
            source_currents: vec![Vec::new(); self.vsources.len()],
            element_names: self.elements.iter().map(|(n, _)| n.clone()).collect(),
            element_currents: vec![Vec::new(); self.elements.len()],
        }
    }

    fn record(&self, trace: &mut Trace, t: f64, x: &[f64], dt: Option<f64>) {
        trace.times.push(t);
        let n_nodes = self.node_count();
        for (series, value) in trace.node_data.iter_mut().zip(&x[..n_nodes]) {
            series.push(*value);
        }
        for (series, value) in trace.source_currents.iter_mut().zip(&x[n_nodes..]) {
            series.push(*value);
        }
        for (idx, (_, e)) in self.elements.iter().enumerate() {
            trace.element_currents[idx].push(e.branch_current(x, dt));
        }
    }

    fn make_dc_point(&self, x: &[f64]) -> DcPoint {
        let n_nodes = self.node_count();
        DcPoint {
            node_names: self.node_names[1..].to_vec(),
            voltages: x[..n_nodes].to_vec(),
            source_names: self.vsources.iter().map(|v| v.name.clone()).collect(),
            source_currents: x[n_nodes..].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::{Element, SwitchParams};
    use crate::mosfet::MosfetParams;
    use crate::waveform::Waveform;

    #[test]
    fn dc_voltage_divider() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, Circuit::GND, Waveform::dc(3.0));
        c.add("R1", Element::resistor(a, b, 2e3));
        c.add("R2", Element::resistor(b, Circuit::GND, 1e3));
        let op = c.dc_operating_point().unwrap();
        assert!((op.voltage("b").unwrap() - 1.0).abs() < 1e-6);
        assert!((op.source_current("V1").unwrap() + 1e-3).abs() < 1e-6);
    }

    #[test]
    fn dc_nmos_inverter_rails() {
        // NMOS with 10k pull-up: gate low → out high; gate high → out low.
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let out = c.node("out");
        let gate = c.node("gate");
        c.add_vsource("VDD", vdd, Circuit::GND, Waveform::dc(1.2));
        c.add_vsource("VG", gate, Circuit::GND, Waveform::dc(0.0));
        c.add("RL", Element::resistor(vdd, out, 1e4));
        c.add(
            "M1",
            Element::mosfet(out, gate, Circuit::GND, MosfetParams::ptm45_nmos()),
        );
        let op = c.dc_operating_point().unwrap();
        assert!(op.voltage("out").unwrap() > 1.1, "off transistor → high");

        c.set_vsource("VG", Waveform::dc(1.2)).unwrap();
        let op = c.dc_operating_point().unwrap();
        assert!(op.voltage("out").unwrap() < 0.2, "on transistor → low");
    }

    #[test]
    fn transient_rc_charges_with_correct_tau() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, Circuit::GND, Waveform::step(1.0, 0.0));
        c.add("R1", Element::resistor(a, b, 1e3));
        c.add("C1", Element::capacitor(b, Circuit::GND, 1e-9));
        let tr = c.transient(&TransientSpec::new(5e-6, 5e-9)).unwrap();
        // After 1 τ (1 µs): 1 − 1/e ≈ 0.632.
        let v_tau = tr.voltage_at("b", 1e-6 + 1e-9).unwrap();
        assert!((v_tau - 0.632).abs() < 0.02, "v(τ) = {v_tau}");
        assert!((tr.final_voltage("b").unwrap() - 1.0).abs() < 1e-2);
    }

    #[test]
    fn transient_switch_gates_charging() {
        let mut c = Circuit::new();
        let src = c.node("src");
        let out = c.node("out");
        let ctl = c.node("ctl");
        c.add_vsource("VS", src, Circuit::GND, Waveform::dc(1.0));
        c.add_vsource(
            "VC",
            ctl,
            Circuit::GND,
            Waveform::single_pulse(1.0, 1e-6, 2e-6),
        );
        c.add(
            "S1",
            Element::switch(src, out, ctl, SwitchParams::default()),
        );
        c.add("C1", Element::capacitor(out, Circuit::GND, 1e-12));
        // The floating output would otherwise start at the leakage
        // divider point of the DC init — pin it like a real testbench.
        c.set_initial_voltage(out, 0.0);
        let tr = c.transient(&TransientSpec::new(5e-6, 10e-9)).unwrap();
        // Before the control pulse the output stays near 0.
        assert!(tr.voltage_at("out", 0.9e-6).unwrap() < 0.1);
        // During the pulse the 1 mS switch charges 1 pF in ~ns.
        assert!(tr.voltage_at("out", 2.5e-6).unwrap() > 0.95);
    }

    #[test]
    fn transient_hits_waveform_corners() {
        let mut c = Circuit::new();
        let a = c.node("a");
        // 100 ns pulse with a 1 µs nominal step: without breakpoint
        // alignment the pulse would be skipped entirely.
        c.add_vsource(
            "V1",
            a,
            Circuit::GND,
            Waveform::single_pulse(1.0, 3e-6, 100e-9),
        );
        c.add("R1", Element::resistor(a, Circuit::GND, 1e3));
        let tr = c.transient(&TransientSpec::new(10e-6, 1e-6)).unwrap();
        assert!(tr.max_voltage("a").unwrap() > 0.99);
    }

    #[test]
    fn initial_condition_is_honoured() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add("R1", Element::resistor(a, Circuit::GND, 1e6));
        c.add("C1", Element::capacitor(a, Circuit::GND, 1e-9));
        c.set_initial_voltage(a, 0.8);
        let tr = c.transient(&TransientSpec::new(1e-6, 1e-9)).unwrap();
        let v0 = tr.voltage("a").unwrap()[0];
        assert!((v0 - 0.8).abs() < 1e-2, "IC start {v0}");
        // Discharging through 1 MΩ: τ = 1 ms, barely moves in 1 µs.
        assert!(tr.final_voltage("a").unwrap() > 0.79);
    }

    #[test]
    fn fe_capacitor_switches_in_circuit() {
        use felim_ferro::{MfmParams, Polarity};
        let params = MfmParams::scaled_45nm();
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource(
            "V1",
            a,
            Circuit::GND,
            Waveform::single_pulse(params.write_voltage_v, 10e-9, 2e-6),
        );
        c.add("CF", Element::fe_capacitor(a, Circuit::GND, &params));
        assert_eq!(
            c.fe_capacitor("CF").unwrap().stored_state(0.5),
            Some(Polarity::Down)
        );
        let _ = c.transient(&TransientSpec::new(3e-6, 5e-9)).unwrap();
        // The positive pulse programmed the capacitor to '1'.
        assert_eq!(
            c.fe_capacitor("CF").unwrap().stored_state(0.5),
            Some(Polarity::Up)
        );
    }

    #[test]
    fn source_current_sign_convention() {
        // 1 V across 1 kΩ: 1 mA leaves the + terminal → i_source = −1 mA
        // in MNA convention (current flows p→n *inside* the source).
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource("V1", a, Circuit::GND, Waveform::dc(1.0));
        c.add("R1", Element::resistor(a, Circuit::GND, 1e3));
        let op = c.dc_operating_point().unwrap();
        assert!((op.source_current("V1").unwrap() + 1e-3).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "t_stop")]
    fn rejects_bad_transient_spec() {
        let _ = TransientSpec::new(1e-9, 1e-6);
    }

    #[test]
    fn conflicting_sources_report_singular() {
        // Two ideal sources forcing different voltages on the same node:
        // the MNA system has no solution and the LU must flag it.
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource("V1", a, Circuit::GND, Waveform::dc(1.0));
        c.add_vsource("V2", a, Circuit::GND, Waveform::dc(2.0));
        c.add("R1", Element::resistor(a, Circuit::GND, 1e3));
        let err = c.dc_operating_point().unwrap_err();
        assert!(matches!(err, crate::SpiceError::SingularMatrix { .. }));
        assert!(err.to_string().contains("singular"));
    }

    #[test]
    fn parallel_identical_sources_are_fine() {
        // Same value twice is consistent (current split is determined by
        // the pivoted LU); the solve must succeed.
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource("V1", a, Circuit::GND, Waveform::dc(1.0));
        c.add("R1", Element::resistor(a, Circuit::GND, 1e3));
        let op = c.dc_operating_point().unwrap();
        assert!((op.voltage("a").unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn error_display_formats() {
        use crate::SpiceError;
        let e = SpiceError::NoConvergence {
            analysis: "dc",
            time_s: 0.0,
            diagnostics: SolverDiagnostics::default(),
        };
        assert!(e.to_string().contains("failed to converge"));
        assert!(e.to_string().contains("Newton iterations"));
        let e = SpiceError::NotFound { name: "X1".into() };
        assert!(e.to_string().contains("X1"));
        let e = SpiceError::BadParameter { what: "neg".into() };
        assert!(e.to_string().contains("bad parameter"));
    }

    /// A resistive circuit asked to jump 2 kV *instantaneously* (a PWL
    /// with two points at the same time — no finite edge to subdivide)
    /// can never converge under the 0.5 V/iteration damping: halving
    /// the step does not shrink the jump, so the solver must exhaust
    /// its retries and report the effort it spent.
    fn impossible_step_circuit() -> Circuit {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource(
            "V1",
            a,
            Circuit::GND,
            Waveform::pwl(vec![(1e-6, 0.0), (1e-6, 2000.0)]),
        );
        c.add("R1", Element::resistor(a, Circuit::GND, 1e3));
        c
    }

    #[test]
    fn no_convergence_carries_solver_diagnostics() {
        let mut c = impossible_step_circuit();
        let err = c.transient(&TransientSpec::new(2e-6, 1e-7)).unwrap_err();
        match err {
            crate::SpiceError::NoConvergence {
                analysis,
                diagnostics,
                ..
            } => {
                assert_eq!(analysis, "transient");
                assert!(diagnostics.newton_iterations > 0, "{diagnostics:?}");
                assert!(diagnostics.accepted_steps > 0, "steps before the edge");
                assert!(diagnostics.rejected_steps > 0, "{diagnostics:?}");
                assert!(diagnostics.worst_residual >= VOLTAGE_ABSTOL);
                assert!(
                    diagnostics.min_dt_s > 0.0 && diagnostics.min_dt_s <= 1e-7,
                    "min_dt_s reports the smallest accepted step: {diagnostics:?}"
                );
            }
            e => panic!("expected NoConvergence, got {e}"),
        }
    }

    /// A nonlinear testbench: NMOS inverter driving a capacitive load
    /// with a ferroelectric capacitor hanging off the output.
    fn nonlinear_testbench() -> Circuit {
        use felim_ferro::MfmParams;
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let out = c.node("out");
        let gate = c.node("gate");
        c.add_vsource("VDD", vdd, Circuit::GND, Waveform::dc(1.2));
        c.add_vsource(
            "VG",
            gate,
            Circuit::GND,
            Waveform::single_pulse(1.2, 0.5e-6, 1e-6),
        );
        c.add("RL", Element::resistor(vdd, out, 1e4));
        c.add(
            "M1",
            Element::mosfet(out, gate, Circuit::GND, MosfetParams::ptm45_nmos()),
        );
        c.add("CL", Element::capacitor(out, Circuit::GND, 1e-13));
        c.add(
            "CF",
            Element::fe_capacitor(out, Circuit::GND, &MfmParams::scaled_45nm()),
        );
        c
    }

    #[test]
    fn modified_newton_agrees_with_full_newton() {
        let spec = TransientSpec::new(2e-6, 2e-9);
        let tr_full = nonlinear_testbench().transient(&spec).unwrap();
        let tr_mod = nonlinear_testbench()
            .transient(&spec.clone().with_newton(NewtonPolicy::Modified))
            .unwrap();
        // Identical step schedule (Newton policy does not touch the time
        // axis), answers equal to well below the Newton tolerance.
        assert_eq!(tr_full.times(), tr_mod.times());
        let (vf, vm) = (tr_full.voltage("out").unwrap(), tr_mod.voltage("out").unwrap());
        for (a, b) in vf.iter().zip(vm) {
            assert!((a - b).abs() < 5e-6, "full {a} vs modified {b}");
        }
    }

    #[test]
    fn adaptive_grows_steps_on_plateaus() {
        // RC charge: after the initial edge the waveform flattens, so the
        // LTE controller must stretch the step well past the nominal dt.
        let build = || {
            let mut c = Circuit::new();
            let a = c.node("a");
            let b = c.node("b");
            c.add_vsource("V1", a, Circuit::GND, Waveform::step(1.0, 0.0));
            c.add("R1", Element::resistor(a, b, 1e3));
            c.add("C1", Element::capacitor(b, Circuit::GND, 1e-9));
            c
        };
        let fixed = build()
            .transient(&TransientSpec::new(10e-6, 10e-9))
            .unwrap();
        let spec = TransientSpec::new(10e-6, 10e-9).with_adaptive(AdaptiveSpec::default());
        let adaptive = build().transient(&spec).unwrap();
        assert!(
            adaptive.times().len() * 3 < fixed.times().len(),
            "adaptive took {} steps vs fixed {}",
            adaptive.times().len(),
            fixed.times().len()
        );
        let v = adaptive.final_voltage("b").unwrap();
        assert!((v - 1.0).abs() < 1e-2, "endpoint {v}");
        // And the waveform itself stays accurate mid-charge.
        let v_tau = adaptive.voltage_at("b", 1e-6).unwrap();
        assert!((v_tau - 0.632).abs() < 0.02, "v(tau) = {v_tau}");
    }

    #[test]
    fn diagnostics_separate_lte_from_newton_rejections() {
        // An RC edge at 1 µs trips the LTE controller (Newton converges,
        // the predictor/corrector gap does not); the impossible 2 kV
        // double-point at 1.5 µs then stalls Newton itself. The failure
        // diagnostics must report both rejection kinds separately.
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        let z = c.node("z");
        c.add_vsource("V1", a, Circuit::GND, Waveform::step(1.0, 1e-6));
        c.add("R1", Element::resistor(a, b, 1e3));
        c.add("C1", Element::capacitor(b, Circuit::GND, 1e-9));
        c.add_vsource(
            "V2",
            z,
            Circuit::GND,
            Waveform::pwl(vec![(1.5e-6, 0.0), (1.5e-6, 2000.0)]),
        );
        c.add("R2", Element::resistor(z, Circuit::GND, 1e3));
        let spec = TransientSpec::new(2e-6, 1e-7)
            .with_adaptive(AdaptiveSpec::default())
            .with_max_rejected_steps(8);
        let err = c.transient(&spec).unwrap_err();
        match err {
            crate::SpiceError::NoConvergence { diagnostics, .. } => {
                assert!(diagnostics.lte_rejections > 0, "{diagnostics:?}");
                assert!(diagnostics.rejected_steps > 0, "{diagnostics:?}");
                assert!(diagnostics.min_dt_s > 0.0, "{diagnostics:?}");
            }
            e => panic!("expected NoConvergence, got {e}"),
        }
    }

    #[test]
    fn breakpoints_one_fs_apart_are_both_hit() {
        // Two sources with corners 1 fs apart. The old absolute 1e-15
        // dedup/advance epsilon silently skipped the second corner; the
        // run-length-relative epsilon keeps both as exact step targets.
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        let t1 = 1e-6;
        let t2 = 1e-6 + 1e-15;
        c.add_vsource("V1", a, Circuit::GND, Waveform::single_pulse(1.0, t1, 0.5e-6));
        c.add_vsource("V2", b, Circuit::GND, Waveform::single_pulse(1.0, t2, 0.5e-6));
        c.add("R1", Element::resistor(a, Circuit::GND, 1e3));
        c.add("R2", Element::resistor(b, Circuit::GND, 1e3));
        let tr = c.transient(&TransientSpec::new(2e-6, 1e-7)).unwrap();
        for corner in [t1, t2] {
            assert!(
                tr.times().contains(&corner),
                "corner {corner:e} missing from the step schedule"
            );
        }
    }

    #[test]
    fn rejected_step_budget_bounds_retries() {
        let mut c = impossible_step_circuit();
        let spec = TransientSpec::new(2e-6, 1e-7).with_max_rejected_steps(3);
        let err = c.transient(&spec).unwrap_err();
        match err {
            crate::SpiceError::NoConvergence { diagnostics, .. } => {
                assert_eq!(diagnostics.rejected_steps, 3, "budget honoured exactly");
            }
            e => panic!("expected NoConvergence, got {e}"),
        }
    }

    #[test]
    fn nan_breakpoints_do_not_panic_the_sort() {
        // A PWL waveform accidentally built with a NaN corner must fail
        // convergence or produce a trace — never abort the process in
        // the breakpoint sort.
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource(
            "V1",
            a,
            Circuit::GND,
            Waveform::Pwl(vec![(0.0, 0.0), (f64::NAN, 1.0), (2e-6, 0.5)]),
        );
        c.add("R1", Element::resistor(a, Circuit::GND, 1e3));
        let _ = c.transient(&TransientSpec::new(1e-6, 1e-7));
    }

    #[test]
    fn trapezoidal_beats_backward_euler_at_coarse_steps() {
        // RC charge with dt = tau/5: second-order trapezoidal must track
        // the analytic exponential much more closely than first-order BE.
        let build = || {
            let mut c = Circuit::new();
            let a = c.node("a");
            let b = c.node("b");
            c.add_vsource("V1", a, Circuit::GND, Waveform::step(1.0, 0.0));
            c.add("R1", Element::resistor(a, b, 1e3));
            c.add("C1", Element::capacitor(b, Circuit::GND, 1e-9)); // tau 1us
            c
        };
        let coarse = 0.2e-6;
        let err = |trace: &crate::probe::Trace| -> f64 {
            let mut worst: f64 = 0.0;
            for &t in trace.times() {
                if t < coarse {
                    continue; // skip the source edge
                }
                let analytic = 1.0 - (-(t - 1e-9) / 1e-6).exp();
                let got = trace.voltage_at("b", t).unwrap();
                worst = worst.max((got - analytic).abs());
            }
            worst
        };
        let mut be = build();
        let tr_be = be.transient(&TransientSpec::new(5e-6, coarse)).unwrap();
        let mut tz = build();
        let tr_tz = tz
            .transient(&TransientSpec::new(5e-6, coarse).with_trapezoidal())
            .unwrap();
        let (e_be, e_tz) = (err(&tr_be), err(&tr_tz));
        assert!(
            e_tz < 0.4 * e_be,
            "trapezoidal {e_tz:.4} must beat backward Euler {e_be:.4}"
        );
        // Both still converge to the right endpoint.
        assert!((tr_tz.final_voltage("b").unwrap() - 1.0).abs() < 1e-2);
    }
}
