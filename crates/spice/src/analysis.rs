//! DC operating point and transient analyses.

use crate::mna::{MnaSystem, StampMode};
use crate::netlist::Circuit;
use crate::probe::{DcPoint, Trace};
use crate::SpiceError;
use felim_telemetry as telemetry;

/// Newton–Raphson controls shared by both analyses.
const MAX_NR_ITERATIONS: usize = 200;
const VOLTAGE_ABSTOL: f64 = 1e-6;
const CURRENT_ABSTOL: f64 = 1e-9;
const NR_DAMPING_V: f64 = 0.5;
const GMIN: f64 = 1e-12;

/// Solver effort bookkeeping, accumulated across an analysis run and
/// attached to [`SpiceError::NoConvergence`] so callers can see *how*
/// the solver failed (stalled Newton loop vs. exhausted step retries),
/// not merely that it did.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SolverDiagnostics {
    /// Total Newton–Raphson iterations spent, over all attempted solves.
    pub newton_iterations: u64,
    /// Transient steps that converged and were committed.
    pub accepted_steps: u64,
    /// Transient steps that failed to converge and were retried with a
    /// halved timestep.
    pub rejected_steps: u64,
    /// Largest Newton update remaining at any failed solve (V or A) —
    /// how far from the tolerance the worst stall was.
    pub worst_residual: f64,
    /// Smallest timestep attempted (s); 0 for a DC-only failure.
    pub min_dt_s: f64,
}

/// Publishes accumulated solver effort to the metrics registry. Compiles
/// to nothing without the `telemetry` feature.
fn record_solver_telemetry(diag: &SolverDiagnostics) {
    telemetry::counter("spice.newton_iterations").add(diag.newton_iterations);
    telemetry::counter("spice.accepted_steps").add(diag.accepted_steps);
    telemetry::counter("spice.rejected_steps").add(diag.rejected_steps);
    telemetry::counter("spice.solver_runs").inc();
    if diag.worst_residual > 0.0 {
        telemetry::gauge("spice.worst_residual").set(diag.worst_residual);
    }
    telemetry::histogram("spice.newton_iterations_per_run").record(diag.newton_iterations);
}

/// Transient analysis configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientSpec {
    /// Stop time in s.
    pub t_stop_s: f64,
    /// Nominal step size in s (adaptively halved on non-convergence).
    pub dt_s: f64,
    /// Conductance used to enforce `.ic` initial voltages during the
    /// initialising DC solve.
    pub ic_conductance_s: f64,
    /// Use trapezoidal (second-order) integration for linear capacitors.
    pub trapezoidal: bool,
    /// Retry budget: total rejected (halved-and-retried) steps allowed
    /// over the whole run before the analysis gives up with
    /// [`SpiceError::NoConvergence`].
    pub max_rejected_steps: u64,
}

impl TransientSpec {
    /// A transient from 0 to `t_stop_s` with nominal step `dt_s`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < dt_s <= t_stop_s`.
    pub fn new(t_stop_s: f64, dt_s: f64) -> Self {
        assert!(
            dt_s > 0.0 && dt_s <= t_stop_s,
            "need 0 < dt ({dt_s}) <= t_stop ({t_stop_s})"
        );
        Self {
            t_stop_s,
            dt_s,
            ic_conductance_s: 1e3,
            trapezoidal: false,
            max_rejected_steps: 512,
        }
    }

    /// Switches linear capacitors to trapezoidal integration.
    pub fn with_trapezoidal(mut self) -> Self {
        self.trapezoidal = true;
        self
    }

    /// Overrides the rejected-step retry budget.
    pub fn with_max_rejected_steps(mut self, n: u64) -> Self {
        self.max_rejected_steps = n;
        self
    }
}

impl Circuit {
    /// Solves the DC operating point (capacitors open, sources at t = 0).
    ///
    /// # Errors
    ///
    /// [`SpiceError::NoConvergence`] if Newton–Raphson (with source
    /// stepping fallback) fails; [`SpiceError::SingularMatrix`] for a
    /// structurally defective netlist.
    pub fn dc_operating_point(&self) -> Result<DcPoint, SpiceError> {
        let _span = telemetry::span("spice.dc_operating_point");
        let mut diag = SolverDiagnostics::default();
        let mut sys = MnaSystem::new(self.node_count(), self.vsources.len());
        let result = self.solve_dc_internal(&mut sys, false, &mut diag);
        record_solver_telemetry(&diag);
        let x = result?;
        Ok(self.make_dc_point(&x))
    }

    /// Runs a transient analysis, mutating element state (capacitor
    /// history, ferroelectric polarization) as simulation time advances.
    ///
    /// The run starts from a DC solve honouring any
    /// [`Circuit::set_initial_voltage`] directives; source waveform
    /// corners are always hit exactly; steps are halved (down to
    /// `dt/2²⁰`, within the [`TransientSpec::max_rejected_steps`] retry
    /// budget) when Newton–Raphson stalls. A final failure carries
    /// [`SolverDiagnostics`] describing the effort spent.
    ///
    /// # Errors
    ///
    /// [`SpiceError::NoConvergence`] / [`SpiceError::SingularMatrix`] as
    /// for [`Circuit::dc_operating_point`].
    pub fn transient(&mut self, spec: &TransientSpec) -> Result<Trace, SpiceError> {
        let _span = telemetry::span("spice.transient");
        let mut diag = SolverDiagnostics {
            min_dt_s: spec.dt_s,
            ..SolverDiagnostics::default()
        };
        let result = self.transient_inner(spec, &mut diag);
        record_solver_telemetry(&diag);
        result
    }

    fn transient_inner(
        &mut self,
        spec: &TransientSpec,
        diag: &mut SolverDiagnostics,
    ) -> Result<Trace, SpiceError> {
        // One system for the whole analysis: the DC init, every Newton
        // iteration and every timestep re-stamp it in place.
        let mut sys = MnaSystem::new(self.node_count(), self.vsources.len());
        let mut x = self.solve_dc_internal(&mut sys, true, diag)?;
        for (_, e) in &mut self.elements {
            e.init_history(&x);
        }

        // Breakpoints from all source waveforms.
        let mut breakpoints: Vec<f64> = self
            .vsources
            .iter()
            .flat_map(|v| v.wave.breakpoints(spec.t_stop_s))
            .filter(|&t| t > 0.0)
            .collect();
        breakpoints.sort_by(f64::total_cmp);
        breakpoints.dedup_by(|a, b| (*a - *b).abs() < 1e-15);

        let mut trace = self.new_trace();
        self.record(&mut trace, 0.0, &x, None);

        let dt_min = spec.dt_s / (1 << 20) as f64;
        let mut t = 0.0;
        let mut h = spec.dt_s;
        let mut next_bp = 0usize;
        while t < spec.t_stop_s - 1e-18 {
            while next_bp < breakpoints.len() && breakpoints[next_bp] <= t + 1e-15 {
                next_bp += 1;
            }
            let mut t_next = (t + h).min(spec.t_stop_s);
            if next_bp < breakpoints.len() && breakpoints[next_bp] < t_next - 1e-15 {
                t_next = breakpoints[next_bp];
            }
            let dt = t_next - t;
            diag.min_dt_s = diag.min_dt_s.min(dt);
            let mode = StampMode::Transient {
                dt,
                trapezoidal: spec.trapezoidal,
            };
            match self.newton_solve(&mut sys, &x, mode, t_next, diag) {
                Ok(x_new) => {
                    for (_, e) in &mut self.elements {
                        e.commit(&x_new, dt, spec.trapezoidal);
                    }
                    x = x_new;
                    t = t_next;
                    diag.accepted_steps += 1;
                    self.record(&mut trace, t, &x, Some(dt));
                    if h < spec.dt_s {
                        h = (h * 2.0).min(spec.dt_s);
                    }
                }
                Err(_) if h > dt_min && diag.rejected_steps < spec.max_rejected_steps => {
                    diag.rejected_steps += 1;
                    h *= 0.5;
                }
                Err(SpiceError::NoConvergence {
                    analysis, time_s, ..
                }) => {
                    // Step floor or retry budget exhausted: surface the
                    // accumulated solver effort with the failure.
                    return Err(SpiceError::NoConvergence {
                        analysis,
                        time_s,
                        diagnostics: *diag,
                    });
                }
                Err(e) => return Err(e),
            }
        }
        Ok(trace)
    }

    fn solve_dc_internal(
        &self,
        sys: &mut MnaSystem,
        with_ic: bool,
        diag: &mut SolverDiagnostics,
    ) -> Result<Vec<f64>, SpiceError> {
        let x0 = vec![0.0; self.unknowns()];
        // Plain Newton first; on failure, source-step from 10 % to 100 %.
        match self.newton_solve_scaled(sys, &x0, 1.0, with_ic, diag) {
            Ok(x) => Ok(x),
            Err(_) => {
                let mut x = x0;
                for step in 1..=10 {
                    let scale = step as f64 / 10.0;
                    x = self.newton_solve_scaled(sys, &x, scale, with_ic, diag)?;
                }
                Ok(x)
            }
        }
    }

    fn newton_solve(
        &self,
        sys: &mut MnaSystem,
        x0: &[f64],
        mode: StampMode,
        time_s: f64,
        diag: &mut SolverDiagnostics,
    ) -> Result<Vec<f64>, SpiceError> {
        self.newton_iterate(sys, x0, mode, time_s, 1.0, false, diag)
    }

    fn newton_solve_scaled(
        &self,
        sys: &mut MnaSystem,
        x0: &[f64],
        source_scale: f64,
        with_ic: bool,
        diag: &mut SolverDiagnostics,
    ) -> Result<Vec<f64>, SpiceError> {
        self.newton_iterate(sys, x0, StampMode::Dc, 0.0, source_scale, with_ic, diag)
    }

    #[allow(clippy::too_many_arguments)]
    fn newton_iterate(
        &self,
        sys: &mut MnaSystem,
        x0: &[f64],
        mode: StampMode,
        time_s: f64,
        source_scale: f64,
        with_ic: bool,
        diag: &mut SolverDiagnostics,
    ) -> Result<Vec<f64>, SpiceError> {
        let n_nodes = self.node_count();
        let mut x = x0.to_vec();
        let analysis = match mode {
            StampMode::Dc => "dc",
            StampMode::Transient { .. } => "transient",
        };
        let mut last_residual: f64 = 0.0;
        for _ in 0..MAX_NR_ITERATIONS {
            diag.newton_iterations += 1;
            sys.reset(GMIN);
            for (_, e) in &self.elements {
                e.stamp(&x, &mut *sys, mode, time_s);
            }
            for (k, v) in self.vsources.iter().enumerate() {
                sys.stamp_vsource(k, v.p, v.n, v.wave.at(time_s) * source_scale);
            }
            if with_ic {
                for &(node, volts) in &self.initial_voltages {
                    if let Some(i) = node.index() {
                        sys.matrix.add(i, i, self.ic_conductance());
                        sys.rhs[i] += self.ic_conductance() * volts;
                    }
                }
            }
            let x_new = sys
                .solve()
                .map_err(|s| SpiceError::SingularMatrix {
                    time_s,
                    pivot: s.pivot,
                })?;

            let mut max_dv: f64 = 0.0;
            let mut max_di: f64 = 0.0;
            for i in 0..x.len() {
                let mut delta = x_new[i] - x[i];
                if i < n_nodes {
                    delta = delta.clamp(-NR_DAMPING_V, NR_DAMPING_V);
                    max_dv = max_dv.max(delta.abs());
                } else {
                    max_di = max_di.max(delta.abs());
                }
                x[i] += delta;
            }
            if max_dv < VOLTAGE_ABSTOL && max_di < CURRENT_ABSTOL {
                return Ok(x);
            }
            last_residual = max_dv.max(max_di);
        }
        diag.worst_residual = diag.worst_residual.max(last_residual);
        Err(SpiceError::NoConvergence {
            analysis,
            time_s,
            diagnostics: *diag,
        })
    }

    fn ic_conductance(&self) -> f64 {
        1e3
    }

    fn new_trace(&self) -> Trace {
        Trace {
            times: Vec::new(),
            node_names: self.node_names[1..].to_vec(),
            node_data: vec![Vec::new(); self.node_count()],
            source_names: self.vsources.iter().map(|v| v.name.clone()).collect(),
            source_currents: vec![Vec::new(); self.vsources.len()],
            element_names: self.elements.iter().map(|(n, _)| n.clone()).collect(),
            element_currents: vec![Vec::new(); self.elements.len()],
        }
    }

    fn record(&self, trace: &mut Trace, t: f64, x: &[f64], dt: Option<f64>) {
        trace.times.push(t);
        let n_nodes = self.node_count();
        for (series, value) in trace.node_data.iter_mut().zip(&x[..n_nodes]) {
            series.push(*value);
        }
        for (series, value) in trace.source_currents.iter_mut().zip(&x[n_nodes..]) {
            series.push(*value);
        }
        for (idx, (_, e)) in self.elements.iter().enumerate() {
            trace.element_currents[idx].push(e.branch_current(x, dt));
        }
    }

    fn make_dc_point(&self, x: &[f64]) -> DcPoint {
        let n_nodes = self.node_count();
        DcPoint {
            node_names: self.node_names[1..].to_vec(),
            voltages: x[..n_nodes].to_vec(),
            source_names: self.vsources.iter().map(|v| v.name.clone()).collect(),
            source_currents: x[n_nodes..].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::{Element, SwitchParams};
    use crate::mosfet::MosfetParams;
    use crate::waveform::Waveform;

    #[test]
    fn dc_voltage_divider() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, Circuit::GND, Waveform::dc(3.0));
        c.add("R1", Element::resistor(a, b, 2e3));
        c.add("R2", Element::resistor(b, Circuit::GND, 1e3));
        let op = c.dc_operating_point().unwrap();
        assert!((op.voltage("b").unwrap() - 1.0).abs() < 1e-6);
        assert!((op.source_current("V1").unwrap() + 1e-3).abs() < 1e-6);
    }

    #[test]
    fn dc_nmos_inverter_rails() {
        // NMOS with 10k pull-up: gate low → out high; gate high → out low.
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let out = c.node("out");
        let gate = c.node("gate");
        c.add_vsource("VDD", vdd, Circuit::GND, Waveform::dc(1.2));
        c.add_vsource("VG", gate, Circuit::GND, Waveform::dc(0.0));
        c.add("RL", Element::resistor(vdd, out, 1e4));
        c.add(
            "M1",
            Element::mosfet(out, gate, Circuit::GND, MosfetParams::ptm45_nmos()),
        );
        let op = c.dc_operating_point().unwrap();
        assert!(op.voltage("out").unwrap() > 1.1, "off transistor → high");

        c.set_vsource("VG", Waveform::dc(1.2)).unwrap();
        let op = c.dc_operating_point().unwrap();
        assert!(op.voltage("out").unwrap() < 0.2, "on transistor → low");
    }

    #[test]
    fn transient_rc_charges_with_correct_tau() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, Circuit::GND, Waveform::step(1.0, 0.0));
        c.add("R1", Element::resistor(a, b, 1e3));
        c.add("C1", Element::capacitor(b, Circuit::GND, 1e-9));
        let tr = c.transient(&TransientSpec::new(5e-6, 5e-9)).unwrap();
        // After 1 τ (1 µs): 1 − 1/e ≈ 0.632.
        let v_tau = tr.voltage_at("b", 1e-6 + 1e-9).unwrap();
        assert!((v_tau - 0.632).abs() < 0.02, "v(τ) = {v_tau}");
        assert!((tr.final_voltage("b").unwrap() - 1.0).abs() < 1e-2);
    }

    #[test]
    fn transient_switch_gates_charging() {
        let mut c = Circuit::new();
        let src = c.node("src");
        let out = c.node("out");
        let ctl = c.node("ctl");
        c.add_vsource("VS", src, Circuit::GND, Waveform::dc(1.0));
        c.add_vsource(
            "VC",
            ctl,
            Circuit::GND,
            Waveform::single_pulse(1.0, 1e-6, 2e-6),
        );
        c.add(
            "S1",
            Element::switch(src, out, ctl, SwitchParams::default()),
        );
        c.add("C1", Element::capacitor(out, Circuit::GND, 1e-12));
        // The floating output would otherwise start at the leakage
        // divider point of the DC init — pin it like a real testbench.
        c.set_initial_voltage(out, 0.0);
        let tr = c.transient(&TransientSpec::new(5e-6, 10e-9)).unwrap();
        // Before the control pulse the output stays near 0.
        assert!(tr.voltage_at("out", 0.9e-6).unwrap() < 0.1);
        // During the pulse the 1 mS switch charges 1 pF in ~ns.
        assert!(tr.voltage_at("out", 2.5e-6).unwrap() > 0.95);
    }

    #[test]
    fn transient_hits_waveform_corners() {
        let mut c = Circuit::new();
        let a = c.node("a");
        // 100 ns pulse with a 1 µs nominal step: without breakpoint
        // alignment the pulse would be skipped entirely.
        c.add_vsource(
            "V1",
            a,
            Circuit::GND,
            Waveform::single_pulse(1.0, 3e-6, 100e-9),
        );
        c.add("R1", Element::resistor(a, Circuit::GND, 1e3));
        let tr = c.transient(&TransientSpec::new(10e-6, 1e-6)).unwrap();
        assert!(tr.max_voltage("a").unwrap() > 0.99);
    }

    #[test]
    fn initial_condition_is_honoured() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add("R1", Element::resistor(a, Circuit::GND, 1e6));
        c.add("C1", Element::capacitor(a, Circuit::GND, 1e-9));
        c.set_initial_voltage(a, 0.8);
        let tr = c.transient(&TransientSpec::new(1e-6, 1e-9)).unwrap();
        let v0 = tr.voltage("a").unwrap()[0];
        assert!((v0 - 0.8).abs() < 1e-2, "IC start {v0}");
        // Discharging through 1 MΩ: τ = 1 ms, barely moves in 1 µs.
        assert!(tr.final_voltage("a").unwrap() > 0.79);
    }

    #[test]
    fn fe_capacitor_switches_in_circuit() {
        use felim_ferro::{MfmParams, Polarity};
        let params = MfmParams::scaled_45nm();
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource(
            "V1",
            a,
            Circuit::GND,
            Waveform::single_pulse(params.write_voltage_v, 10e-9, 2e-6),
        );
        c.add("CF", Element::fe_capacitor(a, Circuit::GND, &params));
        assert_eq!(
            c.fe_capacitor("CF").unwrap().stored_state(0.5),
            Some(Polarity::Down)
        );
        let _ = c.transient(&TransientSpec::new(3e-6, 5e-9)).unwrap();
        // The positive pulse programmed the capacitor to '1'.
        assert_eq!(
            c.fe_capacitor("CF").unwrap().stored_state(0.5),
            Some(Polarity::Up)
        );
    }

    #[test]
    fn source_current_sign_convention() {
        // 1 V across 1 kΩ: 1 mA leaves the + terminal → i_source = −1 mA
        // in MNA convention (current flows p→n *inside* the source).
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource("V1", a, Circuit::GND, Waveform::dc(1.0));
        c.add("R1", Element::resistor(a, Circuit::GND, 1e3));
        let op = c.dc_operating_point().unwrap();
        assert!((op.source_current("V1").unwrap() + 1e-3).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "t_stop")]
    fn rejects_bad_transient_spec() {
        let _ = TransientSpec::new(1e-9, 1e-6);
    }

    #[test]
    fn conflicting_sources_report_singular() {
        // Two ideal sources forcing different voltages on the same node:
        // the MNA system has no solution and the LU must flag it.
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource("V1", a, Circuit::GND, Waveform::dc(1.0));
        c.add_vsource("V2", a, Circuit::GND, Waveform::dc(2.0));
        c.add("R1", Element::resistor(a, Circuit::GND, 1e3));
        let err = c.dc_operating_point().unwrap_err();
        assert!(matches!(err, crate::SpiceError::SingularMatrix { .. }));
        assert!(err.to_string().contains("singular"));
    }

    #[test]
    fn parallel_identical_sources_are_fine() {
        // Same value twice is consistent (current split is determined by
        // the pivoted LU); the solve must succeed.
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource("V1", a, Circuit::GND, Waveform::dc(1.0));
        c.add("R1", Element::resistor(a, Circuit::GND, 1e3));
        let op = c.dc_operating_point().unwrap();
        assert!((op.voltage("a").unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn error_display_formats() {
        use crate::SpiceError;
        let e = SpiceError::NoConvergence {
            analysis: "dc",
            time_s: 0.0,
            diagnostics: SolverDiagnostics::default(),
        };
        assert!(e.to_string().contains("failed to converge"));
        assert!(e.to_string().contains("Newton iterations"));
        let e = SpiceError::NotFound { name: "X1".into() };
        assert!(e.to_string().contains("X1"));
        let e = SpiceError::BadParameter { what: "neg".into() };
        assert!(e.to_string().contains("bad parameter"));
    }

    /// A resistive circuit asked to jump 2 kV *instantaneously* (a PWL
    /// with two points at the same time — no finite edge to subdivide)
    /// can never converge under the 0.5 V/iteration damping: halving
    /// the step does not shrink the jump, so the solver must exhaust
    /// its retries and report the effort it spent.
    fn impossible_step_circuit() -> Circuit {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource(
            "V1",
            a,
            Circuit::GND,
            Waveform::pwl(vec![(1e-6, 0.0), (1e-6, 2000.0)]),
        );
        c.add("R1", Element::resistor(a, Circuit::GND, 1e3));
        c
    }

    #[test]
    fn no_convergence_carries_solver_diagnostics() {
        let mut c = impossible_step_circuit();
        let err = c.transient(&TransientSpec::new(2e-6, 1e-7)).unwrap_err();
        match err {
            crate::SpiceError::NoConvergence {
                analysis,
                diagnostics,
                ..
            } => {
                assert_eq!(analysis, "transient");
                assert!(diagnostics.newton_iterations > 0, "{diagnostics:?}");
                assert!(diagnostics.accepted_steps > 0, "steps before the edge");
                assert!(diagnostics.rejected_steps > 0, "{diagnostics:?}");
                assert!(diagnostics.worst_residual >= VOLTAGE_ABSTOL);
                assert!(diagnostics.min_dt_s < 1e-7, "halving was attempted");
            }
            e => panic!("expected NoConvergence, got {e}"),
        }
    }

    #[test]
    fn rejected_step_budget_bounds_retries() {
        let mut c = impossible_step_circuit();
        let spec = TransientSpec::new(2e-6, 1e-7).with_max_rejected_steps(3);
        let err = c.transient(&spec).unwrap_err();
        match err {
            crate::SpiceError::NoConvergence { diagnostics, .. } => {
                assert_eq!(diagnostics.rejected_steps, 3, "budget honoured exactly");
            }
            e => panic!("expected NoConvergence, got {e}"),
        }
    }

    #[test]
    fn nan_breakpoints_do_not_panic_the_sort() {
        // A PWL waveform accidentally built with a NaN corner must fail
        // convergence or produce a trace — never abort the process in
        // the breakpoint sort.
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource(
            "V1",
            a,
            Circuit::GND,
            Waveform::Pwl(vec![(0.0, 0.0), (f64::NAN, 1.0), (2e-6, 0.5)]),
        );
        c.add("R1", Element::resistor(a, Circuit::GND, 1e3));
        let _ = c.transient(&TransientSpec::new(1e-6, 1e-7));
    }

    #[test]
    fn trapezoidal_beats_backward_euler_at_coarse_steps() {
        // RC charge with dt = tau/5: second-order trapezoidal must track
        // the analytic exponential much more closely than first-order BE.
        let build = || {
            let mut c = Circuit::new();
            let a = c.node("a");
            let b = c.node("b");
            c.add_vsource("V1", a, Circuit::GND, Waveform::step(1.0, 0.0));
            c.add("R1", Element::resistor(a, b, 1e3));
            c.add("C1", Element::capacitor(b, Circuit::GND, 1e-9)); // tau 1us
            c
        };
        let coarse = 0.2e-6;
        let err = |trace: &crate::probe::Trace| -> f64 {
            let mut worst: f64 = 0.0;
            for &t in trace.times() {
                if t < coarse {
                    continue; // skip the source edge
                }
                let analytic = 1.0 - (-(t - 1e-9) / 1e-6).exp();
                let got = trace.voltage_at("b", t).unwrap();
                worst = worst.max((got - analytic).abs());
            }
            worst
        };
        let mut be = build();
        let tr_be = be.transient(&TransientSpec::new(5e-6, coarse)).unwrap();
        let mut tz = build();
        let tr_tz = tz
            .transient(&TransientSpec::new(5e-6, coarse).with_trapezoidal())
            .unwrap();
        let (e_be, e_tz) = (err(&tr_be), err(&tr_tz));
        assert!(
            e_tz < 0.4 * e_be,
            "trapezoidal {e_tz:.4} must beat backward Euler {e_be:.4}"
        );
        // Both still converge to the right endpoint.
        assert!((tr_tz.final_voltage("b").unwrap() - 1.0).abs() < 1e-2);
    }
}
