//! EKV-style MOSFET compact model.
//!
//! A single continuous expression covers subthreshold, triode and
//! saturation:
//!
//! ```text
//! I_D = 2·n·β·V_t² · [ soft²(V_GS − V_TH) − soft²(V_GS − V_TH − n·V_DS) ]
//!       · (1 + λ·V_DS)        with soft(u) = ln(1 + e^(u / 2nV_t))
//! ```
//!
//! which reduces to the square law in strong inversion and to an
//! exponential with subthreshold swing `SS = n·V_t·ln 10` below threshold.
//! Parameters are provided for the 45 nm PTM-class transistors used in the
//! paper's Spectre simulations and for the fabricated test transistor of
//! Fig 4(d) (SS = 110 mV/dec, on/off = 10⁷).

use crate::THERMAL_VOLTAGE_300K;
use serde::{Deserialize, Serialize};

/// MOSFET channel type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MosfetType {
    /// N-channel device.
    Nmos,
    /// P-channel device.
    Pmos,
}

/// Compact-model parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MosfetParams {
    /// Channel type.
    pub mos_type: MosfetType,
    /// Threshold voltage in V (positive for NMOS, negative for PMOS).
    pub vth_v: f64,
    /// Transconductance factor β = k'·W/L in A/V².
    pub beta_a_v2: f64,
    /// Subthreshold slope factor n (SS = n·V_t·ln 10).
    pub slope_n: f64,
    /// Channel-length modulation λ in 1/V.
    pub lambda_1_v: f64,
    /// Leakage floor in A — junction/gate leakage that bounds the
    /// achievable on/off ratio.
    pub leakage_floor_a: f64,
    /// Gate–channel capacitance in F (lumped, for transient loading).
    pub gate_capacitance_f: f64,
}

impl MosfetParams {
    /// 45 nm PTM-class high-performance NMOS (V_TH ≈ 0.466 V), W/L = 2.
    pub fn ptm45_nmos() -> Self {
        Self {
            mos_type: MosfetType::Nmos,
            vth_v: 0.466,
            beta_a_v2: 1.0e-3,
            slope_n: 1.35,
            lambda_1_v: 0.1,
            leakage_floor_a: 1e-12,
            gate_capacitance_f: 0.1e-15,
        }
    }

    /// 45 nm PTM-class high-performance PMOS (V_TH ≈ −0.412 V), W/L = 4.
    pub fn ptm45_pmos() -> Self {
        Self {
            mos_type: MosfetType::Pmos,
            vth_v: -0.412,
            beta_a_v2: 0.9e-3,
            slope_n: 1.35,
            lambda_1_v: 0.12,
            leakage_floor_a: 1e-12,
            gate_capacitance_f: 0.15e-15,
        }
    }

    /// The fabricated test transistor of Fig 4(d): SS = 110 mV/dec and an
    /// on/off ratio of 10⁷ over its measured gate sweep.
    pub fn fabricated_nmos() -> Self {
        Self {
            mos_type: MosfetType::Nmos,
            vth_v: 0.55,
            beta_a_v2: 0.8e-3,
            // n = 0.110 / (V_t · ln 10) ≈ 1.848 at 300 K.
            slope_n: 0.110 / (THERMAL_VOLTAGE_300K * std::f64::consts::LN_10),
            lambda_1_v: 0.05,
            leakage_floor_a: 6.0e-11,
            gate_capacitance_f: 1e-15,
        }
    }

    /// Subthreshold swing in mV/decade at 300 K.
    ///
    /// ```
    /// let p = felim_spice::MosfetParams::fabricated_nmos();
    /// assert!((p.subthreshold_swing_mv_dec() - 110.0).abs() < 0.5);
    /// ```
    pub fn subthreshold_swing_mv_dec(&self) -> f64 {
        self.slope_n * THERMAL_VOLTAGE_300K * std::f64::consts::LN_10 * 1e3
    }

    /// Drain current (A) flowing drain→source for an NMOS (source→drain
    /// for a PMOS, returned with its natural sign), given gate–source and
    /// drain–source voltages.
    pub fn ids(&self, vgs: f64, vds: f64) -> f64 {
        match self.mos_type {
            MosfetType::Nmos => self.ids_n(vgs, vds),
            // PMOS: mirror through sign reversal of all voltages/current.
            MosfetType::Pmos => -self.ids_n_with(-vgs, -vds, -self.vth_v),
        }
    }

    fn ids_n(&self, vgs: f64, vds: f64) -> f64 {
        self.ids_n_with(vgs, vds, self.vth_v)
    }

    /// NMOS-convention current with an explicit threshold (used by the
    /// PMOS mirror). Handles source/drain symmetry for negative `vds`.
    fn ids_n_with(&self, vgs: f64, vds: f64, vth: f64) -> f64 {
        if vds < 0.0 {
            // Swap source and drain: Vgd = Vgs - Vds.
            return -self.ids_n_with(vgs - vds, -vds, vth);
        }
        let vt = THERMAL_VOLTAGE_300K;
        let n = self.slope_n;
        let half = 2.0 * n * vt;
        let qf = softlog((vgs - vth) / half);
        let qr = softlog((vgs - vth - n * vds) / half);
        let core = 2.0 * n * self.beta_a_v2 * vt * vt * (qf * qf - qr * qr);
        let clm = 1.0 + self.lambda_1_v * vds;
        let leak = self.leakage_floor_a * (1.0 - (-vds / vt).exp());
        core * clm + leak
    }

    /// Numerical partial derivatives `(gm, gds)` of [`Self::ids`] used by
    /// the Newton–Raphson stamps.
    pub fn derivatives(&self, vgs: f64, vds: f64) -> (f64, f64) {
        const H: f64 = 1e-6;
        let base = self.ids(vgs, vds);
        let gm = (self.ids(vgs + H, vds) - base) / H;
        let gds = (self.ids(vgs, vds + H) - base) / H;
        (gm, gds)
    }
}

/// `ln(1 + e^u)`, numerically stable for large |u|.
fn softlog(u: f64) -> f64 {
    if u > 30.0 {
        u
    } else if u < -30.0 {
        0.0
    } else {
        u.exp().ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softlog_limits() {
        assert_eq!(softlog(100.0), 100.0);
        assert_eq!(softlog(-100.0), 0.0);
        assert!((softlog(0.0) - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn nmos_off_when_gate_low() {
        let p = MosfetParams::ptm45_nmos();
        let off = p.ids(0.0, 1.0);
        let on = p.ids(1.0, 1.0);
        assert!(on / off > 1e4, "on/off = {}", on / off);
    }

    #[test]
    fn nmos_square_law_in_saturation() {
        let p = MosfetParams::ptm45_nmos();
        // In saturation, I ∝ (Vgs−Vth)² approximately.
        let i1 = p.ids(0.466 + 0.2, 1.2);
        let i2 = p.ids(0.466 + 0.4, 1.2);
        let ratio = i2 / i1;
        assert!((3.0..5.5).contains(&ratio), "quadratic-ish ratio {ratio}");
    }

    #[test]
    fn nmos_linear_in_triode() {
        let p = MosfetParams::ptm45_nmos();
        let i1 = p.ids(1.2, 0.01);
        let i2 = p.ids(1.2, 0.02);
        assert!((i2 / i1 - 2.0).abs() < 0.1, "ohmic at small Vds");
    }

    #[test]
    fn current_saturates_with_vds() {
        let p = MosfetParams::ptm45_nmos();
        let i_sat1 = p.ids(1.0, 1.0);
        let i_sat2 = p.ids(1.0, 1.2);
        // Only channel-length modulation growth (~λ·ΔVds).
        assert!((i_sat2 / i_sat1 - 1.0).abs() < 0.05);
    }

    #[test]
    fn subthreshold_swing_matches_slope_factor() {
        let p = MosfetParams::fabricated_nmos();
        // Measure SS from the model itself: decades per volt below Vth.
        let v1 = 0.25;
        let v2 = 0.35;
        let i1 = p.ids(v1, 1.0);
        let i2 = p.ids(v2, 1.0);
        let ss_mv = (v2 - v1) / (i2.log10() - i1.log10()) * 1e3;
        assert!((ss_mv - 110.0).abs() < 8.0, "measured SS = {ss_mv} mV/dec");
    }

    #[test]
    fn fabricated_on_off_ratio_is_1e7() {
        let p = MosfetParams::fabricated_nmos();
        // Fig 4(d): gate sweep of the fabricated device.
        let i_off = p.ids(-0.5, 1.0);
        let i_on = p.ids(2.0, 1.0);
        let ratio = i_on / i_off;
        assert!(
            (3e6..1e8).contains(&ratio),
            "on/off ratio = {ratio:e}, want ~1e7"
        );
    }

    #[test]
    fn pmos_mirrors_nmos() {
        let p = MosfetParams::ptm45_pmos();
        // PMOS on: gate below source.
        let on = p.ids(-1.0, -1.0);
        let off = p.ids(0.0, -1.0);
        assert!(on < 0.0, "PMOS drain current flows source→drain: {on}");
        assert!(on.abs() / off.abs() > 1e4);
    }

    #[test]
    fn reverse_mode_antisymmetric() {
        let p = MosfetParams::ptm45_nmos();
        // Swapping drain and source with the same Vg-to-terminal voltages
        // must reverse the current: Ids(vgs, vds) = -Ids(vgd, -vds).
        let fwd = p.ids(1.0, 0.5);
        let rev = p.ids(0.5, -0.5);
        assert!((fwd + rev).abs() < 1e-12 + 1e-9 * fwd.abs());
    }

    #[test]
    fn current_is_continuous_across_zero_vds() {
        let p = MosfetParams::ptm45_nmos();
        let below = p.ids(1.0, -1e-9);
        let above = p.ids(1.0, 1e-9);
        assert!((below + above).abs() < 1e-12 || (below - above).abs() < 1e-9);
        assert!(p.ids(1.0, 0.0).abs() < 1e-12);
    }

    #[test]
    fn derivatives_match_finite_difference_signs() {
        let p = MosfetParams::ptm45_nmos();
        let (gm, gds) = p.derivatives(0.8, 0.6);
        assert!(gm > 0.0, "gm must be positive in forward operation");
        assert!(gds > 0.0, "gds must be positive");
    }

    #[test]
    fn swing_helper_consistent() {
        let p = MosfetParams::ptm45_nmos();
        let expected = 1.35 * THERMAL_VOLTAGE_300K * std::f64::consts::LN_10 * 1e3;
        assert!((p.subthreshold_swing_mv_dec() - expected).abs() < 1e-9);
    }
}
