//! Property-based validation of the MNA simulator against closed-form
//! circuit theory.

use felim_spice::sweep::{dc_sweep, linspace};
use felim_spice::{Circuit, Element, TransientSpec, Waveform};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A two-resistor divider must match V·R2/(R1+R2) for any values.
    #[test]
    fn divider_matches_formula(
        r1 in 10.0f64..1e6,
        r2 in 10.0f64..1e6,
        v in -10.0f64..10.0,
    ) {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, Circuit::GND, Waveform::dc(v));
        c.add("R1", Element::resistor(a, b, r1));
        c.add("R2", Element::resistor(b, Circuit::GND, r2));
        let op = c.dc_operating_point().unwrap();
        let expect = v * r2 / (r1 + r2);
        prop_assert!((op.voltage("b").unwrap() - expect).abs() < 1e-6 + 1e-6 * expect.abs());
        // KCL: source current equals the ladder current.
        let i = op.source_current("V1").unwrap();
        prop_assert!((i + v / (r1 + r2)).abs() < 1e-9 + 1e-9 * (v / (r1 + r2)).abs());
    }

    /// Superposition: the response to two sources is the sum of the
    /// responses to each alone.
    #[test]
    fn superposition_holds(
        v1 in -5.0f64..5.0,
        v2 in -5.0f64..5.0,
        r in 100.0f64..1e5,
    ) {
        let solve = |va: f64, vb: f64| -> f64 {
            let mut c = Circuit::new();
            let a = c.node("a");
            let b = c.node("b");
            let mid = c.node("mid");
            c.add_vsource("VA", a, Circuit::GND, Waveform::dc(va));
            c.add_vsource("VB", b, Circuit::GND, Waveform::dc(vb));
            c.add("R1", Element::resistor(a, mid, r));
            c.add("R2", Element::resistor(b, mid, 2.0 * r));
            c.add("R3", Element::resistor(mid, Circuit::GND, 3.0 * r));
            c.dc_operating_point().unwrap().voltage("mid").unwrap()
        };
        let both = solve(v1, v2);
        let sum = solve(v1, 0.0) + solve(0.0, v2);
        prop_assert!((both - sum).abs() < 1e-6);
    }

    /// RC step response matches the analytic exponential at three
    /// checkpoints for random R and C.
    #[test]
    fn rc_step_matches_exponential(
        r_exp in 2.0f64..5.0,   // 100 Ω – 100 kΩ
        c_exp in -10.0f64..-8.0, // 0.1 nF – 10 nF
    ) {
        let r = 10f64.powf(r_exp);
        let c = 10f64.powf(c_exp);
        let tau = r * c;
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource("V1", a, Circuit::GND, Waveform::step(1.0, 0.0));
        ckt.add("R1", Element::resistor(a, b, r));
        ckt.add("C1", Element::capacitor(b, Circuit::GND, c));
        let trace = ckt
            .transient(&TransientSpec::new(4.0 * tau, tau / 200.0))
            .unwrap();
        for frac in [0.5, 1.0, 2.0] {
            let t = frac * tau;
            let analytic = 1.0 - (-(t - 1e-9) / tau).exp();
            let got = trace.voltage_at("b", t).unwrap();
            prop_assert!(
                (got - analytic).abs() < 0.02,
                "t={frac}tau: {got} vs {analytic}"
            );
        }
    }

    /// DC sweeps are linear in a linear network: the swept node voltage
    /// is proportional to the source value.
    #[test]
    fn dc_sweep_linearity(r1 in 100.0f64..1e5, r2 in 100.0f64..1e5) {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, Circuit::GND, Waveform::dc(0.0));
        c.add("R1", Element::resistor(a, b, r1));
        c.add("R2", Element::resistor(b, Circuit::GND, r2));
        let points = dc_sweep(&mut c, "V1", &linspace(0.0, 4.0, 5)).unwrap();
        let gain = points[4].1.voltage("b").unwrap() / 4.0;
        for (v, op) in &points {
            prop_assert!((op.voltage("b").unwrap() - gain * v).abs() < 1e-6);
        }
    }

    /// Emit → parse roundtrip preserves the DC solution for random
    /// resistive ladders with random sources.
    #[test]
    fn netlist_roundtrip_preserves_dc(
        resistances in prop::collection::vec(10.0f64..1e5, 2..6),
        v in -5.0f64..5.0,
    ) {
        use felim_spice::parse::parse_netlist;
        let mut ckt = Circuit::new();
        let top = ckt.node("n0");
        ckt.add_vsource("V1", top, Circuit::GND, Waveform::dc(v));
        let mut prev = top;
        for (i, r) in resistances.iter().enumerate() {
            let next = ckt.node(&format!("n{}", i + 1));
            ckt.add(&format!("R{i}"), Element::resistor(prev, next, *r));
            prev = next;
        }
        ckt.add("Rend", Element::resistor(prev, Circuit::GND, 1e3));

        let text = ckt.to_netlist_string("ladder");
        let reparsed = parse_netlist(&text).unwrap().circuit;
        let op1 = ckt.dc_operating_point().unwrap();
        let op2 = reparsed.dc_operating_point().unwrap();
        for i in 0..=resistances.len() {
            let name = format!("n{i}");
            let (a, b) = (op1.voltage(&name).unwrap(), op2.voltage(&name).unwrap());
            prop_assert!((a - b).abs() < 1e-9, "{name}: {a} vs {b}");
        }
    }

    /// Charge conservation in a capacitive divider: after a step settles,
    /// the series caps share the source voltage inversely to their values.
    #[test]
    fn capacitive_divider_final_value(
        c1_exp in -10.0f64..-8.0,
        c2_exp in -10.0f64..-8.0,
    ) {
        let c1 = 10f64.powf(c1_exp);
        let c2 = 10f64.powf(c2_exp);
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource("V1", a, Circuit::GND, Waveform::step(1.0, 0.0));
        // Small series resistor to give the edge a time constant the
        // stepper can resolve.
        let r = 1e3;
        let mid = ckt.node("mid");
        ckt.add("R1", Element::resistor(a, mid, r));
        ckt.add("C1", Element::capacitor(mid, b, c1));
        ckt.add("C2", Element::capacitor(b, Circuit::GND, c2));
        let tau = r * (c1 * c2) / (c1 + c2);
        let trace = ckt
            .transient(&TransientSpec::new(20.0 * tau + 20e-9, tau / 50.0))
            .unwrap();
        let expect = c1 / (c1 + c2);
        let got = trace.final_voltage("b").unwrap();
        prop_assert!((got - expect).abs() < 0.02, "{got} vs {expect}");
    }
}
