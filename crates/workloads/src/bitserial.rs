//! Bit-serial arithmetic over row-parallel lanes.
//!
//! In the bulk-bitwise paradigm every bit position of a row is an
//! independent lane. Multi-bit arithmetic (the popcount/threshold in BNN
//! inference) is done *bit-serially*: an integer per lane is represented
//! by a vector of rows, one row per binary digit, and updated with
//! row-wide half-adder sweeps.

use felim_arch::{ArchError, BulkBackend, RowId};

/// A per-lane unsigned counter of fixed width, stored bit-sliced: row `k`
/// holds bit `k` of every lane's count.
#[derive(Debug, Clone)]
pub struct LaneCounter {
    digits: Vec<RowId>,
    /// Scratch rows (need 2).
    scratch: [RowId; 2],
}

impl LaneCounter {
    /// Creates a counter of `width` digit rows. `rows` must provide
    /// `width + 2` distinct free rows: the digits plus two scratch rows.
    /// All supplied rows are cleared.
    ///
    /// # Panics
    ///
    /// Panics if too few rows are supplied.
    ///
    /// # Errors
    ///
    /// Propagates backend faults while clearing the rows.
    pub fn new(
        backend: &mut dyn BulkBackend,
        rows: &[RowId],
        width: usize,
    ) -> Result<Self, ArchError> {
        assert!(
            rows.len() >= width + 2,
            "need {} rows, got {}",
            width + 2,
            rows.len()
        );
        let zeros = vec![0u64; backend.geometry().row_words()];
        for &r in &rows[..width + 2] {
            backend.write_row(r, &zeros)?;
        }
        Ok(Self {
            digits: rows[..width].to_vec(),
            scratch: [rows[width], rows[width + 1]],
        })
    }

    /// Digit rows, least significant first.
    pub fn digits(&self) -> &[RowId] {
        &self.digits
    }

    /// Adds the per-lane indicator row (`0` or `1` per lane) to every
    /// lane's count with a ripple half-adder sweep. Overflow beyond the
    /// top digit is dropped (size the counter generously).
    ///
    /// # Errors
    ///
    /// Propagates backend faults.
    pub fn add_indicator(
        &mut self,
        backend: &mut dyn BulkBackend,
        indicator: RowId,
    ) -> Result<(), ArchError> {
        let [carry, tmp] = self.scratch;
        // carry = indicator (copied so we never clobber the caller's row)
        backend.copy(indicator, carry)?;
        for &digit in &self.digits.clone() {
            // tmp = digit AND carry (next carry); digit = digit XOR carry.
            backend.and(digit, carry, tmp)?;
            backend.xor(digit, carry, digit)?;
            backend.copy(tmp, carry)?;
        }
        Ok(())
    }

    /// Writes, into `dst`, a per-lane indicator of `count >= threshold`
    /// (unsigned compare against a compile-time constant).
    ///
    /// Implements the standard MSB-first comparison:
    /// `ge = OR_k (eq_above_k AND c_k AND !t_k)`, `eq` updated with
    /// XNOR-matches. Requires 3 scratch rows from the backend.
    ///
    /// # Errors
    ///
    /// Propagates backend faults.
    pub fn compare_ge(
        &self,
        backend: &mut dyn BulkBackend,
        threshold: u64,
        dst: RowId,
    ) -> Result<(), ArchError> {
        let scratch = backend.scratch_rows(3);
        let (eq, t1, t2) = (scratch[0], scratch[1], scratch[2]);
        let words = backend.geometry().row_words();
        // ge (dst) = 0; eq = all ones.
        backend.write_row(dst, &vec![0u64; words])?;
        backend.write_row(eq, &vec![!0u64; words])?;
        for (k, &digit) in self.digits.iter().enumerate().rev() {
            let t_k = (threshold >> k) & 1 == 1;
            if t_k {
                // Lanes must have this bit set to stay equal.
                backend.and(eq, digit, eq)?;
            } else {
                // Counter bit 1 where threshold bit 0 → strictly greater.
                backend.and(eq, digit, t1)?;
                backend.or(dst, t1, dst)?;
                // eq &= !digit
                backend.not(digit, t2)?;
                backend.and(eq, t2, eq)?;
            }
        }
        // counts equal to the threshold also satisfy >=.
        backend.or(dst, eq, dst)
    }
}

/// A bit-sliced unsigned integer vector: digit row `k` holds bit `k` of
/// every lane's value.
#[derive(Debug, Clone)]
pub struct LaneVector {
    digits: Vec<RowId>,
}

impl LaneVector {
    /// Wraps existing digit rows (least significant first).
    ///
    /// # Panics
    ///
    /// Panics on an empty digit list.
    pub fn new(digits: Vec<RowId>) -> Self {
        assert!(!digits.is_empty(), "a lane vector needs at least one digit");
        Self { digits }
    }

    /// Digit rows, least significant first.
    pub fn digits(&self) -> &[RowId] {
        &self.digits
    }

    /// Width in bits.
    pub fn width(&self) -> usize {
        self.digits.len()
    }

    /// Loads per-lane values into the digit rows.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the backend's lane count.
    ///
    /// # Errors
    ///
    /// Propagates backend faults.
    pub fn load(&self, backend: &mut dyn BulkBackend, values: &[u64]) -> Result<(), ArchError> {
        let words = backend.geometry().row_words();
        assert_eq!(values.len(), words * 64, "one value per lane");
        for (k, &digit) in self.digits.iter().enumerate() {
            let mut row = vec![0u64; words];
            for (lane, &v) in values.iter().enumerate() {
                if (v >> k) & 1 == 1 {
                    row[lane / 64] |= 1 << (lane % 64);
                }
            }
            backend.install_row(digit, &row)?;
        }
        Ok(())
    }

    /// Reads back per-lane values.
    ///
    /// # Errors
    ///
    /// Propagates backend faults.
    pub fn read(&self, backend: &mut dyn BulkBackend) -> Result<Vec<u64>, ArchError> {
        let words = backend.geometry().row_words();
        let mut out = vec![0u64; words * 64];
        for (k, &digit) in self.digits.iter().enumerate() {
            let row = backend.read_row(digit)?;
            for (lane, v) in out.iter_mut().enumerate() {
                if (row[lane / 64] >> (lane % 64)) & 1 == 1 {
                    *v |= 1 << k;
                }
            }
        }
        Ok(out)
    }
}

/// Lane-parallel ripple-carry addition: `sum = a + b` per lane (truncated
/// to `sum`'s width). Classic full adder per digit — `s = a ⊕ b ⊕ c`,
/// `c' = MAJ(a, b, c)` — built from the backend's bulk primitives, with
/// MAJ obtained as NOT(MINORITY) exactly like the hardware does.
///
/// `work` provides 4 free rows for the carry chain and intermediates;
/// they must be disjoint from the operand/sum digits (the backend's own
/// `scratch_rows` are *not* usable here — the composed `xor` consumes
/// them internally).
///
/// # Panics
///
/// Panics if the operand widths differ or `sum` is wider than `a + 1`.
///
/// # Errors
///
/// Propagates backend faults.
pub fn add_lane_vectors(
    backend: &mut dyn BulkBackend,
    a: &LaneVector,
    b: &LaneVector,
    sum: &LaneVector,
    work: &[RowId; 4],
) -> Result<(), ArchError> {
    assert_eq!(a.width(), b.width(), "operand widths must match");
    assert!(sum.width() <= a.width() + 1, "sum width too large");
    let (carry, t_xor, t_maj, t2) = (work[0], work[1], work[2], work[3]);
    let words = backend.geometry().row_words();
    backend.write_row(carry, &vec![0u64; words])?;
    for k in 0..sum.width() {
        if k >= a.width() {
            // The extra sum digit is the final carry.
            backend.copy(carry, sum.digits()[k])?;
            break;
        }
        let (da, db, ds) = (a.digits()[k], b.digits()[k], sum.digits()[k]);
        // s = a ^ b ^ c ; c' = (a & b) | (c & (a ^ b)).
        backend.xor(da, db, t_xor)?;
        backend.and(da, db, t_maj)?;
        backend.and(carry, t_xor, t2)?;
        backend.xor(t_xor, carry, ds)?;
        backend.or(t_maj, t2, carry)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::lane_bits;
    use felim_arch::{DramBackend, FeramBackend, MemoryGeometry};

    fn free_rows(start: u64, n: u64) -> Vec<RowId> {
        (start..start + n).map(RowId).collect()
    }

    fn run_count_test(backend: &mut dyn BulkBackend) {
        let words = backend.geometry().row_words();
        // 10 indicator rows with known patterns.
        let indicators: Vec<RowId> = free_rows(0, 10);
        let mut expected = vec![0u64; words * 64];
        let mut gen = crate::data::DataGen::new(99, words);
        let mut indicator_data = Vec::new();
        for &r in &indicators {
            let row = gen.sparse_row(0.5);
            backend.write_row(r, &row).unwrap();
            indicator_data.push(row);
        }
        for (lane, e) in expected.iter_mut().enumerate() {
            let bits = lane_bits(&indicator_data, lane);
            *e = bits.iter().filter(|&&b| b).count() as u64;
        }

        let counter_rows = free_rows(100, 8);
        let mut counter = LaneCounter::new(backend, &counter_rows, 5).unwrap();
        for &r in &indicators {
            counter.add_indicator(backend, r).unwrap();
        }
        // Read back the digits and reassemble per-lane counts.
        let digit_rows: Vec<Vec<u64>> = counter
            .digits()
            .iter()
            .map(|&d| backend.read_row(d).unwrap())
            .collect();
        for (lane, e) in expected.iter().enumerate() {
            let mut v = 0u64;
            for (k, digits) in digit_rows.iter().enumerate() {
                if lane_bits(std::slice::from_ref(digits), lane)[0] {
                    v |= 1 << k;
                }
            }
            assert_eq!(v, *e, "lane {lane}");
        }

        // Threshold comparison against the known counts.
        let dst = RowId(200);
        counter.compare_ge(backend, 5, dst).unwrap();
        let ge_row = backend.read_row(dst).unwrap();
        for (lane, e) in expected.iter().enumerate() {
            let got = lane_bits(std::slice::from_ref(&ge_row), lane)[0];
            assert_eq!(got, *e >= 5, "lane {lane} ge");
        }
    }

    #[test]
    fn counts_and_compares_on_feram() {
        let mut m = FeramBackend::new(MemoryGeometry::tiny());
        run_count_test(&mut m);
    }

    #[test]
    fn counts_and_compares_on_dram() {
        let mut m = DramBackend::new(MemoryGeometry::tiny());
        run_count_test(&mut m);
    }

    #[test]
    fn compare_ge_boundary_thresholds() {
        let mut m = FeramBackend::new(MemoryGeometry::tiny());
        let words = m.geometry().row_words();
        let rows = free_rows(100, 8);
        let mut c = LaneCounter::new(&mut m, &rows, 5).unwrap();
        // Add exactly 3 all-ones indicators: every lane counts 3.
        let ind = RowId(0);
        m.write_row(ind, &vec![!0u64; words]).unwrap();
        for _ in 0..3 {
            c.add_indicator(&mut m, ind).unwrap();
        }
        let dst = RowId(200);
        c.compare_ge(&mut m, 3, dst).unwrap();
        assert!(
            m.read_row(dst).unwrap().iter().all(|&w| w == !0u64),
            ">= 3 true"
        );
        c.compare_ge(&mut m, 4, dst).unwrap();
        assert!(
            m.read_row(dst).unwrap().iter().all(|&w| w == 0),
            ">= 4 false"
        );
        c.compare_ge(&mut m, 0, dst).unwrap();
        assert!(
            m.read_row(dst).unwrap().iter().all(|&w| w == !0u64),
            ">= 0 true"
        );
    }

    #[test]
    fn lane_vector_roundtrip() {
        let mut m = FeramBackend::new(MemoryGeometry::tiny());
        let lanes = m.geometry().row_words() * 64;
        let v = LaneVector::new(free_rows(10, 6));
        let values: Vec<u64> = (0..lanes as u64).map(|i| (i * 7) % 64).collect();
        v.load(&mut m, &values).unwrap();
        assert_eq!(v.read(&mut m).unwrap(), values);
    }

    #[test]
    fn lane_addition_matches_scalar_arithmetic() {
        for backend in [
            &mut FeramBackend::new(MemoryGeometry::tiny()) as &mut dyn BulkBackend,
            &mut DramBackend::new(MemoryGeometry::tiny()) as &mut dyn BulkBackend,
        ] {
            let lanes = backend.geometry().row_words() * 64;
            let a = LaneVector::new(free_rows(10, 6));
            let b = LaneVector::new(free_rows(20, 6));
            let s = LaneVector::new(free_rows(30, 7));
            let av: Vec<u64> = (0..lanes as u64).map(|i| (i * 13 + 5) % 64).collect();
            let bv: Vec<u64> = (0..lanes as u64).map(|i| (i * 29 + 11) % 64).collect();
            a.load(backend, &av).unwrap();
            b.load(backend, &bv).unwrap();
            let work = [RowId(40), RowId(41), RowId(42), RowId(43)];
            add_lane_vectors(backend, &a, &b, &s, &work).unwrap();
            let sv = s.read(backend).unwrap();
            for lane in 0..lanes {
                assert_eq!(sv[lane], av[lane] + bv[lane], "lane {lane}");
            }
        }
    }

    #[test]
    fn lane_addition_truncates_to_sum_width() {
        let mut m = FeramBackend::new(MemoryGeometry::tiny());
        let lanes = m.geometry().row_words() * 64;
        let a = LaneVector::new(free_rows(10, 4));
        let b = LaneVector::new(free_rows(20, 4));
        let s = LaneVector::new(free_rows(30, 4));
        let av = vec![15u64; lanes];
        let bv = vec![1u64; lanes];
        a.load(&mut m, &av).unwrap();
        b.load(&mut m, &bv).unwrap();
        let work = [RowId(40), RowId(41), RowId(42), RowId(43)];
        add_lane_vectors(&mut m, &a, &b, &s, &work).unwrap();
        // 15 + 1 = 16 overflows a 4-bit sum → 0.
        assert!(s.read(&mut m).unwrap().iter().all(|&v| v == 0));
    }

    #[test]
    #[should_panic(expected = "widths must match")]
    fn addition_rejects_mismatched_widths() {
        let mut m = FeramBackend::new(MemoryGeometry::tiny());
        let a = LaneVector::new(free_rows(10, 4));
        let b = LaneVector::new(free_rows(20, 5));
        let s = LaneVector::new(free_rows(30, 4));
        let work = [RowId(40), RowId(41), RowId(42), RowId(43)];
        let _ = add_lane_vectors(&mut m, &a, &b, &s, &work);
    }

    #[test]
    #[should_panic(expected = "need")]
    fn rejects_insufficient_rows() {
        let mut m = FeramBackend::new(MemoryGeometry::tiny());
        let rows = free_rows(100, 3);
        let _ = LaneCounter::new(&mut m, &rows, 5);
    }
}
