//! Offered-load campaign against the `felim-serve` request service.
//!
//! The Fig 6 drivers evaluate kernels in isolation; this campaign
//! evaluates the *service* wrapped around the same backends: it replays
//! one seeded multi-tenant trace at a ladder of offered-load levels
//! (requests per tick) and reports, per level, how admission control
//! and batching respond — completions, typed rejections, deadline
//! sheds, retries, simulated throughput and latency percentiles. The
//! sweep makes the service's saturation behaviour a first-class,
//! regression-testable artifact: below the knee everything completes;
//! past it `Overloaded` rejections rise while completed-request latency
//! stays bounded by the queue depth.

use felim_serve::{
    generate_trace, BulkService, LatencySummary, ServiceConfig, TraceSpec,
};
use felim_telemetry as telemetry;
use serde::Serialize;

/// Outcome of one offered-load level of a service campaign.
#[derive(Debug, Clone, Serialize)]
pub struct ServiceLoadOutcome {
    /// Requests offered per tick at this level.
    pub per_tick: u32,
    /// Submissions offered in total.
    pub submitted: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Backpressure rejections (shard queues full).
    pub rejected_overloaded: u64,
    /// Fair-share quota rejections.
    pub rejected_quota: u64,
    /// Requests shed at their deadline.
    pub shed_deadline: u64,
    /// Backend failures (including exhausted retries).
    pub failed: u64,
    /// Retry dispatches consumed.
    pub retries: u64,
    /// Completed requests per simulated second.
    pub throughput_rps: f64,
    /// Row-ops executed per simulated second.
    pub row_ops_per_second: f64,
    /// Latency distribution over completed requests, cycles.
    pub latency: LatencySummary,
    /// Simulated seconds the replay spanned.
    pub sim_seconds: f64,
    /// Backend energy over the replay, mJ.
    pub energy_mj: f64,
}

impl ServiceLoadOutcome {
    /// Every submission is accounted: completions + rejections + sheds
    /// + failures sum back to the offered count.
    pub fn fully_accounted(&self, rejected_invalid: u64) -> bool {
        self.completed
            + self.rejected_overloaded
            + self.rejected_quota
            + self.shed_deadline
            + self.failed
            + rejected_invalid
            == self.submitted
    }
}

/// Replays the same seeded trace shape at each offered-load level in
/// `loads` against a fresh service built from `config`, returning one
/// outcome per level (in input order).
///
/// Levels run sequentially — each service already fans its shards out
/// over the worker pool — and every level derives the *same* request
/// mix from `trace.seed`, so levels differ only in arrival density and
/// the sweep isolates the congestion response.
///
/// # Examples
///
/// ```
/// use felim_serve::{ServiceConfig, TraceSpec};
/// use felim_workloads::service_campaign::run_service_campaign;
///
/// let outcomes = run_service_campaign(
///     &ServiceConfig::small(2),
///     &TraceSpec::small(7),
///     &[1, 8],
/// );
/// assert_eq!(outcomes.len(), 2);
/// assert!(outcomes.iter().all(|o| o.fully_accounted(0)));
/// // Identical work at denser arrivals: offered load never *reduces*
/// // what the backends must execute.
/// assert_eq!(outcomes[0].submitted, outcomes[1].submitted);
/// ```
///
/// # Panics
///
/// Panics if the service rejects its own configuration (a bug, not an
/// operating condition).
pub fn run_service_campaign(
    config: &ServiceConfig,
    trace: &TraceSpec,
    loads: &[u32],
) -> Vec<ServiceLoadOutcome> {
    let _span = telemetry::span("service_campaign");
    loads
        .iter()
        .map(|&per_tick| {
            let mut spec = *trace;
            spec.per_tick = per_tick;
            let (vectors, events) = generate_trace(&spec);
            let mut service =
                BulkService::new(config.clone()).expect("campaign config must be valid");
            for (name, rows) in &vectors {
                service
                    .create_vector(name, *rows)
                    .expect("trace vectors must fit the shard pool");
            }
            service.run_trace(&events);
            let report = service.report();
            telemetry::counter("workloads.service_campaign.levels").inc();
            ServiceLoadOutcome {
                per_tick,
                submitted: report.stats.submitted,
                completed: report.stats.completed,
                rejected_overloaded: report.stats.rejected_overloaded,
                rejected_quota: report.stats.rejected_quota,
                shed_deadline: report.stats.shed_deadline,
                failed: report.stats.failed,
                retries: report.stats.retries,
                throughput_rps: report.throughput_rps,
                row_ops_per_second: report.row_ops_per_second,
                latency: report.latency,
                sim_seconds: report.sim_seconds,
                energy_mj: report.energy_mj,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_accounts_every_submission() {
        let outcomes =
            run_service_campaign(&ServiceConfig::small(2), &TraceSpec::small(3), &[2, 16]);
        assert_eq!(outcomes.len(), 2);
        for o in &outcomes {
            assert!(o.fully_accounted(0), "unaccounted submissions: {o:?}");
            assert!(o.completed > 0);
            assert!(o.sim_seconds > 0.0);
        }
    }

    #[test]
    fn saturating_load_triggers_backpressure_not_loss() {
        let mut config = ServiceConfig::small(1);
        config.queue_depth = 4;
        config.batch_window = 1;
        config.tenant_quota = Some(4);
        let mut trace = TraceSpec::small(5);
        trace.requests = 96;
        let outcomes = run_service_campaign(&config, &trace, &[32]);
        let o = &outcomes[0];
        assert!(
            o.rejected_overloaded + o.rejected_quota > 0,
            "a 32×-oversubscribed single shard must shed load: {o:?}"
        );
        assert!(o.fully_accounted(0));
    }

    #[test]
    fn campaign_is_deterministic() {
        let run = || {
            serde_json::to_string(&run_service_campaign(
                &ServiceConfig::small(2),
                &TraceSpec::small(11),
                &[4],
            ))
            .unwrap()
        };
        assert_eq!(run(), run());
    }
}
