//! Masked initialisation: `R_i ← (R_i AND NOT M) OR (P AND M)` — writes a
//! pattern `P` into region rows only where the mask `M` is set (the bulk
//! form of a masked memset).

use crate::data::DataGen;
use crate::{Workload, WorkloadError};
use felim_arch::{BulkBackend, RowId};

/// The masked-initialisation workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaskedInit;

impl Workload for MaskedInit {
    fn name(&self) -> &'static str {
        "Masked Initialization"
    }

    fn execute(
        &self,
        backend: &mut dyn BulkBackend,
        data_rows: u64,
        seed: u64,
    ) -> Result<u64, WorkloadError> {
        let words = backend.geometry().row_words();
        let mut gen = DataGen::new(seed, words);
        let mask = gen.sparse_row(0.4);
        let pattern = gen.row();
        let region = gen.rows(data_rows);

        let mask_row = RowId(0);
        let pattern_row = RowId(1);
        backend.install_row(mask_row, &mask)?;
        backend.install_row(pattern_row, &pattern)?;
        let base = 2u64;
        for (i, r) in region.iter().enumerate() {
            backend.install_row(RowId(base + i as u64), r)?;
        }

        let scratch = backend.scratch_rows(3);
        let (not_mask, p_and_m, tmp) = (scratch[0], scratch[1], scratch[2]);
        // Hoisted invariants: NOT M and P AND M are computed once.
        backend.not(mask_row, not_mask)?;
        backend.and(pattern_row, mask_row, p_and_m)?;
        for i in 0..data_rows {
            let r = RowId(base + i);
            backend.and(r, not_mask, tmp)?;
            backend.or(tmp, p_and_m, r)?;
        }

        for (i, original) in region.iter().enumerate() {
            let expect: Vec<u64> = original
                .iter()
                .zip(&mask)
                .zip(&pattern)
                .map(|((&r, &m), &p)| (r & !m) | (p & m))
                .collect();
            let got = backend.read_row(RowId(base + i as u64))?;
            if got != expect {
                return Err(WorkloadError::Verification {
                    workload: self.name(),
                    detail: format!("region row {i} mismatch"),
                });
            }
        }
        Ok(data_rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use felim_arch::{DramBackend, FeramBackend, MemoryGeometry};

    #[test]
    fn verifies_on_both_backends() {
        let mut f = FeramBackend::new(MemoryGeometry::tiny());
        assert_eq!(MaskedInit.execute(&mut f, 12, 5).unwrap(), 12);
        let mut d = DramBackend::new(MemoryGeometry::tiny());
        assert_eq!(MaskedInit.execute(&mut d, 12, 5).unwrap(), 12);
    }

    #[test]
    fn in_place_update_overwrites_region() {
        // The destination *is* the region row — exercised above; also
        // check stats show two ops per row plus the hoisted setup.
        let mut f = FeramBackend::new(MemoryGeometry::tiny());
        MaskedInit.execute(&mut f, 4, 5).unwrap();
        let mut f1 = FeramBackend::new(MemoryGeometry::tiny());
        MaskedInit.execute(&mut f1, 8, 5).unwrap();
        // Doubling rows must not double the hoisted setup cost.
        let delta = f1.stats().total_cycles() as i64 - f.stats().total_cycles() as i64;
        let per_row = delta / 4;
        assert!(per_row > 0);
        let setup = f.stats().total_cycles() as i64 - 4 * per_row;
        assert!(setup > 0, "hoisted NOT/AND must be visible as setup");
    }
}
