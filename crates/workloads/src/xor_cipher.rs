//! XOR stream cipher: `C_i = D_i XOR K` for every data row against a key
//! row — the canonical XOR-dominated bulk workload.

use crate::data::DataGen;
use crate::{Workload, WorkloadError};
use felim_arch::{BulkBackend, RowId};

/// The XOR-cipher workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct XorCipher;

impl Workload for XorCipher {
    fn name(&self) -> &'static str {
        "XOR Cipher"
    }

    fn execute(
        &self,
        backend: &mut dyn BulkBackend,
        data_rows: u64,
        seed: u64,
    ) -> Result<u64, WorkloadError> {
        let words = backend.geometry().row_words();
        let mut gen = DataGen::new(seed, words);
        let key = gen.row();
        let plaintexts = gen.rows(data_rows);

        // Layout: key at row 0, plaintext rows after it, ciphertext rows
        // in a second region.
        let key_row = RowId(0);
        backend.install_row(key_row, &key)?;
        let data_base = 1u64;
        let out_base = 1 + data_rows;
        for (i, p) in plaintexts.iter().enumerate() {
            backend.install_row(RowId(data_base + i as u64), p)?;
        }
        for i in 0..data_rows {
            backend.xor(RowId(data_base + i), key_row, RowId(out_base + i))?;
        }
        // Verify every ciphertext row bit-for-bit.
        for (i, p) in plaintexts.iter().enumerate() {
            let expect: Vec<u64> = p.iter().zip(&key).map(|(&d, &k)| d ^ k).collect();
            let got = backend.read_row(RowId(out_base + i as u64))?;
            if got != expect {
                return Err(WorkloadError::Verification {
                    workload: self.name(),
                    detail: format!("ciphertext row {i} mismatch"),
                });
            }
        }
        Ok(data_rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use felim_arch::{DramBackend, FeramBackend, MemoryGeometry};

    #[test]
    fn verifies_on_both_backends() {
        let mut f = FeramBackend::new(MemoryGeometry::tiny());
        assert_eq!(XorCipher.execute(&mut f, 8, 1).unwrap(), 8);
        let mut d = DramBackend::new(MemoryGeometry::tiny());
        assert_eq!(XorCipher.execute(&mut d, 8, 1).unwrap(), 8);
    }

    #[test]
    fn feram_wins_on_energy() {
        let mut f = FeramBackend::new(MemoryGeometry::tiny());
        XorCipher.execute(&mut f, 16, 2).unwrap();
        let mut d = DramBackend::new(MemoryGeometry::tiny());
        XorCipher.execute(&mut d, 16, 2).unwrap();
        assert!(d.stats().total_energy_nj() > f.stats().total_energy_nj());
        assert!(d.stats().total_cycles() > f.stats().total_cycles());
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut f = FeramBackend::new(MemoryGeometry::tiny());
            XorCipher.execute(&mut f, 4, 7).unwrap();
            f.stats().clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn injected_faults_are_detected_not_silent() {
        // Without any degradation policy, aggressive sense faults must
        // surface as a Verification error — never as a clean Ok.
        let mut f = FeramBackend::new(MemoryGeometry::tiny()).with_fault_injection(0.05, 3);
        let err = XorCipher.execute(&mut f, 8, 1).unwrap_err();
        assert!(matches!(err, WorkloadError::Verification { .. }));
    }
}
