//! Deterministic synthetic datasets.
//!
//! The paper's applications run over proprietary 1 GB datasets; bulk-
//! bitwise primitive counts depend only on data *size and layout*, never
//! on values, so seeded pseudo-random rows preserve the evaluation while
//! the values still exercise functional verification.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Content-addressed replay cache for [`DataGen::sparse_row`].
///
/// A sparse row costs one RNG draw per bit (the draw stream is pinned by
/// the Fig 6 goldens), which makes regeneration the dominant cost of the
/// set/bitmap workloads — and every technology sweep regenerates the
/// identical rows. The generator state *before* a row, together with the
/// density and width, uniquely determines both the bits and the state
/// after, so a `(state, density, width) → (bits, state')` map is an exact
/// memoization: on a hit the generator fast-forwards to the recorded
/// state and the returned row is bit-identical to a fresh generation.
/// Values depend only on their key, so the cache is deterministic under
/// any thread interleaving.
type SparseKey = ([u64; 4], u64, usize);

struct CachedSparseRow {
    bits: Vec<u64>,
    state_after: [u64; 4],
}

/// Bound on distinct cached rows (8 KiB each at bench width) so a long
/// exploratory run cannot grow the cache without limit.
const SPARSE_CACHE_CAP: usize = 4096;

fn sparse_cache() -> &'static Mutex<HashMap<SparseKey, CachedSparseRow>> {
    static CACHE: OnceLock<Mutex<HashMap<SparseKey, CachedSparseRow>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Deterministic row-data generator.
#[derive(Debug)]
pub struct DataGen {
    rng: StdRng,
    row_words: usize,
}

impl DataGen {
    /// Creates a generator for rows of `row_words` 64-bit words.
    pub fn new(seed: u64, row_words: usize) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            row_words,
        }
    }

    /// One uniformly random row.
    pub fn row(&mut self) -> Vec<u64> {
        (0..self.row_words).map(|_| self.rng.gen()).collect()
    }

    /// `n` uniformly random rows.
    pub fn rows(&mut self, n: u64) -> Vec<Vec<u64>> {
        (0..n).map(|_| self.row()).collect()
    }

    /// A sparse bitmap row where each bit is set with probability
    /// `density` (models set/bitmap workload data).
    ///
    /// # Panics
    ///
    /// Panics unless `density` is a probability.
    pub fn sparse_row(&mut self, density: f64) -> Vec<u64> {
        use rand::RngCore;
        assert!(
            (0.0..=1.0).contains(&density),
            "density {density} is not a probability"
        );
        // One Bernoulli draw per bit, in bit order — the draw stream is
        // pinned by the Fig 6 golden tests, so only the per-draw cost may
        // change here, never the draw count or order. `gen_bool(p)` is
        // `(next_u64() >> 11) * 2^-53 < p`; scaling both sides by 2^53 is
        // an exact exponent shift, and for an integer left side `k < f`
        // equals `k < ceil(f)`, so the same boolean falls out of a pure
        // integer compare.
        let key = (self.rng.state(), density.to_bits(), self.row_words);
        {
            let cache = sparse_cache()
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(hit) = cache.get(&key) {
                felim_telemetry::counter("datagen.sparse_hits").inc();
                self.rng = StdRng::from_state(hit.state_after);
                return hit.bits.clone();
            }
        }
        felim_telemetry::counter("datagen.sparse_misses").inc();
        let threshold = (density * (1u64 << 53) as f64).ceil() as u64;
        let row: Vec<u64> = (0..self.row_words)
            .map(|_| {
                let mut w = 0u64;
                for b in 0..64 {
                    w |= (((self.rng.next_u64() >> 11) < threshold) as u64) << b;
                }
                w
            })
            .collect();
        let mut cache = sparse_cache()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if cache.len() < SPARSE_CACHE_CAP {
            cache.insert(
                key,
                CachedSparseRow {
                    bits: row.clone(),
                    state_after: self.rng.state(),
                },
            );
        }
        row
    }

    /// One random 64-bit word.
    pub fn word(&mut self) -> u64 {
        self.rng.gen()
    }

    /// A random boolean with the given probability.
    pub fn coin(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p)
    }
}

/// Extracts bit `lane` of every word-row in `rows` as a lane-serial bit
/// vector — used to verify bit-sliced workloads lane by lane.
pub fn lane_bits(rows: &[Vec<u64>], lane: usize) -> Vec<bool> {
    let (word, bit) = (lane / 64, lane % 64);
    rows.iter().map(|r| (r[word] >> bit) & 1 == 1).collect()
}

/// Sets bit `lane` of `row` to `value`.
pub fn set_lane_bit(row: &mut [u64], lane: usize, value: bool) {
    let (word, bit) = (lane / 64, lane % 64);
    if value {
        row[word] |= 1 << bit;
    } else {
        row[word] &= !(1 << bit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let mut a = DataGen::new(7, 16);
        let mut b = DataGen::new(7, 16);
        assert_eq!(a.rows(5), b.rows(5));
        let mut c = DataGen::new(8, 16);
        assert_ne!(a.row(), c.row());
    }

    #[test]
    fn sparse_replay_cache_preserves_stream() {
        // Same seed twice: the second run hits the replay cache, and both
        // the row bits and the generator state afterwards (observed via
        // the next draw) must match a fresh generation exactly.
        let mut a = DataGen::new(99, 32);
        let r1 = a.sparse_row(0.3);
        let w1 = a.word();
        let mut b = DataGen::new(99, 32);
        let r2 = b.sparse_row(0.3);
        let w2 = b.word();
        assert_eq!(r1, r2);
        assert_eq!(w1, w2);
        // Different density at the same state is a different key.
        let mut c = DataGen::new(99, 32);
        assert_ne!(c.sparse_row(0.9), r1);
    }

    #[test]
    fn sparse_rows_respect_density() {
        let mut g = DataGen::new(1, 64);
        let row = g.sparse_row(0.1);
        let ones: u32 = row.iter().map(|w| w.count_ones()).sum();
        let total = 64.0 * 64.0;
        let frac = ones as f64 / total;
        assert!((frac - 0.1).abs() < 0.05, "density {frac}");
    }

    #[test]
    fn lane_bit_roundtrip() {
        let mut row = vec![0u64; 4];
        set_lane_bit(&mut row, 70, true);
        assert_eq!(row[1], 1 << 6);
        let rows = vec![row.clone(), vec![0u64; 4]];
        let bits = lane_bits(&rows, 70);
        assert_eq!(bits, vec![true, false]);
        set_lane_bit(&mut row, 70, false);
        assert_eq!(row[1], 0);
    }
}
