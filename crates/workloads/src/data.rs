//! Deterministic synthetic datasets.
//!
//! The paper's applications run over proprietary 1 GB datasets; bulk-
//! bitwise primitive counts depend only on data *size and layout*, never
//! on values, so seeded pseudo-random rows preserve the evaluation while
//! the values still exercise functional verification.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic row-data generator.
#[derive(Debug)]
pub struct DataGen {
    rng: StdRng,
    row_words: usize,
}

impl DataGen {
    /// Creates a generator for rows of `row_words` 64-bit words.
    pub fn new(seed: u64, row_words: usize) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            row_words,
        }
    }

    /// One uniformly random row.
    pub fn row(&mut self) -> Vec<u64> {
        (0..self.row_words).map(|_| self.rng.gen()).collect()
    }

    /// `n` uniformly random rows.
    pub fn rows(&mut self, n: u64) -> Vec<Vec<u64>> {
        (0..n).map(|_| self.row()).collect()
    }

    /// A sparse bitmap row where each bit is set with probability
    /// `density` (models set/bitmap workload data).
    pub fn sparse_row(&mut self, density: f64) -> Vec<u64> {
        (0..self.row_words)
            .map(|_| {
                let mut w = 0u64;
                for b in 0..64 {
                    if self.rng.gen_bool(density) {
                        w |= 1 << b;
                    }
                }
                w
            })
            .collect()
    }

    /// One random 64-bit word.
    pub fn word(&mut self) -> u64 {
        self.rng.gen()
    }

    /// A random boolean with the given probability.
    pub fn coin(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p)
    }
}

/// Extracts bit `lane` of every word-row in `rows` as a lane-serial bit
/// vector — used to verify bit-sliced workloads lane by lane.
pub fn lane_bits(rows: &[Vec<u64>], lane: usize) -> Vec<bool> {
    let (word, bit) = (lane / 64, lane % 64);
    rows.iter().map(|r| (r[word] >> bit) & 1 == 1).collect()
}

/// Sets bit `lane` of `row` to `value`.
pub fn set_lane_bit(row: &mut [u64], lane: usize, value: bool) {
    let (word, bit) = (lane / 64, lane % 64);
    if value {
        row[word] |= 1 << bit;
    } else {
        row[word] &= !(1 << bit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let mut a = DataGen::new(7, 16);
        let mut b = DataGen::new(7, 16);
        assert_eq!(a.rows(5), b.rows(5));
        let mut c = DataGen::new(8, 16);
        assert_ne!(a.row(), c.row());
    }

    #[test]
    fn sparse_rows_respect_density() {
        let mut g = DataGen::new(1, 64);
        let row = g.sparse_row(0.1);
        let ones: u32 = row.iter().map(|w| w.count_ones()).sum();
        let total = 64.0 * 64.0;
        let frac = ones as f64 / total;
        assert!((frac - 0.1).abs() < 0.05, "density {frac}");
    }

    #[test]
    fn lane_bit_roundtrip() {
        let mut row = vec![0u64; 4];
        set_lane_bit(&mut row, 70, true);
        assert_eq!(row[1], 1 << 6);
        let rows = vec![row.clone(), vec![0u64; 4]];
        let bits = lane_bits(&rows, 70);
        assert_eq!(bits, vec![true, false]);
        set_lane_bit(&mut row, 70, false);
        assert_eq!(row[1], 0);
    }
}
