//! CRC8 over row-parallel lanes.
//!
//! Every bit position of a row is an independent message lane (65536
//! lanes for an 8 KB row): message bit `r` of lane `j` is bit `j` of data
//! row `r`. The CRC-8/ATM polynomial `x⁸ + x² + x + 1` (0x07) is evaluated
//! bit-serially with three row-XORs per message bit:
//!
//! ```text
//! fb = s7 XOR in;  s' = [fb, s0⊕fb, s1⊕fb, s2, s3, s4, s5, s6]
//! ```
//!
//! Register *renaming* (the rotation of `s`) is pointer bookkeeping in the
//! memory controller, not data movement, so it costs nothing — exactly as
//! in a real bulk-bitwise deployment.

use crate::data::{lane_bits, DataGen};
use crate::{Workload, WorkloadError};
use felim_arch::{BulkBackend, RowId};

/// The CRC-8/ATM generator polynomial (without the implicit x⁸ term).
pub const CRC8_POLY: u8 = 0x07;

/// Software reference: CRC8 of a bit sequence (MSB-first shift form,
/// zero initial value), matching the bit-serial LFSR exactly.
pub fn crc8_bits(bits: &[bool]) -> u8 {
    let mut state = 0u8;
    for &b in bits {
        let fb = ((state >> 7) & 1 == 1) ^ b;
        state <<= 1;
        if fb {
            // 0x07 = x² + x + 1: taps at bits 2, 1 and 0.
            state ^= CRC8_POLY;
        }
    }
    state
}

/// The CRC8 workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Crc8;

impl Workload for Crc8 {
    fn name(&self) -> &'static str {
        "CRC8"
    }

    fn execute(
        &self,
        backend: &mut dyn BulkBackend,
        data_rows: u64,
        seed: u64,
    ) -> Result<u64, WorkloadError> {
        let words = backend.geometry().row_words();
        let mut gen = DataGen::new(seed, words);
        let message_rows = gen.rows(data_rows);
        let data_base = 0u64;
        for (i, r) in message_rows.iter().enumerate() {
            backend.install_row(RowId(data_base + i as u64), r)?;
        }

        // Eight bit-sliced CRC state rows + feedback scratch, zeroed.
        let state_base = data_rows;
        let zeros = vec![0u64; words];
        let mut state: Vec<RowId> = (0..8).map(|k| RowId(state_base + k)).collect();
        for &s in &state {
            backend.write_row(s, &zeros)?;
        }
        let fb = RowId(state_base + 8);

        for r in 0..data_rows {
            // fb = s7 XOR in
            backend.xor(state[7], RowId(data_base + r), fb)?;
            // Logical shift: rotate the register file (free renaming),
            // then fix up the tapped positions.
            state.rotate_right(1);
            // After rotation: state[0] is the old s7 slot → must become fb.
            backend.copy(fb, state[0])?;
            // s1' = s0_old ⊕ fb lives at state[1]; s2' = s1_old ⊕ fb at [2].
            backend.xor(state[1], fb, state[1])?;
            backend.xor(state[2], fb, state[2])?;
        }

        // Verify: every lane's CRC against the software reference.
        let mut state_rows: Vec<Vec<u64>> = Vec::with_capacity(8);
        for &s in &state {
            state_rows.push(backend.read_row(s)?);
        }
        let lanes = words * 64;
        let sample_step = (lanes / 257).max(1); // spot-check ≥257 lanes
        for lane in (0..lanes).step_by(sample_step) {
            let bits = lane_bits(&message_rows, lane);
            let expect = crc8_bits(&bits);
            let mut got = 0u8;
            for (k, srow) in state_rows.iter().enumerate() {
                if lane_bits(std::slice::from_ref(srow), lane)[0] {
                    got |= 1 << k;
                }
            }
            if got != expect {
                return Err(WorkloadError::Verification {
                    workload: self.name(),
                    detail: format!("lane {lane}: got {got:#04x}, expected {expect:#04x}"),
                });
            }
        }
        Ok(data_rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use felim_arch::{DramBackend, FeramBackend, MemoryGeometry};

    #[test]
    fn reference_crc_known_values() {
        // All-zero message → zero CRC.
        assert_eq!(crc8_bits(&[false; 16]), 0);
        // Single 1 into an empty register lights exactly the taps.
        assert_eq!(crc8_bits(&[true]), CRC8_POLY);
        // Longer messages stay in range and are deterministic.
        let bits: Vec<bool> = (0..100).map(|i| i % 3 == 0).collect();
        assert_eq!(crc8_bits(&bits), crc8_bits(&bits));
    }

    #[test]
    fn verifies_on_feram() {
        let mut f = FeramBackend::new(MemoryGeometry::tiny());
        assert_eq!(Crc8.execute(&mut f, 24, 11).unwrap(), 24);
    }

    #[test]
    fn verifies_on_dram() {
        let mut d = DramBackend::new(MemoryGeometry::tiny());
        assert_eq!(Crc8.execute(&mut d, 24, 11).unwrap(), 24);
    }

    #[test]
    fn cost_scales_linearly_with_message_length() {
        let cycles = |rows: u64| {
            let mut f = FeramBackend::new(MemoryGeometry::tiny());
            Crc8.execute(&mut f, rows, 11).unwrap();
            f.stats().total_cycles()
        };
        let c8 = cycles(8);
        let c16 = cycles(16);
        let c24 = cycles(24);
        assert_eq!(c24 - c16, c16 - c8, "per-row cost must be constant");
    }
}
