//! Workload driver: scaled execution + analytic extrapolation to the
//! paper's 1 GB workload size, with DRAM refresh applied to the
//! extrapolated runtime — plus fault-injection campaigns that run every
//! kernel under a configurable fault environment and degradation policy
//! and classify the outcome of every injected fault.

use crate::{Workload, WorkloadError};
use felim_arch::{
    ArchError, BulkBackend, ControllerConfig, DegradationPolicy, DramBackend, DriftSpec,
    ExecStats, FaultSpec, FeramBackend, MemoryGeometry, ReliabilityController, ReliabilityStats,
};
use felim_telemetry as telemetry;
use serde::{Deserialize, Serialize};

/// Memory technology under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tech {
    /// 1T-1C DRAM with Ambit AAP primitives and 64 ms refresh.
    Dram,
    /// 2T-nC FeRAM with ACP/TBA primitives.
    Feram,
}

impl Tech {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Tech::Dram => "DRAM",
            Tech::Feram => "2T-nC FeRAM",
        }
    }
}

/// Constructs a backend of the given technology over the paper geometry.
pub fn make_backend(tech: Tech, geometry: MemoryGeometry) -> Box<dyn BulkBackend> {
    match tech {
        Tech::Dram => Box::new(DramBackend::new(geometry)),
        Tech::Feram => Box::new(FeramBackend::new(geometry)),
    }
}

/// Result of a scaled workload run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadResult {
    /// Workload display name.
    pub workload: String,
    /// Technology executed on.
    pub tech: Tech,
    /// Statistics of the actually-simulated (scaled-down) run.
    pub sim_stats: ExecStats,
    /// Rows of input data actually simulated.
    pub sim_rows: u64,
    /// Extrapolated statistics at the full logical size, including DRAM
    /// refresh for the extrapolated runtime.
    pub scaled: ExecStats,
    /// Extrapolated wall-clock runtime, in seconds.
    pub runtime_s: f64,
    /// Extrapolated energy, in mJ.
    pub energy_mj: f64,
    /// Did the in-memory result match the software reference?
    /// (Execution returns an error otherwise, so this is always true on
    /// a successful return — recorded for result serialisation.)
    pub verified: bool,
}

/// Runs `workload` on `tech` with `sim_rows` rows of simulated data and
/// extrapolates to `logical_bytes` of workload data (the paper uses 1 GB).
///
/// Bulk-bitwise primitive counts are exactly linear in the number of data
/// rows, so the extrapolation multiplies the simulated statistics by
/// `logical_rows / sim_rows` and then adds DRAM refresh energy/cycles for
/// the extrapolated runtime over the extrapolated resident region.
///
/// # Panics
///
/// Panics if `sim_rows` is zero.
///
/// # Errors
///
/// Propagates backend faults and verification mismatches from the
/// workload kernel.
///
/// # Examples
///
/// Run the XOR-cipher kernel on the FeRAM backend at a small simulated
/// scale, extrapolated to 1 MiB:
///
/// ```
/// use felim_workloads::driver::{run_workload, Tech};
/// use felim_workloads::xor_cipher::XorCipher;
///
/// let r = run_workload(&XorCipher, Tech::Feram, 16, 1 << 20, 7)?;
/// assert_eq!(r.tech, Tech::Feram);
/// assert!(r.verified);
/// assert!(r.scaled.total_cycles() > r.sim_stats.total_cycles());
/// # Ok::<(), felim_workloads::WorkloadError>(())
/// ```
pub fn run_workload(
    workload: &dyn Workload,
    tech: Tech,
    sim_rows: u64,
    logical_bytes: u64,
    seed: u64,
) -> Result<WorkloadResult, WorkloadError> {
    assert!(sim_rows > 0, "need at least one simulated row");
    let geometry = MemoryGeometry::paper_8gb();
    let mut backend = make_backend(tech, geometry);
    let consumed = {
        let _span = telemetry::span(workload.name());
        workload.execute(backend.as_mut(), sim_rows, seed)?
    };
    let sim_stats = backend.stats().clone();
    telemetry::counter("workloads.runs").inc();
    telemetry::counter("workloads.rows_simulated").add(consumed);
    if telemetry::enabled() {
        telemetry::counter(&format!("workloads.commands.{}", workload.name()))
            .add(sim_stats.total_commands());
    }

    let logical_rows = geometry.rows_for_bytes(logical_bytes);
    let factor = logical_rows as f64 / consumed as f64;
    let mut scaled = sim_stats.scaled(factor);

    let latency = felim_arch::LatencyModel::paper_default();
    let runtime_core = latency.seconds(scaled.total_cycles());
    if tech == Tech::Dram {
        // Refresh the resident region (inputs + outputs ≈ 2× data rows)
        // once per elapsed 64 ms window of the extrapolated runtime.
        let live_rows = 2 * logical_rows;
        let refresh = DramBackend::refresh_stats(
            &felim_arch::EnergyModel::dram(),
            &latency,
            runtime_core,
            live_rows,
        );
        scaled.merge(&refresh);
    }
    let runtime_s = latency.seconds(scaled.total_cycles());

    Ok(WorkloadResult {
        workload: workload.name().to_owned(),
        tech,
        sim_stats,
        sim_rows: consumed,
        energy_mj: scaled.total_energy_mj(),
        scaled,
        runtime_s,
        verified: true,
    })
}

/// Side-by-side DRAM vs FeRAM comparison for one workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Comparison {
    /// Workload name.
    pub workload: String,
    /// DRAM result.
    pub dram: WorkloadResult,
    /// FeRAM result.
    pub feram: WorkloadResult,
}

impl Comparison {
    /// DRAM energy / FeRAM energy (the paper's headline metric — higher
    /// means FeRAM wins harder).
    pub fn energy_ratio(&self) -> f64 {
        self.dram.energy_mj / self.feram.energy_mj
    }

    /// DRAM cycles / FeRAM cycles.
    pub fn cycle_ratio(&self) -> f64 {
        self.dram.scaled.total_cycles() as f64 / self.feram.scaled.total_cycles() as f64
    }
}

/// Runs one workload on both technologies.
///
/// # Errors
///
/// Propagates backend faults and verification mismatches.
pub fn compare(
    workload: &dyn Workload,
    sim_rows: u64,
    logical_bytes: u64,
    seed: u64,
) -> Result<Comparison, WorkloadError> {
    Ok(Comparison {
        workload: workload.name().to_owned(),
        dram: run_workload(workload, Tech::Dram, sim_rows, logical_bytes, seed)?,
        feram: run_workload(workload, Tech::Feram, sim_rows, logical_bytes, seed)?,
    })
}

/// Geometric mean of an iterator of ratios.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        f64::NAN
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Outcome of one workload kernel under fault injection.
///
/// Every injected fault ends up in exactly one bucket:
///
/// * **corrected** — repaired in place by the degradation policy
///   (verify-retry, triple sensing/reading) before it reached state;
/// * **detected** — it corrupted state, and the corruption surfaced as a
///   typed error or a verification failure (`error` holds the message);
/// * **silent** — it corrupted state and the run still reported success.
///   A robust memory never produces these.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CampaignOutcome {
    /// Workload display name.
    pub workload: String,
    /// Did the kernel run to completion and verify?
    pub completed: bool,
    /// The surfaced error, if the run failed.
    pub error: Option<String>,
    /// Bits flipped by the injector across all fault paths.
    pub injected_faults: u64,
    /// Faults repaired by the policy before they corrupted state.
    pub corrected_faults: u64,
    /// State corruptions caught by an error or failed verification.
    pub detected_faults: u64,
    /// State corruptions that went unreported — must be zero.
    pub silent_corruptions: u64,
    /// The backend's full reliability ledger for this run.
    pub reliability: ReliabilityStats,
}

/// Runs every paper workload on a fault-injecting FeRAM backend and
/// classifies each injected fault as corrected, detected or silent.
///
/// Each kernel gets a fresh backend over the small test geometry with a
/// per-workload injector seed derived deterministically from
/// `spec.seed`, so the whole campaign is reproducible bit for bit from
/// `(sim_rows, seed, spec, policy)`. The kernels are fully independent
/// trials, so they fan out over the scoped thread pool; outcomes come
/// back in workload order regardless of the worker count.
///
/// # Examples
///
/// The hardened degradation policy must leave no injected fault silent:
///
/// ```
/// use felim_arch::{DegradationPolicy, FaultSpec};
/// use felim_workloads::driver::run_fault_campaign;
///
/// let spec = FaultSpec::from_failure_rate(2e-4, 1);
/// let outcomes = run_fault_campaign(16, 1, &spec, &DegradationPolicy::hardened());
/// assert_eq!(outcomes.len(), 8); // one per paper workload
/// assert!(outcomes.iter().all(|o| o.silent_corruptions == 0));
/// ```
pub fn run_fault_campaign(
    sim_rows: u64,
    seed: u64,
    spec: &FaultSpec,
    policy: &DegradationPolicy,
) -> Vec<CampaignOutcome> {
    let _span = telemetry::span("fault_campaign");
    let workloads = crate::all_workloads();
    felim_exec::parallel_map(&workloads, |i, workload| {
        // Distinct but deterministic noise stream per kernel.
        let kernel_spec = FaultSpec {
            seed: spec.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ..spec.clone()
        };
        let mut backend = FeramBackend::new(MemoryGeometry::tiny())
            .with_faults(kernel_spec)
            .with_policy(policy.clone());
        let result = {
            let _span = telemetry::span(workload.name());
            workload.execute(&mut backend, sim_rows, seed)
        };
        let reliability = backend.reliability_stats().clone();
        let escaped = reliability.escaped_faults;
        let (completed, error) = match result {
            Ok(_) => (true, None),
            Err(e) => (false, Some(e.to_string())),
        };
        telemetry::counter("campaign.kernels").inc();
        telemetry::counter("campaign.injected_faults").add(reliability.injected());
        telemetry::counter("campaign.corrected_faults").add(reliability.corrected());
        if !completed {
            telemetry::counter("campaign.failed_kernels").inc();
        }
        CampaignOutcome {
            workload: workload.name().to_owned(),
            completed,
            error,
            injected_faults: reliability.injected(),
            corrected_faults: reliability.corrected(),
            // An escape either surfaced (run failed → detected) or
            // it did not (run "succeeded" → silent corruption).
            detected_faults: if completed { 0 } else { escaped },
            silent_corruptions: if completed { escaped } else { 0 },
            reliability,
        }
    })
}

/// Total silent corruptions across a campaign — the headline robustness
/// number, which must be zero under a hardened policy.
pub fn campaign_silent_corruptions(outcomes: &[CampaignOutcome]) -> u64 {
    outcomes.iter().map(|o| o.silent_corruptions).sum()
}

/// Protection tier of a reliability campaign — one notch beyond the
/// [`DegradationPolicy`] ladder. The degradation policy defends the
/// *compute* path (verify-retry, triple sensing); these tiers defend
/// *storage at rest* against the physics-driven drift processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum ReliabilityTier {
    /// Drift runs, nothing defends: even `DegradationPolicy::hardened`
    /// is blind to storage decay, so this tier leaks silently.
    Unprotected,
    /// Per-row SECDED: single upsets corrected, doubles escalated.
    EccOnly,
    /// SECDED plus the patrol scrubber: upsets are repaired before a
    /// second one can land in the same word.
    Protected,
}

impl ReliabilityTier {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ReliabilityTier::Unprotected => "unprotected",
            ReliabilityTier::EccOnly => "ecc-only",
            ReliabilityTier::Protected => "ecc+scrub",
        }
    }
}

/// Operating point of a reliability campaign: the drift environment,
/// the protection tier, and the post-kernel dwell during which storage
/// decays.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ReliabilityCampaignSpec {
    /// The drift environment (seed, temperature, physics models).
    pub drift: DriftSpec,
    /// Protection tier under test.
    pub tier: ReliabilityTier,
    /// Patrol period for [`ReliabilityTier::Protected`], s.
    pub scrub_period_s: f64,
    /// Length of one dwell tick, s.
    pub tick_s: f64,
    /// Number of dwell ticks after the kernel completes.
    pub dwell_ticks: u32,
}

impl ReliabilityCampaignSpec {
    /// The standard bake-oven operating point: the accelerated-stress
    /// drift spec at a 390 K bake with the sense window opened to 0.6 V
    /// so the smooth retention hazard dominates (the imprint burst stays
    /// inside the guard band), a 300 s patrol, and a 30-minute dwell.
    /// At this point the unprotected tier provably leaks silent
    /// corruptions while ECC + scrub holds the line.
    pub fn bake_oven(seed: u64, tier: ReliabilityTier) -> Self {
        let mut drift = DriftSpec::accelerated(seed, 390.0, 0.0);
        drift.sense_margin_v = 0.6;
        Self {
            drift,
            tier,
            scrub_period_s: 300.0,
            tick_s: 300.0,
            dwell_ticks: 6,
        }
    }
}

/// Outcome of one workload kernel under a drift-driven reliability
/// campaign: the kernel runs, its results dwell at temperature while
/// the fault processes tick, and a readback classifies every tracked
/// row as intact, detected (typed [`ArchError::Uncorrectable`]) or
/// silently corrupt.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ReliabilityOutcome {
    /// Workload display name.
    pub workload: String,
    /// Protection tier the kernel ran under.
    pub tier: ReliabilityTier,
    /// Did the kernel itself run to completion and verify?
    pub completed: bool,
    /// The surfaced error, if any step failed.
    pub error: Option<String>,
    /// Rows snapshotted after the kernel and audited after the dwell.
    pub rows_audited: u64,
    /// Storage bits flipped by the drift processes.
    pub drift_flips: u64,
    /// Data bits repaired by SECDED across all reads.
    pub corrected_bits: u64,
    /// Readback rows that escalated as uncorrectable — reported escapes.
    pub detected_rows: u64,
    /// Readback rows that returned wrong data with no error — silent
    /// corruption, which a protected memory must never produce.
    pub silent_rows: u64,
    /// Patrol passes completed during the dwell.
    pub scrub_passes: u64,
    /// Rows rewritten by the patrol.
    pub scrub_rewrites: u64,
    /// Total cycles charged, including scrub overhead.
    pub cycles: u64,
    /// Total energy charged, including scrub overhead, nJ.
    pub energy_nj: f64,
}

/// Runs every paper workload under a physics-driven reliability
/// campaign: execute the kernel through a
/// [`ReliabilityController`] at the spec's protection tier, snapshot
/// the rows it left behind, dwell while the drift processes tick, then
/// read everything back and classify each row.
///
/// Per-kernel drift seeds derive deterministically from
/// `spec.drift.seed`, so the whole campaign reproduces bit for bit;
/// kernels are independent trials and fan out over the scoped thread
/// pool.
///
/// # Examples
///
/// At the bake-oven operating point, ECC + scrub never corrupts
/// silently:
///
/// ```
/// use felim_workloads::driver::{
///     campaign_silent_rows, run_reliability_campaign, ReliabilityCampaignSpec,
///     ReliabilityTier,
/// };
/// use felim_arch::DegradationPolicy;
///
/// let spec = ReliabilityCampaignSpec::bake_oven(42, ReliabilityTier::Protected);
/// let outcomes = run_reliability_campaign(8, 7, &spec, &DegradationPolicy::hardened());
/// assert_eq!(outcomes.len(), 8); // one per paper workload
/// assert_eq!(campaign_silent_rows(&outcomes), 0);
/// ```
pub fn run_reliability_campaign(
    sim_rows: u64,
    seed: u64,
    spec: &ReliabilityCampaignSpec,
    policy: &DegradationPolicy,
) -> Vec<ReliabilityOutcome> {
    let _span = telemetry::span("reliability_campaign");
    let workloads = crate::all_workloads();
    felim_exec::parallel_map(&workloads, |i, workload| {
        // Distinct but deterministic drift stream per kernel.
        let mut drift = spec.drift.clone();
        drift.seed ^= (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let config = match spec.tier {
            ReliabilityTier::Unprotected => ControllerConfig::unprotected(drift),
            ReliabilityTier::EccOnly => ControllerConfig::ecc_only(drift),
            ReliabilityTier::Protected => {
                ControllerConfig::protected(drift, spec.scrub_period_s)
            }
        };
        let backend = FeramBackend::new(MemoryGeometry::tiny()).with_policy(policy.clone());
        let mut mem = ReliabilityController::new(backend, config);

        let run = {
            let _span = telemetry::span(workload.name());
            workload.execute(&mut mem, sim_rows, seed)
        };
        let completed = run.is_ok();
        let mut error = run.err().map(|e| e.to_string());

        // Snapshot what the kernel left behind, dwell at temperature,
        // then audit every snapshotted row.
        let mut rows_audited = 0u64;
        let mut detected_rows = 0u64;
        let mut silent_rows = 0u64;
        if completed {
            let rows = mem.drift().tracked_rows();
            let mut snapshots = Vec::with_capacity(rows.len());
            for &row in &rows {
                if let Ok(data) = mem.read_row(row) {
                    snapshots.push((row, data));
                }
            }
            for _ in 0..spec.dwell_ticks {
                if let Err(e) = mem.tick(spec.tick_s) {
                    error.get_or_insert_with(|| e.to_string());
                    break;
                }
            }
            rows_audited = snapshots.len() as u64;
            for (row, golden) in &snapshots {
                match mem.read_row(*row) {
                    Ok(data) if data == *golden => {}
                    Ok(_) => silent_rows += 1,
                    Err(ArchError::Uncorrectable { .. }) => detected_rows += 1,
                    Err(e) => {
                        detected_rows += 1;
                        error.get_or_insert_with(|| e.to_string());
                    }
                }
            }
        }

        telemetry::counter("campaign.reliability_kernels").inc();
        telemetry::counter("campaign.silent_rows").add(silent_rows);
        let stats = mem.controller_stats().clone();
        ReliabilityOutcome {
            workload: workload.name().to_owned(),
            tier: spec.tier,
            completed,
            error,
            rows_audited,
            drift_flips: mem.drift().flips_injected(),
            corrected_bits: stats.corrected_bits,
            detected_rows,
            silent_rows,
            scrub_passes: stats.scrub_passes,
            scrub_rewrites: stats.scrub_rewrites,
            cycles: mem.stats().total_cycles(),
            energy_nj: mem.stats().total_energy_nj(),
        }
    })
}

/// Total silently corrupted rows across a reliability campaign — must
/// be zero at any protected tier.
pub fn campaign_silent_rows(outcomes: &[ReliabilityOutcome]) -> u64 {
    outcomes.iter().map(|o| o.silent_rows).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xor_cipher::XorCipher;

    #[test]
    fn scaling_is_linear_in_logical_size() {
        let small = run_workload(&XorCipher, Tech::Feram, 16, 1 << 20, 1).unwrap();
        let large = run_workload(&XorCipher, Tech::Feram, 16, 1 << 24, 1).unwrap();
        let ratio = large.energy_mj / small.energy_mj;
        assert!((ratio - 16.0).abs() < 0.5, "energy ratio {ratio}");
    }

    #[test]
    fn dram_gets_refresh_at_scale() {
        use felim_arch::CommandClass;
        // 1 GB XOR cipher on DRAM runs long enough to cross many 64 ms
        // refresh windows.
        let r = run_workload(&XorCipher, Tech::Dram, 16, 1 << 30, 1).unwrap();
        assert!(r.scaled.count(CommandClass::Refresh) > 0, "no refresh seen");
        let f = run_workload(&XorCipher, Tech::Feram, 16, 1 << 30, 1).unwrap();
        assert_eq!(f.scaled.count(CommandClass::Refresh), 0);
    }

    #[test]
    fn comparison_shows_feram_advantage() {
        let c = compare(&XorCipher, 16, 1 << 30, 1).unwrap();
        assert!(c.energy_ratio() > 1.5, "energy ratio {}", c.energy_ratio());
        assert!(c.cycle_ratio() > 1.2, "cycle ratio {}", c.cycle_ratio());
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean([4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert!((geomean([2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!(geomean(std::iter::empty::<f64>()).is_nan());
    }

    #[test]
    fn fault_campaign_is_reproducible() {
        let spec = FaultSpec::from_failure_rate(2e-4, 42);
        let policy = DegradationPolicy::hardened();
        let a = run_fault_campaign(8, 7, &spec, &policy);
        let b = run_fault_campaign(8, 7, &spec, &policy);
        assert_eq!(a, b, "same seed must reproduce bit for bit");
        assert!(a.iter().any(|o| o.injected_faults > 0), "no faults fired");
    }

    #[test]
    fn reliability_campaign_is_reproducible() {
        let spec = ReliabilityCampaignSpec::bake_oven(42, ReliabilityTier::Protected);
        let policy = DegradationPolicy::hardened();
        let a = run_reliability_campaign(8, 7, &spec, &policy);
        let b = run_reliability_campaign(8, 7, &spec, &policy);
        assert_eq!(a, b, "same seed must reproduce bit for bit");
        assert!(a.iter().all(|o| o.completed));
    }

    #[test]
    fn protected_tier_closes_the_gap_hardened_leaks() {
        // The acceptance point: at the bake-oven operating point the
        // hardened degradation policy alone (compute-path defence only)
        // leaks silent storage corruption, while the controller's
        // ECC + scrub tier reports every escape and corrupts nothing
        // silently.
        let policy = DegradationPolicy::hardened();
        let leaky = ReliabilityCampaignSpec::bake_oven(42, ReliabilityTier::Unprotected);
        let hardened = run_reliability_campaign(8, 7, &leaky, &policy);
        assert!(
            campaign_silent_rows(&hardened) >= 1,
            "hardened must leak at this operating point"
        );

        let guarded = ReliabilityCampaignSpec::bake_oven(42, ReliabilityTier::Protected);
        let protected = run_reliability_campaign(8, 7, &guarded, &policy);
        assert_eq!(campaign_silent_rows(&protected), 0, "no silent corruption");
        assert!(
            protected.iter().map(|o| o.drift_flips).sum::<u64>() > 0,
            "drift must actually fire"
        );
        assert!(
            protected.iter().map(|o| o.corrected_bits).sum::<u64>() > 0,
            "ECC must actually correct"
        );
        assert!(protected.iter().all(|o| o.completed));
    }

    #[test]
    fn unmitigated_faults_never_pass_silently_unnoticed_in_outcomes() {
        // With every mitigation off and meaningful rates, kernels must
        // either fail (detected) or any escape must be attributed.
        let spec = FaultSpec::from_failure_rate(5e-3, 11);
        let policy = DegradationPolicy::none();
        let outcomes = run_fault_campaign(8, 7, &spec, &policy);
        let detected: u64 = outcomes.iter().map(|o| o.detected_faults).sum();
        let failed = outcomes.iter().filter(|o| !o.completed).count();
        assert!(failed > 0, "such rates must break at least one kernel");
        assert!(detected > 0, "failures must carry attributed faults");
        for o in &outcomes {
            assert!(
                o.completed || o.error.is_some(),
                "{}: failed runs must carry an error message",
                o.workload
            );
        }
    }
}
