//! Workload driver: scaled execution + analytic extrapolation to the
//! paper's 1 GB workload size, with DRAM refresh applied to the
//! extrapolated runtime.

use crate::Workload;
use felim_arch::{BulkBackend, DramBackend, ExecStats, FeramBackend, MemoryGeometry};
use serde::{Deserialize, Serialize};

/// Memory technology under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tech {
    /// 1T-1C DRAM with Ambit AAP primitives and 64 ms refresh.
    Dram,
    /// 2T-nC FeRAM with ACP/TBA primitives.
    Feram,
}

impl Tech {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Tech::Dram => "DRAM",
            Tech::Feram => "2T-nC FeRAM",
        }
    }
}

/// Constructs a backend of the given technology over the paper geometry.
pub fn make_backend(tech: Tech, geometry: MemoryGeometry) -> Box<dyn BulkBackend> {
    match tech {
        Tech::Dram => Box::new(DramBackend::new(geometry)),
        Tech::Feram => Box::new(FeramBackend::new(geometry)),
    }
}

/// Result of a scaled workload run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadResult {
    /// Workload display name.
    pub workload: String,
    /// Technology executed on.
    pub tech: Tech,
    /// Statistics of the actually-simulated (scaled-down) run.
    pub sim_stats: ExecStats,
    /// Rows of input data actually simulated.
    pub sim_rows: u64,
    /// Extrapolated statistics at the full logical size, including DRAM
    /// refresh for the extrapolated runtime.
    pub scaled: ExecStats,
    /// Extrapolated wall-clock runtime, in seconds.
    pub runtime_s: f64,
    /// Extrapolated energy, in mJ.
    pub energy_mj: f64,
    /// Did the in-memory result match the software reference?
    /// (Execution panics otherwise, so this is always true on return —
    /// recorded for result serialisation.)
    pub verified: bool,
}

/// Runs `workload` on `tech` with `sim_rows` rows of simulated data and
/// extrapolates to `logical_bytes` of workload data (the paper uses 1 GB).
///
/// Bulk-bitwise primitive counts are exactly linear in the number of data
/// rows, so the extrapolation multiplies the simulated statistics by
/// `logical_rows / sim_rows` and then adds DRAM refresh energy/cycles for
/// the extrapolated runtime over the extrapolated resident region.
///
/// # Panics
///
/// Panics if the in-memory result fails verification, or if `sim_rows`
/// is zero.
pub fn run_workload(
    workload: &dyn Workload,
    tech: Tech,
    sim_rows: u64,
    logical_bytes: u64,
    seed: u64,
) -> WorkloadResult {
    assert!(sim_rows > 0, "need at least one simulated row");
    let geometry = MemoryGeometry::paper_8gb();
    let mut backend = make_backend(tech, geometry);
    let consumed = workload.execute(backend.as_mut(), sim_rows, seed);
    let sim_stats = backend.stats().clone();

    let logical_rows = geometry.rows_for_bytes(logical_bytes);
    let factor = logical_rows as f64 / consumed as f64;
    let mut scaled = sim_stats.scaled(factor);

    let latency = felim_arch::LatencyModel::paper_default();
    let runtime_core = latency.seconds(scaled.total_cycles());
    if tech == Tech::Dram {
        // Refresh the resident region (inputs + outputs ≈ 2× data rows)
        // once per elapsed 64 ms window of the extrapolated runtime.
        let live_rows = 2 * logical_rows;
        let refresh = DramBackend::refresh_stats(
            &felim_arch::EnergyModel::dram(),
            &latency,
            runtime_core,
            live_rows,
        );
        scaled.merge(&refresh);
    }
    let runtime_s = latency.seconds(scaled.total_cycles());

    WorkloadResult {
        workload: workload.name().to_owned(),
        tech,
        sim_stats,
        sim_rows: consumed,
        energy_mj: scaled.total_energy_mj(),
        scaled,
        runtime_s,
        verified: true,
    }
}

/// Side-by-side DRAM vs FeRAM comparison for one workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Comparison {
    /// Workload name.
    pub workload: String,
    /// DRAM result.
    pub dram: WorkloadResult,
    /// FeRAM result.
    pub feram: WorkloadResult,
}

impl Comparison {
    /// DRAM energy / FeRAM energy (the paper's headline metric — higher
    /// means FeRAM wins harder).
    pub fn energy_ratio(&self) -> f64 {
        self.dram.energy_mj / self.feram.energy_mj
    }

    /// DRAM cycles / FeRAM cycles.
    pub fn cycle_ratio(&self) -> f64 {
        self.dram.scaled.total_cycles() as f64 / self.feram.scaled.total_cycles() as f64
    }
}

/// Runs one workload on both technologies.
pub fn compare(
    workload: &dyn Workload,
    sim_rows: u64,
    logical_bytes: u64,
    seed: u64,
) -> Comparison {
    Comparison {
        workload: workload.name().to_owned(),
        dram: run_workload(workload, Tech::Dram, sim_rows, logical_bytes, seed),
        feram: run_workload(workload, Tech::Feram, sim_rows, logical_bytes, seed),
    }
}

/// Geometric mean of an iterator of ratios.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        f64::NAN
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xor_cipher::XorCipher;

    #[test]
    fn scaling_is_linear_in_logical_size() {
        let small = run_workload(&XorCipher, Tech::Feram, 16, 1 << 20, 1);
        let large = run_workload(&XorCipher, Tech::Feram, 16, 1 << 24, 1);
        let ratio = large.energy_mj / small.energy_mj;
        assert!((ratio - 16.0).abs() < 0.5, "energy ratio {ratio}");
    }

    #[test]
    fn dram_gets_refresh_at_scale() {
        use felim_arch::CommandClass;
        // 1 GB XOR cipher on DRAM runs long enough to cross many 64 ms
        // refresh windows.
        let r = run_workload(&XorCipher, Tech::Dram, 16, 1 << 30, 1);
        assert!(r.scaled.count(CommandClass::Refresh) > 0, "no refresh seen");
        let f = run_workload(&XorCipher, Tech::Feram, 16, 1 << 30, 1);
        assert_eq!(f.scaled.count(CommandClass::Refresh), 0);
    }

    #[test]
    fn comparison_shows_feram_advantage() {
        let c = compare(&XorCipher, 16, 1 << 30, 1);
        assert!(c.energy_ratio() > 1.5, "energy ratio {}", c.energy_ratio());
        assert!(c.cycle_ratio() > 1.2, "cycle ratio {}", c.cycle_ratio());
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean([4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert!((geomean([2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!(geomean(std::iter::empty::<f64>()).is_nan());
    }
}
