//! Bitmap index query: evaluate `(A AND B) OR (C AND NOT D)` over four
//! bitmap-index columns — the predicate shape of an analytics query
//! (`WHERE (a AND b) OR (c AND NOT d)`) executed entirely as bulk-bitwise
//! row operations.

use crate::data::DataGen;
use crate::{Workload, WorkloadError};
use felim_arch::{BulkBackend, RowId};

/// The bitmap-index-query workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct BitmapIndex;

impl Workload for BitmapIndex {
    fn name(&self) -> &'static str {
        "Bitmap Index Query"
    }

    fn execute(
        &self,
        backend: &mut dyn BulkBackend,
        data_rows: u64,
        seed: u64,
    ) -> Result<u64, WorkloadError> {
        let words = backend.geometry().row_words();
        let mut gen = DataGen::new(seed, words);
        // Four index columns, each data_rows/4 rows long.
        let chunk = (data_rows / 4).max(1);
        let cols: Vec<Vec<Vec<u64>>> = (0..4)
            .map(|_| (0..chunk).map(|_| gen.sparse_row(0.2)).collect())
            .collect();

        for (c, col) in cols.iter().enumerate() {
            for (i, r) in col.iter().enumerate() {
                backend.install_row(RowId((c as u64) * chunk + i as u64), r)?;
            }
        }
        let out_base = 4 * chunk;
        let scratch = backend.scratch_rows(3);
        let (t1, t2, t3) = (scratch[0], scratch[1], scratch[2]);
        for i in 0..chunk {
            let a = RowId(i);
            let b = RowId(chunk + i);
            let c = RowId(2 * chunk + i);
            let d = RowId(3 * chunk + i);
            backend.and(a, b, t1)?;
            backend.not(d, t2)?;
            backend.and(c, t2, t3)?;
            backend.or(t1, t3, RowId(out_base + i))?;
        }

        for i in 0..chunk {
            let iu = i as usize;
            let expect: Vec<u64> = (0..words)
                .map(|w| {
                    let (a, b, c, d) = (
                        cols[0][iu][w],
                        cols[1][iu][w],
                        cols[2][iu][w],
                        cols[3][iu][w],
                    );
                    (a & b) | (c & !d)
                })
                .collect();
            let got = backend.read_row(RowId(out_base + i))?;
            if got != expect {
                return Err(WorkloadError::Verification {
                    workload: self.name(),
                    detail: format!("query result row {i} mismatch"),
                });
            }
        }
        Ok(4 * chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use felim_arch::{DramBackend, FeramBackend, MemoryGeometry};

    #[test]
    fn verifies_on_both_backends() {
        let mut f = FeramBackend::new(MemoryGeometry::tiny());
        assert_eq!(BitmapIndex.execute(&mut f, 16, 9).unwrap(), 16);
        let mut d = DramBackend::new(MemoryGeometry::tiny());
        assert_eq!(BitmapIndex.execute(&mut d, 16, 9).unwrap(), 16);
    }

    #[test]
    fn feram_advantage_holds() {
        let mut f = FeramBackend::new(MemoryGeometry::tiny());
        BitmapIndex.execute(&mut f, 32, 9).unwrap();
        let mut d = DramBackend::new(MemoryGeometry::tiny());
        BitmapIndex.execute(&mut d, 32, 9).unwrap();
        let e_ratio = d.stats().total_energy_nj() / f.stats().total_energy_nj();
        let c_ratio = d.stats().total_cycles() as f64 / f.stats().total_cycles() as f64;
        assert!(e_ratio > 1.3, "energy ratio {e_ratio}");
        assert!(c_ratio > 1.0, "cycle ratio {c_ratio}");
    }
}
