//! Bitmap set operations: union (OR), intersection (AND) and difference
//! (AND-NOT) over two bitmap regions — three of the paper's eight
//! workloads.

use crate::data::DataGen;
use crate::{Workload, WorkloadError};
use felim_arch::{BulkBackend, RowId};

/// Which set operation to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SetOp {
    Union,
    Intersection,
    Difference,
}

fn run_setop(
    op: SetOp,
    name: &'static str,
    backend: &mut dyn BulkBackend,
    data_rows: u64,
    seed: u64,
) -> Result<u64, WorkloadError> {
    let words = backend.geometry().row_words();
    let mut gen = DataGen::new(seed, words);
    // Two bitmap regions of `data_rows / 2` rows each.
    let half = (data_rows / 2).max(1);
    let set_a: Vec<Vec<u64>> = (0..half).map(|_| gen.sparse_row(0.3)).collect();
    let set_b: Vec<Vec<u64>> = (0..half).map(|_| gen.sparse_row(0.3)).collect();

    let a_base = 0u64;
    let b_base = half;
    let out_base = 2 * half;
    for (i, r) in set_a.iter().enumerate() {
        backend.install_row(RowId(a_base + i as u64), r)?;
    }
    for (i, r) in set_b.iter().enumerate() {
        backend.install_row(RowId(b_base + i as u64), r)?;
    }

    let scratch = backend.scratch_rows(1)[0];
    for i in 0..half {
        let (a, b, d) = (RowId(a_base + i), RowId(b_base + i), RowId(out_base + i));
        match op {
            SetOp::Union => backend.or(a, b, d)?,
            SetOp::Intersection => backend.and(a, b, d)?,
            SetOp::Difference => {
                backend.not(b, scratch)?;
                backend.and(a, scratch, d)?;
            }
        }
    }

    for i in 0..half as usize {
        let expect: Vec<u64> = set_a[i]
            .iter()
            .zip(&set_b[i])
            .map(|(&x, &y)| match op {
                SetOp::Union => x | y,
                SetOp::Intersection => x & y,
                SetOp::Difference => x & !y,
            })
            .collect();
        let got = backend.read_row(RowId(out_base + i as u64))?;
        if got != expect {
            return Err(WorkloadError::Verification {
                workload: name,
                detail: format!("{op:?} row {i} mismatch"),
            });
        }
    }
    Ok(2 * half)
}

/// Set union — row-wise OR of two bitmaps.
#[derive(Debug, Clone, Copy, Default)]
pub struct SetUnion;

impl Workload for SetUnion {
    fn name(&self) -> &'static str {
        "Set Union"
    }
    fn execute(
        &self,
        backend: &mut dyn BulkBackend,
        data_rows: u64,
        seed: u64,
    ) -> Result<u64, WorkloadError> {
        run_setop(SetOp::Union, self.name(), backend, data_rows, seed)
    }
}

/// Set intersection — row-wise AND of two bitmaps.
#[derive(Debug, Clone, Copy, Default)]
pub struct SetIntersection;

impl Workload for SetIntersection {
    fn name(&self) -> &'static str {
        "Set Intersection"
    }
    fn execute(
        &self,
        backend: &mut dyn BulkBackend,
        data_rows: u64,
        seed: u64,
    ) -> Result<u64, WorkloadError> {
        run_setop(SetOp::Intersection, self.name(), backend, data_rows, seed)
    }
}

/// Set difference — row-wise AND-NOT of two bitmaps.
#[derive(Debug, Clone, Copy, Default)]
pub struct SetDifference;

impl Workload for SetDifference {
    fn name(&self) -> &'static str {
        "Set Difference"
    }
    fn execute(
        &self,
        backend: &mut dyn BulkBackend,
        data_rows: u64,
        seed: u64,
    ) -> Result<u64, WorkloadError> {
        run_setop(SetOp::Difference, self.name(), backend, data_rows, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use felim_arch::{DramBackend, FeramBackend, MemoryGeometry};

    fn both(w: &dyn Workload) {
        let mut f = FeramBackend::new(MemoryGeometry::tiny());
        assert_eq!(w.execute(&mut f, 16, 3).unwrap(), 16);
        let mut d = DramBackend::new(MemoryGeometry::tiny());
        assert_eq!(w.execute(&mut d, 16, 3).unwrap(), 16);
        assert!(d.stats().total_energy_nj() > f.stats().total_energy_nj());
    }

    #[test]
    fn union_verifies() {
        both(&SetUnion);
    }

    #[test]
    fn intersection_verifies() {
        both(&SetIntersection);
    }

    #[test]
    fn difference_verifies() {
        both(&SetDifference);
    }

    #[test]
    fn odd_row_counts_round_down_to_pairs() {
        let mut f = FeramBackend::new(MemoryGeometry::tiny());
        assert_eq!(SetUnion.execute(&mut f, 7, 3).unwrap(), 6);
        // Degenerate single-row input still processes one pair.
        let mut f = FeramBackend::new(MemoryGeometry::tiny());
        assert_eq!(SetUnion.execute(&mut f, 1, 3).unwrap(), 2);
    }
}
