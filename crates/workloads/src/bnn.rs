//! Binarized-neural-network inference over row-parallel lanes.
//!
//! A binarized layer computes, per output neuron `j`,
//! `y_j = [ popcount(XNOR(x, w_j)) >= threshold ]`. Bit-sliced over a row:
//! every lane is one inference sample, input features are rows, and the
//! popcount runs on a [`crate::bitserial::LaneCounter`]. Weights are
//! compile-time constants, so `XNOR(x_f, w_jf)` is either `x_f` itself
//! (`w = 1`) or `NOT x_f` (`w = 0`) — one optional row-NOT per feature.

use crate::bitserial::LaneCounter;
use crate::data::{lane_bits, DataGen};
use crate::{Workload, WorkloadError};
use felim_arch::{BulkBackend, RowId};

/// Input features per sample (rows of bit-sliced input).
const FEATURES: usize = 32;
/// Output neurons in the evaluated layer.
const NEURONS: usize = 4;
/// Counter width: counts up to FEATURES.
const COUNTER_WIDTH: usize = 6;
/// Activation threshold: fire when at least half the features match.
const THRESHOLD: u64 = (FEATURES / 2) as u64;

/// The BNN-inference workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct BnnInference;

impl Workload for BnnInference {
    fn name(&self) -> &'static str {
        "BNN Inference"
    }

    fn execute(
        &self,
        backend: &mut dyn BulkBackend,
        data_rows: u64,
        seed: u64,
    ) -> Result<u64, WorkloadError> {
        let words = backend.geometry().row_words();
        let mut gen = DataGen::new(seed, words);
        // Batches of FEATURE rows; each batch is one full inference pass
        // over `lanes` parallel samples.
        let batches = (data_rows as usize / FEATURES).max(1);
        let mut consumed = 0u64;

        for batch in 0..batches {
            let features: Vec<Vec<u64>> = (0..FEATURES).map(|_| gen.row()).collect();
            // Deterministic per-batch weights.
            let weights: Vec<Vec<bool>> = (0..NEURONS)
                .map(|_| (0..FEATURES).map(|_| gen.coin(0.5)).collect())
                .collect();

            let feat_base = 0u64;
            for (f, row) in features.iter().enumerate() {
                backend.install_row(RowId(feat_base + f as u64), row)?;
            }
            let xnor_row = RowId(FEATURES as u64);
            let counter_base = FEATURES as u64 + 1;
            let counter_rows: Vec<RowId> = (0..(COUNTER_WIDTH as u64 + 2))
                .map(|k| RowId(counter_base + k))
                .collect();
            let out_base = counter_base + COUNTER_WIDTH as u64 + 2;

            for (j, w) in weights.iter().enumerate() {
                let mut counter = LaneCounter::new(backend, &counter_rows, COUNTER_WIDTH)?;
                for (f, &wf) in w.iter().enumerate() {
                    let x = RowId(feat_base + f as u64);
                    if wf {
                        // XNOR with weight 1 is the input itself.
                        counter.add_indicator(backend, x)?;
                    } else {
                        backend.not(x, xnor_row)?;
                        counter.add_indicator(backend, xnor_row)?;
                    }
                }
                let out = RowId(out_base + j as u64);
                counter.compare_ge(backend, THRESHOLD, out)?;

                // Verify this neuron's activations lane by lane
                // (sampled — full-lane checks run in the bitserial tests).
                let got_row = backend.read_row(out)?;
                let lanes = words * 64;
                let step = (lanes / 127).max(1);
                for lane in (0..lanes).step_by(step) {
                    let x_bits = lane_bits(&features, lane);
                    let matches = x_bits.iter().zip(w).filter(|(&x, &wf)| x == wf).count() as u64;
                    let expect = matches >= THRESHOLD;
                    let got = lane_bits(std::slice::from_ref(&got_row), lane)[0];
                    if got != expect {
                        return Err(WorkloadError::Verification {
                            workload: self.name(),
                            detail: format!(
                                "batch {batch} neuron {j} lane {lane}: \
                                 got {got}, expected {expect} ({matches} matches)"
                            ),
                        });
                    }
                }
            }
            consumed += FEATURES as u64;
        }
        Ok(consumed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use felim_arch::{DramBackend, FeramBackend, MemoryGeometry};

    #[test]
    fn verifies_on_feram() {
        let mut f = FeramBackend::new(MemoryGeometry::tiny());
        assert_eq!(BnnInference.execute(&mut f, 32, 13).unwrap(), 32);
    }

    #[test]
    fn verifies_on_dram() {
        let mut d = DramBackend::new(MemoryGeometry::tiny());
        assert_eq!(BnnInference.execute(&mut d, 32, 13).unwrap(), 32);
    }

    #[test]
    fn small_inputs_round_up_to_one_batch() {
        let mut f = FeramBackend::new(MemoryGeometry::tiny());
        assert_eq!(BnnInference.execute(&mut f, 5, 13).unwrap(), 32);
    }
}
