//! A tiny predicate compiler for bitmap analytics.
//!
//! Parses boolean predicate expressions over named bitmap columns —
//! `"(price & in_stock) | !discontinued"` — and compiles them to
//! row-level bulk-bitwise programs on any [`BulkBackend`]. This is the
//! software face of the bitmap-index-query workload: the strings a query
//! engine would generate, executed entirely in memory.
//!
//! Grammar (precedence low→high): `|`, `^`, `&`, unary `!`, parentheses,
//! identifiers (`[A-Za-z_][A-Za-z0-9_]*`).
//!
//! ```
//! use felim_workloads::query::Predicate;
//!
//! let p = Predicate::parse("(a & b) | !c").unwrap();
//! assert_eq!(p.columns(), vec!["a", "b", "c"]);
//! assert!(p.eval(&[("a", true), ("b", false), ("c", false)].into()));
//! ```

use felim_arch::{ArchError, BulkBackend, RowId};
use std::collections::BTreeMap;
use std::fmt;

/// A parsed boolean predicate over named columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    root: Expr,
}

#[derive(Debug, Clone, PartialEq)]
enum Expr {
    Column(String),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

/// Parse failure with byte position.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryParseError {
    /// Byte offset in the input.
    pub position: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "predicate parse error at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for QueryParseError {}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn err(&self, message: impl Into<String>) -> QueryParseError {
        QueryParseError {
            position: self.pos,
            message: message.into(),
        }
    }

    // or := xor ('|' xor)*
    fn parse_or(&mut self) -> Result<Expr, QueryParseError> {
        let mut left = self.parse_xor()?;
        while self.peek() == Some(b'|') {
            self.bump();
            let right = self.parse_xor()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    // xor := and ('^' and)*
    fn parse_xor(&mut self) -> Result<Expr, QueryParseError> {
        let mut left = self.parse_and()?;
        while self.peek() == Some(b'^') {
            self.bump();
            let right = self.parse_and()?;
            left = Expr::Xor(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    // and := unary ('&' unary)*
    fn parse_and(&mut self) -> Result<Expr, QueryParseError> {
        let mut left = self.parse_unary()?;
        while self.peek() == Some(b'&') {
            self.bump();
            let right = self.parse_unary()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr, QueryParseError> {
        match self.peek() {
            Some(b'!') => {
                self.bump();
                Ok(Expr::Not(Box::new(self.parse_unary()?)))
            }
            Some(b'(') => {
                self.bump();
                let inner = self.parse_or()?;
                if self.bump() != Some(b')') {
                    return Err(self.err("expected `)`"));
                }
                Ok(inner)
            }
            Some(c) if c == b'_' || c.is_ascii_alphabetic() => {
                let start = self.pos;
                while self
                    .src
                    .get(self.pos)
                    .is_some_and(|&c| c == b'_' || c.is_ascii_alphanumeric())
                {
                    self.pos += 1;
                }
                let name = std::str::from_utf8(&self.src[start..self.pos])
                    .expect("identifier bytes are ASCII");
                Ok(Expr::Column(name.to_owned()))
            }
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }
}

impl Predicate {
    /// Parses a predicate expression.
    ///
    /// # Errors
    ///
    /// Returns a [`QueryParseError`] with the failing position.
    pub fn parse(input: &str) -> Result<Predicate, QueryParseError> {
        let mut p = Parser {
            src: input.as_bytes(),
            pos: 0,
        };
        let root = p.parse_or()?;
        p.skip_ws();
        if p.pos != p.src.len() {
            return Err(p.err("trailing input"));
        }
        Ok(Predicate { root })
    }

    /// The distinct column names, sorted.
    pub fn columns(&self) -> Vec<String> {
        fn walk(e: &Expr, out: &mut Vec<String>) {
            match e {
                Expr::Column(c) => {
                    if !out.contains(c) {
                        out.push(c.clone());
                    }
                }
                Expr::Not(x) => walk(x, out),
                Expr::And(a, b) | Expr::Or(a, b) | Expr::Xor(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.root, &mut out);
        out.sort();
        out
    }

    /// Scalar reference evaluation against a column→bool environment.
    /// Missing columns read as `false`.
    pub fn eval(&self, env: &BTreeMap<&str, bool>) -> bool {
        fn walk(e: &Expr, env: &BTreeMap<&str, bool>) -> bool {
            match e {
                Expr::Column(c) => *env.get(c.as_str()).unwrap_or(&false),
                Expr::Not(x) => !walk(x, env),
                Expr::And(a, b) => walk(a, env) && walk(b, env),
                Expr::Or(a, b) => walk(a, env) || walk(b, env),
                Expr::Xor(a, b) => walk(a, env) ^ walk(b, env),
            }
        }
        walk(&self.root, env)
    }

    /// Number of row-level logic operations the compiled program issues
    /// (one per internal node).
    pub fn op_count(&self) -> usize {
        fn walk(e: &Expr) -> usize {
            match e {
                Expr::Column(_) => 0,
                Expr::Not(x) => 1 + walk(x),
                Expr::And(a, b) | Expr::Or(a, b) | Expr::Xor(a, b) => 1 + walk(a) + walk(b),
            }
        }
        walk(&self.root)
    }

    /// Compiles and executes the predicate over bitmap column rows.
    ///
    /// `columns` maps each column name to its row; `dst` receives the
    /// result bitmap. Intermediate results use rows allocated upward from
    /// `scratch_base` (the caller guarantees `op_count()` free rows
    /// there, disjoint from columns, dst and the backend's own scratch).
    ///
    /// # Panics
    ///
    /// Panics if a referenced column is missing from `columns`.
    ///
    /// # Errors
    ///
    /// Propagates backend faults.
    pub fn execute(
        &self,
        backend: &mut dyn BulkBackend,
        columns: &BTreeMap<String, RowId>,
        scratch_base: RowId,
        dst: RowId,
    ) -> Result<(), ArchError> {
        let mut next_scratch = scratch_base.0;
        let result = Self::compile(&self.root, backend, columns, &mut next_scratch, Some(dst))?;
        if result != dst {
            backend.copy(result, dst)?;
        }
        Ok(())
    }

    /// Recursively evaluates `e`, placing the result in `prefer` (if the
    /// node is an operation) or returning the column row directly.
    fn compile(
        e: &Expr,
        backend: &mut dyn BulkBackend,
        columns: &BTreeMap<String, RowId>,
        next_scratch: &mut u64,
        prefer: Option<RowId>,
    ) -> Result<RowId, ArchError> {
        fn take_scratch(next_scratch: &mut u64, prefer: Option<RowId>) -> RowId {
            prefer.unwrap_or_else(|| {
                let r = RowId(*next_scratch);
                *next_scratch += 1;
                r
            })
        }
        match e {
            Expr::Column(c) => Ok(*columns
                .get(c)
                .unwrap_or_else(|| panic!("missing bitmap column `{c}`"))),
            Expr::Not(x) => {
                let src = Self::compile(x, backend, columns, next_scratch, None)?;
                let out = take_scratch(next_scratch, prefer);
                backend.not(src, out)?;
                Ok(out)
            }
            Expr::And(a, b) | Expr::Or(a, b) | Expr::Xor(a, b) => {
                let ra = Self::compile(a, backend, columns, next_scratch, None)?;
                let rb = Self::compile(b, backend, columns, next_scratch, None)?;
                let out = take_scratch(next_scratch, prefer);
                match e {
                    Expr::And(..) => backend.and(ra, rb, out)?,
                    Expr::Or(..) => backend.or(ra, rb, out)?,
                    Expr::Xor(..) => backend.xor(ra, rb, out)?,
                    _ => unreachable!(),
                }
                Ok(out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{lane_bits, DataGen};
    use felim_arch::{DramBackend, FeramBackend, MemoryGeometry};

    #[test]
    fn parses_and_lists_columns() {
        let p = Predicate::parse("(alpha & beta_2) | !gamma ^ alpha").unwrap();
        assert_eq!(p.columns(), vec!["alpha", "beta_2", "gamma"]);
        assert_eq!(p.op_count(), 4);
    }

    #[test]
    fn precedence_is_or_xor_and_not() {
        // a | b & c  ==  a | (b & c)
        let p = Predicate::parse("a | b & c").unwrap();
        let env = |a, b, c| {
            let mut m = BTreeMap::new();
            m.insert("a", a);
            m.insert("b", b);
            m.insert("c", c);
            m
        };
        assert!(p.eval(&env(true, false, false)));
        assert!(!p.eval(&env(false, true, false)));
        assert!(p.eval(&env(false, true, true)));
        // !a ^ b  ==  (!a) ^ b
        let p = Predicate::parse("!a ^ b").unwrap();
        assert!(p.eval(&env(false, false, false)));
        assert!(!p.eval(&env(false, true, false)));
    }

    #[test]
    fn parse_errors_carry_positions() {
        let e = Predicate::parse("a & ").unwrap_err();
        assert!(e.message.contains("end of input"));
        let e = Predicate::parse("(a | b").unwrap_err();
        assert!(e.message.contains(")"));
        let e = Predicate::parse("a b").unwrap_err();
        assert!(e.message.contains("trailing"));
        let e = Predicate::parse("a & 5").unwrap_err();
        assert!(e.message.contains("unexpected character"));
        assert!(e.to_string().contains("byte"));
    }

    #[test]
    fn executes_bit_exactly_on_both_backends() {
        let expr = "(price & in_stock) | !(discontinued ^ price)";
        let p = Predicate::parse(expr).unwrap();
        for backend in [
            &mut FeramBackend::new(MemoryGeometry::tiny()) as &mut dyn BulkBackend,
            &mut DramBackend::new(MemoryGeometry::tiny()) as &mut dyn BulkBackend,
        ] {
            let words = backend.geometry().row_words();
            let mut gen = DataGen::new(33, words);
            let mut columns = BTreeMap::new();
            let mut data = BTreeMap::new();
            for (i, name) in p.columns().into_iter().enumerate() {
                let row = RowId(i as u64);
                let bits = gen.sparse_row(0.4);
                backend.install_row(row, &bits).unwrap();
                columns.insert(name.clone(), row);
                data.insert(name, bits);
            }
            let dst = RowId(10);
            p.execute(backend, &columns, RowId(20), dst).unwrap();

            let got = backend.read_row(dst).unwrap();
            for lane in 0..words * 64 {
                let env: BTreeMap<&str, bool> = data
                    .iter()
                    .map(|(k, v)| (k.as_str(), lane_bits(std::slice::from_ref(v), lane)[0]))
                    .collect();
                let expect = p.eval(&env);
                let bit = lane_bits(std::slice::from_ref(&got), lane)[0];
                assert_eq!(bit, expect, "lane {lane} of `{expr}`");
            }
        }
    }

    #[test]
    fn single_column_predicate_copies() {
        let p = Predicate::parse("only").unwrap();
        assert_eq!(p.op_count(), 0);
        let mut m = FeramBackend::new(MemoryGeometry::tiny());
        let words = m.geometry().row_words();
        m.install_row(RowId(0), &vec![0xABu64; words]).unwrap();
        let mut columns = BTreeMap::new();
        columns.insert("only".to_owned(), RowId(0));
        p.execute(&mut m, &columns, RowId(20), RowId(1)).unwrap();
        assert_eq!(m.read_row(RowId(1)).unwrap()[0], 0xAB);
    }

    #[test]
    #[should_panic(expected = "missing bitmap column")]
    fn missing_column_panics() {
        let p = Predicate::parse("ghost").unwrap();
        let mut m = FeramBackend::new(MemoryGeometry::tiny());
        let _ = p.execute(&mut m, &BTreeMap::new(), RowId(20), RowId(1));
    }
}
