//! # felim-workloads — the eight bulk-bitwise applications
//!
//! Section VI of the paper evaluates eight real-world, data-intensive
//! applications (following Ambit) on DRAM and 2T-nC FeRAM, each with a
//! 1 GB workload:
//!
//! | module | application | dominant primitives |
//! |---|---|---|
//! | [`crc8`] | CRC8 checksums (bit-sliced lanes) | XOR |
//! | [`xor_cipher`] | XOR stream cipher | XOR |
//! | [`setops`] | set union | OR |
//! | [`setops`] | set intersection | AND |
//! | [`setops`] | set difference | AND + NOT |
//! | [`masked_init`] | masked initialisation | AND/OR + NOT |
//! | [`bitmap_index`] | bitmap index query | AND/OR |
//! | [`bnn`] | binarized NN inference | XNOR + popcount |
//!
//! Every workload is implemented twice: once as a plain software
//! reference and once compiled to row-level [`felim_arch::BulkBackend`]
//! primitives. Execution *verifies the two bit-for-bit* — the simulator
//! is functional, not just an event counter.
//!
//! [`driver`] runs a workload on a scaled-down row count, checks the
//! result, and extrapolates primitive counts analytically to the paper's
//! 1 GB size (bulk-bitwise primitive counts are exactly linear in row
//! count), adding DRAM refresh for the extrapolated runtime.
//!
//! ## Quickstart
//!
//! ```
//! use felim_workloads::{driver::{run_workload, Tech}, xor_cipher::XorCipher};
//!
//! let result = run_workload(&XorCipher, Tech::Feram, 16, 1 << 20, 42);
//! assert!(result.verified);
//! assert!(result.scaled.total_energy_nj() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitmap_index;
pub mod bitserial;
pub mod bnn;
pub mod crc8;
pub mod data;
pub mod driver;
pub mod masked_init;
pub mod query;
pub mod setops;
pub mod xor_cipher;

use felim_arch::BulkBackend;

/// A bulk-bitwise application that can execute on any backend.
pub trait Workload {
    /// Display name (as in Fig 6).
    fn name(&self) -> &'static str;

    /// Executes the workload over `data_rows` rows of deterministic
    /// synthetic data drawn from `seed`, verifying the in-memory result
    /// against the software reference.
    ///
    /// Returns the number of *input data rows* consumed — the quantity
    /// that scales linearly with workload size.
    ///
    /// # Panics
    ///
    /// Panics if the in-memory computation disagrees with the software
    /// reference (a simulator bug, never an expected outcome).
    fn execute(&self, backend: &mut dyn BulkBackend, data_rows: u64, seed: u64) -> u64;
}

/// All eight paper workloads, in Fig 6 order.
pub fn all_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(crc8::Crc8),
        Box::new(xor_cipher::XorCipher),
        Box::new(setops::SetUnion),
        Box::new(setops::SetIntersection),
        Box::new(setops::SetDifference),
        Box::new(masked_init::MaskedInit),
        Box::new(bitmap_index::BitmapIndex),
        Box::new(bnn::BnnInference),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_eight_paper_workloads_are_present() {
        let names: Vec<&str> = all_workloads().iter().map(|w| w.name()).collect();
        assert_eq!(
            names,
            vec![
                "CRC8",
                "XOR Cipher",
                "Set Union",
                "Set Intersection",
                "Set Difference",
                "Masked Initialization",
                "Bitmap Index Query",
                "BNN Inference",
            ]
        );
    }
}
