//! # felim-workloads — the eight bulk-bitwise applications
//!
//! Section VI of the paper evaluates eight real-world, data-intensive
//! applications (following Ambit) on DRAM and 2T-nC FeRAM, each with a
//! 1 GB workload:
//!
//! | module | application | dominant primitives |
//! |---|---|---|
//! | [`crc8`] | CRC8 checksums (bit-sliced lanes) | XOR |
//! | [`xor_cipher`] | XOR stream cipher | XOR |
//! | [`setops`] | set union | OR |
//! | [`setops`] | set intersection | AND |
//! | [`setops`] | set difference | AND + NOT |
//! | [`masked_init`] | masked initialisation | AND/OR + NOT |
//! | [`bitmap_index`] | bitmap index query | AND/OR |
//! | [`bnn`] | binarized NN inference | XNOR + popcount |
//!
//! Every workload is implemented twice: once as a plain software
//! reference and once compiled to row-level [`felim_arch::BulkBackend`]
//! primitives. Execution *verifies the two bit-for-bit* — the simulator
//! is functional, not just an event counter. Verification mismatches and
//! backend faults surface as typed [`WorkloadError`]s, so fault-injection
//! campaigns ([`driver::run_fault_campaign`]) can distinguish detected
//! corruption from silent corruption.
//!
//! [`driver`] runs a workload on a scaled-down row count, checks the
//! result, and extrapolates primitive counts analytically to the paper's
//! 1 GB size (bulk-bitwise primitive counts are exactly linear in row
//! count), adding DRAM refresh for the extrapolated runtime.
//!
//! ## Quickstart
//!
//! ```
//! use felim_workloads::{driver::{run_workload, Tech}, xor_cipher::XorCipher};
//!
//! let result = run_workload(&XorCipher, Tech::Feram, 16, 1 << 20, 42).unwrap();
//! assert!(result.verified);
//! assert!(result.scaled.total_energy_nj() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitmap_index;
pub mod bitserial;
pub mod bnn;
pub mod crc8;
pub mod data;
pub mod driver;
pub mod masked_init;
pub mod query;
pub mod service_campaign;
pub mod setops;
pub mod xor_cipher;

use felim_arch::{ArchError, BulkBackend};

/// Failure of a workload run.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// The backend reported a fault (bad address, uncorrectable write,
    /// spare exhaustion, ...).
    Arch(ArchError),
    /// The in-memory result disagreed with the software reference —
    /// detected data corruption.
    Verification {
        /// Which workload detected the mismatch.
        workload: &'static str,
        /// Human-readable mismatch description.
        detail: String,
    },
}

impl From<ArchError> for WorkloadError {
    fn from(e: ArchError) -> Self {
        WorkloadError::Arch(e)
    }
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::Arch(e) => write!(f, "backend fault: {e}"),
            WorkloadError::Verification { workload, detail } => {
                write!(f, "{workload} verification failed: {detail}")
            }
        }
    }
}

impl std::error::Error for WorkloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorkloadError::Arch(e) => Some(e),
            WorkloadError::Verification { .. } => None,
        }
    }
}

/// A bulk-bitwise application that can execute on any backend.
pub trait Workload: Send + Sync {
    /// Display name (as in Fig 6).
    fn name(&self) -> &'static str;

    /// Executes the workload over `data_rows` rows of deterministic
    /// synthetic data drawn from `seed`, verifying the in-memory result
    /// against the software reference.
    ///
    /// Returns the number of *input data rows* consumed — the quantity
    /// that scales linearly with workload size.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::Verification`] if the in-memory computation
    /// disagrees with the software reference (under fault injection, a
    /// *detected* corruption; on a clean backend, a simulator bug);
    /// [`WorkloadError::Arch`] if the backend itself faults.
    fn execute(
        &self,
        backend: &mut dyn BulkBackend,
        data_rows: u64,
        seed: u64,
    ) -> Result<u64, WorkloadError>;
}

/// All eight paper workloads, in Fig 6 order.
pub fn all_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(crc8::Crc8),
        Box::new(xor_cipher::XorCipher),
        Box::new(setops::SetUnion),
        Box::new(setops::SetIntersection),
        Box::new(setops::SetDifference),
        Box::new(masked_init::MaskedInit),
        Box::new(bitmap_index::BitmapIndex),
        Box::new(bnn::BnnInference),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_eight_paper_workloads_are_present() {
        let names: Vec<&str> = all_workloads().iter().map(|w| w.name()).collect();
        assert_eq!(
            names,
            vec![
                "CRC8",
                "XOR Cipher",
                "Set Union",
                "Set Intersection",
                "Set Difference",
                "Masked Initialization",
                "Bitmap Index Query",
                "BNN Inference",
            ]
        );
    }

    #[test]
    fn workload_error_display_and_source() {
        let e = WorkloadError::Verification {
            workload: "CRC8",
            detail: "lane 3 mismatch".into(),
        };
        assert!(e.to_string().contains("CRC8"));
        assert!(e.to_string().contains("lane 3"));
        let e: WorkloadError = ArchError::SparesExhausted { row: 9 }.into();
        assert!(e.to_string().contains("backend fault"));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
