//! Property-based validation of the ferroelectric device physics.

use felim_ferro::{
    DeviceSampler, MfmCapacitor, MfmParams, Polarity, PulseSweep, PvLoop, VariationSpec,
};
use proptest::prelude::*;

fn small_device() -> MfmParams {
    let mut p = MfmParams::fabricated();
    p.n_domains = 48;
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Hysteresis loops are point-symmetric: P(V) on the ascending branch
    /// mirrors −P(−V) on the descending branch for a symmetric film.
    #[test]
    fn pv_loop_point_symmetry(vmax in 2.0f64..3.5) {
        let l = PvLoop::trace(&small_device(), 300.0, vmax, 60, 1e-3);
        // Branch sample i sits at voltage v on the ascending branch and
        // −v on the descending branch; point symmetry demands the
        // polarizations be opposite there.
        for (up, down) in l.ascending.iter().zip(l.descending.iter()) {
            prop_assert!((up.voltage_v + down.voltage_v).abs() < 1e-9 + vmax * 1e-9);
            prop_assert!(
                (up.polarization_uc_cm2 + down.polarization_uc_cm2).abs() < 2.0,
                "P({}) = {} vs -P({}) = {}",
                up.voltage_v, up.polarization_uc_cm2,
                down.voltage_v, -down.polarization_uc_cm2
            );
        }
    }

    /// Switched fraction is monotone in pulse width for any amplitude
    /// above the activation cutoff.
    #[test]
    fn switching_monotone_in_width(amp in 1.2f64..3.5) {
        let sweep = PulseSweep::new(&small_device());
        let mut last = -1.0;
        for w_exp in -8..-4 {
            let frac = sweep.single(amp, 10f64.powi(w_exp)).switched_fraction;
            prop_assert!(frac >= last - 1e-12);
            last = frac;
        }
    }

    /// Energy bookkeeping: the irreversible switched charge of a pulse
    /// never exceeds the full-reversal charge 2·Ps·A.
    #[test]
    fn switched_charge_is_bounded(
        v in -3.5f64..3.5,
        w_exp in -9.0f64..-4.0,
    ) {
        let p = small_device();
        let mut cap = MfmCapacitor::new(&p);
        cap.write_ideal(Polarity::Down);
        let r = cap.apply_pulse(v, 10f64.powf(w_exp));
        prop_assert!(r.switched_charge.abs() <= p.full_switching_charge() * 1.001);
        prop_assert!(r.delta_p.abs() <= 2.0 + 1e-12);
    }

    /// Reading never moves more polarization than writing: the QNRO
    /// disturb of one read is orders of magnitude below a write pulse.
    #[test]
    fn read_disturb_is_tiny_vs_write(_seed in 0u64..10) {
        let p = small_device();
        let mut cap = MfmCapacitor::new(&p);
        cap.write(Polarity::Down);
        let before = cap.polarization();
        cap.read_pulse_charge(p.read_voltage(), 100e-9);
        let read_move = (cap.polarization() - before).abs();
        prop_assert!(read_move < 1e-3, "one read moved {read_move}");
    }

    /// Varied devices keep the QNRO contrast ordering (dq0 > dq1) at any
    /// typical-corner sample.
    #[test]
    fn variation_preserves_qnro_ordering(seed in 0u64..200) {
        let mut sampler = DeviceSampler::new(&small_device(), VariationSpec::typical(), seed);
        let p = sampler.sample();
        let mut c0 = MfmCapacitor::new(&p);
        c0.write(Polarity::Down);
        let dq0 = c0.read_pulse_charge(p.read_voltage(), 100e-9);
        let mut c1 = MfmCapacitor::new(&p);
        c1.write(Polarity::Up);
        let dq1 = c1.read_pulse_charge(p.read_voltage(), 100e-9);
        prop_assert!(dq0 > dq1, "sampled device lost contrast: {dq0:e} vs {dq1:e}");
    }

    /// The committed and predicted charge agree for any bias/step within
    /// the operating range (the contract the circuit simulator relies on).
    #[test]
    fn predict_commit_consistency(
        v in -3.0f64..3.0,
        dt_exp in -9.0f64..-5.0,
    ) {
        let p = small_device();
        let mut cap = MfmCapacitor::new(&p);
        cap.write_ideal(Polarity::Down);
        let dt = 10f64.powf(dt_exp);
        let predicted_q = cap.predict_charge(v, dt);
        let predicted_p = cap.predict_polarization(v, dt);
        cap.apply_voltage(v, dt);
        prop_assert!((cap.polarization() - predicted_p).abs() < 1e-12);
        prop_assert!((cap.charge(v) - predicted_q).abs() < 1e-20);
    }
}
