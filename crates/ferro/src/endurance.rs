//! Bipolar-cycling endurance (Fig 4(f)).
//!
//! The remanent polarization of HfO₂-family ferroelectrics first *wakes up*
//! (domains de-pin over the first 10²–10³ cycles) and then fatigues
//! logarithmically past an onset cycle count. The paper demonstrates the
//! MFM withstands at least 10⁶ ±3 V / 10 µs bipolar cycles — the criterion
//! that makes frequent in-memory computation viable.

use crate::capacitor::MfmCapacitor;
use crate::domain::Polarity;
use crate::params::MfmParams;
use serde::{Deserialize, Serialize};

/// Relative Pr multiplier after `cycles` bipolar write cycles.
///
/// `factor = 1 + w·(1 − e^(−N/N_w)) − k·max(0, log₁₀(N/N_onset))`,
/// clamped to `[0, 1 + w]`.
///
/// ```
/// use felim_ferro::{endurance::pr_cycling_factor, MfmParams};
/// let p = MfmParams::fabricated();
/// let fresh = pr_cycling_factor(&p, 0.0);
/// let million = pr_cycling_factor(&p, 1e6);
/// assert!(million >= 1.0, "still healthy at the paper's 10^6 target");
/// assert!(pr_cycling_factor(&p, 1e9) < million);
/// let _ = fresh;
/// ```
pub fn pr_cycling_factor(params: &MfmParams, cycles: f64) -> f64 {
    let n = cycles.max(0.0);
    let wakeup = params.wakeup_amplitude * (1.0 - (-n / params.wakeup_cycles).exp());
    let fatigue = if n > params.fatigue_onset_cycles {
        params.fatigue_per_decade * (n / params.fatigue_onset_cycles).log10()
    } else {
        0.0
    };
    (1.0 + wakeup - fatigue).clamp(0.0, 1.0 + params.wakeup_amplitude)
}

/// One measurement point of an endurance run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnduranceResult {
    /// Cumulative bipolar cycles at this measurement.
    pub cycles: f64,
    /// Positive remanent polarization in µC/cm².
    pub pr_pos_uc_cm2: f64,
    /// Negative remanent polarization in µC/cm².
    pub pr_neg_uc_cm2: f64,
}

impl EnduranceResult {
    /// Mean |Pr| of the two states in µC/cm².
    pub fn pr_mean(&self) -> f64 {
        (self.pr_pos_uc_cm2.abs() + self.pr_neg_uc_cm2.abs()) / 2.0
    }
}

/// Endurance measurement harness: cycles a device in logarithmic batches
/// and records Pr after each batch, exactly like the Fig 4(f) measurement
/// (multiple ±3 V, 10 µs bipolar pulses).
#[derive(Debug, Clone)]
pub struct EnduranceRun {
    params: MfmParams,
    /// Minimum readable |Pr| for the cell to still sense correctly,
    /// in µC/cm².
    pub sense_floor_uc_cm2: f64,
}

impl EnduranceRun {
    /// Creates a run for the given device with a 10 µC/cm² sense floor.
    pub fn new(params: &MfmParams) -> Self {
        Self {
            params: params.clone(),
            sense_floor_uc_cm2: 10.0,
        }
    }

    /// Cycles a fresh device through the given cumulative cycle counts
    /// (must be non-decreasing) and measures Pr at each point.
    ///
    /// Bulk cycles are applied through the fatigue bookkeeping (not pulse
    /// by pulse — 10⁶ explicit pulses would be pointless work), then each
    /// measurement performs two real writes to capture the current device
    /// response.
    ///
    /// # Panics
    ///
    /// Panics if `checkpoints` is not non-decreasing.
    pub fn run(&self, checkpoints: &[f64]) -> Vec<EnduranceResult> {
        let mut cap = MfmCapacitor::new(&self.params);
        let mut done = 0.0;
        checkpoints
            .iter()
            .map(|&target| {
                assert!(target >= done, "checkpoints must be non-decreasing");
                cap.add_fatigue_cycles(target - done);
                done = target;
                cap.write(Polarity::Up);
                let pr_pos = cap.polarization_uc_cm2();
                cap.write(Polarity::Down);
                let pr_neg = cap.polarization_uc_cm2();
                EnduranceResult {
                    cycles: target,
                    pr_pos_uc_cm2: pr_pos,
                    pr_neg_uc_cm2: pr_neg,
                }
            })
            .collect()
    }

    /// Standard log-spaced checkpoints 10⁰ … 10^`max_decade`.
    pub fn log_checkpoints(max_decade: u32) -> Vec<f64> {
        (0..=max_decade).map(|d| 10f64.powi(d as i32)).collect()
    }

    /// Largest checkpointed cycle count at which the device still senses
    /// (mean |Pr| above the sense floor).
    pub fn endurance_limit(&self, results: &[EnduranceResult]) -> Option<f64> {
        results
            .iter()
            .take_while(|r| r.pr_mean() >= self.sense_floor_uc_cm2)
            .last()
            .map(|r| r.cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_shows_wakeup_then_fatigue() {
        let p = MfmParams::fabricated();
        let fresh = pr_cycling_factor(&p, 0.0);
        let woken = pr_cycling_factor(&p, 1e4);
        let fatigued = pr_cycling_factor(&p, 1e9);
        assert!((fresh - 1.0).abs() < 1e-12);
        assert!(woken > fresh, "wake-up must raise Pr slightly");
        assert!(fatigued < woken, "deep cycling must fatigue");
        assert!(fatigued > 0.8, "3 decades past onset loses only ~15%");
    }

    #[test]
    fn factor_never_negative_or_runaway() {
        let p = MfmParams::fabricated();
        for exp in 0..30 {
            let f = pr_cycling_factor(&p, 10f64.powi(exp));
            assert!((0.0..=1.0 + p.wakeup_amplitude).contains(&f));
        }
        assert_eq!(pr_cycling_factor(&p, -5.0), 1.0);
    }

    #[test]
    fn survives_one_million_cycles() {
        // The paper's headline endurance claim (Fig 4(f)).
        let run = EnduranceRun::new(&MfmParams::fabricated());
        let results = run.run(&EnduranceRun::log_checkpoints(6));
        let limit = run
            .endurance_limit(&results)
            .expect("device dead at cycle 1");
        assert!(limit >= 1e6, "endurance limit {limit:e} below 10^6");
        let last = results.last().unwrap();
        assert!(last.pr_mean() > 20.0, "Pr at 10^6 = {}", last.pr_mean());
    }

    #[test]
    fn pr_states_remain_symmetric_through_cycling() {
        let run = EnduranceRun::new(&MfmParams::fabricated());
        for r in run.run(&EnduranceRun::log_checkpoints(6)) {
            assert!(r.pr_pos_uc_cm2 > 0.0);
            assert!(r.pr_neg_uc_cm2 < 0.0);
            let asym = (r.pr_pos_uc_cm2 + r.pr_neg_uc_cm2).abs();
            assert!(asym < 0.1 * r.pr_mean(), "states must stay symmetric");
        }
    }

    #[test]
    fn deep_fatigue_eventually_kills_sensing() {
        let run = EnduranceRun::new(&MfmParams::fabricated());
        // 10^16 cycles: 10 decades past onset at 5 %/decade → Pr halved+.
        let results = run.run(&[1.0, 1e16]);
        assert!(results[1].pr_mean() < results[0].pr_mean() * 0.7);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_unordered_checkpoints() {
        let run = EnduranceRun::new(&MfmParams::fabricated());
        let _ = run.run(&[100.0, 10.0]);
    }

    #[test]
    fn log_checkpoints_shape() {
        let cps = EnduranceRun::log_checkpoints(6);
        assert_eq!(cps.len(), 7);
        assert_eq!(cps[0], 1.0);
        assert_eq!(cps[6], 1e6);
    }
}
