//! Imprint: preference build-up toward a long-held polarization state.
//!
//! A ferroelectric stored in one state for a long time develops an
//! internal bias field (charge injection at the interfaces) that shifts
//! the hysteresis loop horizontally — the opposite state becomes harder
//! to write and its read margin shrinks. Section IV of the paper reports
//! that "no severe imprint impact was observed" on the fabricated 2T-nC
//! cell; this module provides the model that lets the reproduction make
//! that statement quantitative: a logarithmic-in-time coercive-voltage
//! shift, temperature-accelerated, applied as an asymmetric V_c scale.

use crate::BOLTZMANN;
use serde::{Deserialize, Serialize};

/// Electron-volt in joules.
const EV: f64 = 1.602_176_634e-19;

/// Logarithmic imprint model: after holding one state for `t` seconds the
/// coercive voltage for *leaving* that state grows by
/// `ΔV_c = rate · log10(1 + t/t0)`, Arrhenius-accelerated in temperature.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImprintModel {
    /// Shift per decade of hold time at 300 K, in V.
    pub shift_per_decade_v: f64,
    /// Onset time t0 in s.
    pub onset_s: f64,
    /// Activation energy of the defect migration, eV.
    pub activation_ev: f64,
    /// Hard cap on the shift, in V (interface traps saturate).
    pub max_shift_v: f64,
}

impl ImprintModel {
    /// HfO₂-class defaults: ~25 mV per decade past one second, saturating
    /// at 0.25 V — mild at operating conditions, matching the paper's
    /// "no severe imprint impact" observation.
    pub fn hfo2_default() -> Self {
        Self {
            shift_per_decade_v: 0.025,
            onset_s: 1.0,
            activation_ev: 0.9,
            max_shift_v: 0.25,
        }
    }

    /// Thermal acceleration factor on the hold time.
    fn acceleration(&self, t_k: f64) -> f64 {
        let ea = self.activation_ev * EV;
        (ea / BOLTZMANN * (1.0 / 300.0 - 1.0 / t_k.max(1.0))).exp()
    }

    /// Coercive-voltage shift (V) after holding one state for
    /// `hold_s` seconds at temperature `t_k`.
    ///
    /// ```
    /// let m = felim_ferro::imprint::ImprintModel::hfo2_default();
    /// let day = 86400.0;
    /// // A day of same-state storage at 300 K: ~0.12 V shift.
    /// let dv = m.vc_shift_v(day, 300.0);
    /// assert!(dv > 0.05 && dv < 0.2);
    /// ```
    pub fn vc_shift_v(&self, hold_s: f64, t_k: f64) -> f64 {
        if hold_s <= 0.0 {
            return 0.0;
        }
        let effective = hold_s * self.acceleration(t_k);
        (self.shift_per_decade_v * (1.0 + effective / self.onset_s).log10()).min(self.max_shift_v)
    }

    /// Does the imprint after `hold_s` at `t_k` still leave a workable
    /// write window? The criterion: the shifted coercive voltage of the
    /// imprinted state stays below `write_voltage · margin` (default
    /// margin 0.8 — the write pulse must still over-drive V_c).
    pub fn write_window_ok(&self, vc_v: f64, write_voltage_v: f64, hold_s: f64, t_k: f64) -> bool {
        vc_v + self.vc_shift_v(hold_s, t_k) < 0.8 * write_voltage_v
    }

    /// Probability that the imprint accumulated over `hold_s` seconds at
    /// `t_k` flips the *opposite*-state read of one bit, given a sense
    /// margin of `margin_v` volts — the architecture-level
    /// rate-derivation hook for drift-aware fault processes.
    ///
    /// The V_c shift eats into the sense margin, but a sense amplifier
    /// tolerates any shift comfortably inside its window: upsets only
    /// start once the shift crosses a guard band of half the margin
    /// (design-rule headroom), then grow as the quadratic tail
    /// `min(1, ((ΔV_c − margin/2) / (margin/2))²)` — exactly zero while
    /// the shift sits in the guard band, certain once the full margin
    /// is consumed. The paper's "no severe imprint impact" observation
    /// corresponds to operating-envelope shifts never leaving the guard
    /// band.
    ///
    /// # Panics
    ///
    /// Panics unless `margin_v > 0`.
    pub fn bit_upset_probability(&self, hold_s: f64, t_k: f64, margin_v: f64) -> f64 {
        assert!(margin_v > 0.0, "sense margin must be positive, got {margin_v}");
        let guard = 0.5 * margin_v;
        let shift = self.vc_shift_v(hold_s, t_k);
        if shift <= guard {
            return 0.0;
        }
        let ratio = (shift - guard) / (margin_v - guard);
        (ratio * ratio).min(1.0)
    }
}

impl Default for ImprintModel {
    fn default() -> Self {
        Self::hfo2_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::MfmParams;

    const YEAR_S: f64 = 365.25 * 86400.0;

    fn m() -> ImprintModel {
        ImprintModel::hfo2_default()
    }

    #[test]
    fn no_hold_no_shift() {
        assert_eq!(m().vc_shift_v(0.0, 300.0), 0.0);
        assert_eq!(m().vc_shift_v(-1.0, 390.0), 0.0);
    }

    #[test]
    fn shift_grows_logarithmically() {
        let model = m();
        let d1 = model.vc_shift_v(10.0, 300.0);
        let d2 = model.vc_shift_v(100.0, 300.0);
        let d3 = model.vc_shift_v(1000.0, 300.0);
        // Roughly equal increments per decade.
        assert!(((d2 - d1) - (d3 - d2)).abs() < 0.2 * (d2 - d1));
        assert!((d2 - d1 - 0.025).abs() < 0.005, "≈25 mV/decade");
    }

    #[test]
    fn shift_saturates_at_the_cap() {
        let model = m();
        assert_eq!(model.vc_shift_v(1e30, 390.0), model.max_shift_v);
    }

    #[test]
    fn temperature_accelerates_imprint() {
        let model = m();
        let cold = model.vc_shift_v(3600.0, 300.0);
        let hot = model.vc_shift_v(3600.0, 352.0);
        assert!(hot > cold);
    }

    #[test]
    fn no_severe_imprint_at_paper_operating_point() {
        // Section IV: "no severe imprint impact was observed". Quantify:
        // a year of same-state storage at the 352 K stack temperature
        // still leaves the ±3 V write window wide open.
        let model = m();
        let p = MfmParams::fabricated();
        assert!(model.write_window_ok(p.vc_mean_v, p.write_voltage_v, YEAR_S, 352.0));
        // Even at the 390 K measurement extreme.
        assert!(model.write_window_ok(p.vc_mean_v, p.write_voltage_v, YEAR_S, 390.0));
    }

    #[test]
    fn bit_upset_probability_follows_the_margin_ratio() {
        let model = m();
        assert_eq!(model.bit_upset_probability(0.0, 300.0, 0.3), 0.0);
        // Saturated shift against a margin no larger than the cap: upset
        // certain; against a huge margin: exactly zero (guard band).
        assert_eq!(model.bit_upset_probability(1e30, 390.0, model.max_shift_v), 1.0);
        assert_eq!(model.bit_upset_probability(3600.0, 300.0, 10.0), 0.0);
        // An hour at 300 K stays inside the guard band of a 0.25 V
        // margin; at the 352 K stack temperature it pokes out of it.
        let cool = model.bit_upset_probability(3600.0, 300.0, 0.25);
        let hot = model.bit_upset_probability(3600.0, 352.0, 0.25);
        assert_eq!(cool, 0.0);
        assert!(hot > cool);
    }

    #[test]
    #[should_panic(expected = "sense margin must be positive")]
    fn rejects_bad_margin() {
        let _ = m().bit_upset_probability(1.0, 300.0, 0.0);
    }

    #[test]
    fn scaled_low_voltage_cell_is_tighter_but_viable() {
        // The 1.2 V scaled cell has less headroom — imprint matters more,
        // but a day of hold still writes.
        let model = m();
        let p = MfmParams::scaled_45nm();
        assert!(model.write_window_ok(p.vc_mean_v, p.write_voltage_v, 86400.0, 300.0));
        // Even saturated imprint leaves the nominal 1.2 V write viable…
        assert!(model.write_window_ok(p.vc_mean_v, p.write_voltage_v, 10.0 * YEAR_S, 390.0));
        // …but a derated 0.85 V write supply would lose the window.
        assert!(!model.write_window_ok(p.vc_mean_v, 0.85, 10.0 * YEAR_S, 390.0));
    }
}
