//! Temperature dependence of the ferroelectric film.
//!
//! Reproduces the experimental trend of Fig 4(e): between 300 K and 390 K
//! the coercive voltage decreases markedly while the remanent polarization
//! stays nearly constant. Approaching the Curie temperature the
//! polarization collapses, which is what the thermal-viability argument of
//! Section VII checks against (the 3-D stack peaks near 352 K, far below
//! the collapse region).

use crate::params::MfmParams;
use serde::{Deserialize, Serialize};

/// Temperature scaling laws for coercive voltage and polarization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemperatureModel {
    vc_coeff: f64,
    pr_coeff: f64,
    curie_k: f64,
}

/// Width (K) of the polarization-collapse window below the Curie point.
const COLLAPSE_WINDOW_K: f64 = 100.0;

/// Reference temperature (K) at which all parameters are specified.
pub const REFERENCE_K: f64 = 300.0;

impl TemperatureModel {
    /// Builds the model from a device parameter set.
    pub fn from_params(params: &MfmParams) -> Self {
        Self {
            vc_coeff: params.temp_vc_coeff,
            pr_coeff: params.temp_pr_coeff,
            curie_k: params.curie_k,
        }
    }

    /// Multiplicative coercive-voltage scale at temperature `t_k`, relative
    /// to 300 K. Monotone decreasing in `t_k`; clamped to `[0.05, ∞)` so
    /// switching kinetics stay defined.
    ///
    /// ```
    /// use felim_ferro::{MfmParams, TemperatureModel};
    /// let m = TemperatureModel::from_params(&MfmParams::fabricated());
    /// assert!(m.vc_scale(390.0) < m.vc_scale(300.0));
    /// assert!((m.vc_scale(300.0) - 1.0).abs() < 1e-12);
    /// ```
    pub fn vc_scale(&self, t_k: f64) -> f64 {
        (1.0 - self.vc_coeff * (t_k - REFERENCE_K)).max(0.05)
    }

    /// Multiplicative spontaneous-polarization scale at temperature `t_k`.
    ///
    /// Nearly flat over the measurement window (300–390 K), with a smooth
    /// collapse within a fixed window (100 K) below the Curie point and
    /// zero above it.
    ///
    /// ```
    /// use felim_ferro::{MfmParams, TemperatureModel};
    /// let m = TemperatureModel::from_params(&MfmParams::fabricated());
    /// // "remanent polarization remains nearly constant" to 390 K:
    /// assert!(m.ps_scale(390.0) > 0.95);
    /// assert_eq!(m.ps_scale(1000.0), 0.0);
    /// ```
    pub fn ps_scale(&self, t_k: f64) -> f64 {
        if t_k >= self.curie_k {
            return 0.0;
        }
        let linear = (1.0 - self.pr_coeff * (t_k - REFERENCE_K)).clamp(0.0, 1.1);
        let collapse_start = self.curie_k - COLLAPSE_WINDOW_K;
        if t_k <= collapse_start {
            linear
        } else {
            // Landau-like square-root collapse over the final window.
            let x = (self.curie_k - t_k) / COLLAPSE_WINDOW_K;
            linear * x.sqrt()
        }
    }

    /// The Curie temperature in K.
    pub fn curie_k(&self) -> f64 {
        self.curie_k
    }

    /// Returns `true` if the film retains robust ferroelectricity at
    /// temperature `t_k` — the criterion used by the Section VII thermal
    /// check (polarization scale above 90 % of its 300 K value).
    ///
    /// ```
    /// use felim_ferro::{MfmParams, TemperatureModel};
    /// let m = TemperatureModel::from_params(&MfmParams::fabricated());
    /// assert!(m.is_stable_at(351.88)); // paper's peak stack temperature
    /// assert!(!m.is_stable_at(660.0));
    /// ```
    pub fn is_stable_at(&self, t_k: f64) -> bool {
        self.ps_scale(t_k) > 0.9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TemperatureModel {
        TemperatureModel::from_params(&MfmParams::fabricated())
    }

    #[test]
    fn vc_monotone_decreasing_300_to_390() {
        let m = model();
        let mut last = f64::INFINITY;
        for t in (300..=390).step_by(10) {
            let s = m.vc_scale(t as f64);
            assert!(s < last, "Vc scale must fall with T");
            last = s;
        }
        // ~20 % drop over 90 K with the default coefficient.
        assert!((m.vc_scale(390.0) - 0.802).abs() < 1e-3);
    }

    #[test]
    fn pr_nearly_constant_in_measurement_window() {
        let m = model();
        for t in (300..=390).step_by(10) {
            let s = m.ps_scale(t as f64);
            assert!(
                s > 0.95 && s <= 1.0,
                "Pr must be nearly flat, got {s} at {t} K"
            );
        }
    }

    #[test]
    fn pr_collapses_at_curie() {
        let m = model();
        assert_eq!(m.ps_scale(670.0), 0.0);
        assert_eq!(m.ps_scale(700.0), 0.0);
        let near = m.ps_scale(660.0);
        assert!(near > 0.0 && near < 0.5);
    }

    #[test]
    fn ps_scale_monotone_decreasing() {
        let m = model();
        let mut last = 2.0;
        for t in (300..=700).step_by(10) {
            let s = m.ps_scale(t as f64);
            assert!(s <= last + 1e-12, "ps_scale must never increase with T");
            last = s;
        }
    }

    #[test]
    fn vc_scale_clamped_at_extreme_temperature() {
        let m = model();
        assert_eq!(m.vc_scale(5000.0), 0.05);
    }

    #[test]
    fn stability_criterion_matches_paper_operating_point() {
        let m = model();
        // Peak stack temperature from Fig 7.
        assert!(m.is_stable_at(351.88));
        // Full measurement window of Fig 4(e).
        assert!(m.is_stable_at(390.0));
        // Collapse window.
        assert!(!m.is_stable_at(640.0));
    }

    #[test]
    fn reference_point_is_identity() {
        let m = model();
        assert!((m.vc_scale(REFERENCE_K) - 1.0).abs() < 1e-12);
        assert!((m.ps_scale(REFERENCE_K) - 1.0).abs() < 1e-12);
        assert_eq!(m.curie_k(), 670.0);
    }
}
