//! Single ferroelectric domain with Merz-law switching kinetics.
//!
//! Each domain is a two-well system with a normalized polarization
//! `p ∈ [-1, +1]`. Under an applied voltage `v` the domain relaxes toward
//! `sign(v)` with a field-activated Merz time constant
//!
//! ```text
//! τ(v) = τ₀ · exp(α · (V_c / |v|)ⁿ)
//! ```
//!
//! so strong fields switch in nanoseconds while sub-coercive read pulses
//! leave the bulk of the film untouched — except for the low-`V_c` tail of
//! the disorder distribution, which is what produces the paper's
//! *accumulative switching disturb* under QNRO reads.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Remanent polarization direction of a ferroelectric element.
///
/// The paper's bit convention (Section II) maps logical `'1'` to positive
/// remanent polarization — the state that shows *minimal* switching under a
/// positive read pulse — and `'0'` to negative polarization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Polarity {
    /// Positive remanent polarization (logical `'1'`).
    Up,
    /// Negative remanent polarization (logical `'0'`).
    Down,
}

impl Polarity {
    /// Signed unit value: `+1.0` for [`Polarity::Up`], `-1.0` for
    /// [`Polarity::Down`].
    ///
    /// ```
    /// use felim_ferro::Polarity;
    /// assert_eq!(Polarity::Up.sign(), 1.0);
    /// assert_eq!(Polarity::Down.sign(), -1.0);
    /// ```
    pub fn sign(self) -> f64 {
        match self {
            Polarity::Up => 1.0,
            Polarity::Down => -1.0,
        }
    }

    /// The opposite polarity.
    ///
    /// ```
    /// use felim_ferro::Polarity;
    /// assert_eq!(Polarity::Up.flipped(), Polarity::Down);
    /// ```
    pub fn flipped(self) -> Polarity {
        match self {
            Polarity::Up => Polarity::Down,
            Polarity::Down => Polarity::Up,
        }
    }

    /// Maps the paper's bit convention: `true` (bit `1`) ↔ [`Polarity::Up`].
    ///
    /// ```
    /// use felim_ferro::Polarity;
    /// assert_eq!(Polarity::from_bit(true), Polarity::Up);
    /// assert_eq!(Polarity::from_bit(false), Polarity::Down);
    /// ```
    pub fn from_bit(bit: bool) -> Polarity {
        if bit {
            Polarity::Up
        } else {
            Polarity::Down
        }
    }

    /// Inverse of [`Polarity::from_bit`].
    pub fn to_bit(self) -> bool {
        self == Polarity::Up
    }
}

impl fmt::Display for Polarity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Polarity::Up => write!(f, "P↑ ('1')"),
            Polarity::Down => write!(f, "P↓ ('0')"),
        }
    }
}

/// One Monte-Carlo domain of the polycrystalline film.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Domain {
    /// Coercive voltage of this domain at the reference temperature, in V.
    vc_v: f64,
    /// Normalized polarization in `[-1, +1]`.
    p: f64,
}

/// Applied-voltage magnitudes below this fraction of a domain's coercive
/// voltage are treated as non-switching (infinite τ). This keeps the model
/// numerically benign at millivolt-level circuit noise while still letting
/// genuine read pulses disturb the low-`V_c` tail.
const FIELD_CUTOFF_FRACTION: f64 = 0.25;

/// Merz-law switching time constant (s) for a domain with coercive
/// voltage `vc_v` under applied voltage `v`, with the coercive voltage
/// scaled by `vc_scale`. Returns `f64::INFINITY` below the activation
/// cutoff. This is the scalar kernel shared by [`Domain::tau`] and the
/// vectorized [`DomainBank`] sweeps.
#[inline]
pub(crate) fn merz_tau(vc_v: f64, v: f64, vc_scale: f64, tau0_s: f64, alpha: f64, n: f64) -> f64 {
    let vc = vc_v * vc_scale;
    let mag = v.abs();
    if mag < FIELD_CUTOFF_FRACTION * vc {
        return f64::INFINITY;
    }
    let arg = alpha * (vc / mag).powf(n);
    // exp(700) overflows f64; anything that slow is effectively frozen.
    if arg > 600.0 {
        f64::INFINITY
    } else {
        tau0_s * arg.exp()
    }
}

/// Structure-of-arrays storage for the domain population of one MFM
/// capacitor.
///
/// The solver-facing hot loops (charge prediction inside every Newton
/// iteration, relaxation on every committed step) sweep all domains with
/// the same scalar kernel; splitting coercive voltages and polarizations
/// into two contiguous `f64` slices lets those sweeps run as fused,
/// stride-1 passes the compiler can unroll and vectorize, instead of
/// hopping over interleaved `{vc, p}` pairs.
///
/// Per-index values round-trip through [`Domain`] by value; the JSON
/// serialization is element-wise and therefore identical to what the
/// old `Vec<Domain>` field produced.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DomainBank {
    vc_v: Vec<f64>,
    p: Vec<f64>,
}

impl DomainBank {
    /// An empty bank with capacity for `n` domains.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            vc_v: Vec::with_capacity(n),
            p: Vec::with_capacity(n),
        }
    }

    /// Appends a domain.
    pub fn push(&mut self, d: Domain) {
        self.vc_v.push(d.vc_v);
        self.p.push(d.p);
    }

    /// Number of domains.
    pub fn len(&self) -> usize {
        self.vc_v.len()
    }

    /// Whether the bank holds no domains.
    pub fn is_empty(&self) -> bool {
        self.vc_v.is_empty()
    }

    /// The `i`-th domain, by value.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn get(&self, i: usize) -> Domain {
        Domain {
            vc_v: self.vc_v[i],
            p: self.p[i],
        }
    }

    /// Iterates over the domains by value.
    pub fn iter(&self) -> impl Iterator<Item = Domain> + '_ {
        self.vc_v
            .iter()
            .zip(&self.p)
            .map(|(&vc_v, &p)| Domain { vc_v, p })
    }

    /// Coercive voltages (V), one per domain.
    pub fn vc_slice(&self) -> &[f64] {
        &self.vc_v
    }

    /// Normalized polarizations in `[-1, 1]`, one per domain.
    pub fn p_slice(&self) -> &[f64] {
        &self.p
    }

    /// Mutable polarizations (callers must keep values in `[-1, 1]`).
    pub(crate) fn p_slice_mut(&mut self) -> &mut [f64] {
        &mut self.p
    }

    /// Borrows the coercive voltages and mutable polarizations together
    /// (the committed-relaxation sweep needs both at once).
    pub(crate) fn vc_and_p_mut(&mut self) -> (&[f64], &mut [f64]) {
        (&self.vc_v, &mut self.p)
    }
}

impl FromIterator<Domain> for DomainBank {
    fn from_iter<I: IntoIterator<Item = Domain>>(iter: I) -> Self {
        let mut bank = DomainBank::default();
        for d in iter {
            bank.push(d);
        }
        bank
    }
}

// Written as a JSON sequence of `{"vc_v": …, "p": …}` objects — the exact
// encoding the previous `Vec<Domain>` representation produced. (The
// vendored serde derive cannot express this flattening, hence manual.)
impl Serialize for DomainBank {
    fn json_write(&self, out: &mut String) {
        out.push('[');
        for i in 0..self.len() {
            if i > 0 {
                out.push(',');
            }
            self.get(i).json_write(out);
        }
        out.push(']');
    }
}

impl Deserialize for DomainBank {}

impl Domain {
    /// Creates a domain with coercive voltage `vc_v` (V) in polarization
    /// state `p` (normalized, clamped to `[-1, 1]`).
    ///
    /// # Panics
    ///
    /// Panics if `vc_v` is not strictly positive and finite.
    pub fn new(vc_v: f64, p: f64) -> Self {
        assert!(
            vc_v > 0.0 && vc_v.is_finite(),
            "domain coercive voltage must be positive, got {vc_v}"
        );
        Self {
            vc_v,
            p: p.clamp(-1.0, 1.0),
        }
    }

    /// Coercive voltage at the reference temperature, in V.
    pub fn coercive_voltage(&self) -> f64 {
        self.vc_v
    }

    /// Current normalized polarization in `[-1, +1]`.
    pub fn polarization(&self) -> f64 {
        self.p
    }

    /// Forces the polarization state (clamped to `[-1, 1]`).
    pub fn set_polarization(&mut self, p: f64) {
        self.p = p.clamp(-1.0, 1.0);
    }

    /// Merz-law switching time constant (s) under applied voltage `v`,
    /// with the coercive voltage scaled by `vc_scale` (temperature
    /// dependence enters here).
    ///
    /// Returns `f64::INFINITY` below the activation cutoff.
    pub fn tau(&self, v: f64, vc_scale: f64, tau0_s: f64, alpha: f64, n: f64) -> f64 {
        merz_tau(self.vc_v, v, vc_scale, tau0_s, alpha, n)
    }

    /// Evolves the domain for `dt` seconds under constant voltage `v`.
    ///
    /// The polarization relaxes exponentially toward `sign(v)`:
    /// `p ← target + (p − target)·exp(−dt/τ)`. Returns the change in `p`.
    pub fn step(&mut self, v: f64, dt: f64, vc_scale: f64, tau0_s: f64, alpha: f64, n: f64) -> f64 {
        if v == 0.0 || dt <= 0.0 {
            return 0.0;
        }
        let tau = self.tau(v, vc_scale, tau0_s, alpha, n);
        if !tau.is_finite() {
            return 0.0;
        }
        let target = v.signum();
        let old = self.p;
        let decay = (-dt / tau).exp();
        self.p = target + (old - target) * decay;
        self.p - old
    }

    /// Would a pulse of `width_s` seconds at voltage `v` switch (move the
    /// polarization more than half way toward the target)?
    pub fn switches_under(
        &self,
        v: f64,
        width_s: f64,
        vc_scale: f64,
        tau0_s: f64,
        alpha: f64,
        n: f64,
    ) -> bool {
        let tau = self.tau(v, vc_scale, tau0_s, alpha, n);
        tau.is_finite() && width_s / tau > std::f64::consts::LN_2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TAU0: f64 = 6.6e-9;
    const ALPHA: f64 = 14.0;
    const N: f64 = 2.0;

    fn d() -> Domain {
        Domain::new(1.05, -1.0)
    }

    #[test]
    fn polarity_roundtrips() {
        for bit in [true, false] {
            assert_eq!(Polarity::from_bit(bit).to_bit(), bit);
        }
        assert_eq!(Polarity::Up.flipped().flipped(), Polarity::Up);
        assert_eq!(Polarity::Up.sign() * Polarity::Down.sign(), -1.0);
        assert!(Polarity::Down.to_string().contains('0'));
    }

    #[test]
    fn strong_field_switches_fast() {
        let dom = d();
        let tau = dom.tau(3.0, 1.0, TAU0, ALPHA, N);
        // Paper Fig 4(g,h): the MFM switches in < 300 ns at ±3 V.
        assert!(tau < 300e-9, "tau at 3 V = {tau:e}");
        assert!(dom.switches_under(3.0, 300e-9, 1.0, TAU0, ALPHA, N));
    }

    #[test]
    fn weak_field_is_frozen() {
        let dom = d();
        // Millivolt noise: below cutoff, infinite tau.
        assert_eq!(dom.tau(0.05, 1.0, TAU0, ALPHA, N), f64::INFINITY);
        // Near-coercive bias: finite but extremely slow.
        let tau = dom.tau(1.05, 1.0, TAU0, ALPHA, N);
        assert!(tau > 1e-3, "tau at Vc should exceed 1 ms, got {tau:e}");
    }

    #[test]
    fn tau_is_monotone_decreasing_in_field() {
        let dom = d();
        let mut last = f64::INFINITY;
        for mv in (300..=3000).step_by(100) {
            let v = mv as f64 / 1000.0;
            let tau = dom.tau(v, 1.0, TAU0, ALPHA, N);
            assert!(tau <= last, "tau must fall with |V| (v={v})");
            last = tau;
        }
    }

    #[test]
    fn step_moves_toward_field_sign() {
        let mut dom = d();
        let dp = dom.step(3.0, 1e-6, 1.0, TAU0, ALPHA, N);
        assert!(dp > 0.0);
        assert!(dom.polarization() > 0.99, "1 µs at 3 V fully switches");
        // And back.
        dom.step(-3.0, 1e-6, 1.0, TAU0, ALPHA, N);
        assert!(dom.polarization() < -0.99);
    }

    #[test]
    fn step_conserves_bounds() {
        let mut dom = d();
        for _ in 0..100 {
            dom.step(3.0, 1e-5, 1.0, TAU0, ALPHA, N);
            let p = dom.polarization();
            assert!((-1.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn aligned_field_is_a_no_op() {
        let mut dom = Domain::new(1.05, 1.0);
        let dp = dom.step(3.0, 1e-3, 1.0, TAU0, ALPHA, N);
        assert!(dp.abs() < 1e-12, "field along P must not move charge");
    }

    #[test]
    fn zero_voltage_or_time_is_a_no_op() {
        let mut dom = d();
        assert_eq!(dom.step(0.0, 1.0, 1.0, TAU0, ALPHA, N), 0.0);
        assert_eq!(dom.step(3.0, 0.0, 1.0, TAU0, ALPHA, N), 0.0);
        assert_eq!(dom.step(3.0, -1.0, 1.0, TAU0, ALPHA, N), 0.0);
    }

    #[test]
    fn vc_scale_models_temperature() {
        let dom = d();
        // Lower effective Vc (hotter device) → faster switching.
        let tau_cold = dom.tau(1.5, 1.0, TAU0, ALPHA, N);
        let tau_hot = dom.tau(1.5, 0.8, TAU0, ALPHA, N);
        assert!(tau_hot < tau_cold);
    }

    #[test]
    #[should_panic(expected = "coercive voltage")]
    fn rejects_nonpositive_vc() {
        let _ = Domain::new(0.0, 0.0);
    }

    #[test]
    fn clamps_initial_polarization() {
        assert_eq!(Domain::new(1.0, 7.0).polarization(), 1.0);
        assert_eq!(Domain::new(1.0, -7.0).polarization(), -1.0);
    }
}
