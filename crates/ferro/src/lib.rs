//! # felim-ferro — ferroelectric device physics
//!
//! Multi-domain nucleation-limited-switching (NLS) model of a
//! metal–ferroelectric–metal (MFM) capacitor, the device substrate of the
//! 2T-nC FeRAM logic-in-memory reproduction.
//!
//! The model follows the Monte-Carlo polycrystalline family of Alessandri
//! et al. (IEEE TED 2019), which the paper uses (calibrated to Micron's
//! NVDRAM cell): the film is split into independent domains, each with its
//! own coercive voltage drawn from a lognormal distribution, and each domain
//! switches under bias with a Merz-law field-activated time constant.
//! On top of the irreversible domain switching the model adds a reversible
//! domain-wall (Rayleigh-type) charge response, which is what makes
//! quasi-nondestructive readout (QNRO) sense margin repeatable across reads
//! while the slow irreversible component produces the *accumulative read
//! disturb* the paper describes.
//!
//! What the crate reproduces from the paper:
//!
//! * P–V hysteresis loops with Pr ≈ 22.3 µC/cm² ([`pv`], Fig 4(e)),
//! * coercive voltage decreasing with temperature while Pr stays nearly
//!   constant ([`temperature`], Fig 4(e)),
//! * pulse-switching dynamics maps — switching in < 300 ns at ±3 V
//!   ([`pulse`], Fig 4(g,h)),
//! * bipolar-cycling endurance beyond 10⁶ cycles ([`endurance`], Fig 4(f)),
//! * polarization-dependent read charge ΔQ₀ ≫ ΔQ₁ and its accumulation
//!   over repeated QNRO reads ([`capacitor`], Fig 2(b)).
//!
//! ## Quickstart
//!
//! ```
//! use felim_ferro::{MfmCapacitor, MfmParams, Polarity};
//!
//! let params = MfmParams::fabricated();
//! let mut cap = MfmCapacitor::new(&params);
//!
//! // Program the capacitor to logical '0' (negative remanent polarization).
//! cap.write(Polarity::Down);
//! assert!(cap.polarization() < -0.9);
//!
//! // A read pulse *against* the stored polarization moves much more charge
//! // than one along it — the physical basis of QNRO inverting logic.
//! let dq0 = cap.read_pulse_charge(params.read_voltage(), 100e-9);
//! cap.write(Polarity::Up);
//! let dq1 = cap.read_pulse_charge(params.read_voltage(), 100e-9);
//! assert!(dq0 > 2.0 * dq1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capacitor;
pub mod domain;
pub mod endurance;
pub mod imprint;
pub mod params;
pub mod pulse;
pub mod pv;
pub mod retention;
pub mod temperature;
pub mod variation;

pub use capacitor::{MfmCapacitor, PulseResult};
pub use domain::{Domain, DomainBank, Polarity};
pub use endurance::{EnduranceResult, EnduranceRun};
pub use imprint::ImprintModel;
pub use params::{MfmParams, MfmParamsBuilder, ParamError};
pub use pulse::{PulseSweep, SwitchingPoint};
pub use pv::{first_order_reversal_curves, PvLoop, PvPoint, ReversalCurve};
pub use retention::RetentionModel;
pub use temperature::TemperatureModel;
pub use variation::{DeviceSampler, VariationSpec};

/// Vacuum permittivity in F/m.
pub const EPSILON_0: f64 = 8.854_187_812_8e-12;

/// Boltzmann constant in J/K.
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Conversion factor from C/m² to µC/cm².
///
/// 1 C/m² = 100 µC/cm².
pub const C_M2_TO_UC_CM2: f64 = 100.0;

/// Converts a polarization expressed in C/m² to µC/cm².
///
/// ```
/// assert_eq!(felim_ferro::c_m2_to_uc_cm2(0.223), 22.3);
/// ```
pub fn c_m2_to_uc_cm2(p: f64) -> f64 {
    p * C_M2_TO_UC_CM2
}

/// Converts a polarization expressed in µC/cm² to C/m².
///
/// ```
/// assert!((felim_ferro::uc_cm2_to_c_m2(22.3) - 0.223).abs() < 1e-12);
/// ```
pub fn uc_cm2_to_c_m2(p: f64) -> f64 {
    p / C_M2_TO_UC_CM2
}
