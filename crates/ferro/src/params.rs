//! Device parameter sets for the MFM capacitor model.
//!
//! Two presets mirror the two device scales the paper works at:
//!
//! * [`MfmParams::fabricated`] — the measured lab device of Section IV
//!   (µm-scale pads, ±3 V operation, Pr = 22.3 µC/cm²),
//! * [`MfmParams::scaled_45nm`] — the 45 nm PTM circuit-simulation device of
//!   Section III (100 nm-scale capacitor, ~1.2 V operation).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error returned when building an [`MfmParams`] with invalid values.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamError {
    /// A physical quantity that must be strictly positive was not.
    NonPositive {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A fraction/coefficient outside its allowed range.
    OutOfRange {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable description of the allowed range.
        range: &'static str,
    },
    /// The model needs at least one domain.
    NoDomains,
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::NonPositive { name, value } => {
                write!(f, "parameter `{name}` must be positive, got {value}")
            }
            ParamError::OutOfRange { name, value, range } => {
                write!(f, "parameter `{name}` = {value} outside range {range}")
            }
            ParamError::NoDomains => write!(f, "at least one domain is required"),
        }
    }
}

impl std::error::Error for ParamError {}

/// Full parameter set of the multi-domain MFM capacitor model.
///
/// Construct via [`MfmParams::fabricated`], [`MfmParams::scaled_45nm`] or
/// [`MfmParams::builder`]. All fields use SI units (m, m², V, s, C/m²).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MfmParams {
    /// Electrode area in m².
    pub area_m2: f64,
    /// Ferroelectric film thickness in m.
    pub thickness_m: f64,
    /// Background (non-switching) relative permittivity of the film.
    pub eps_background: f64,
    /// Additional relative permittivity from reversible domain-wall motion
    /// available when the applied field opposes the stored polarization.
    pub eps_domain_wall: f64,
    /// Spontaneous polarization in C/m² (22.3 µC/cm² = 0.223 C/m²).
    pub ps_c_m2: f64,
    /// Mean coercive voltage at the reference temperature (300 K), in V.
    pub vc_mean_v: f64,
    /// Lognormal sigma of the per-domain coercive-voltage distribution.
    pub vc_sigma: f64,
    /// Merz-law attempt time τ₀ in s.
    pub tau0_s: f64,
    /// Merz-law activation coefficient α (dimensionless).
    pub merz_alpha: f64,
    /// Merz-law field exponent n in τ = τ₀·exp(α·(V_c/|V|)ⁿ).
    pub merz_exp: f64,
    /// Number of Monte-Carlo domains.
    pub n_domains: usize,
    /// Seed for the deterministic domain-disorder draw.
    pub seed: u64,
    /// Nominal read voltage V_R used by QNRO sensing, in V.
    pub read_voltage_v: f64,
    /// Nominal write voltage, in V.
    pub write_voltage_v: f64,
    /// Nominal write pulse width, in s.
    pub write_pulse_s: f64,
    /// Linear decrease of coercive voltage with temperature, per K.
    /// V_c(T) = V_c(300 K)·(1 − coeff·(T − 300)).
    pub temp_vc_coeff: f64,
    /// Linear decrease of spontaneous polarization with temperature, per K.
    pub temp_pr_coeff: f64,
    /// Curie temperature in K; polarization collapses above it.
    pub curie_k: f64,
    /// Relative wake-up amplitude of Pr during early cycling.
    pub wakeup_amplitude: f64,
    /// Cycle count over which wake-up saturates.
    pub wakeup_cycles: f64,
    /// Cycle count at which fatigue onset begins.
    pub fatigue_onset_cycles: f64,
    /// Relative Pr loss per decade of cycling past the fatigue onset.
    pub fatigue_per_decade: f64,
}

impl MfmParams {
    /// Parameters matching the fabricated device of Section IV:
    /// Pr = 22.3 µC/cm², coercive voltage ≈ ±1.05 V at 300 K, 50 %-switching
    /// time well under 300 ns at ±3 V (nominal full write pulse 1 µs),
    /// endurance ≥ 10⁶ bipolar ±3 V cycles.
    ///
    /// ```
    /// let p = felim_ferro::MfmParams::fabricated();
    /// assert!((felim_ferro::c_m2_to_uc_cm2(p.ps_c_m2) - 22.3).abs() < 0.01);
    /// ```
    pub fn fabricated() -> Self {
        Self {
            // 10 µm × 10 µm test pad.
            area_m2: 1e-10,
            thickness_m: 10e-9,
            eps_background: 30.0,
            eps_domain_wall: 60.0,
            ps_c_m2: 0.223,
            vc_mean_v: 1.05,
            vc_sigma: 0.12,
            tau0_s: 6.6e-9,
            merz_alpha: 14.0,
            merz_exp: 2.0,
            n_domains: 400,
            seed: DEFAULT_SEED,
            read_voltage_v: 0.85,
            write_voltage_v: 3.0,
            write_pulse_s: 1e-6,
            temp_vc_coeff: 2.2e-3,
            temp_pr_coeff: 3.0e-4,
            curie_k: 670.0,
            wakeup_amplitude: 0.03,
            wakeup_cycles: 200.0,
            fatigue_onset_cycles: 1.0e6,
            fatigue_per_decade: 0.05,
        }
    }

    /// Parameters for the scaled 45 nm-node circuit-simulation device of
    /// Section III (100 nm × 100 nm capacitor operated near 1.2 V).
    ///
    /// ```
    /// let p = felim_ferro::MfmParams::scaled_45nm();
    /// assert!(p.write_voltage_v < 2.0);
    /// ```
    pub fn scaled_45nm() -> Self {
        Self {
            area_m2: 1e-14,
            thickness_m: 8e-9,
            eps_background: 30.0,
            eps_domain_wall: 60.0,
            ps_c_m2: 0.223,
            vc_mean_v: 0.45,
            vc_sigma: 0.12,
            tau0_s: 6.6e-9,
            merz_alpha: 14.0,
            merz_exp: 2.0,
            n_domains: 200,
            seed: DEFAULT_SEED,
            read_voltage_v: 0.55,
            write_voltage_v: 1.2,
            write_pulse_s: 1e-6,
            temp_vc_coeff: 2.2e-3,
            temp_pr_coeff: 3.0e-4,
            curie_k: 670.0,
            wakeup_amplitude: 0.03,
            wakeup_cycles: 200.0,
            fatigue_onset_cycles: 1.0e6,
            fatigue_per_decade: 0.05,
        }
    }

    /// Starts a builder pre-populated with the fabricated-device preset.
    ///
    /// ```
    /// use felim_ferro::MfmParams;
    /// # fn main() -> Result<(), felim_ferro::ParamError> {
    /// let p = MfmParams::builder().n_domains(64).seed(7).build()?;
    /// assert_eq!(p.n_domains, 64);
    /// # Ok(())
    /// # }
    /// ```
    pub fn builder() -> MfmParamsBuilder {
        MfmParamsBuilder {
            params: Self::fabricated(),
        }
    }

    /// The nominal QNRO read voltage for this device.
    pub fn read_voltage(&self) -> f64 {
        self.read_voltage_v
    }

    /// The nominal write voltage for this device.
    pub fn write_voltage(&self) -> f64 {
        self.write_voltage_v
    }

    /// Background (non-switching) capacitance in F.
    pub fn background_capacitance(&self) -> f64 {
        crate::EPSILON_0 * self.eps_background * self.area_m2 / self.thickness_m
    }

    /// Maximum additional domain-wall capacitance in F (field fully
    /// opposing the stored polarization).
    pub fn domain_wall_capacitance(&self) -> f64 {
        crate::EPSILON_0 * self.eps_domain_wall * self.area_m2 / self.thickness_m
    }

    /// Charge released by a full polarization reversal, in C (2·Ps·A).
    pub fn full_switching_charge(&self) -> f64 {
        2.0 * self.ps_c_m2 * self.area_m2
    }

    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamError`] describing the first invalid field.
    pub fn validate(&self) -> Result<(), ParamError> {
        fn pos(name: &'static str, v: f64) -> Result<(), ParamError> {
            if v > 0.0 && v.is_finite() {
                Ok(())
            } else {
                Err(ParamError::NonPositive { name, value: v })
            }
        }
        pos("area_m2", self.area_m2)?;
        pos("thickness_m", self.thickness_m)?;
        pos("eps_background", self.eps_background)?;
        pos("ps_c_m2", self.ps_c_m2)?;
        pos("vc_mean_v", self.vc_mean_v)?;
        pos("tau0_s", self.tau0_s)?;
        pos("merz_alpha", self.merz_alpha)?;
        pos("merz_exp", self.merz_exp)?;
        pos("read_voltage_v", self.read_voltage_v)?;
        pos("write_voltage_v", self.write_voltage_v)?;
        pos("write_pulse_s", self.write_pulse_s)?;
        pos("curie_k", self.curie_k)?;
        if self.eps_domain_wall < 0.0 {
            return Err(ParamError::NonPositive {
                name: "eps_domain_wall",
                value: self.eps_domain_wall,
            });
        }
        if self.n_domains == 0 {
            return Err(ParamError::NoDomains);
        }
        if !(0.0..1.0).contains(&self.vc_sigma) {
            return Err(ParamError::OutOfRange {
                name: "vc_sigma",
                value: self.vc_sigma,
                range: "[0, 1)",
            });
        }
        if !(0.0..0.5).contains(&self.fatigue_per_decade) {
            return Err(ParamError::OutOfRange {
                name: "fatigue_per_decade",
                value: self.fatigue_per_decade,
                range: "[0, 0.5)",
            });
        }
        if self.curie_k <= 300.0 {
            return Err(ParamError::OutOfRange {
                name: "curie_k",
                value: self.curie_k,
                range: "(300, inf)",
            });
        }
        Ok(())
    }
}

impl Default for MfmParams {
    fn default() -> Self {
        Self::fabricated()
    }
}

/// Stable default seed for the deterministic domain-disorder draw.
pub const DEFAULT_SEED: u64 = 0x2AC0_FE2A_2025_0001;

/// Builder for [`MfmParams`]; see [`MfmParams::builder`].
#[derive(Debug, Clone)]
pub struct MfmParamsBuilder {
    params: MfmParams,
}

macro_rules! builder_setters {
    ($($(#[$doc:meta])* $name:ident : $ty:ty),+ $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(mut self, value: $ty) -> Self {
                self.params.$name = value;
                self
            }
        )+
    };
}

impl MfmParamsBuilder {
    builder_setters! {
        /// Sets the electrode area in m².
        area_m2: f64,
        /// Sets the film thickness in m.
        thickness_m: f64,
        /// Sets the background relative permittivity.
        eps_background: f64,
        /// Sets the reversible domain-wall permittivity contribution.
        eps_domain_wall: f64,
        /// Sets the spontaneous polarization in C/m².
        ps_c_m2: f64,
        /// Sets the mean coercive voltage in V.
        vc_mean_v: f64,
        /// Sets the lognormal coercive-voltage sigma.
        vc_sigma: f64,
        /// Sets the Merz attempt time in s.
        tau0_s: f64,
        /// Sets the Merz activation coefficient.
        merz_alpha: f64,
        /// Sets the Merz field exponent.
        merz_exp: f64,
        /// Sets the number of Monte-Carlo domains.
        n_domains: usize,
        /// Sets the disorder seed.
        seed: u64,
        /// Sets the nominal QNRO read voltage in V.
        read_voltage_v: f64,
        /// Sets the nominal write voltage in V.
        write_voltage_v: f64,
        /// Sets the nominal write pulse width in s.
        write_pulse_s: f64,
        /// Sets the coercive-voltage temperature coefficient (1/K).
        temp_vc_coeff: f64,
        /// Sets the polarization temperature coefficient (1/K).
        temp_pr_coeff: f64,
        /// Sets the Curie temperature in K.
        curie_k: f64,
        /// Sets the wake-up amplitude (relative).
        wakeup_amplitude: f64,
        /// Sets the wake-up saturation cycle count.
        wakeup_cycles: f64,
        /// Sets the fatigue onset cycle count.
        fatigue_onset_cycles: f64,
        /// Sets the fatigue slope per decade past onset.
        fatigue_per_decade: f64,
    }

    /// Validates and returns the parameter set.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamError`] if any field is out of its physical range.
    pub fn build(self) -> Result<MfmParams, ParamError> {
        self.params.validate()?;
        Ok(self.params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        MfmParams::fabricated().validate().unwrap();
        MfmParams::scaled_45nm().validate().unwrap();
    }

    #[test]
    fn fabricated_matches_reported_device() {
        let p = MfmParams::fabricated();
        // Pr target 22.3 µC/cm² (Ps a touch above; loop relaxation trims it).
        assert!(crate::c_m2_to_uc_cm2(p.ps_c_m2) > 22.0);
        assert!(crate::c_m2_to_uc_cm2(p.ps_c_m2) < 24.0);
        assert!(p.write_voltage_v == 3.0);
        assert!(p.write_pulse_s <= 10e-6);
    }

    #[test]
    fn builder_overrides_and_validates() {
        let p = MfmParams::builder().n_domains(10).build().unwrap();
        assert_eq!(p.n_domains, 10);
        let err = MfmParams::builder().area_m2(-1.0).build().unwrap_err();
        assert!(matches!(
            err,
            ParamError::NonPositive {
                name: "area_m2",
                ..
            }
        ));
        let err = MfmParams::builder().n_domains(0).build().unwrap_err();
        assert_eq!(err, ParamError::NoDomains);
        let err = MfmParams::builder().vc_sigma(1.5).build().unwrap_err();
        assert!(matches!(
            err,
            ParamError::OutOfRange {
                name: "vc_sigma",
                ..
            }
        ));
    }

    #[test]
    fn derived_capacitances_are_consistent() {
        let p = MfmParams::fabricated();
        let cbg = p.background_capacitance();
        let cdw = p.domain_wall_capacitance();
        // eps_dw = 2× eps_bg in the preset.
        assert!((cdw / cbg - 2.0).abs() < 1e-12);
        // 10µm × 10µm × 30ε over 10nm ≈ 2.66 pF.
        assert!((cbg - 2.656e-12).abs() < 0.05e-12);
    }

    #[test]
    fn full_switching_charge_scale() {
        let p = MfmParams::fabricated();
        // 2 × 0.223 C/m² × 1e-10 m² = 44.6 pC.
        assert!((p.full_switching_charge() - 44.6e-12).abs() < 0.1e-12);
    }

    #[test]
    fn error_display_is_informative() {
        let e = ParamError::NonPositive {
            name: "x",
            value: -1.0,
        };
        assert!(e.to_string().contains("must be positive"));
        let e = ParamError::OutOfRange {
            name: "y",
            value: 2.0,
            range: "[0,1)",
        };
        assert!(e.to_string().contains("outside range"));
        assert!(ParamError::NoDomains.to_string().contains("domain"));
    }
}
