//! Multi-domain MFM capacitor.
//!
//! The total electrode charge at applied voltage `v` is
//!
//! ```text
//! Q(v) = [C_bg + C_dw·opposition(v)] · v  +  A · Ps_eff · p̄
//! ```
//!
//! where `p̄` is the mean normalized domain polarization, `opposition(v)` is
//! the fraction of domains anti-aligned with the field (reversible
//! domain-wall response), and `Ps_eff` folds in temperature and cycling
//! fatigue. Domain states evolve with Merz-law kinetics under applied
//! pulses, which yields:
//!
//! * full switching under write pulses (±3 V, < 300 ns — Fig 4(g,h)),
//! * a large read charge ΔQ₀ when the read field opposes the stored state
//!   and a small ΔQ₁ when aligned (QNRO contrast, Fig 2(b)),
//! * slow accumulative read disturb through the low-V_c tail of the domain
//!   distribution (the reason QNRO still eventually needs a write-back).

use crate::domain::{merz_tau, Domain, DomainBank, Polarity};
use crate::endurance::pr_cycling_factor;
use crate::params::MfmParams;
use crate::temperature::TemperatureModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Outcome of applying a voltage pulse to an [`MfmCapacitor`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PulseResult {
    /// Change in mean normalized polarization (dimensionless, in [-2, 2]).
    pub delta_p: f64,
    /// Irreversible switched charge in C (`A · Ps_eff · Δp̄`).
    pub switched_charge: f64,
    /// Total charge moved at the pulse plateau, in C, including the
    /// reversible linear + domain-wall components.
    pub total_charge: f64,
}

/// A multi-domain metal–ferroelectric–metal capacitor.
///
/// See the [module documentation](self) for the physical model. All charge
/// values are in coulombs, voltages in volts, times in seconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MfmCapacitor {
    params: MfmParams,
    temperature: TemperatureModel,
    /// Domain population in structure-of-arrays form: the per-iteration
    /// charge predictions sweep these as contiguous `f64` slices.
    domains: DomainBank,
    temperature_k: f64,
    /// Accumulated bipolar write cycles (two opposite writes = one cycle).
    cycles: f64,
    /// Reads performed since the last full write (disturb bookkeeping).
    reads_since_write: u64,
    last_write: Option<Polarity>,
}

impl MfmCapacitor {
    /// Creates a capacitor at 300 K with all domains in the `Down`
    /// (logical `'0'`) state, drawing the domain disorder deterministically
    /// from `params.seed`.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail [`MfmParams::validate`].
    pub fn new(params: &MfmParams) -> Self {
        params
            .validate()
            .expect("MfmCapacitor requires valid parameters");
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mu = params.vc_mean_v.ln();
        let domains: DomainBank = (0..params.n_domains)
            .map(|_| {
                // Box–Muller standard normal from two uniforms.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let vc = (mu + params.vc_sigma * z).exp();
                Domain::new(vc, -1.0)
            })
            .collect();
        Self {
            temperature: TemperatureModel::from_params(params),
            params: params.clone(),
            domains,
            temperature_k: crate::temperature::REFERENCE_K,
            cycles: 0.0,
            reads_since_write: 0,
            last_write: Some(Polarity::Down),
        }
    }

    /// The device parameters this capacitor was built from.
    pub fn params(&self) -> &MfmParams {
        &self.params
    }

    /// Current operating temperature in K.
    pub fn temperature_k(&self) -> f64 {
        self.temperature_k
    }

    /// Sets the operating temperature in K.
    pub fn set_temperature(&mut self, t_k: f64) {
        self.temperature_k = t_k;
    }

    /// Mean normalized polarization `p̄ ∈ [-1, +1]`.
    pub fn polarization(&self) -> f64 {
        let sum: f64 = self.domains.p_slice().iter().sum();
        sum / self.domains.len() as f64
    }

    /// Remanent polarization in C/m² including temperature and fatigue.
    pub fn polarization_c_m2(&self) -> f64 {
        self.ps_eff() * self.polarization()
    }

    /// Remanent polarization in µC/cm².
    pub fn polarization_uc_cm2(&self) -> f64 {
        crate::c_m2_to_uc_cm2(self.polarization_c_m2())
    }

    /// Accumulated bipolar write cycles.
    pub fn cycles(&self) -> f64 {
        self.cycles
    }

    /// Number of QNRO reads since the last write (disturb bookkeeping).
    pub fn reads_since_write(&self) -> u64 {
        self.reads_since_write
    }

    /// Records one QNRO read against the disturb budget without applying
    /// any voltage — used by cell models that apply the read waveform via
    /// [`Self::apply_voltage`] themselves.
    pub fn count_read(&mut self) {
        self.reads_since_write += 1;
    }

    /// Effective spontaneous polarization (C/m²) after temperature and
    /// cycling-fatigue scaling.
    pub fn ps_eff(&self) -> f64 {
        self.params.ps_c_m2
            * self.temperature.ps_scale(self.temperature_k)
            * pr_cycling_factor(&self.params, self.cycles)
    }

    fn vc_scale(&self) -> f64 {
        self.temperature.vc_scale(self.temperature_k)
    }

    /// Fraction of domains anti-aligned with a field of sign `v_sign`,
    /// weighting each domain by how far it sits from the field target.
    fn opposition(&self, v_sign: f64) -> f64 {
        if v_sign == 0.0 {
            return 0.0;
        }
        let sum: f64 = self
            .domains
            .p_slice()
            .iter()
            .map(|&p| (1.0 - p * v_sign.signum()) * 0.5)
            .sum();
        sum / self.domains.len() as f64
    }

    /// Bias-dependent weight of the reversible domain-wall response:
    /// domain walls only depin above a threshold field (Rayleigh regime),
    /// modelled as a linear ramp reaching 1 at 30 % of the mean coercive
    /// voltage. Keeps weakly-biased (unselected) capacitors from loading
    /// a sense node state-dependently.
    fn dw_weight(&self, v: f64) -> f64 {
        (v.abs() / (0.3 * self.params.vc_mean_v)).clamp(0.0, 1.0)
    }

    /// Small-signal capacitance (F) at bias `v` with the current domain
    /// state frozen: background plus the (threshold-weighted) reversible
    /// domain-wall term.
    pub fn capacitance(&self, v: f64) -> f64 {
        self.params.background_capacitance()
            + self.params.domain_wall_capacitance()
                * self.opposition(v.signum())
                * self.dw_weight(v)
    }

    /// Total electrode charge (C) at voltage `v` with the current state.
    pub fn charge(&self, v: f64) -> f64 {
        self.capacitance(v) * v + self.params.area_m2 * self.ps_eff() * self.polarization()
    }

    /// Evolves the domain state for `dt` seconds at constant voltage `v`.
    /// Returns the change in mean normalized polarization.
    ///
    /// One fused stride-1 sweep over the domain bank, same scalar kernel
    /// per domain as [`Domain::step`].
    pub fn apply_voltage(&mut self, v: f64, dt: f64) -> f64 {
        let vc_scale = self.vc_scale();
        let (tau0, alpha, n) = (
            self.params.tau0_s,
            self.params.merz_alpha,
            self.params.merz_exp,
        );
        let count = self.domains.len() as f64;
        if v == 0.0 || dt <= 0.0 {
            return 0.0;
        }
        let target = v.signum();
        let (vc, ps) = self.domains.vc_and_p_mut();
        let mut total = 0.0;
        for (&vc_v, p) in vc.iter().zip(ps) {
            let tau = merz_tau(vc_v, v, vc_scale, tau0, alpha, n);
            if tau.is_finite() {
                let old = *p;
                let decay = (-dt / tau).exp();
                *p = target + (old - target) * decay;
                total += *p - old;
            }
        }
        total / count
    }

    /// Predicts — without mutating state — the mean polarization after `dt`
    /// seconds at voltage `v`. Used by the circuit simulator's
    /// Newton–Raphson iterations.
    pub fn predict_polarization(&self, v: f64, dt: f64) -> f64 {
        if v == 0.0 || dt <= 0.0 {
            return self.polarization();
        }
        let vc_scale = self.vc_scale();
        let (tau0, alpha, n) = (
            self.params.tau0_s,
            self.params.merz_alpha,
            self.params.merz_exp,
        );
        let target = v.signum();
        let sum: f64 = self
            .domains
            .vc_slice()
            .iter()
            .zip(self.domains.p_slice())
            .map(|(&vc_v, &p)| {
                let tau = merz_tau(vc_v, v, vc_scale, tau0, alpha, n);
                if tau.is_finite() {
                    target + (p - target) * (-dt / tau).exp()
                } else {
                    p
                }
            })
            .sum();
        sum / self.domains.len() as f64
    }

    /// Predicted electrode charge (C) after `dt` seconds at voltage `v`,
    /// without mutating state. Companion of [`Self::predict_polarization`].
    ///
    /// Both the switched polarization and the domain-wall opposition are
    /// evaluated on the *predicted* domain state, so the value matches what
    /// [`Self::charge`] would report after committing the same step.
    pub fn predict_charge(&self, v: f64, dt: f64) -> f64 {
        let vc_scale = self.vc_scale();
        let (tau0, alpha, n) = (
            self.params.tau0_s,
            self.params.merz_alpha,
            self.params.merz_exp,
        );
        let target = if v == 0.0 { 0.0 } else { v.signum() };
        let mut p_sum = 0.0;
        let mut opp_sum = 0.0;
        for (&vc_v, &p) in self.domains.vc_slice().iter().zip(self.domains.p_slice()) {
            let p_new = if v == 0.0 || dt <= 0.0 {
                p
            } else {
                let tau = merz_tau(vc_v, v, vc_scale, tau0, alpha, n);
                if tau.is_finite() {
                    target + (p - target) * (-dt / tau).exp()
                } else {
                    p
                }
            };
            p_sum += p_new;
            opp_sum += (1.0 - p_new * target) * 0.5;
        }
        let count = self.domains.len() as f64;
        let opposition = if v == 0.0 { 0.0 } else { opp_sum / count };
        let cap = self.params.background_capacitance()
            + self.params.domain_wall_capacitance() * opposition * self.dw_weight(v);
        cap * v + self.params.area_m2 * self.ps_eff() * p_sum / count
    }

    /// Predicted electrode charges at two voltages `v_a` and `v_b` after
    /// the same `dt`, in one fused pass over the domain bank.
    ///
    /// Bit-identical to calling [`Self::predict_charge`] twice — each
    /// voltage keeps its own accumulators, updated per domain in the same
    /// order — but evaluates the Merz kernel sweep once instead of
    /// twice-over. This is the circuit simulator's inner loop: every
    /// Newton iteration needs `Q(v)` and `Q(v + h)` for the finite-
    /// difference companion conductance.
    pub fn predict_charge_pair(&self, v_a: f64, v_b: f64, dt: f64) -> (f64, f64) {
        let vc_scale = self.vc_scale();
        let (tau0, alpha, n) = (
            self.params.tau0_s,
            self.params.merz_alpha,
            self.params.merz_exp,
        );
        let target_a = if v_a == 0.0 { 0.0 } else { v_a.signum() };
        let target_b = if v_b == 0.0 { 0.0 } else { v_b.signum() };
        let (mut p_sum_a, mut opp_sum_a) = (0.0, 0.0);
        let (mut p_sum_b, mut opp_sum_b) = (0.0, 0.0);
        for (&vc_v, &p) in self.domains.vc_slice().iter().zip(self.domains.p_slice()) {
            let p_new_a = if v_a == 0.0 || dt <= 0.0 {
                p
            } else {
                let tau = merz_tau(vc_v, v_a, vc_scale, tau0, alpha, n);
                if tau.is_finite() {
                    target_a + (p - target_a) * (-dt / tau).exp()
                } else {
                    p
                }
            };
            p_sum_a += p_new_a;
            opp_sum_a += (1.0 - p_new_a * target_a) * 0.5;
            let p_new_b = if v_b == 0.0 || dt <= 0.0 {
                p
            } else {
                let tau = merz_tau(vc_v, v_b, vc_scale, tau0, alpha, n);
                if tau.is_finite() {
                    target_b + (p - target_b) * (-dt / tau).exp()
                } else {
                    p
                }
            };
            p_sum_b += p_new_b;
            opp_sum_b += (1.0 - p_new_b * target_b) * 0.5;
        }
        let count = self.domains.len() as f64;
        let charge = |v: f64, p_sum: f64, opp_sum: f64| {
            let opposition = if v == 0.0 { 0.0 } else { opp_sum / count };
            let cap = self.params.background_capacitance()
                + self.params.domain_wall_capacitance() * opposition * self.dw_weight(v);
            cap * v + self.params.area_m2 * self.ps_eff() * p_sum / count
        };
        (
            charge(v_a, p_sum_a, opp_sum_a),
            charge(v_b, p_sum_b, opp_sum_b),
        )
    }

    /// Evolves the domain state *stochastically*: instead of the mean-
    /// field exponential relaxation, each domain flips all-or-nothing
    /// with the Bernoulli probability `1 − exp(−dt/τ)` — the discrete
    /// nucleation events the Monte-Carlo model of Alessandri et al.
    /// describes. The expectation equals [`Self::apply_voltage`]; single
    /// shots show shot-to-shot switching noise. Returns the change in
    /// mean polarization.
    pub fn apply_voltage_stochastic<R: rand::Rng>(&mut self, v: f64, dt: f64, rng: &mut R) -> f64 {
        if v == 0.0 || dt <= 0.0 {
            return 0.0;
        }
        let vc_scale = self.vc_scale();
        let (tau0, alpha, n) = (
            self.params.tau0_s,
            self.params.merz_alpha,
            self.params.merz_exp,
        );
        let target = v.signum();
        let count = self.domains.len() as f64;
        let mut delta = 0.0;
        let (vc, ps) = self.domains.vc_and_p_mut();
        for (&vc_v, p) in vc.iter().zip(ps) {
            let tau = merz_tau(vc_v, v, vc_scale, tau0, alpha, n);
            if !tau.is_finite() {
                continue;
            }
            let p_flip = 1.0 - (-dt / tau).exp();
            if rng.gen_bool(p_flip.clamp(0.0, 1.0)) {
                let old = *p;
                *p = target;
                delta += target - old;
            }
        }
        delta / count
    }

    /// Applies a rectangular voltage pulse of amplitude `v` and width
    /// `width_s`, committing the domain-state change.
    pub fn apply_pulse(&mut self, v: f64, width_s: f64) -> PulseResult {
        let q_before = self.charge(0.0);
        let delta_p = self.apply_voltage(v, width_s);
        let q_peak = self.charge(v);
        PulseResult {
            delta_p,
            switched_charge: self.params.area_m2 * self.ps_eff() * delta_p,
            total_charge: q_peak - q_before,
        }
    }

    /// Charge moved at the plateau of a QNRO read pulse, in C, including
    /// the disturb bookkeeping (increments [`Self::reads_since_write`]).
    ///
    /// The sensed quantity of Fig 2(b): large for a stored `'0'` read with
    /// positive `v_read` (ΔQ₀), small for a stored `'1'` (ΔQ₁).
    pub fn read_pulse_charge(&mut self, v_read: f64, width_s: f64) -> f64 {
        let r = self.apply_pulse(v_read, width_s);
        self.reads_since_write += 1;
        r.total_charge
    }

    /// Programs the capacitor with a physical write pulse at the nominal
    /// write voltage and pulse width. Counts endurance cycles (one bipolar
    /// cycle per polarity reversal pair) and resets the read-disturb
    /// counter.
    pub fn write(&mut self, polarity: Polarity) -> PulseResult {
        let v = self.params.write_voltage_v * polarity.sign();
        let r = self.apply_pulse(v, self.params.write_pulse_s);
        if let Some(prev) = self.last_write {
            if prev != polarity {
                self.cycles += 0.5;
            }
        }
        self.last_write = Some(polarity);
        self.reads_since_write = 0;
        r
    }

    /// Instantly sets every domain to the given polarity without switching
    /// dynamics — the fast path used by behavioural (non-SPICE) cell
    /// models. Performs the same endurance/disturb bookkeeping as
    /// [`Self::write`].
    pub fn write_ideal(&mut self, polarity: Polarity) {
        self.domains.p_slice_mut().fill(polarity.sign());
        if let Some(prev) = self.last_write {
            if prev != polarity {
                self.cycles += 0.5;
            }
        }
        self.last_write = Some(polarity);
        self.reads_since_write = 0;
    }

    /// The stored logical state inferred from the polarization sign, or
    /// `None` if the state is degraded into the ambiguous band
    /// `|p̄| < margin`.
    pub fn stored_state(&self, margin: f64) -> Option<Polarity> {
        let p = self.polarization();
        if p > margin {
            Some(Polarity::Up)
        } else if p < -margin {
            Some(Polarity::Down)
        } else {
            None
        }
    }

    /// Adds `n` bipolar write cycles of fatigue without simulating each
    /// pulse (bulk endurance bookkeeping for Fig 4(f)).
    pub fn add_fatigue_cycles(&mut self, n: f64) {
        assert!(n >= 0.0, "cycle count must be non-negative");
        self.cycles += n;
    }

    /// Iterates over the domains (by value; the backing store is
    /// structure-of-arrays).
    pub fn domains(&self) -> impl Iterator<Item = Domain> + '_ {
        self.domains.iter()
    }

    /// The domain population in structure-of-arrays form.
    pub fn domain_bank(&self) -> &DomainBank {
        &self.domains
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap() -> MfmCapacitor {
        MfmCapacitor::new(&MfmParams::fabricated())
    }

    #[test]
    fn starts_fully_down_and_deterministic() {
        let a = cap();
        let b = cap();
        assert_eq!(a, b, "same seed must give identical devices");
        assert!((a.polarization() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn write_reaches_saturation_both_ways() {
        let mut c = cap();
        c.write(Polarity::Up);
        assert!(c.polarization() > 0.95, "3 V / 300 ns write must saturate");
        c.write(Polarity::Down);
        assert!(c.polarization() < -0.95);
    }

    #[test]
    fn remanent_polarization_matches_fabricated_device() {
        let mut c = cap();
        c.write(Polarity::Up);
        let pr = c.polarization_uc_cm2();
        // Fig 4(e): Pr = 22.3 µC/cm² (±1 tolerance for model granularity).
        assert!((pr - 22.3).abs() < 1.0, "Pr = {pr} µC/cm²");
    }

    #[test]
    fn qnro_contrast_dq0_much_larger_than_dq1() {
        let p = MfmParams::fabricated();
        let mut c = MfmCapacitor::new(&p);
        c.write(Polarity::Down);
        let dq0 = c.read_pulse_charge(p.read_voltage(), 100e-9);
        let mut c = MfmCapacitor::new(&p);
        c.write(Polarity::Up);
        let dq1 = c.read_pulse_charge(p.read_voltage(), 100e-9);
        assert!(
            dq0 > 2.0 * dq1,
            "QNRO contrast too small: dq0={dq0:e}, dq1={dq1:e}"
        );
        assert!(dq1 > 0.0);
    }

    #[test]
    fn qnro_read_is_quasi_nondestructive() {
        let p = MfmParams::fabricated();
        let mut c = MfmCapacitor::new(&p);
        c.write(Polarity::Down);
        let before = c.polarization();
        for _ in 0..10 {
            c.read_pulse_charge(p.read_voltage(), 100e-9);
        }
        let after = c.polarization();
        // Ten reads barely move the state (unlike destructive 1T-1C).
        assert!(
            (after - before).abs() < 0.05,
            "10 reads moved p by {}",
            after - before
        );
        assert_eq!(c.reads_since_write(), 10);
        // But the state *did* move a little in the field direction:
        // quasi-nondestructive, not perfectly nondestructive.
        assert!(after > before);
    }

    #[test]
    fn read_disturb_accumulates_over_many_reads() {
        let p = MfmParams::fabricated();
        let mut c = MfmCapacitor::new(&p);
        c.write(Polarity::Down);
        let mut margins = Vec::new();
        for _ in 0..50 {
            // Batch of 100 reads at a time.
            let mut dq_last = 0.0;
            for _ in 0..100 {
                dq_last = c.read_pulse_charge(p.read_voltage(), 100e-9);
            }
            margins.push(dq_last);
        }
        // Accumulated disturb: polarization drifts noticeably after 5000
        // reads, and the read margin decays monotonically in trend.
        assert!(c.polarization() > -0.999);
        let first = margins[0];
        let last = *margins.last().unwrap();
        assert!(last <= first, "margin must not grow with disturb");
    }

    #[test]
    fn write_resets_disturb_counter() {
        let p = MfmParams::fabricated();
        let mut c = MfmCapacitor::new(&p);
        c.write(Polarity::Down);
        c.read_pulse_charge(p.read_voltage(), 100e-9);
        assert_eq!(c.reads_since_write(), 1);
        c.write(Polarity::Down);
        assert_eq!(c.reads_since_write(), 0);
    }

    #[test]
    fn cycle_counting_counts_reversal_pairs() {
        let mut c = cap();
        assert_eq!(c.cycles(), 0.0);
        c.write(Polarity::Down); // no reversal (already down)
        assert_eq!(c.cycles(), 0.0);
        c.write(Polarity::Up); // reversal
        c.write(Polarity::Down); // reversal → one full bipolar cycle
        assert!((c.cycles() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn charge_is_monotone_in_voltage_for_frozen_state() {
        let c = cap();
        let mut last = f64::NEG_INFINITY;
        for mv in (-3000..=3000).step_by(250) {
            let v = mv as f64 / 1000.0;
            let q = c.charge(v);
            assert!(q >= last, "Q(V) monotone at fixed state");
            last = q;
        }
    }

    #[test]
    fn capacitance_is_state_dependent() {
        let p = MfmParams::fabricated();
        let mut c = MfmCapacitor::new(&p);
        c.write_ideal(Polarity::Down);
        let c_opposing = c.capacitance(1.0); // field against P: DW active
        let c_aligned = c.capacitance(-1.0); // field along P
        assert!(c_opposing > 2.0 * c_aligned);
        assert!((c_aligned - p.background_capacitance()).abs() < 1e-15);
    }

    #[test]
    fn predict_matches_commit() {
        let p = MfmParams::fabricated();
        let mut c = MfmCapacitor::new(&p);
        c.write(Polarity::Down);
        let predicted = c.predict_polarization(2.0, 50e-9);
        let q_pred = c.predict_charge(2.0, 50e-9);
        c.apply_voltage(2.0, 50e-9);
        assert!((c.polarization() - predicted).abs() < 1e-12);
        assert!((c.charge(2.0) - q_pred).abs() < 1e-22);
    }

    #[test]
    fn stored_state_detection() {
        let mut c = cap();
        c.write_ideal(Polarity::Up);
        assert_eq!(c.stored_state(0.5), Some(Polarity::Up));
        c.write_ideal(Polarity::Down);
        assert_eq!(c.stored_state(0.5), Some(Polarity::Down));
        // Degrade into the ambiguous band artificially.
        c.apply_voltage(3.0, 20e-9);
        if c.polarization().abs() < 0.5 {
            assert_eq!(c.stored_state(0.5), None);
        }
    }

    #[test]
    fn temperature_lowers_switching_barrier() {
        let p = MfmParams::fabricated();
        // Sub-nominal write pulse that barely switches at 300 K.
        let mut cold = MfmCapacitor::new(&p);
        cold.write_ideal(Polarity::Down);
        let moved_cold = cold.apply_voltage(1.6, 100e-9);
        let mut hot = MfmCapacitor::new(&p);
        hot.write_ideal(Polarity::Down);
        hot.set_temperature(390.0);
        let moved_hot = hot.apply_voltage(1.6, 100e-9);
        assert!(
            moved_hot > moved_cold,
            "hotter film must switch more: {moved_hot:e} vs {moved_cold:e}"
        );
    }

    #[test]
    fn fatigue_reduces_effective_polarization() {
        let mut c = cap();
        c.write_ideal(Polarity::Up);
        let fresh = c.polarization_uc_cm2();
        c.add_fatigue_cycles(1e8);
        let fatigued = c.polarization_uc_cm2();
        assert!(fatigued < fresh);
        // Paper Fig 4(f): still functional at 1e6 — checked in endurance.rs.
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_fatigue() {
        cap().add_fatigue_cycles(-1.0);
    }

    #[test]
    fn scaled_device_also_has_qnro_contrast() {
        let p = MfmParams::scaled_45nm();
        let mut c0 = MfmCapacitor::new(&p);
        c0.write(Polarity::Down);
        let dq0 = c0.read_pulse_charge(p.read_voltage(), 100e-9);
        let mut c1 = MfmCapacitor::new(&p);
        c1.write(Polarity::Up);
        let dq1 = c1.read_pulse_charge(p.read_voltage(), 100e-9);
        assert!(dq0 > 2.0 * dq1, "scaled: dq0={dq0:e} dq1={dq1:e}");
    }

    #[test]
    fn stochastic_switching_matches_mean_field_in_expectation() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let p = MfmParams::fabricated();
        // Mean-field prediction for a partial-switching pulse.
        let mut mean_field = MfmCapacitor::new(&p);
        mean_field.write_ideal(Polarity::Down);
        mean_field.apply_voltage(2.0, 40e-9);
        let expected = mean_field.polarization();

        // Average many stochastic shots of the same pulse.
        let mut rng = StdRng::seed_from_u64(44);
        let trials = 60;
        let mut acc = 0.0;
        let mut spread = 0.0f64;
        for _ in 0..trials {
            let mut c = MfmCapacitor::new(&p);
            c.write_ideal(Polarity::Down);
            c.apply_voltage_stochastic(2.0, 40e-9, &mut rng);
            acc += c.polarization();
            spread = spread.max((c.polarization() - expected).abs());
        }
        let mean = acc / trials as f64;
        assert!(
            (mean - expected).abs() < 0.05,
            "stochastic mean {mean} vs mean-field {expected}"
        );
        // And individual shots genuinely fluctuate (shot noise exists).
        assert!(spread > 0.005, "expected switching noise, spread {spread}");
    }

    #[test]
    fn stochastic_switching_is_all_or_nothing_per_domain() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let p = MfmParams::fabricated();
        let mut c = MfmCapacitor::new(&p);
        c.write_ideal(Polarity::Down);
        let mut rng = StdRng::seed_from_u64(7);
        c.apply_voltage_stochastic(2.2, 60e-9, &mut rng);
        for d in c.domains() {
            let pd = d.polarization();
            assert!(
                pd == 1.0 || pd == -1.0,
                "domains must be fully up or down, got {pd}"
            );
        }
    }

    #[test]
    fn scaled_device_write_saturates_at_low_voltage() {
        let p = MfmParams::scaled_45nm();
        let mut c = MfmCapacitor::new(&p);
        c.write(Polarity::Up);
        assert!(c.polarization() > 0.9, "p = {}", c.polarization());
    }
}
