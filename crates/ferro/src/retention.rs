//! Non-volatile data retention.
//!
//! A ferroelectric bit decays through depolarization-field-driven
//! relaxation of the weakest domains: the retained polarization follows a
//! stretched-exponential (Kohlrausch) law
//!
//! ```text
//! Pr(t) = Pr(0) · exp(−(t/τ_ret)^β)
//! ```
//!
//! with a retention time constant τ_ret that is thermally activated
//! (Arrhenius). This module quantifies the "non-volatile" row of the
//! paper's Fig 1 comparison: years of retention at 300 K versus DRAM's
//! 64 ms refresh interval, and it feeds the elevated-temperature check of
//! Section VII (retention at the 352 K stack operating point).

use crate::params::MfmParams;
use crate::BOLTZMANN;
use serde::{Deserialize, Serialize};

/// Electron-volt in joules.
const EV: f64 = 1.602_176_634e-19;

/// Stretched-exponential retention model with Arrhenius temperature
/// acceleration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetentionModel {
    /// Retention time constant at the reference temperature (300 K), s.
    pub tau_300k_s: f64,
    /// Kohlrausch stretching exponent β ∈ (0, 1].
    pub beta: f64,
    /// Activation energy of the depolarization process, eV.
    pub activation_ev: f64,
}

impl RetentionModel {
    /// HfO₂-class defaults, calibrated to the usual product spec of
    /// ten-year retention at 85 °C (358 K): τ(300 K) ≈ 8 × 10¹¹ s,
    /// β = 0.4, 1.1 eV activation.
    pub fn hfo2_default() -> Self {
        Self {
            tau_300k_s: 8e11,
            beta: 0.4,
            activation_ev: 1.1,
        }
    }

    /// Builds the model from device parameters (currently the HfO₂
    /// defaults; the hook exists so parameter sets can carry their own
    /// retention figures later).
    pub fn from_params(_params: &MfmParams) -> Self {
        Self::hfo2_default()
    }

    /// Temperature-accelerated retention time constant at `t_k`, s.
    pub fn tau_s(&self, t_k: f64) -> f64 {
        let ea = self.activation_ev * EV;
        let t_k = t_k.max(1.0);
        self.tau_300k_s * (ea / BOLTZMANN * (1.0 / t_k - 1.0 / 300.0)).exp()
    }

    /// Fraction of the remanent polarization retained after `t_s` seconds
    /// at temperature `t_k`.
    ///
    /// ```
    /// let m = felim_ferro::retention::RetentionModel::hfo2_default();
    /// // Ten years at room temperature: still above the sense floor.
    /// let ten_years = 10.0 * 365.25 * 86400.0;
    /// assert!(m.retained_fraction(ten_years, 300.0) > 0.5);
    /// ```
    pub fn retained_fraction(&self, t_s: f64, t_k: f64) -> f64 {
        if t_s <= 0.0 {
            return 1.0;
        }
        let tau = self.tau_s(t_k);
        (-(t_s / tau).powf(self.beta)).exp()
    }

    /// Time (s) until the retained fraction falls to `floor` at
    /// temperature `t_k` — the retention figure of merit.
    pub fn retention_time_s(&self, floor: f64, t_k: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&floor) && floor > 0.0,
            "floor must be in (0, 1), got {floor}"
        );
        let tau = self.tau_s(t_k);
        tau * (-floor.ln()).powf(1.0 / self.beta)
    }
}

impl Default for RetentionModel {
    fn default() -> Self {
        Self::hfo2_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const YEAR_S: f64 = 365.25 * 86400.0;

    fn m() -> RetentionModel {
        RetentionModel::hfo2_default()
    }

    #[test]
    fn fresh_state_is_fully_retained() {
        assert_eq!(m().retained_fraction(0.0, 300.0), 1.0);
        assert_eq!(m().retained_fraction(-5.0, 300.0), 1.0);
    }

    #[test]
    fn ten_year_retention_at_room_temperature() {
        // The non-volatility claim of Fig 1, quantified.
        let retained = m().retained_fraction(10.0 * YEAR_S, 300.0);
        assert!(retained > 0.5, "10-year retention {retained}");
        // And the 50 % retention time exceeds a decade.
        assert!(m().retention_time_s(0.5, 300.0) > 10.0 * YEAR_S);
    }

    #[test]
    fn retention_is_monotone_decreasing_in_time() {
        let model = m();
        let mut last = 1.1;
        for exp in 0..12 {
            let f = model.retained_fraction(10f64.powi(exp), 300.0);
            assert!(f < last);
            assert!(f > 0.0);
            last = f;
        }
    }

    #[test]
    fn temperature_accelerates_loss() {
        let model = m();
        let t = YEAR_S;
        let cold = model.retained_fraction(t, 300.0);
        let stack = model.retained_fraction(t, 352.0);
        let hot = model.retained_fraction(t, 390.0);
        assert!(cold > stack);
        assert!(stack > hot);
        // At the Fig 7 stack operating point data still holds for months:
        assert!(model.retention_time_s(0.5, 352.0) > 30.0 * 86400.0);
    }

    #[test]
    fn arrhenius_tau_is_consistent() {
        let model = m();
        assert!((model.tau_s(300.0) - model.tau_300k_s).abs() < 1e-3 * model.tau_300k_s);
        assert!(model.tau_s(390.0) < model.tau_s(300.0));
    }

    #[test]
    fn retention_dwarfs_dram_refresh_interval() {
        // Fig 1 comparison: FeRAM retention time vs DRAM's 64 ms.
        let feram = m().retention_time_s(0.9, 300.0);
        assert!(feram / 64e-3 > 1e6, "FeRAM/DRAM retention ratio");
    }

    #[test]
    #[should_panic(expected = "floor must be in")]
    fn rejects_bad_floor() {
        let _ = m().retention_time_s(1.5, 300.0);
    }
}
