//! Non-volatile data retention.
//!
//! A ferroelectric bit decays through depolarization-field-driven
//! relaxation of the weakest domains: the retained polarization follows a
//! stretched-exponential (Kohlrausch) law
//!
//! ```text
//! Pr(t) = Pr(0) · exp(−(t/τ_ret)^β)
//! ```
//!
//! with a retention time constant τ_ret that is thermally activated
//! (Arrhenius). This module quantifies the "non-volatile" row of the
//! paper's Fig 1 comparison: years of retention at 300 K versus DRAM's
//! 64 ms refresh interval, and it feeds the elevated-temperature check of
//! Section VII (retention at the 352 K stack operating point).

use crate::params::MfmParams;
use crate::BOLTZMANN;
use serde::{Deserialize, Serialize};

/// Electron-volt in joules.
const EV: f64 = 1.602_176_634e-19;

/// Stretched-exponential retention model with Arrhenius temperature
/// acceleration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetentionModel {
    /// Retention time constant at the reference temperature (300 K), s.
    pub tau_300k_s: f64,
    /// Kohlrausch stretching exponent β ∈ (0, 1].
    pub beta: f64,
    /// Activation energy of the depolarization process, eV.
    pub activation_ev: f64,
}

impl RetentionModel {
    /// HfO₂-class defaults, calibrated to the usual product spec of
    /// ten-year retention at 85 °C (358 K): τ(300 K) ≈ 8 × 10¹¹ s,
    /// β = 0.4, 1.1 eV activation.
    pub fn hfo2_default() -> Self {
        Self {
            tau_300k_s: 8e11,
            beta: 0.4,
            activation_ev: 1.1,
        }
    }

    /// Builds the model from device parameters (currently the HfO₂
    /// defaults; the hook exists so parameter sets can carry their own
    /// retention figures later).
    pub fn from_params(_params: &MfmParams) -> Self {
        Self::hfo2_default()
    }

    /// Temperature-accelerated retention time constant at `t_k`, s.
    pub fn tau_s(&self, t_k: f64) -> f64 {
        let ea = self.activation_ev * EV;
        let t_k = t_k.max(1.0);
        self.tau_300k_s * (ea / BOLTZMANN * (1.0 / t_k - 1.0 / 300.0)).exp()
    }

    /// Fraction of the remanent polarization retained after `t_s` seconds
    /// at temperature `t_k`.
    ///
    /// ```
    /// let m = felim_ferro::retention::RetentionModel::hfo2_default();
    /// // Ten years at room temperature: still above the sense floor.
    /// let ten_years = 10.0 * 365.25 * 86400.0;
    /// assert!(m.retained_fraction(ten_years, 300.0) > 0.5);
    /// ```
    pub fn retained_fraction(&self, t_s: f64, t_k: f64) -> f64 {
        if t_s <= 0.0 {
            return 1.0;
        }
        let tau = self.tau_s(t_k);
        (-(t_s / tau).powf(self.beta)).exp()
    }

    /// Time (s) until the retained fraction falls to `floor` at
    /// temperature `t_k` — the retention figure of merit.
    pub fn retention_time_s(&self, floor: f64, t_k: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&floor) && floor > 0.0,
            "floor must be in (0, 1), got {floor}"
        );
        let tau = self.tau_s(t_k);
        tau * (-floor.ln()).powf(1.0 / self.beta)
    }

    /// Probability that one bit has decayed past the sense floor after
    /// `t_s` seconds at `t_k` — the architecture-level rate-derivation
    /// hook for drift-aware fault processes.
    ///
    /// The per-bit failure CDF is a Weibull `1 − exp(−(t/t_fail)^k)`
    /// centred on `t_fail`, the [`RetentionModel::retention_time_s`] of
    /// the given floor: at `t = t_fail` a fraction `1 − 1/e` of the bits
    /// has crossed it. The shape `k` is NOT the Kohlrausch β: β < 1
    /// describes the *population-average* polarization (weak domains
    /// relax first), but one stored bit only fails when its own many-
    /// domain average crosses the floor, and averaging narrows the
    /// lifetime spread — so per-bit lifetimes cluster around `t_fail`
    /// (shape 3) instead of inheriting the population's heavy early
    /// tail. A β-shaped per-bit CDF would lose ~0.2 % of bits on day
    /// one of a nominal ten-year part, which no retention-qualified
    /// product exhibits.
    ///
    /// # Panics
    ///
    /// Panics unless `floor ∈ (0, 1)`.
    pub fn bit_failure_probability(&self, t_s: f64, t_k: f64, floor: f64) -> f64 {
        /// Weibull shape of the per-bit lifetime distribution.
        const BIT_LIFETIME_SHAPE: f64 = 3.0;
        if t_s <= 0.0 {
            return 0.0;
        }
        let t_fail = self.retention_time_s(floor, t_k);
        1.0 - (-(t_s / t_fail).powf(BIT_LIFETIME_SHAPE)).exp()
    }

    /// Incremental per-bit failure probability over the interval
    /// `(t0_s, t1_s]` since the last write, conditioned on having
    /// survived to `t0_s` — the hazard a time-stepped fault process
    /// applies per tick so that accumulated ticks reproduce the
    /// un-stepped CDF.
    ///
    /// # Panics
    ///
    /// Panics unless `floor ∈ (0, 1)` or if `t1_s < t0_s`.
    pub fn bit_failure_hazard(&self, t0_s: f64, t1_s: f64, t_k: f64, floor: f64) -> f64 {
        assert!(t1_s >= t0_s, "interval must advance: {t0_s} → {t1_s}");
        let f0 = self.bit_failure_probability(t0_s, t_k, floor);
        let f1 = self.bit_failure_probability(t1_s, t_k, floor);
        let survival = 1.0 - f0;
        if survival <= f64::EPSILON {
            return 1.0;
        }
        ((f1 - f0) / survival).clamp(0.0, 1.0)
    }
}

impl Default for RetentionModel {
    fn default() -> Self {
        Self::hfo2_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const YEAR_S: f64 = 365.25 * 86400.0;

    fn m() -> RetentionModel {
        RetentionModel::hfo2_default()
    }

    #[test]
    fn fresh_state_is_fully_retained() {
        assert_eq!(m().retained_fraction(0.0, 300.0), 1.0);
        assert_eq!(m().retained_fraction(-5.0, 300.0), 1.0);
    }

    #[test]
    fn ten_year_retention_at_room_temperature() {
        // The non-volatility claim of Fig 1, quantified.
        let retained = m().retained_fraction(10.0 * YEAR_S, 300.0);
        assert!(retained > 0.5, "10-year retention {retained}");
        // And the 50 % retention time exceeds a decade.
        assert!(m().retention_time_s(0.5, 300.0) > 10.0 * YEAR_S);
    }

    #[test]
    fn retention_is_monotone_decreasing_in_time() {
        let model = m();
        let mut last = 1.1;
        for exp in 0..12 {
            let f = model.retained_fraction(10f64.powi(exp), 300.0);
            assert!(f < last);
            assert!(f > 0.0);
            last = f;
        }
    }

    #[test]
    fn temperature_accelerates_loss() {
        let model = m();
        let t = YEAR_S;
        let cold = model.retained_fraction(t, 300.0);
        let stack = model.retained_fraction(t, 352.0);
        let hot = model.retained_fraction(t, 390.0);
        assert!(cold > stack);
        assert!(stack > hot);
        // At the Fig 7 stack operating point data still holds for months:
        assert!(model.retention_time_s(0.5, 352.0) > 30.0 * 86400.0);
    }

    #[test]
    fn arrhenius_tau_is_consistent() {
        let model = m();
        assert!((model.tau_s(300.0) - model.tau_300k_s).abs() < 1e-3 * model.tau_300k_s);
        assert!(model.tau_s(390.0) < model.tau_s(300.0));
    }

    #[test]
    fn retention_dwarfs_dram_refresh_interval() {
        // Fig 1 comparison: FeRAM retention time vs DRAM's 64 ms.
        let feram = m().retention_time_s(0.9, 300.0);
        assert!(feram / 64e-3 > 1e6, "FeRAM/DRAM retention ratio");
    }

    #[test]
    #[should_panic(expected = "floor must be in")]
    fn rejects_bad_floor() {
        let _ = m().retention_time_s(1.5, 300.0);
    }

    #[test]
    fn bit_failure_probability_tracks_the_weibull_cdf() {
        let model = m();
        assert_eq!(model.bit_failure_probability(0.0, 300.0, 0.5), 0.0);
        let t_fail = model.retention_time_s(0.5, 300.0);
        let at_fail = model.bit_failure_probability(t_fail, 300.0, 0.5);
        assert!((at_fail - (1.0 - (-1.0f64).exp())).abs() < 1e-9);
        // Monotone in time, and hotter fails sooner.
        let early = model.bit_failure_probability(t_fail / 100.0, 300.0, 0.5);
        assert!(early < at_fail);
        assert!(
            model.bit_failure_probability(1e9, 390.0, 0.5)
                > model.bit_failure_probability(1e9, 300.0, 0.5)
        );
    }

    #[test]
    fn hazard_ticks_compose_to_the_cdf() {
        // Surviving three consecutive hazards must equal surviving the
        // whole interval: Π(1 − h_i) == 1 − F(t3). The interval sits in
        // the rising part of the CDF so the identity is non-degenerate.
        let model = m();
        let (t_k, floor) = (390.0, 0.5);
        let ts = [0.0, 1e6, 2e6, 3e6];
        let mut survival = 1.0;
        for w in ts.windows(2) {
            survival *= 1.0 - model.bit_failure_hazard(w[0], w[1], t_k, floor);
        }
        let direct = 1.0 - model.bit_failure_probability(ts[3], t_k, floor);
        assert!((survival - direct).abs() < 1e-12, "{survival} vs {direct}");
        assert!(direct < 1.0 - 1e-4, "interval must not be degenerate");
    }

    #[test]
    fn day_one_bit_failures_are_negligible_at_room_temperature() {
        // The reason the per-bit CDF is not β-shaped: a fresh part must
        // not shed bits on day one.
        let p = m().bit_failure_probability(86_400.0, 300.0, 0.5);
        assert!(p < 1e-12, "day-one per-bit failure {p}");
    }
}
