//! Device-to-device variation.
//!
//! The paper's MFM model is "calibrated to Micron's NVDRAM cell which
//! accurately captures variation and stochastic switching". This
//! module provides the population view: samples of [`MfmParams`] with
//! die-level spread in coercive voltage, spontaneous polarization,
//! thickness and area, for Monte-Carlo yield analysis of the sensing
//! scheme (see `felim-cell`'s margin analysis).

use crate::params::MfmParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Relative (1-sigma) device-to-device spreads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariationSpec {
    /// Coercive-voltage spread (lognormal sigma).
    pub vc_sigma: f64,
    /// Spontaneous-polarization spread (lognormal sigma).
    pub ps_sigma: f64,
    /// Film-thickness spread (lognormal sigma).
    pub thickness_sigma: f64,
    /// Electrode-area spread (lognormal sigma, litho variation).
    pub area_sigma: f64,
}

impl VariationSpec {
    /// Typical fab corner: 4 % Vc, 3 % Ps, 2 % thickness, 2 % area.
    pub fn typical() -> Self {
        Self {
            vc_sigma: 0.04,
            ps_sigma: 0.03,
            thickness_sigma: 0.02,
            area_sigma: 0.02,
        }
    }

    /// A pessimistic corner with doubled spreads.
    pub fn pessimistic() -> Self {
        let t = Self::typical();
        Self {
            vc_sigma: 2.0 * t.vc_sigma,
            ps_sigma: 2.0 * t.ps_sigma,
            thickness_sigma: 2.0 * t.thickness_sigma,
            area_sigma: 2.0 * t.area_sigma,
        }
    }
}

impl Default for VariationSpec {
    fn default() -> Self {
        Self::typical()
    }
}

/// Deterministic sampler of varied device parameter sets.
#[derive(Debug)]
pub struct DeviceSampler {
    nominal: MfmParams,
    spec: VariationSpec,
    rng: StdRng,
}

impl DeviceSampler {
    /// Creates a sampler around `nominal` with the given spreads, seeded
    /// deterministically.
    pub fn new(nominal: &MfmParams, spec: VariationSpec, seed: u64) -> Self {
        Self {
            nominal: nominal.clone(),
            spec,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn lognormal(&mut self, sigma: f64) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (sigma * z).exp()
    }

    /// Draws one varied device. Each draw also gets a fresh domain-
    /// disorder seed so Monte-Carlo instances differ microscopically as
    /// well as parametrically.
    pub fn sample(&mut self) -> MfmParams {
        felim_telemetry::counter("montecarlo.ferro.samples").inc();
        let mut p = self.nominal.clone();
        p.vc_mean_v *= self.lognormal(self.spec.vc_sigma);
        p.ps_c_m2 *= self.lognormal(self.spec.ps_sigma);
        p.thickness_m *= self.lognormal(self.spec.thickness_sigma);
        p.area_m2 *= self.lognormal(self.spec.area_sigma);
        p.seed = self.rng.gen();
        p
    }

    /// Draws `n` varied devices.
    pub fn sample_n(&mut self, n: usize) -> Vec<MfmParams> {
        (0..n).map(|_| self.sample()).collect()
    }
}

/// Draws a population of `n` varied devices on the scoped thread pool.
///
/// Unlike [`DeviceSampler::sample_n`] — which advances one sequential
/// stream — device `i` here is the first draw of its own generator seeded
/// with `derive_seed(seed, i)`. Each device therefore depends only on
/// `(nominal, spec, seed, i)`, so the population is bit-identical for any
/// worker count (including serial) and workers never contend on shared
/// state.
pub fn sample_population(
    nominal: &MfmParams,
    spec: VariationSpec,
    seed: u64,
    n: usize,
) -> Vec<MfmParams> {
    let indices: Vec<u64> = (0..n as u64).collect();
    felim_exec::parallel_map(&indices, |_, &i| {
        DeviceSampler::new(nominal, spec, felim_exec::derive_seed(seed, i)).sample()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacitor::MfmCapacitor;
    use crate::domain::Polarity;

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let nominal = MfmParams::fabricated();
        let mut a = DeviceSampler::new(&nominal, VariationSpec::typical(), 5);
        let mut b = DeviceSampler::new(&nominal, VariationSpec::typical(), 5);
        assert_eq!(a.sample_n(4), b.sample_n(4));
        let mut c = DeviceSampler::new(&nominal, VariationSpec::typical(), 6);
        assert_ne!(a.sample(), c.sample());
    }

    #[test]
    fn spread_statistics_match_spec() {
        let nominal = MfmParams::fabricated();
        let mut s = DeviceSampler::new(&nominal, VariationSpec::typical(), 1);
        let samples = s.sample_n(2000);
        let mean_vc: f64 = samples.iter().map(|p| p.vc_mean_v).sum::<f64>() / samples.len() as f64;
        let var_vc: f64 = samples
            .iter()
            .map(|p| (p.vc_mean_v / nominal.vc_mean_v).ln().powi(2))
            .sum::<f64>()
            / samples.len() as f64;
        assert!(
            (mean_vc / nominal.vc_mean_v - 1.0).abs() < 0.01,
            "mean centred"
        );
        assert!((var_vc.sqrt() - 0.04).abs() < 0.005, "sigma ≈ 4 %");
    }

    #[test]
    fn sampled_devices_are_valid_and_functional() {
        let nominal = MfmParams::fabricated();
        let mut s = DeviceSampler::new(&nominal, VariationSpec::pessimistic(), 2);
        for p in s.sample_n(20) {
            p.validate().unwrap();
            let mut cap = MfmCapacitor::new(&p);
            cap.write(Polarity::Up);
            assert!(cap.polarization() > 0.9, "varied device must still write");
        }
    }

    #[test]
    fn pessimistic_corner_doubles_spread() {
        let t = VariationSpec::typical();
        let p = VariationSpec::pessimistic();
        assert_eq!(p.vc_sigma, 2.0 * t.vc_sigma);
        assert_eq!(p.area_sigma, 2.0 * t.area_sigma);
    }

    #[test]
    fn population_is_invariant_to_worker_count() {
        let nominal = MfmParams::fabricated();
        let spec = VariationSpec::typical();
        let pop = sample_population(&nominal, spec, 9, 12);
        assert_eq!(pop.len(), 12);
        // Serial reference: sample i is the first draw at its derived seed.
        for (i, p) in pop.iter().enumerate() {
            let mut s =
                DeviceSampler::new(&nominal, spec, felim_exec::derive_seed(9, i as u64));
            assert_eq!(*p, s.sample(), "sample {i}");
        }
        // Distinct indices give distinct devices.
        assert_ne!(pop[0], pop[1]);
    }

    #[test]
    fn domain_seeds_differ_between_samples() {
        let nominal = MfmParams::fabricated();
        let mut s = DeviceSampler::new(&nominal, VariationSpec::typical(), 3);
        let a = s.sample();
        let b = s.sample();
        assert_ne!(a.seed, b.seed);
    }
}
