//! Pulse-switching dynamics (Fig 4(g,h)).
//!
//! Maps the switched polarization of a saturated device against write-pulse
//! width and amplitude, for both positive (P↓→P↑) and negative (P↑→P↓)
//! switching. Mirrors the paper's measurement: the MFM switches with pulse
//! widths under 300 ns at ±3 V, and the required width grows steeply as the
//! amplitude approaches the coercive voltage.

use crate::capacitor::MfmCapacitor;
use crate::domain::Polarity;
use crate::params::MfmParams;
use serde::{Deserialize, Serialize};

/// One (width, amplitude) sample of a switching-dynamics map.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwitchingPoint {
    /// Pulse width in s.
    pub width_s: f64,
    /// Pulse amplitude in V (signed).
    pub amplitude_v: f64,
    /// Normalized switched polarization in [0, 2]: 0 = untouched,
    /// 2 = full reversal from −Ps to +Ps (or vice versa).
    pub delta_p: f64,
    /// Switched fraction in [0, 1] (`delta_p / 2`).
    pub switched_fraction: f64,
}

/// Sweeps pulse width × amplitude on fresh devices.
#[derive(Debug, Clone)]
pub struct PulseSweep {
    params: MfmParams,
    temperature_k: f64,
}

impl PulseSweep {
    /// Creates a sweep harness for the given device at 300 K.
    pub fn new(params: &MfmParams) -> Self {
        Self {
            params: params.clone(),
            temperature_k: 300.0,
        }
    }

    /// Sets the sweep temperature in K.
    pub fn at_temperature(mut self, t_k: f64) -> Self {
        self.temperature_k = t_k;
        self
    }

    /// Switched polarization for a single pulse applied to a device
    /// saturated opposite to the pulse direction.
    pub fn single(&self, amplitude_v: f64, width_s: f64) -> SwitchingPoint {
        let mut cap = MfmCapacitor::new(&self.params);
        cap.set_temperature(self.temperature_k);
        let start = if amplitude_v >= 0.0 {
            Polarity::Down
        } else {
            Polarity::Up
        };
        cap.write_ideal(start);
        let r = cap.apply_pulse(amplitude_v, width_s);
        SwitchingPoint {
            width_s,
            amplitude_v,
            delta_p: r.delta_p.abs(),
            switched_fraction: (r.delta_p.abs() / 2.0).min(1.0),
        }
    }

    /// Full map over the outer product of `widths_s` × `amplitudes_v`.
    /// Points are ordered amplitude-major (all widths for the first
    /// amplitude, then the next amplitude, …).
    pub fn map(&self, widths_s: &[f64], amplitudes_v: &[f64]) -> Vec<SwitchingPoint> {
        amplitudes_v
            .iter()
            .flat_map(|&a| widths_s.iter().map(move |&w| (a, w)))
            .map(|(a, w)| self.single(a, w))
            .collect()
    }

    /// Minimum pulse width achieving `fraction` switching at the given
    /// amplitude, found by bisection over `[1 ns, 1 s]`. Returns `None` if
    /// even a 1 s pulse does not reach the target.
    pub fn time_to_switch(&self, amplitude_v: f64, fraction: f64) -> Option<f64> {
        assert!(
            (0.0..1.0).contains(&fraction.abs()) || fraction == 1.0,
            "fraction must be in (0, 1], got {fraction}"
        );
        let (mut lo, mut hi) = (1e-9, 1.0);
        if self.single(amplitude_v, hi).switched_fraction < fraction {
            return None;
        }
        if self.single(amplitude_v, lo).switched_fraction >= fraction {
            return Some(lo);
        }
        for _ in 0..60 {
            let mid = (lo * hi).sqrt();
            if self.single(amplitude_v, mid).switched_fraction >= fraction {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some(hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> PulseSweep {
        PulseSweep::new(&MfmParams::fabricated())
    }

    #[test]
    fn switches_under_300ns_at_3v_both_signs() {
        // Paper Fig 4(g,h): switching with pulse widths < 300 ns at ±3 V.
        let s = sweep();
        let t_pos = s.time_to_switch(3.0, 0.5).expect("must switch");
        let t_neg = s.time_to_switch(-3.0, 0.5).expect("must switch");
        assert!(t_pos < 300e-9, "positive 50% switch at {t_pos:e}");
        assert!(t_neg < 300e-9, "negative 50% switch at {t_neg:e}");
    }

    #[test]
    fn switching_needs_exponentially_longer_near_vc() {
        let s = sweep();
        let t3 = s.time_to_switch(3.0, 0.5).unwrap();
        let t2 = s.time_to_switch(2.0, 0.5).unwrap();
        let t15 = s.time_to_switch(1.5, 0.5).unwrap();
        assert!(t2 > 3.0 * t3, "t(2V)={t2:e} vs t(3V)={t3:e}");
        assert!(t15 > 3.0 * t2, "t(1.5V)={t15:e} vs t(2V)={t2:e}");
    }

    #[test]
    fn switched_fraction_monotone_in_width() {
        let s = sweep();
        let widths = [10e-9, 30e-9, 100e-9, 300e-9, 1e-6, 3e-6];
        let mut last = -1.0;
        for &w in &widths {
            let frac = s.single(2.2, w).switched_fraction;
            assert!(frac >= last, "fraction must grow with width");
            last = frac;
        }
    }

    #[test]
    fn switched_fraction_monotone_in_amplitude() {
        let s = sweep();
        let mut last = -1.0;
        for mv in (1500..=3000).step_by(250) {
            let frac = s.single(mv as f64 / 1000.0, 100e-9).switched_fraction;
            assert!(frac >= last, "fraction must grow with amplitude");
            last = frac;
        }
    }

    #[test]
    fn positive_negative_switching_symmetric() {
        let s = sweep();
        let p = s.single(2.5, 200e-9).switched_fraction;
        let n = s.single(-2.5, 200e-9).switched_fraction;
        assert!((p - n).abs() < 0.02, "pos {p} vs neg {n}");
    }

    #[test]
    fn map_covers_grid_in_order() {
        let s = sweep();
        let m = s.map(&[1e-8, 1e-7], &[2.0, 3.0]);
        assert_eq!(m.len(), 4);
        assert_eq!(m[0].amplitude_v, 2.0);
        assert_eq!(m[0].width_s, 1e-8);
        assert_eq!(m[3].amplitude_v, 3.0);
        assert_eq!(m[3].width_s, 1e-7);
    }

    #[test]
    fn subcoercive_pulse_never_switches() {
        let s = sweep();
        assert_eq!(s.time_to_switch(0.2, 0.5), None);
    }

    #[test]
    fn higher_temperature_switches_faster() {
        let cold = PulseSweep::new(&MfmParams::fabricated());
        let hot = PulseSweep::new(&MfmParams::fabricated()).at_temperature(390.0);
        let tc = cold.time_to_switch(1.8, 0.5).unwrap();
        let th = hot.time_to_switch(1.8, 0.5).unwrap();
        assert!(th < tc, "hot {th:e} must beat cold {tc:e}");
    }
}
