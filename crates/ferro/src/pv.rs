//! Quasi-static polarization–voltage hysteresis loop tracing (Fig 4(e)).
//!
//! A triangular voltage sweep is applied to an [`MfmCapacitor`] with a
//! configurable per-step dwell time; the committed polarization is recorded
//! at every step. Loop metrics (remanent polarization, coercive voltages)
//! are extracted from the traced branches exactly as one would from a
//! Sawyer–Tower measurement.

use crate::capacitor::MfmCapacitor;
use crate::params::MfmParams;
use serde::{Deserialize, Serialize};

/// One sample of a traced P–V loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PvPoint {
    /// Applied voltage in V.
    pub voltage_v: f64,
    /// Polarization in µC/cm².
    pub polarization_uc_cm2: f64,
}

/// A traced hysteresis loop with extracted metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PvLoop {
    /// Ascending branch: −V_max → +V_max.
    pub ascending: Vec<PvPoint>,
    /// Descending branch: +V_max → −V_max.
    pub descending: Vec<PvPoint>,
    /// Temperature at which the loop was traced, in K.
    pub temperature_k: f64,
    /// Positive remanent polarization (descending branch at V = 0), µC/cm².
    pub pr_pos_uc_cm2: f64,
    /// Negative remanent polarization (ascending branch at V = 0), µC/cm².
    pub pr_neg_uc_cm2: f64,
    /// Positive coercive voltage (ascending zero crossing), V.
    pub vc_pos_v: f64,
    /// Negative coercive voltage (descending zero crossing), V.
    pub vc_neg_v: f64,
}

impl PvLoop {
    /// Traces a loop on a fresh device built from `params` at temperature
    /// `temperature_k`, sweeping ±`v_max` with `steps` samples per branch
    /// and `dwell_s` seconds spent at each voltage step.
    ///
    /// The device is first saturated negative so the ascending branch
    /// starts from a well-defined state.
    ///
    /// # Panics
    ///
    /// Panics if `steps < 2`, or if `v_max` or `dwell_s` is not positive.
    pub fn trace(
        params: &MfmParams,
        temperature_k: f64,
        v_max: f64,
        steps: usize,
        dwell_s: f64,
    ) -> Self {
        assert!(steps >= 2, "need at least 2 steps per branch");
        assert!(v_max > 0.0, "v_max must be positive");
        assert!(dwell_s > 0.0, "dwell must be positive");
        let mut cap = MfmCapacitor::new(params);
        cap.set_temperature(temperature_k);
        // Pre-saturate negative (several dwells at -v_max).
        cap.apply_voltage(-v_max, 10.0 * dwell_s);

        let sweep = |cap: &mut MfmCapacitor, from: f64, to: f64| -> Vec<PvPoint> {
            (0..steps)
                .map(|i| {
                    let v = from + (to - from) * i as f64 / (steps - 1) as f64;
                    cap.apply_voltage(v, dwell_s);
                    PvPoint {
                        voltage_v: v,
                        polarization_uc_cm2: cap.polarization_uc_cm2(),
                    }
                })
                .collect()
        };

        let ascending = sweep(&mut cap, -v_max, v_max);
        let descending = sweep(&mut cap, v_max, -v_max);

        let pr_pos = interpolate_at_v(&descending, 0.0);
        let pr_neg = interpolate_at_v(&ascending, 0.0);
        let vc_pos = zero_crossing_voltage(&ascending);
        let vc_neg = zero_crossing_voltage(&descending);

        Self {
            ascending,
            descending,
            temperature_k,
            pr_pos_uc_cm2: pr_pos,
            pr_neg_uc_cm2: pr_neg,
            vc_pos_v: vc_pos,
            vc_neg_v: vc_neg,
        }
    }

    /// Traces a loop with sensible defaults for the given device: ±`v_max`,
    /// 120 steps per branch, 1 ms dwell (≈ 1 Hz triangular measurement).
    pub fn trace_default(params: &MfmParams, temperature_k: f64, v_max: f64) -> Self {
        Self::trace(params, temperature_k, v_max, 120, 1e-3)
    }

    /// Mean of |Pr+| and |Pr−| in µC/cm².
    pub fn remanent_polarization(&self) -> f64 {
        (self.pr_pos_uc_cm2.abs() + self.pr_neg_uc_cm2.abs()) / 2.0
    }

    /// Mean of |Vc+| and |Vc−| in V.
    pub fn coercive_voltage(&self) -> f64 {
        (self.vc_pos_v.abs() + self.vc_neg_v.abs()) / 2.0
    }

    /// All points of the loop in sweep order (ascending then descending).
    pub fn points(&self) -> impl Iterator<Item = &PvPoint> {
        self.ascending.iter().chain(self.descending.iter())
    }
}

/// A first-order reversal curve: after negative saturation the voltage
/// sweeps up to a reversal point `v_r < V_max` and back down — the family
/// of these curves (FORC analysis) maps the switching distribution, the
/// standard characterisation companion to the major loop of Fig 4(e).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReversalCurve {
    /// The reversal voltage this curve turned around at, in V.
    pub reversal_v: f64,
    /// The descending branch from the reversal point, as `(V, P)` points.
    pub descending: Vec<PvPoint>,
}

/// Traces a family of first-order reversal curves on fresh devices:
/// one curve per reversal voltage, each starting from negative
/// saturation at −`v_max`.
///
/// # Panics
///
/// Panics on empty `reversal_voltages` or non-positive sweep settings.
pub fn first_order_reversal_curves(
    params: &MfmParams,
    temperature_k: f64,
    v_max: f64,
    reversal_voltages: &[f64],
    steps: usize,
    dwell_s: f64,
) -> Vec<ReversalCurve> {
    assert!(!reversal_voltages.is_empty(), "need at least one curve");
    assert!(steps >= 2 && v_max > 0.0 && dwell_s > 0.0);
    reversal_voltages
        .iter()
        .map(|&v_r| {
            let mut cap = MfmCapacitor::new(params);
            cap.set_temperature(temperature_k);
            cap.apply_voltage(-v_max, 10.0 * dwell_s);
            // Ascend to the reversal point.
            for i in 0..steps {
                let v = -v_max + (v_r + v_max) * i as f64 / (steps - 1) as f64;
                cap.apply_voltage(v, dwell_s);
            }
            // Descend back to -v_max, recording.
            let descending = (0..steps)
                .map(|i| {
                    let v = v_r - (v_r + v_max) * i as f64 / (steps - 1) as f64;
                    cap.apply_voltage(v, dwell_s);
                    PvPoint {
                        voltage_v: v,
                        polarization_uc_cm2: cap.polarization_uc_cm2(),
                    }
                })
                .collect();
            ReversalCurve {
                reversal_v: v_r,
                descending,
            }
        })
        .collect()
}

/// Linear interpolation of polarization at voltage `v0` along a branch.
fn interpolate_at_v(branch: &[PvPoint], v0: f64) -> f64 {
    for w in branch.windows(2) {
        let (a, b) = (w[0], w[1]);
        let lo = a.voltage_v.min(b.voltage_v);
        let hi = a.voltage_v.max(b.voltage_v);
        if (lo..=hi).contains(&v0) && hi > lo {
            let t = (v0 - a.voltage_v) / (b.voltage_v - a.voltage_v);
            return a.polarization_uc_cm2 + t * (b.polarization_uc_cm2 - a.polarization_uc_cm2);
        }
    }
    branch.last().map_or(0.0, |p| p.polarization_uc_cm2)
}

/// Voltage at which the branch polarization crosses zero.
fn zero_crossing_voltage(branch: &[PvPoint]) -> f64 {
    for w in branch.windows(2) {
        let (a, b) = (w[0], w[1]);
        if a.polarization_uc_cm2 == 0.0 {
            return a.voltage_v;
        }
        if a.polarization_uc_cm2 * b.polarization_uc_cm2 < 0.0 {
            let t = -a.polarization_uc_cm2 / (b.polarization_uc_cm2 - a.polarization_uc_cm2);
            return a.voltage_v + t * (b.voltage_v - a.voltage_v);
        }
    }
    f64::NAN
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fab_loop(t_k: f64) -> PvLoop {
        PvLoop::trace(&MfmParams::fabricated(), t_k, 3.0, 80, 1e-3)
    }

    #[test]
    fn loop_is_hysteretic_and_saturates() {
        let l = fab_loop(300.0);
        // Saturated ends meet.
        let asc_end = l.ascending.last().unwrap().polarization_uc_cm2;
        let desc_start = l.descending.first().unwrap().polarization_uc_cm2;
        assert!((asc_end - desc_start).abs() < 0.5);
        assert!(asc_end > 20.0);
        // Branches differ in the middle (hysteresis).
        let pr_gap = l.pr_pos_uc_cm2 - l.pr_neg_uc_cm2;
        assert!(pr_gap > 30.0, "loop must open: ΔPr = {pr_gap}");
    }

    #[test]
    fn remanent_polarization_matches_fig4e() {
        let l = fab_loop(300.0);
        let pr = l.remanent_polarization();
        assert!((pr - 22.3).abs() < 1.5, "Pr = {pr} µC/cm²");
    }

    #[test]
    fn coercive_voltage_is_of_order_one_volt() {
        let l = fab_loop(300.0);
        let vc = l.coercive_voltage();
        assert!((0.7..=1.8).contains(&vc), "Vc = {vc} V");
        // Symmetric film: |Vc+| ≈ |Vc−|.
        assert!((l.vc_pos_v + l.vc_neg_v).abs() < 0.2 * vc);
    }

    #[test]
    fn coercive_voltage_decreases_with_temperature() {
        // Fig 4(e): Vc falls from 300 K to 390 K, Pr nearly constant.
        let cold = fab_loop(300.0);
        let warm = fab_loop(350.0);
        let hot = fab_loop(390.0);
        assert!(warm.coercive_voltage() < cold.coercive_voltage());
        assert!(hot.coercive_voltage() < warm.coercive_voltage());
        let pr_drift = (hot.remanent_polarization() - cold.remanent_polarization()).abs();
        assert!(
            pr_drift / cold.remanent_polarization() < 0.06,
            "Pr must stay nearly constant, drifted {pr_drift}"
        );
    }

    #[test]
    fn ascending_branch_is_monotone_nondecreasing() {
        let l = fab_loop(300.0);
        let mut last = f64::NEG_INFINITY;
        for p in &l.ascending {
            assert!(p.polarization_uc_cm2 >= last - 1e-9);
            last = p.polarization_uc_cm2;
        }
    }

    #[test]
    fn points_iterator_covers_both_branches() {
        let l = PvLoop::trace(&MfmParams::fabricated(), 300.0, 3.0, 10, 1e-3);
        assert_eq!(l.points().count(), 20);
    }

    #[test]
    #[should_panic(expected = "at least 2 steps")]
    fn rejects_degenerate_sweep() {
        let _ = PvLoop::trace(&MfmParams::fabricated(), 300.0, 3.0, 1, 1e-3);
    }

    #[test]
    fn forc_family_is_nested_and_ordered() {
        // Curves with higher reversal voltages start from higher
        // polarization and remain above curves with lower reversal points
        // at every shared voltage (the defining FORC nesting property).
        let mut params = MfmParams::fabricated();
        params.n_domains = 64;
        let curves =
            first_order_reversal_curves(&params, 300.0, 3.0, &[0.8, 1.2, 1.6, 2.4], 40, 1e-3);
        assert_eq!(curves.len(), 4);
        for pair in curves.windows(2) {
            let (lo, hi) = (&pair[0], &pair[1]);
            assert!(hi.reversal_v > lo.reversal_v);
            // Starting polarization grows with the reversal point.
            assert!(
                hi.descending[0].polarization_uc_cm2 >= lo.descending[0].polarization_uc_cm2 - 0.5
            );
        }
        // Descending branches only creep up marginally right after the
        // reversal point (domains still finishing their upward switch
        // while V stays large); past that they fall monotonically to
        // negative saturation.
        for c in &curves {
            let start = c.descending[0].polarization_uc_cm2;
            let max = c
                .descending
                .iter()
                .map(|p| p.polarization_uc_cm2)
                .fold(f64::MIN, f64::max);
            assert!(max <= start + 2.0, "non-physical rise on descent");
            let final_p = c.descending.last().unwrap().polarization_uc_cm2;
            assert!(final_p < -15.0, "must return to negative saturation");
            // Monotone once the field has dropped below half the
            // reversal voltage.
            let mut last = f64::INFINITY;
            for pt in &c.descending {
                if pt.voltage_v < 0.5 * c.reversal_v {
                    assert!(pt.polarization_uc_cm2 <= last + 1e-9);
                    last = pt.polarization_uc_cm2;
                }
            }
        }
        // The highest-reversal curve approaches the major loop's Pr.
        let top = &curves[3];
        let p_at_zero = top
            .descending
            .iter()
            .min_by(|a, b| a.voltage_v.abs().partial_cmp(&b.voltage_v.abs()).unwrap())
            .unwrap();
        assert!(p_at_zero.polarization_uc_cm2 > 15.0);
    }

    #[test]
    fn interpolation_helpers() {
        let branch = vec![
            PvPoint {
                voltage_v: -1.0,
                polarization_uc_cm2: -10.0,
            },
            PvPoint {
                voltage_v: 1.0,
                polarization_uc_cm2: 10.0,
            },
        ];
        assert!((interpolate_at_v(&branch, 0.0) - 0.0).abs() < 1e-12);
        assert!((zero_crossing_voltage(&branch) - 0.0).abs() < 1e-12);
        let no_cross = vec![
            PvPoint {
                voltage_v: 0.0,
                polarization_uc_cm2: 5.0,
            },
            PvPoint {
                voltage_v: 1.0,
                polarization_uc_cm2: 6.0,
            },
        ];
        assert!(zero_crossing_voltage(&no_cross).is_nan());
    }
}
