//! Live implementation of the metrics registry and span timers, compiled
//! only with the `telemetry` feature. All instruments are lock-free after
//! registration (plain relaxed atomics); registration itself takes a
//! global mutex once per unique metric name and leaks the instrument so
//! callers get a `&'static` handle they can cache.

use crate::report::{
    bucket_index, bucket_lower_bound, HistogramSnapshot, Report, HISTOGRAM_BUCKETS,
};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins instantaneous measurement.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A fixed-log2-bucket histogram of `u64` samples (65 buckets: bucket 0
/// holds the value 0, bucket `i` holds `[2^(i-1), 2^i)`).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    /// `u64::MAX` while empty; `count` disambiguates a real MAX sample.
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((bucket_lower_bound(i), n));
            }
        }
        let count = self.count();
        HistogramSnapshot {
            name: name.to_owned(),
            count,
            sum: self.sum(),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

enum Slot {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

static REGISTRY: OnceLock<Mutex<BTreeMap<String, Slot>>> = OnceLock::new();

fn registry() -> MutexGuard<'static, BTreeMap<String, Slot>> {
    REGISTRY
        .get_or_init(|| Mutex::new(BTreeMap::new()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Returns (registering on first use) the counter named `name`.
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn counter(name: &str) -> &'static Counter {
    let mut reg = registry();
    match reg.get(name) {
        Some(Slot::Counter(c)) => c,
        Some(_) => panic!("metric {name:?} already registered with a different kind"),
        None => {
            let c: &'static Counter = Box::leak(Box::default());
            reg.insert(name.to_owned(), Slot::Counter(c));
            c
        }
    }
}

/// Returns (registering on first use) the gauge named `name`.
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn gauge(name: &str) -> &'static Gauge {
    let mut reg = registry();
    match reg.get(name) {
        Some(Slot::Gauge(g)) => g,
        Some(_) => panic!("metric {name:?} already registered with a different kind"),
        None => {
            let g: &'static Gauge = Box::leak(Box::default());
            reg.insert(name.to_owned(), Slot::Gauge(g));
            g
        }
    }
}

/// Returns (registering on first use) the histogram named `name`.
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn histogram(name: &str) -> &'static Histogram {
    let mut reg = registry();
    match reg.get(name) {
        Some(Slot::Histogram(h)) => h,
        Some(_) => panic!("metric {name:?} already registered with a different kind"),
        None => {
            let h: &'static Histogram = Box::leak(Box::default());
            reg.insert(name.to_owned(), Slot::Histogram(h));
            h
        }
    }
}

/// A counter handle that resolves its registry slot once and then costs a
/// single atomic load per use — for hot paths that would otherwise pay
/// the registration mutex and name lookup on every event. Declare it as a
/// `static`:
///
/// ```
/// use felim_telemetry::CachedCounter;
///
/// static EVENTS: CachedCounter = CachedCounter::new("demo.cached.events");
/// EVENTS.inc();
/// EVENTS.add(2);
/// ```
///
/// Caching is sound across [`reset`], which zeroes values but keeps every
/// registered instrument (and thus every leaked handle) valid.
#[derive(Debug)]
pub struct CachedCounter {
    name: &'static str,
    slot: OnceLock<&'static Counter>,
}

impl CachedCounter {
    /// Creates an unresolved handle; the registry is first consulted on
    /// first use, not at construction.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            slot: OnceLock::new(),
        }
    }

    #[inline]
    fn handle(&self) -> &'static Counter {
        self.slot.get_or_init(|| counter(self.name))
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.handle().inc();
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.handle().add(n);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.handle().get()
    }
}

thread_local! {
    static SPAN_STACK: std::cell::RefCell<Vec<&'static str>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// RAII timer scope. Created by [`span`]; records its wall-clock duration
/// (in nanoseconds) into a histogram named after the full label path when
/// dropped.
#[must_use = "a span measures the scope it is bound to — bind it to a variable"]
#[derive(Debug)]
pub struct Span {
    start: Instant,
}

impl Span {
    /// Ends the span explicitly (consumes it, recording the elapsed
    /// time), for closing a span before the end of scope. Mirrors the
    /// no-op build, where `drop()` would be rejected on a `Copy` type.
    #[inline]
    pub fn end(self) {}
}

/// Opens a timing span. Spans nest per thread: a span opened while
/// another is live records under the concatenated label path, so
/// `span("fig6")` containing `span("CRC8")` produces the histogram
/// `span.fig6.CRC8.ns`.
pub fn span(label: &'static str) -> Span {
    SPAN_STACK.with(|s| s.borrow_mut().push(label));
    Span {
        start: Instant::now(),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed_ns = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let path = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = stack.join(".");
            stack.pop();
            path
        });
        histogram(&format!("span.{path}.ns")).record(elapsed_ns);
    }
}

/// Copies the whole registry into a plain-data [`Report`].
pub fn snapshot() -> Report {
    let reg = registry();
    let mut report = Report::default();
    for (name, slot) in reg.iter() {
        match slot {
            Slot::Counter(c) => report.counters.push((name.clone(), c.get())),
            Slot::Gauge(g) => report.gauges.push((name.clone(), g.get())),
            Slot::Histogram(h) => report.histograms.push(h.snapshot(name)),
        }
    }
    report
}

/// Zeroes every registered metric (instruments stay registered, handles
/// stay valid). Call at the start of a measurement window.
pub fn reset() {
    let reg = registry();
    for slot in reg.values() {
        match slot {
            Slot::Counter(c) => c.0.store(0, Ordering::Relaxed),
            Slot::Gauge(g) => g.0.store(0f64.to_bits(), Ordering::Relaxed),
            Slot::Histogram(h) => h.reset(),
        }
    }
}
